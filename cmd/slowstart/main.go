// Command slowstart regenerates Figure 9: the impact of TCP slow start
// and congestion avoidance on each implementation, as the per-message
// bandwidth of 200 pingpongs of 1 MB across the Rennes–Nancy WAN.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	count := flag.Int("count", 200, "number of 1 MB messages")
	flag.Parse()
	fmt.Println(core.RenderFigure9(core.Figure9(*count)))
}
