// Command slowstart regenerates Figure 9: the impact of TCP slow start
// and congestion avoidance on each implementation, as the per-message
// bandwidth of 200 pingpongs of 1 MB across the Rennes–Nancy WAN.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	count := flag.Int("count", 200, "number of 1 MB messages")
	workers := flag.Int("workers", 0, "experiment worker-pool size (0 = one per CPU)")
	flag.Parse()
	fmt.Println(core.RenderFigure9(core.Figure9(exp.NewRunner(*workers), *count)))
}
