// Command thresholds regenerates Table 5: the swept ideal
// eager/rendezvous threshold per implementation on the cluster and on the
// grid.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	reps := flag.Int("reps", 20, "round trips per size during the sweep")
	flag.Parse()
	fmt.Println(core.RenderTable5(core.Table5(*reps)))
}
