// Command thresholds regenerates Table 5: the swept ideal
// eager/rendezvous threshold per implementation on the cluster and on the
// grid. The 2×2×5-cell sweep runs through the internal/exp engine's
// worker pool, so the candidates are measured in parallel.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	reps := flag.Int("reps", 20, "round trips per size during the sweep")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
	flag.Parse()
	fmt.Println(core.RenderTable5(core.Table5(exp.NewRunner(*workers), *reps)))
}
