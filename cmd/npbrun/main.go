// Command npbrun regenerates the NAS Parallel Benchmark results: the
// communication census (Table 2) and the comparison figures 10–13.
//
// The -scale flag multiplies class-B iteration counts; 1.0 reproduces the
// full workloads (slow), smaller values keep the same per-iteration
// comm/compute balance.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 0.25, "fraction of full class-B iterations")
	figure := flag.String("figure", "all", "which figure to run: 10, 11, 12, 13, table2 or all")
	workers := flag.Int("workers", 0, "experiment worker-pool size (0 = one per CPU)")
	flag.Parse()

	r := exp.NewRunner(*workers)
	if *figure == "all" || *figure == "table2" {
		fmt.Println(core.RenderTable2(core.Table2(r, *scale)))
	}
	run := func(name string, f func(*exp.Runner, float64) core.NASFigure) {
		if *figure == "all" || *figure == name {
			fmt.Println(core.RenderNASFigure(f(r, *scale)))
		}
	}
	run("10", core.Figure10)
	run("11", core.Figure11)
	run("12", core.Figure12)
	run("13", core.Figure13)
}
