// Command gridrepro runs the complete reproduction: every table and
// figure of the paper, in order, printing the regenerated results. Its
// output is the body of EXPERIMENTS.md.
//
// All sections are generated concurrently through one shared experiment
// runner (-workers bounds the pool); the output order is fixed and the
// results are deterministic virtual-time simulation, so stdout is
// byte-identical whatever the worker count. With -cache DIR, results
// persist to a content-addressed disk store keyed by experiment
// fingerprint: an immediately repeated invocation recomputes nothing and
// serves every cell from disk (the cache summary on stderr reports the
// split). With -cache-remote URL, the backing store is a shared
// cmd/cached server instead, and -cache becomes its local read-through
// tier — a machine that has never run the reproduction regenerates the
// whole paper from a warm server without executing one experiment.
//
// With -quick, reduced repetition counts and workload scales are used
// (the shapes are unchanged; only sampling density drops). The -reps,
// -nas-scale, -ray-scale and -trace flags override the per-mode defaults
// individually (tests and CI use them to shrink the run further).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, errFlagParse) {
			os.Exit(2) // already reported by the FlagSet
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// errFlagParse marks a parse failure the FlagSet has already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("flag parsing failed")

// section is one unit of the paper, generated concurrently and printed
// in order.
type section struct {
	name string
	gen  func() string
}

// generate runs one section, converting a generator panic (a failed
// experiment) into an error instead of killing the whole regeneration
// goroutine pool.
func generate(s section) (out string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("section %s: %v", s.name, r)
		}
	}()
	return s.gen(), nil
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("gridrepro", flag.ContinueOnError)
	fs.SetOutput(errOut)
	quick := fs.Bool("quick", false, "use reduced repetitions and workload scales")
	workers := fs.Int("workers", 0, "experiment worker-pool size (0 = one per CPU)")
	cacheDir := fs.String("cache", "", "persistent result-cache directory (empty = in-memory only)")
	remoteURL := fs.String("cache-remote", "", "remote result-cache server URL (a cmd/cached instance); with -cache, the directory becomes its local read-through/write-behind tier")
	evictStr := fs.String("cache-evict", "", `age/size bound applied to -cache after the run, e.g. "720h", "512M" or "720h,512M"`)
	verifyP := fs.Float64("cache-verify", 0, "instead of regenerating, re-run this deterministic sample fraction (0..1] of -cache entries and report results the current simulator no longer reproduces")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProf := fs.String("memprofile", "", "write a heap profile at exit to this file")
	faultsStr := fs.String("faults", "", `append a reliability-matrix section: the paper's impl × tuning grid re-run under this fault plan (syntax: "seed=N; <time> down|up site=S; <time> loss <p>; <time> jitter <dur>")`)
	multilevel := fs.Bool("multilevel", false, "append the flat-vs-multilevel collectives extension table across asymmetric layouts")
	repsFlag := fs.Int("reps", 0, "override pingpong round trips per size (0 = per-mode default)")
	nasFlag := fs.Float64("nas-scale", 0, "override the NPB workload scale (0 = per-mode default)")
	rayFlag := fs.Float64("ray-scale", 0, "override the ray2mesh workload scale (0 = per-mode default)")
	traceFlag := fs.Int("trace", 0, "override the Figure 9 message count (0 = per-mode default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse // already reported by the FlagSet
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "unexpected arguments: %v\n", fs.Args())
		return errFlagParse
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, err)
		}
	}()

	// -cache-verify is a maintenance mode: instead of regenerating the
	// paper, re-execute a fingerprint-keyed sample of the cache and fail
	// loudly if the simulator has drifted from the stored results.
	if *verifyP != 0 {
		if *verifyP < 0 || *verifyP > 1 {
			return fmt.Errorf("-cache-verify wants a fraction in (0, 1], got %v", *verifyP)
		}
		if *cacheDir == "" {
			return fmt.Errorf("-cache-verify needs -cache")
		}
		rep, err := exp.VerifyDir(*cacheDir, *verifyP, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep)
		if len(rep.Mismatches) > 0 {
			return fmt.Errorf("%d of %d sampled cache entries no longer reproduce — the simulator changed; bump exp.DiskSchemaVersion or evict the cache",
				len(rep.Mismatches), rep.Sampled)
		}
		if !rep.OK() {
			return fmt.Errorf("nothing verified: all %d sampled entries were unreadable (foreign schema or corrupt) — the cache needs regenerating, not verifying", rep.Sampled)
		}
		return nil
	}

	reps, nasScale, rayScale, traceN := core.DefaultReps, 0.25, 1.0, 200
	if *quick {
		reps, nasScale, rayScale, traceN = 20, 0.1, 0.1, 100
	}
	if *repsFlag > 0 {
		reps = *repsFlag
	}
	if *nasFlag > 0 {
		nasScale = *nasFlag
	}
	if *rayFlag > 0 {
		rayScale = *rayFlag
	}
	if *traceFlag > 0 {
		traceN = *traceFlag
	}

	var evict exp.EvictPolicy
	if *evictStr != "" {
		if *cacheDir == "" {
			return fmt.Errorf("-cache-evict needs -cache")
		}
		p, err := exp.ParseEvictPolicy(*evictStr)
		if err != nil {
			return err
		}
		evict = p
	}

	r, remote, err := exp.NewRunnerCache(*workers, *cacheDir, *remoteURL)
	if err != nil {
		return err
	}

	sections := []section{
		{"table1", func() string { return core.RenderTable1(core.Table1()) }},
		{"table2", func() string { return core.RenderTable2(core.Table2(r, nasScale)) }},
		{"table4", func() string { return core.RenderTable4(core.Table4(r, reps)) }},
		{"figure5", func() string { return core.RenderPingPongFigure(core.Figure5(r, reps)) }},
		{"figure3", func() string { return core.RenderPingPongFigure(core.Figure3(r, reps)) }},
		{"figure6", func() string { return core.RenderPingPongFigure(core.Figure6(r, reps)) }},
		{"table5", func() string { return core.RenderTable5(core.Table5(r, reps)) }},
		{"figure7", func() string { return core.RenderPingPongFigure(core.Figure7(r, reps)) }},
		{"figure9", func() string { return core.RenderFigure9(core.Figure9(r, traceN)) }},
		{"figure10", func() string { return core.RenderNASFigure(core.Figure10(r, nasScale)) }},
		{"figure11", func() string { return core.RenderNASFigure(core.Figure11(r, nasScale)) }},
		{"figure12", func() string { return core.RenderNASFigure(core.Figure12(r, nasScale)) }},
		{"figure13", func() string { return core.RenderNASFigure(core.Figure13(r, nasScale)) }},
		{"table6", func() string { return core.RenderTable6(core.Table6(r, rayScale)) }},
		{"table7", func() string { return core.RenderTable7(core.Table7(r, rayScale)) }},
		// Beyond the paper: the §5 future-work experiments and an ablation.
		{"extension-g2", func() string { return core.RenderExtensionMPICHG2(core.ExtensionMPICHG2(r, reps)) }},
		{"extension-het", func() string { return core.RenderExtensionHeterogeneity(core.ExtensionHeterogeneity(r, reps)) }},
		{"buffer-sweep", func() string { return core.RenderBufferSweep(core.BufferSweep(r, reps)) }},
	}
	// The reliability matrix only exists under -faults, so the default
	// section list — and with it the stdout golden — is untouched.
	if *faultsStr != "" {
		plan, err := exp.ParseFaultPlan(*faultsStr)
		if err != nil {
			return err
		}
		sections = append(sections, section{"reliability", func() string {
			return core.RenderReliabilityMatrix(plan, core.ReliabilityMatrix(r, reps, plan))
		}})
	}
	// Likewise -multilevel: the extension table appends after the golden
	// prefix without disturbing it.
	if *multilevel {
		sections = append(sections, section{"multilevel", func() string {
			const size = 1 << 20
			return core.RenderMultilevelTable(core.MultilevelTable(r, size, 3), size)
		}})
	}

	// Every section generates concurrently; the runner's semaphore keeps
	// total simulation work bounded by -workers, and the fixed print
	// order below keeps stdout byte-identical whatever the pool size.
	outs := make([]string, len(sections))
	errs := make([]error, len(sections))
	var wg sync.WaitGroup
	for i, s := range sections {
		wg.Add(1)
		go func(i int, s section) {
			defer wg.Done()
			outs[i], errs[i] = generate(s)
		}(i, s)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "=== Reproduction of: Comparison and tuning of MPI implementations in a grid context (Hablot et al., 2007) ===")
	fmt.Fprintln(out)
	for _, s := range outs {
		fmt.Fprintln(out, s)
	}

	stats := r.CacheStats()
	// With a remote store the backing tier is not (only) local disk.
	source := "from disk"
	if remote != nil {
		source = "from store"
	}
	fmt.Fprintf(errOut, "cache: %d computed, %d %s, %d from memory (%d distinct experiments)\n",
		stats.Computed, stats.Disk, source, stats.Memory, r.CacheLen())
	if stats.StoreErrors > 0 {
		fmt.Fprintf(errOut, "warning: %d results could not be written to the disk cache\n", stats.StoreErrors)
	}
	if remote != nil {
		fmt.Fprintln(errOut, remote.Stats())
	}
	if evict != (exp.EvictPolicy{}) {
		rep, err := exp.EvictDir(*cacheDir, evict)
		if err != nil {
			return fmt.Errorf("cache eviction: %w", err)
		}
		fmt.Fprintln(errOut, rep)
	}
	return nil
}
