// Command gridrepro runs the complete reproduction: every table and
// figure of the paper, in order, printing the regenerated results. Its
// output is the body of EXPERIMENTS.md.
//
// With -quick, reduced repetition counts and workload scales are used
// (the shapes are unchanged; only sampling density drops).
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced repetitions and workload scales")
	flag.Parse()

	reps, nasScale, rayScale, traceN := core.DefaultReps, 0.25, 1.0, 200
	if *quick {
		reps, nasScale, rayScale, traceN = 20, 0.1, 0.1, 100
	}

	fmt.Println("=== Reproduction of: Comparison and tuning of MPI implementations in a grid context (Hablot et al., 2007) ===")
	fmt.Println()
	fmt.Println(core.RenderTable1(core.Table1()))
	fmt.Println(core.RenderTable2(core.Table2(nasScale)))
	fmt.Println(core.RenderTable4(core.Table4(reps)))
	fmt.Println(core.RenderPingPongFigure(core.Figure5(reps)))
	fmt.Println(core.RenderPingPongFigure(core.Figure3(reps)))
	fmt.Println(core.RenderPingPongFigure(core.Figure6(reps)))
	fmt.Println(core.RenderTable5(core.Table5(20)))
	fmt.Println(core.RenderPingPongFigure(core.Figure7(reps)))
	fmt.Println(core.RenderFigure9(core.Figure9(traceN)))
	fmt.Println(core.RenderNASFigure(core.Figure10(nasScale)))
	fmt.Println(core.RenderNASFigure(core.Figure11(nasScale)))
	fmt.Println(core.RenderNASFigure(core.Figure12(nasScale)))
	fmt.Println(core.RenderNASFigure(core.Figure13(nasScale)))
	fmt.Println(core.RenderTable6(core.Table6(rayScale)))
	fmt.Println(core.RenderTable7(core.Table7(rayScale)))

	// Beyond the paper: the §5 future-work experiments and an ablation.
	fmt.Println(core.RenderExtensionMPICHG2(core.ExtensionMPICHG2(reps)))
	fmt.Println(core.RenderExtensionHeterogeneity(core.ExtensionHeterogeneity(reps)))
	fmt.Println(core.RenderBufferSweep(core.BufferSweep(reps)))
}
