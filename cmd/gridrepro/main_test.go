package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyArgs shrinks every axis of the quick mode further so whole-paper
// regeneration fits in a unit test; the shapes don't matter here, only
// determinism and cache behaviour.
var tinyArgs = []string{"-quick", "-reps", "2", "-nas-scale", "0.02", "-ray-scale", "0.02", "-trace", "10"}

func regen(t *testing.T, extra ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(append(append([]string{}, tinyArgs...), extra...), &out, &errOut); err != nil {
		t.Fatalf("run %v: %v\nstderr: %s", extra, err, errOut.String())
	}
	return out.String(), errOut.String()
}

// TestParallelMatchesSequentialAndCacheServesSecondRun is the command's
// contract: -workers N output is byte-identical to -workers 1, and an
// immediately repeated invocation against the same cache directory
// recomputes nothing.
func TestParallelMatchesSequentialAndCacheServesSecondRun(t *testing.T) {
	dir := t.TempDir()
	seq, _ := regen(t, "-workers", "1")
	par, parErr := regen(t, "-workers", "4", "-cache", dir)
	if seq != par {
		t.Fatal("-workers 4 output differs from -workers 1")
	}
	if !strings.Contains(parErr, " 0 from disk") {
		t.Errorf("first cached run should find an empty store: %s", parErr)
	}

	again, againErr := regen(t, "-workers", "4", "-cache", dir)
	if again != par {
		t.Fatal("second run against the cache produced different output")
	}
	if !strings.HasPrefix(againErr, "cache: 0 computed") {
		t.Errorf("second run recomputed cells: %s", againErr)
	}
	if !strings.Contains(againErr, "from disk") || strings.Contains(againErr, " 0 from disk") {
		t.Errorf("second run did not load from disk: %s", againErr)
	}
}

// TestStdoutMatchesPrePRGolden pins the whole-paper stdout to the bytes
// the command produced before the Topology/Placement API redesign
// (testdata/quick_tiny.golden was captured from the pre-redesign code):
// the redesign must not move a single byte of the reproduction.
func TestStdoutMatchesPrePRGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "quick_tiny.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := regen(t, "-workers", "8")
	if out != string(golden) {
		t.Errorf("stdout diverged from the pre-redesign golden (%d bytes vs %d)", len(out), len(golden))
	}
}

// TestFaultsAppendReliabilitySection: -faults tacks the reliability matrix
// onto the end of the regeneration without moving a byte of the paper's
// own sections — the pre-PR golden must remain an exact prefix.
func TestFaultsAppendReliabilitySection(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "quick_tiny.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := regen(t, "-workers", "8",
		"-faults", "seed=7; 20ms down site=rennes; 120ms up site=rennes; 0s loss 0.02")
	if !strings.HasPrefix(out, string(golden)) {
		t.Fatal("-faults disturbed the paper sections preceding the reliability matrix")
	}
	tail := out[len(golden):]
	for _, want := range []string{"Reliability: the paper's matrix under faults", "seed=7", "kept", "retrans"} {
		if !strings.Contains(tail, want) {
			t.Errorf("reliability section missing %q:\n%s", want, tail)
		}
	}
}

// TestMultilevelAppendsExtensionSection: -multilevel tacks the
// flat-vs-multilevel collectives table onto the end of the regeneration
// without moving a byte of the paper's own sections.
func TestMultilevelAppendsExtensionSection(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "quick_tiny.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := regen(t, "-workers", "8", "-multilevel")
	if !strings.HasPrefix(out, string(golden)) {
		t.Fatal("-multilevel disturbed the paper sections preceding the extension table")
	}
	tail := out[len(golden):]
	for _, want := range []string{"flat vs multilevel collectives", "multilevel", "speedup", "alltoall", "rennes:4+nancy:2+sophia:1+toulouse:1"} {
		if !strings.Contains(tail, want) {
			t.Errorf("multilevel section missing %q:\n%s", want, tail)
		}
	}
}

func TestBadInvocations(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-faults", "1s frobnicate site=rennes"}, &out, &errOut); err == nil {
		t.Error("malformed -faults plan accepted")
	}
	if err := run([]string{"extra"}, &out, &errOut); err == nil {
		t.Error("positional arguments accepted")
	}
	if err := run([]string{"-cache", "\x00impossible/dir"}, &out, &errOut); err == nil {
		t.Error("uncreatable cache dir accepted")
	}
	if err := run([]string{"-cache-verify", "0.5"}, &out, &errOut); err == nil {
		t.Error("-cache-verify without -cache accepted")
	}
	if err := run([]string{"-cache", t.TempDir(), "-cache-verify", "1.5"}, &out, &errOut); err == nil {
		t.Error("-cache-verify fraction > 1 accepted")
	}
}

// TestCacheVerifyMode populates a cache with a tiny regeneration, then
// exercises the -cache-verify maintenance mode: a clean cache verifies
// silently, a tampered entry fails the run with a mismatch report.
func TestCacheVerifyMode(t *testing.T) {
	dir := t.TempDir()
	regen(t, "-cache", dir)

	var out, errOut bytes.Buffer
	if err := run([]string{"-cache", dir, "-cache-verify", "0.25", "-workers", "4"}, &out, &errOut); err != nil {
		t.Fatalf("verify of a fresh cache failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 mismatched") {
		t.Fatalf("unexpected verify report: %s", out.String())
	}

	// Tamper with one entry's measurement (keeping its experiment, and so
	// its fingerprint, intact) and verify everything: the run must fail.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mod := strings.Replace(string(blob), `"elapsed": `, `"elapsed": 9`, 1)
		if mod == string(blob) {
			continue
		}
		if err := os.WriteFile(path, []byte(mod), 0o644); err != nil {
			t.Fatal(err)
		}
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("no entry could be tampered with")
	}
	out.Reset()
	if err := run([]string{"-cache", dir, "-cache-verify", "1", "-workers", "4"}, &out, &errOut); err == nil {
		t.Fatalf("verify of a tampered cache passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISMATCH") {
		t.Fatalf("report does not name the mismatch: %s", out.String())
	}
}

// TestProfileFlags smokes the -cpuprofile/-memprofile wiring: the files
// must exist and be non-empty after a run.
func TestProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("profile wiring only; covered by the full suite")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	regen(t, "-cpuprofile", cpu, "-memprofile", mem)
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
