package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyArgs shrinks every axis of the quick mode further so whole-paper
// regeneration fits in a unit test; the shapes don't matter here, only
// determinism and cache behaviour.
var tinyArgs = []string{"-quick", "-reps", "2", "-nas-scale", "0.02", "-ray-scale", "0.02", "-trace", "10"}

func regen(t *testing.T, extra ...string) (string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	if err := run(append(append([]string{}, tinyArgs...), extra...), &out, &errOut); err != nil {
		t.Fatalf("run %v: %v\nstderr: %s", extra, err, errOut.String())
	}
	return out.String(), errOut.String()
}

// TestParallelMatchesSequentialAndCacheServesSecondRun is the command's
// contract: -workers N output is byte-identical to -workers 1, and an
// immediately repeated invocation against the same cache directory
// recomputes nothing.
func TestParallelMatchesSequentialAndCacheServesSecondRun(t *testing.T) {
	dir := t.TempDir()
	seq, _ := regen(t, "-workers", "1")
	par, parErr := regen(t, "-workers", "4", "-cache", dir)
	if seq != par {
		t.Fatal("-workers 4 output differs from -workers 1")
	}
	if !strings.Contains(parErr, " 0 from disk") {
		t.Errorf("first cached run should find an empty store: %s", parErr)
	}

	again, againErr := regen(t, "-workers", "4", "-cache", dir)
	if again != par {
		t.Fatal("second run against the cache produced different output")
	}
	if !strings.HasPrefix(againErr, "cache: 0 computed") {
		t.Errorf("second run recomputed cells: %s", againErr)
	}
	if !strings.Contains(againErr, "from disk") || strings.Contains(againErr, " 0 from disk") {
		t.Errorf("second run did not load from disk: %s", againErr)
	}
}

// TestStdoutMatchesPrePRGolden pins the whole-paper stdout to the bytes
// the command produced before the Topology/Placement API redesign
// (testdata/quick_tiny.golden was captured from the pre-redesign code):
// the redesign must not move a single byte of the reproduction.
func TestStdoutMatchesPrePRGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "quick_tiny.golden"))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := regen(t, "-workers", "8")
	if out != string(golden) {
		t.Errorf("stdout diverged from the pre-redesign golden (%d bytes vs %d)", len(out), len(golden))
	}
}

func TestBadInvocations(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errOut); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"extra"}, &out, &errOut); err == nil {
		t.Error("positional arguments accepted")
	}
	if err := run([]string{"-cache", "\x00impossible/dir"}, &out, &errOut); err == nil {
		t.Error("uncreatable cache dir accepted")
	}
}
