// Command sweepd is the sweep fleet's control plane: it serves a
// persistent result store (an exp.DiskCache, same protocol as
// cmd/cached) and, on top of it, an HTTP job queue that partitions
// submitted experiment matrices into fingerprint-keyed shard slices and
// leases them to pull-based workers:
//
//	sweepd -cache /srv/repro-cache -journal /srv/repro-queue -addr :8078
//	sweep -submit http://stately:8078 -workload pattern:alltoall   # submit + wait
//	sweep -worker http://stately:8078                              # on each machine
//
// Workers publish every computed result through the store's verified
// ingest (PUT /v1/results/<fp>, re-hashed on arrival) before reporting
// the cell done, and the queue re-verifies by reading the entry back —
// a lying or stale worker cannot mark a cell complete. Leases expire
// when a worker stops reporting (kill -9 loses zero cells: the slice
// requeues whole), and idle workers steal the back half of the
// largest straggler's slice. Because results are pure functions of
// their experiment and writes are content-addressed and idempotent,
// duplicated compute from expiry or stealing is harmless.
//
// With -journal, the queue itself is crash-safe: every transition
// appends to a write-ahead log in that directory, and a restarted
// sweepd — even after kill -9 — replays it, re-verifies every claimed
// done cell against the store, and resumes all in-flight jobs where
// they stopped. Workers running with a retry window ride through the
// restart; nothing is resubmitted and no verified cell is recomputed.
// On SIGTERM/SIGINT the server drains instead of dropping: no new
// leases, in-flight reports accepted for -drain-grace, state
// checkpointed, exit 0.
//
// Endpoints: the full cached results protocol (GET /healthz,
// GET/HEAD/PUT /v1/results...), POST/GET /v1/jobs, GET /v1/jobs/{id},
// POST /v1/jobs/{id}/report, POST /v1/lease, and GET /statusz (store
// counters, every job's progress, queue tuning, journal accounting).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

// errFlagParse marks a parse failure the FlagSet has already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("flag parsing failed")

// stop receives the shutdown signals; tests inject into it directly.
var stop = make(chan os.Signal, 1)

// logRequests is the -v middleware: one stderr line per request.
func logRequests(h http.Handler, errOut io.Writer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(errOut, "sweepd: %s %s from %s\n", r.Method, r.URL.Path, r.RemoteAddr)
		h.ServeHTTP(w, r)
	})
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("cache", "", "result-store directory to serve (required; created if missing)")
	journalDir := fs.String("journal", "", "queue journal directory: jobs and leases survive restarts (empty = in-memory queue)")
	addr := fs.String("addr", "127.0.0.1:8078", "listen address (host:port; port 0 picks a free one)")
	ttl := fs.Duration("lease-ttl", exp.DefaultLeaseTTL, "lease deadline: a worker silent this long forfeits its slice")
	slices := fs.Int("slices", exp.DefaultJobSlices, "lease slices to partition each job into (submissions may override)")
	stealMin := fs.Int("steal-min", exp.DefaultStealMin, "smallest pending slice an idle worker may split for work stealing")
	poll := fs.Duration("poll", exp.DefaultWorkerPoll, "idle-poll interval advertised to workers on lease responses")
	drainGrace := fs.Duration("drain-grace", 10*time.Second, "on SIGTERM, accept in-flight reports this long before exiting")
	verbose := fs.Bool("v", false, "log every request to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse // already reported by the FlagSet
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "unexpected arguments: %v\n", fs.Args())
		return errFlagParse
	}
	if *dir == "" {
		return fmt.Errorf("-cache is required: the result-store directory to serve")
	}
	if *ttl <= 0 {
		return fmt.Errorf("-lease-ttl must be positive, got %v", *ttl)
	}
	if *slices < 1 {
		return fmt.Errorf("-slices must be ≥ 1, got %d", *slices)
	}
	if *stealMin < 2 {
		return fmt.Errorf("-steal-min must be ≥ 2, got %d", *stealMin)
	}
	if *poll <= 0 {
		return fmt.Errorf("-poll must be positive, got %v", *poll)
	}
	store, err := exp.NewDiskCache(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	cfg := exp.QueueConfig{TTL: *ttl, Slices: *slices, StealMin: *stealMin, Poll: *poll}
	var queue *exp.JobQueue
	if *journalDir != "" {
		recovered, report, err := exp.RecoverJobQueue(store, cfg, *journalDir)
		if err != nil {
			return err
		}
		queue = recovered
		defer queue.Close()
		if report.Jobs > 0 || report.Records > 0 || report.TailTruncated {
			fmt.Fprintf(errOut, "sweepd: %s\n", report)
		}
	} else {
		queue = exp.NewJobQueue(store, cfg)
	}
	var handler http.Handler = exp.NewQueueHandler(queue, exp.NewCacheServer(store))
	if *verbose {
		handler = logRequests(handler, errOut)
	}
	n, err := store.Len()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sweepd: serving %s (%d entries) on http://%s (lease TTL %v, %d slices/job)\n",
		store.Dir(), n, ln.Addr(), *ttl, *slices)

	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		fmt.Fprintf(errOut, "sweepd: %v, draining (grace %v)\n", sig, *drainGrace)
		// Graceful drain: refuse new leases while the server keeps
		// answering, give in-flight reports a grace window to land,
		// checkpoint the journal, then stop serving.
		queue.SetDraining(true)
		deadline := time.Now().Add(*drainGrace)
		for queue.ActiveLeases() > 0 && time.Now().Before(deadline) {
			time.Sleep(50 * time.Millisecond)
		}
		if err := queue.Checkpoint(); err != nil {
			fmt.Fprintf(errOut, "sweepd: checkpoint: %v\n", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
