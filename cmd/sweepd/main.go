// Command sweepd is the sweep fleet's control plane: it serves a
// persistent result store (an exp.DiskCache, same protocol as
// cmd/cached) and, on top of it, an HTTP job queue that partitions
// submitted experiment matrices into fingerprint-keyed shard slices and
// leases them to pull-based workers:
//
//	sweepd -cache /srv/repro-cache -addr :8078
//	sweep -submit http://stately:8078 -workload pattern:alltoall   # submit + wait
//	sweep -worker http://stately:8078                              # on each machine
//
// Workers publish every computed result through the store's verified
// ingest (PUT /v1/results/<fp>, re-hashed on arrival) before reporting
// the cell done, and the queue re-verifies by reading the entry back —
// a lying or stale worker cannot mark a cell complete. Leases expire
// when a worker stops reporting (kill -9 loses zero cells: the slice
// requeues whole), and idle workers steal the back half of the
// largest straggler's slice. Because results are pure functions of
// their experiment and writes are content-addressed and idempotent,
// duplicated compute from expiry or stealing is harmless.
//
// Endpoints: the full cached results protocol (GET /healthz,
// GET/HEAD/PUT /v1/results...), POST/GET /v1/jobs, GET /v1/jobs/{id},
// POST /v1/jobs/{id}/report, POST /v1/lease, and GET /statusz (store
// counters + every job's progress). The queue is in-memory; the store
// is the durable state, so restarting sweepd and resubmitting a sweep
// recomputes nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

// errFlagParse marks a parse failure the FlagSet has already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("flag parsing failed")

// stop receives the shutdown signals; tests inject into it directly.
var stop = make(chan os.Signal, 1)

// logRequests is the -v middleware: one stderr line per request.
func logRequests(h http.Handler, errOut io.Writer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(errOut, "sweepd: %s %s from %s\n", r.Method, r.URL.Path, r.RemoteAddr)
		h.ServeHTTP(w, r)
	})
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("cache", "", "result-store directory to serve (required; created if missing)")
	addr := fs.String("addr", "127.0.0.1:8078", "listen address (host:port; port 0 picks a free one)")
	ttl := fs.Duration("lease-ttl", exp.DefaultLeaseTTL, "lease deadline: a worker silent this long forfeits its slice")
	slices := fs.Int("slices", exp.DefaultJobSlices, "lease slices to partition each job into (submissions may override)")
	verbose := fs.Bool("v", false, "log every request to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse // already reported by the FlagSet
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "unexpected arguments: %v\n", fs.Args())
		return errFlagParse
	}
	if *dir == "" {
		return fmt.Errorf("-cache is required: the result-store directory to serve")
	}
	if *ttl <= 0 {
		return fmt.Errorf("-lease-ttl must be positive, got %v", *ttl)
	}
	if *slices < 1 {
		return fmt.Errorf("-slices must be ≥ 1, got %d", *slices)
	}
	store, err := exp.NewDiskCache(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	queue := exp.NewJobQueue(store, *ttl, *slices)
	var handler http.Handler = exp.NewQueueHandler(queue, exp.NewCacheServer(store))
	if *verbose {
		handler = logRequests(handler, errOut)
	}
	n, err := store.Len()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sweepd: serving %s (%d entries) on http://%s (lease TTL %v, %d slices/job)\n",
		store.Dir(), n, ln.Addr(), *ttl, *slices)

	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		fmt.Fprintf(errOut, "sweepd: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
