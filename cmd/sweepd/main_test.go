package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// syncBuffer lets the test read run's output while the server goroutine
// is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunBadFlags covers rejection paths: the store directory is
// mandatory, the queue knobs must be sane, positionals are refused.
func TestRunBadFlags(t *testing.T) {
	var out, errOut syncBuffer
	for _, args := range [][]string{
		{},                             // no -cache
		{"-cache", ""},                 // explicit empty
		{"-cache", t.TempDir(), "pos"}, // positional argument
		{"-nope"},                      // unknown flag
		{"-cache", t.TempDir(), "-lease-ttl", "0s"},
		{"-cache", t.TempDir(), "-slices", "0"},
		{"-cache", t.TempDir(), "-steal-min", "1"},
		{"-cache", t.TempDir(), "-poll", "0s"},
		{"-cache", t.TempDir(), "-addr", "definitely:not:an:addr"},
	} {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServesFleetAndShutsDown boots the real control plane on an
// ephemeral port, drives one tiny job through it over HTTP — submit,
// worker loop, statusz — and exercises graceful shutdown.
func TestRunServesFleetAndShutsDown(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-cache", t.TempDir(), "-addr", "127.0.0.1:0", "-lease-ttl", "5s"}, &out, &errOut)
	}()

	// The banner carries the bound address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; out=%q err=%v", out.String(), errOut.String())
		}
		if s := out.String(); strings.Contains(s, "http://") {
			// The banner reads "... on http://ADDR (lease TTL ...)".
			base = "http://" + strings.Fields(strings.SplitN(s, "http://", 2)[1])[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	resp.Body.Close()

	// One 2-cell job through the whole stack: the exp package tests cover
	// the state machine; this proves the wired binary serves it.
	cells := exp.Sweep{
		Impls:      []string{"GridMPI"},
		Tunings:    []exp.Tuning{{}, {TCP: true}},
		Topologies: []exp.Topology{exp.Grid(1)},
		Workloads:  []exp.Workload{exp.PingPongWorkload([]int{1 << 10}, 2)},
	}.Experiments()
	client, err := exp.NewQueueClient(base)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Submit(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := exp.NewRemoteStore(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := client.Work(exp.WorkerConfig{ID: "w", Runner: exp.NewRunnerStore(1, store), Poll: 5 * time.Millisecond, IdleExit: 3})
	if rep.Cells != 2 || rep.Failed != 0 || rep.Rejected != 0 {
		t.Fatalf("worker report = %+v", rep)
	}
	final, err := client.Job(st.ID)
	if err != nil || final.State != "done" || final.Computed != 2 {
		t.Fatalf("job = %+v, %v", final, err)
	}

	// /statusz reports the store and the job side by side.
	resp, err = http.Get(base + "/statusz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz = %v, %v", resp, err)
	}
	var status exp.ServerStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Entries != 2 || len(status.Jobs) != 1 || status.Jobs[0].State != "done" {
		t.Fatalf("statusz = %+v", status)
	}

	// The banner announces the queue configuration.
	if !strings.Contains(out.String(), "lease TTL 5s") {
		t.Errorf("banner missing lease TTL: %q", out.String())
	}

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(errOut.String(), "draining") {
		t.Errorf("no shutdown notice on stderr: %q", errOut.String())
	}

	// The store directory outlives the server: results land on disk.
	if !bytes.Contains([]byte(out.String()), []byte("sweepd: serving")) {
		t.Errorf("banner missing: %q", out.String())
	}
}

// startSweepd boots run() in a goroutine and waits for the banner to
// announce the bound address.
func startSweepd(t *testing.T, args []string) (base string, out, errOut *syncBuffer, done chan error) {
	t.Helper()
	out, errOut = &syncBuffer{}, &syncBuffer{}
	done = make(chan error, 1)
	go func() { done <- run(args, out, errOut) }()
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; out=%q err=%q", out.String(), errOut.String())
		}
		if s := out.String(); strings.Contains(s, "http://") {
			base = "http://" + strings.Fields(strings.SplitN(s, "http://", 2)[1])[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	return base, out, errOut, done
}

// stopSweepd delivers the shutdown signal and waits for run to return.
func stopSweepd(t *testing.T, done chan error) {
	t.Helper()
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunRestartRecoversJournaledJobs: a -journal sweepd that goes down
// holding a submitted job comes back still holding it — same store,
// same journal directory, a fresh port — and a worker drains it to done.
func TestRunRestartRecoversJournaledJobs(t *testing.T) {
	cache, journal := t.TempDir(), t.TempDir()
	args := []string{"-cache", cache, "-journal", journal, "-addr", "127.0.0.1:0", "-drain-grace", "1s"}

	base1, _, _, done1 := startSweepd(t, args)
	cells := exp.Sweep{
		Impls:      []string{"GridMPI"},
		Tunings:    []exp.Tuning{{}, {TCP: true}},
		Topologies: []exp.Topology{exp.Grid(1)},
		Workloads:  []exp.Workload{exp.PingPongWorkload([]int{1 << 10}, 2)},
	}.Experiments()
	client1, err := exp.NewQueueClient(base1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client1.Submit(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No workers: the job is still fully queued when the plane stops.
	stopSweepd(t, done1)

	base2, _, errOut2, done2 := startSweepd(t, args)
	if !strings.Contains(errOut2.String(), "recovered 1 jobs") {
		t.Errorf("no recovery banner on stderr: %q", errOut2.String())
	}
	client2, err := exp.NewQueueClient(base2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client2.Job(st.ID)
	if err != nil || got.State != "running" || got.Queued != 2 {
		t.Fatalf("recovered job = %+v, %v — want it running with both cells queued", got, err)
	}
	store, err := exp.NewRemoteStore(base2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := client2.Work(exp.WorkerConfig{ID: "w", Runner: exp.NewRunnerStore(1, store), Poll: 5 * time.Millisecond, IdleExit: 3})
	if rep.Cells != 2 || rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("worker report = %+v", rep)
	}
	final, err := client2.Job(st.ID)
	if err != nil || final.State != "done" || final.Computed != 2 {
		t.Fatalf("job after restart = %+v, %v", final, err)
	}
	stopSweepd(t, done2)
}
