// Command ray2mesh regenerates the real-application study of §4.4:
// Table 6 (ray distribution per cluster and master location) and Table 7
// (compute / merge / total times).
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	scale := flag.Float64("scale", 1.0, "fraction of the one-million-ray workload")
	workers := flag.Int("workers", 0, "experiment worker-pool size (0 = one per CPU)")
	flag.Parse()
	// One shared runner: Tables 6 and 7 read the same four experiments,
	// so the second table is served entirely from the cache.
	r := exp.NewRunner(*workers)
	fmt.Println(core.RenderTable6(core.Table6(r, *scale)))
	fmt.Println(core.RenderTable7(core.Table7(r, *scale)))
}
