// Command ray2mesh regenerates the real-application study of §4.4:
// Table 6 (ray distribution per cluster and master location) and Table 7
// (compute / merge / total times).
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 1.0, "fraction of the one-million-ray workload")
	flag.Parse()
	fmt.Println(core.RenderTable6(core.Table6(*scale)))
	fmt.Println(core.RenderTable7(core.Table7(*scale)))
}
