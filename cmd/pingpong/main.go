// Command pingpong regenerates the paper's pingpong results: Table 4 and
// Figures 3, 5, 6 and 7.
//
// Usage:
//
//	pingpong [-reps N] [-figure 3|5|6|7|all] [-table4]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/exp"
)

func main() {
	reps := flag.Int("reps", core.DefaultReps, "round trips per message size")
	figure := flag.String("figure", "all", "which figure to run: 3, 5, 6, 7 or all")
	table4 := flag.Bool("table4", true, "also print the latency table")
	workers := flag.Int("workers", 0, "experiment worker-pool size (0 = one per CPU)")
	flag.Parse()

	r := exp.NewRunner(*workers)
	if *table4 {
		fmt.Println(core.RenderTable4(core.Table4(r, *reps)))
	}
	run := func(name string, f func(*exp.Runner, int) core.Figure) {
		if *figure == "all" || *figure == name {
			fmt.Println(core.RenderPingPongFigure(f(r, *reps)))
		}
	}
	run("5", core.Figure5)
	run("3", core.Figure3)
	run("6", core.Figure6)
	run("7", core.Figure7)
}
