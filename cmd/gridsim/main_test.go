package main

import (
	"strings"
	"testing"
)

// TestRunSmoke drives one tiny end-to-end experiment through the CLI
// entrypoint and checks the human-readable report.
func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{
		"-impl", "GridMPI", "-nodes", "2", "-grid",
		"-pattern", "ring", "-size", "64k", "-iters", "2",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"GridMPI, 4 ranks", "pattern=ring size=65536 iters=2", "elapsed (virtual):", "census:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunJSON checks the machine-readable path.
func TestRunJSON(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{"-impl", "MPICH2", "-nodes", "2", "-grid=false",
		"-pattern", "barrier", "-size", "1k", "-iters", "1", "-json"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{`"impl": "MPICH2"`, `"kind": "pattern"`, `"census"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunBadFlags covers the error paths: invalid size and unknown
// pattern.
func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-size", "12q"}, &out, &errOut); err == nil {
		t.Error("bad -size accepted")
	}
	if err := run([]string{"-pattern", "nope", "-nodes", "1"}, &out, &errOut); err == nil {
		t.Error("unknown pattern accepted")
	}
	if err := run([]string{"-impl", "LAM/MPI"}, &out, &errOut); err == nil {
		t.Error("unknown implementation accepted")
	}
	if err := run([]string{"-sites", "paris:4"}, &out, &errOut); err == nil {
		t.Error("unknown site accepted")
	}
	if err := run([]string{"-placement", "scatter"}, &out, &errOut); err == nil {
		t.Error("unknown placement accepted")
	}
	if err := run([]string{"-placement", "master:sophia"}, &out, &errOut); err == nil {
		t.Error("master outside the layout accepted")
	}
}

// TestRunAsymmetricSites drives a per-site layout with a placement
// policy through the CLI.
func TestRunAsymmetricSites(t *testing.T) {
	var out, errOut strings.Builder
	err := run([]string{
		"-impl", "GridMPI", "-sites", "rennes:2+nancy:1+sophia:1",
		"-placement", "master:sophia",
		"-pattern", "bcast", "-size", "32k", "-iters", "2",
	}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "GridMPI, 4 ranks") {
		t.Errorf("output missing the 4-rank asymmetric header:\n%s", out.String())
	}
}
