// Command gridsim is a general driver for ad-hoc experiments on the
// simulated grid: pick an implementation, a tuning level, a topology and
// a communication pattern, and get timing plus the communication census.
// It is a thin front-end over the internal/exp experiment engine.
//
// Examples:
//
//	gridsim -impl GridMPI -nodes 8 -grid -pattern alltoall -size 2M -iters 5
//	gridsim -impl MPICH2 -nodes 4 -pattern ring -size 64k -tcp-tuned=false
//	gridsim -impl MPICH-G2 -nodes 2 -grid -pattern pingpong -size 64M -json
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		// Usage mistakes exit 2; failures of the simulation itself exit 1
		// (the historical distinction scripts rely on).
		if errors.Is(err, errRunFailed) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

// errFlagParse marks a parse failure the FlagSet has already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("flag parsing failed")

// errRunFailed marks a failure of the simulation run, as opposed to a
// bad invocation.
var errRunFailed = errors.New("run failed")

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("gridsim", flag.ContinueOnError)
	fs.SetOutput(errOut)
	impl := fs.String("impl", mpiimpl.GridMPI, "implementation: MPICH2, GridMPI, MPICH-Madeleine, OpenMPI, MPICH-G2, TCP")
	nodes := fs.Int("nodes", 4, "nodes per site")
	grid := fs.Bool("grid", true, "span Rennes and Nancy (otherwise one cluster)")
	sitesStr := fs.String("sites", "", `explicit per-site layout, e.g. "rennes:8+nancy:4+sophia:4" (overrides -nodes/-grid)`)
	placementStr := fs.String("placement", "", "rank placement: block, round-robin, strided:<k>, master:<site> (default block)")
	pattern := fs.String("pattern", "alltoall", "pattern: pingpong, ring, alltoall, bcast, allreduce, barrier")
	sizeStr := fs.String("size", "1M", "message size (supports k/M/G suffixes)")
	iters := fs.Int("iters", 10, "pattern repetitions")
	tcpTuned := fs.Bool("tcp-tuned", true, "apply the paper's §4.2.1 TCP tuning")
	mpiTuned := fs.Bool("mpi-tuned", true, "apply the paper's §4.2.2 threshold tuning")
	budget := fs.Duration("timeout", 0, "virtual-time budget; past it the run reports DNF (0 = unlimited)")
	cacheDir := fs.String("cache", "", "persistent result-cache directory; repeated invocations serve hits from it")
	asJSON := fs.Bool("json", false, "emit the full experiment result as JSON")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse // already reported by the FlagSet
	}

	size, err := exp.ParseSize(*sizeStr)
	if err != nil {
		return fmt.Errorf("bad -size: %w", err)
	}
	if err := exp.CheckImpl(*impl); err != nil {
		return err
	}
	if *nodes < 1 {
		return fmt.Errorf("-nodes must be ≥ 1, got %d", *nodes)
	}
	if err := exp.CheckPattern(*pattern); err != nil {
		return err
	}

	topo := exp.Cluster(*nodes)
	if *grid {
		topo = exp.Grid(*nodes)
	}
	if *sitesStr != "" {
		var err error
		if topo, err = exp.ParseLayout(*sitesStr); err != nil {
			return fmt.Errorf("bad -sites: %w", err)
		}
	}
	topo.Placement = exp.Placement(*placementStr)
	if err := topo.Validate(); err != nil {
		return err
	}
	wl := exp.PatternWorkload(*pattern, size, *iters)
	wl.Timeout = *budget
	if *budget == 0 {
		wl.Timeout = -1 // gridsim's historical behavior: no budget
	}
	e := exp.Experiment{
		Impl:     *impl,
		Tuning:   exp.Tuning{TCP: *tcpTuned, MPI: *mpiTuned},
		Topology: topo,
		Workload: wl,
	}
	runner, err := exp.NewRunnerDir(1, *cacheDir)
	if err != nil {
		return err
	}
	res := runner.Run(e)
	if res.Err != "" {
		return fmt.Errorf("%w: %s", errRunFailed, res.Err)
	}

	if *asJSON {
		if err := exp.WriteJSON(out, []exp.Result{res}); err != nil {
			return err
		}
		if res.DNF {
			return fmt.Errorf("%w: DNF, budget %v exceeded", errRunFailed, *budget)
		}
		return nil
	}
	fmt.Fprintf(out, "%s, %d ranks (%s), pattern=%s size=%d iters=%d\n",
		*impl, topo.NP(), map[bool]string{true: "8.7-19.9 ms WAN", false: "one cluster"}[len(topo.Layout) > 1],
		*pattern, size, *iters)
	if res.DNF {
		fmt.Fprintf(out, "DNF: run exceeded its virtual-time budget\n")
	}
	fmt.Fprintf(out, "elapsed (virtual): %v\n", res.Elapsed)
	c := res.Census
	fmt.Fprintf(out, "census: %d p2p messages (%d bytes, %d across the WAN), rendezvous %d, unexpected %d\n",
		c.P2PSends, c.P2PBytes, c.WANSends, c.Rendezvous, c.Unexpected)
	for _, coll := range c.Collectives {
		fmt.Fprintf(out, "  collective %-12s x %d\n", coll.Op, coll.Calls)
	}
	if res.DNF {
		// An unfinished run is not a successful measurement: exit 1 so
		// scripts don't mistake the truncated census for a result.
		return fmt.Errorf("%w: DNF, budget %v exceeded", errRunFailed, *budget)
	}
	return nil
}
