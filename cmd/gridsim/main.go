// Command gridsim is a general driver for ad-hoc experiments on the
// simulated grid: pick an implementation, a tuning level, a topology and
// a communication pattern, and get timing plus the communication census.
//
// Examples:
//
//	gridsim -impl GridMPI -nodes 8 -grid -pattern alltoall -size 2M -iters 5
//	gridsim -impl MPICH2 -nodes 4 -pattern ring -size 64k -tcp-tuned=false
//	gridsim -impl MPICH-G2 -nodes 2 -grid -pattern pingpong -size 64M
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func parseSize(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	n, err := strconv.Atoi(s)
	return n * mult, err
}

func main() {
	impl := flag.String("impl", mpiimpl.GridMPI, "implementation: MPICH2, GridMPI, MPICH-Madeleine, OpenMPI, MPICH-G2, TCP")
	nodes := flag.Int("nodes", 4, "nodes per site")
	grid := flag.Bool("grid", true, "span Rennes and Nancy (otherwise one cluster)")
	pattern := flag.String("pattern", "alltoall", "pattern: pingpong, ring, alltoall, bcast, allreduce, barrier")
	sizeStr := flag.String("size", "1M", "message size (supports k/M suffixes)")
	iters := flag.Int("iters", 10, "pattern repetitions")
	tcpTuned := flag.Bool("tcp-tuned", true, "apply the paper's §4.2.1 TCP tuning")
	mpiTuned := flag.Bool("mpi-tuned", true, "apply the paper's §4.2.2 threshold tuning")
	flag.Parse()

	size, err := parseSize(*sizeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad -size:", err)
		os.Exit(2)
	}

	prof, tcp := mpiimpl.Configure(*impl, *tcpTuned, *mpiTuned)
	k := sim.New(1)
	defer k.Close()
	var net *netsim.Network
	var hosts []*netsim.Host
	if *grid {
		net = grid5000.Build(*nodes, grid5000.Rennes, grid5000.Nancy)
		hosts = append(hosts, net.SiteHosts(grid5000.Rennes)...)
		hosts = append(hosts, net.SiteHosts(grid5000.Nancy)...)
	} else {
		net = grid5000.Build(*nodes, grid5000.Rennes)
		hosts = net.SiteHosts(grid5000.Rennes)
	}
	w := mpi.NewWorld(k, net, tcp, prof, hosts)

	body, err := patternBody(*pattern, size, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elapsed, err := w.Run(body)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}

	fmt.Printf("%s, %d ranks (%s), pattern=%s size=%d iters=%d\n",
		*impl, len(hosts), map[bool]string{true: "8.7-19.9 ms WAN", false: "one cluster"}[*grid],
		*pattern, size, *iters)
	fmt.Printf("elapsed (virtual): %v\n", elapsed)
	s := w.Stats()
	fmt.Printf("census: %d p2p messages (%d bytes, %d across the WAN), rendezvous %d, unexpected %d\n",
		s.P2PSends, s.P2PBytes, s.WANSends, s.Rendezvous, s.Unexpected)
	for _, op := range s.CollOps() {
		fmt.Printf("  collective %-12s x %d\n", op, s.CollCalls(op))
	}
}

// patternBody builds the SPMD body for a named pattern.
func patternBody(pattern string, size, iters int) (func(*mpi.Rank), error) {
	switch pattern {
	case "pingpong":
		return func(r *mpi.Rank) {
			peer := r.Size() - 1
			for i := 0; i < iters; i++ {
				switch r.Rank() {
				case 0:
					r.Send(peer, i, size)
					r.Recv(peer, i)
				case peer:
					r.Recv(0, i)
					r.Send(0, i, size)
				}
			}
		}, nil
	case "ring":
		return func(r *mpi.Rank) {
			right := (r.Rank() + 1) % r.Size()
			left := (r.Rank() - 1 + r.Size()) % r.Size()
			for i := 0; i < iters; i++ {
				req := r.Isend(right, i, size)
				r.Recv(left, i)
				r.Wait(req)
			}
		}, nil
	case "alltoall":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Alltoall(size)
			}
		}, nil
	case "bcast":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Bcast(0, size)
			}
		}, nil
	case "allreduce":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Allreduce(size)
			}
		}, nil
	case "barrier":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Barrier()
			}
		}, nil
	}
	return nil, fmt.Errorf("unknown pattern %q", pattern)
}
