package main

import (
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run's output while the server goroutine
// is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunBadFlags covers rejection paths: the directory is mandatory,
// positional arguments and unknown flags are refused.
func TestRunBadFlags(t *testing.T) {
	var out, errOut syncBuffer
	for _, args := range [][]string{
		{},                             // no -cache
		{"-cache", ""},                 // explicit empty
		{"-cache", t.TempDir(), "pos"}, // positional argument
		{"-nope"},                      // unknown flag
		{"-cache", t.TempDir(), "-addr", "definitely:not:an:addr"},
	} {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunServesAndShutsDown boots the real server on an ephemeral port,
// round-trips an entry over HTTP, and exercises graceful shutdown.
func TestRunServesAndShutsDown(t *testing.T) {
	var out, errOut syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-cache", t.TempDir(), "-addr", "127.0.0.1:0", "-v"}, &out, &errOut)
	}()

	// The banner carries the bound address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address; out=%q err=%v", out.String(), errOut.String())
		}
		if s := out.String(); strings.Contains(s, "http://") {
			base = "http://" + strings.TrimSpace(strings.SplitN(s, "http://", 2)[1])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	resp.Body.Close()
	// The exp package tests cover the protocol; here just prove the
	// wired handler answers on the index route.
	resp, err = http.Get(base + "/v1/results")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("index = %v, %v", resp, err)
	}
	resp.Body.Close()

	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(errOut.String(), "shutting down") {
		t.Errorf("no shutdown notice on stderr: %q", errOut.String())
	}
	if !strings.Contains(errOut.String(), "GET /healthz") {
		t.Errorf("-v did not log requests: %q", errOut.String())
	}
}
