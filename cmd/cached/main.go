// Command cached serves a persistent experiment-result cache directory
// (an exp.DiskCache) over HTTP, turning it into the shared store of a
// cross-machine sweep: shard workers started with `sweep -shard i/n
// -cache-remote http://host:8077` pull warm entries from it and push
// fresh results back, replacing the old merge-shard-directories-by-file-
// copy workflow. One instance serves any number of concurrent workers.
//
//	cached -cache /srv/repro-cache -addr :8077
//
// Endpoints (see exp.NewCacheHandler): GET /healthz, GET /v1/results
// (fingerprint index), and GET/HEAD/PUT /v1/results/<fingerprint>.
// Every PUT is re-verified on ingest — schema generation and
// fingerprint re-hash — so a stale or foreign-generation peer cannot
// poison the store; writes are atomic and idempotent.
//
// The server is stateless beyond the directory: stop it and the
// directory remains an ordinary -cache dir (replayable, evictable,
// verifiable with gridrepro -cache-verify); restart it and the entries
// are served again.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

// errFlagParse marks a parse failure the FlagSet has already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("flag parsing failed")

// stop receives the shutdown signals; tests inject into it directly.
var stop = make(chan os.Signal, 1)

// logRequests is the -v middleware: one stderr line per request.
func logRequests(h http.Handler, errOut io.Writer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(errOut, "cached: %s %s from %s\n", r.Method, r.URL.Path, r.RemoteAddr)
		h.ServeHTTP(w, r)
	})
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("cached", flag.ContinueOnError)
	fs.SetOutput(errOut)
	dir := fs.String("cache", "", "cache directory to serve (required; created if missing)")
	addr := fs.String("addr", "127.0.0.1:8077", "listen address (host:port; port 0 picks a free one)")
	verbose := fs.Bool("v", false, "log every request to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse // already reported by the FlagSet
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "unexpected arguments: %v\n", fs.Args())
		return errFlagParse
	}
	if *dir == "" {
		return fmt.Errorf("-cache is required: the directory to serve")
	}
	store, err := exp.NewDiskCache(*dir)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	var handler http.Handler = exp.NewCacheHandler(store)
	if *verbose {
		handler = logRequests(handler, errOut)
	}
	n, err := store.Len()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cached: serving %s (%d entries) on http://%s\n", store.Dir(), n, ln.Addr())

	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		fmt.Fprintf(errOut, "cached: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
