// Command sweep expands and runs declarative experiment sweeps on the
// internal/exp engine: cross-products of implementation × tuning ×
// topology × workload execute across a bounded worker pool, with results
// rendered as an implementation × configuration matrix, CSV, or JSON.
//
// The default invocation reproduces the paper's full implementation ×
// tuning pingpong matrix (Figures 3, 6 and 7 in one command):
//
//	sweep
//	sweep -reps 200 -workers 8
//	sweep -workload npb:all -topo grid -nodes 8 -scale 0.1
//	sweep -workload pattern:alltoall -size 1M -iters 5 -format csv
//	sweep -faults "seed=7; 0s loss 0.02; 100ms jitter 2ms site=nancy"
//	sweep -guidelines -size 64k -iters 5
//
// -guidelines appends a Hunold-style self-consistency pass: the
// collective patterns run per impl × tuning × topology through the same
// cached runner, and any configuration where a specialized collective is
// slower than a composition of general ones (Allgather vs Gather+Bcast,
// Reduce vs Allreduce, ...) is reported as a violation; violations exit
// nonzero, linter-style.
//
// Results persist to a local directory (-cache) and/or a shared
// cmd/cached server (-cache-remote); -shard i/n partitions a matrix
// across machines that all point at one server, and -push/-pull sync an
// existing cache directory with a server one-shot:
//
//	sweep -shard 1/4 -cache-remote http://stately:8077
//	sweep -cache ~/.cache/sweep -cache-remote http://stately:8077 -push
//
// With a cmd/sweepd control plane the partitioning is automatic:
// -submit posts the matrix as a job and waits for the fleet, -worker
// turns the invocation into a pull-based fleet worker that leases
// cells, computes them, and publishes results through the server's
// verified store. Workers can be killed and added at any time.
//
//	sweep -submit http://stately:8078 -workload pattern:alltoall
//	sweep -worker http://stately:8078 -workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
	"repro/internal/npb"
	"repro/internal/perf"
	"repro/internal/profiling"
	"repro/internal/ray2mesh"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errFlagParse) {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(2)
	}
}

// errFlagParse marks a parse failure the FlagSet has already reported on
// stderr; main must not print it a second time.
var errFlagParse = errors.New("flag parsing failed")

// workerStop receives the worker-mode shutdown signals; tests inject
// into it directly.
var workerStop = make(chan os.Signal, 1)

func parseImpls(s string) ([]string, error) {
	switch s {
	case "all":
		return mpiimpl.WithTCP, nil
	case "mpi":
		return mpiimpl.All, nil
	}
	var impls []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := exp.CheckImpl(name); err != nil {
			return nil, err
		}
		impls = append(impls, name)
	}
	if len(impls) == 0 {
		return nil, fmt.Errorf("empty -impls")
	}
	return impls, nil
}

func parseTunings(s string) ([]exp.Tuning, error) {
	var tunings []exp.Tuning
	for _, tok := range strings.Split(s, ",") {
		switch strings.TrimSpace(tok) {
		case "default":
			tunings = append(tunings, exp.Tuning{})
		case "tcp":
			tunings = append(tunings, exp.Tuning{TCP: true})
		case "full":
			tunings = append(tunings, exp.Tuning{TCP: true, MPI: true})
		case "multilevel":
			tunings = append(tunings, exp.MultilevelTuning)
		case "":
		default:
			return nil, fmt.Errorf("unknown tuning %q (want default, tcp, full, multilevel)", tok)
		}
	}
	if len(tunings) == 0 {
		return nil, fmt.Errorf("empty -tunings")
	}
	return tunings, nil
}

func parseTopos(s string, nodes int, placement exp.Placement) ([]exp.Topology, error) {
	var topos []exp.Topology
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		var topo exp.Topology
		switch tok {
		case "grid":
			topo = exp.Grid(nodes)
		case "cluster":
			topo = exp.Cluster(2 * nodes)
		case "":
			continue
		default:
			// An explicit per-site layout, e.g. "rennes:8+nancy:4+sophia:4".
			var err error
			if topo, err = exp.ParseLayout(tok); err != nil {
				return nil, fmt.Errorf("unknown topology %q (want grid, cluster, or a site:nodes layout): %w", tok, err)
			}
		}
		topo.Placement = placement
		if err := topo.Validate(); err != nil {
			return nil, err
		}
		topos = append(topos, topo)
	}
	if len(topos) == 0 {
		return nil, fmt.Errorf("empty -topo")
	}
	return topos, nil
}

func parseWorkloads(s string, sizes []int, reps, size, iters int, scale float64) ([]exp.Workload, error) {
	kind, arg, _ := strings.Cut(s, ":")
	switch kind {
	case "pingpong":
		return []exp.Workload{exp.PingPongWorkload(sizes, reps)}, nil
	case "trace":
		return []exp.Workload{exp.TraceWorkload(size, reps)}, nil
	case "npb":
		benches := npb.Names
		if arg != "" && arg != "all" {
			benches = strings.Split(arg, ",")
		}
		var wls []exp.Workload
		for _, b := range benches {
			b = strings.TrimSpace(b)
			if err := exp.CheckBench(b); err != nil {
				return nil, err
			}
			wls = append(wls, exp.NPBWorkload(b, scale))
		}
		return wls, nil
	case "pattern":
		if arg == "" {
			return nil, fmt.Errorf("-workload pattern needs a name, e.g. pattern:alltoall")
		}
		if err := exp.CheckPattern(arg); err != nil {
			return nil, err
		}
		return []exp.Workload{exp.PatternWorkload(arg, size, iters)}, nil
	case "ray2mesh":
		masters := ray2mesh.Sites
		if arg != "" && arg != "all" {
			masters = strings.Split(arg, ",")
		}
		var wls []exp.Workload
		for _, m := range masters {
			m = strings.TrimSpace(m)
			if err := exp.CheckSite(m); err != nil {
				return nil, err
			}
			wls = append(wls, exp.Ray2MeshWorkload(m, scale))
		}
		return wls, nil
	}
	return nil, fmt.Errorf("unknown -workload %q", s)
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(errOut)
	implsStr := fs.String("impls", "all", `implementations: "all" (TCP + the four MPI), "mpi" (the four), or a comma list`)
	tuningsStr := fs.String("tunings", "default,tcp,full", "tuning levels to cross (default, tcp, full, multilevel)")
	topoStr := fs.String("topo", "grid", `topologies to cross: grid, cluster, or per-site layouts like "rennes:8+nancy:4"`)
	placementStr := fs.String("placement", "", "rank placement for every topology: block, round-robin, strided:<k>, master:<site> (default block)")
	nodes := fs.Int("nodes", 1, "nodes per site (grid) / half the cluster size")
	workloadStr := fs.String("workload", "pingpong", "workload: pingpong, trace, npb[:BENCH|:all], pattern:NAME, ray2mesh[:SITE|:all]")
	reps := fs.Int("reps", 50, "pingpong round trips per size / trace message count")
	sizeStr := fs.String("size", "1M", "message size for pattern/trace workloads (k/M/G suffixes)")
	iters := fs.Int("iters", 10, "pattern repetitions")
	scale := fs.Float64("scale", 0.1, "NPB / ray2mesh workload scale (1.0 = the paper's full size)")
	maxSizeStr := fs.String("max-size", "64M", "largest pingpong message size")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	cacheDir := fs.String("cache", "", "persistent result-cache directory (empty = in-memory only)")
	remoteURL := fs.String("cache-remote", "", "remote result-cache server URL (a cmd/cached instance); with -cache, the directory becomes its local read-through/write-behind tier")
	pushFlag := fs.Bool("push", false, "instead of sweeping, upload every -cache entry the -cache-remote server is missing, then exit")
	pullFlag := fs.Bool("pull", false, "instead of sweeping, download every -cache-remote entry missing from -cache, then exit (with -push too: pull first, then push)")
	faultsStr := fs.String("faults", "", `seeded fault plan applied to every experiment: semicolon-separated clauses "seed=N", "<time> down|up site=S|host=H", "<time> loss <p> [site=|host=]", "<time> jitter <dur> [site=|host=]" — e.g. "seed=7; 100ms down site=rennes; 300ms up site=rennes"`)
	shardStr := fs.String("shard", "", `run only shard i of n ("i/n"): a deterministic fingerprint-keyed partition of the matrix, so shards on different machines can share one -cache-remote server (or merge their -cache directories by plain file copy)`)
	submitURL := fs.String("submit", "", "submit the matrix to the cmd/sweepd control plane at this URL and wait for the fleet, rendering results like a local run")
	detach := fs.Bool("detach", false, "with -submit: print the job ID and return immediately instead of waiting")
	slicesFlag := fs.Int("slices", 0, "with -submit: lease slices to partition the job into (0 = server default)")
	workerURL := fs.String("worker", "", "run as a pull-based fleet worker against the cmd/sweepd control plane at this URL (matrix flags are ignored; the server decides what runs)")
	workerID := fs.String("worker-id", "", "worker name in leases and liveness reports (default host:pid)")
	workerPoll := fs.Duration("worker-poll", 0, "with -worker: wait between empty lease polls (0 = the interval the server advertises)")
	workerIdleExit := fs.Int("worker-idle-exit", 0, "with -worker: exit after this many consecutive empty polls (0 = poll forever)")
	retryWindow := fs.Duration("retry", exp.DefaultRetryWindow, "with -worker/-submit: retry budget for transient control-plane failures (connection refused, 5xx, timeouts), so the fleet rides through a sweepd restart; 0 fails on the first error")
	guidelines := fs.Bool("guidelines", false, "after the sweep, run the Hunold-style self-consistency guideline suite (collective patterns at -size x -iters) for every impl x tuning x topology and flag configurations where a specialized collective loses to a composition of general ones (e.g. Allgather slower than Gather+Bcast)")
	evictStr := fs.String("cache-evict", "", `age/size bound applied to -cache after the run, e.g. "720h", "512M" or "720h,512M"`)
	format := fs.String("format", "table", "output: table, csv, json")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProf := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errFlagParse // already reported by the FlagSet
	}

	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
	// -push / -pull are one-shot sync modes: no sweep runs, the local
	// -cache directory is reconciled with the -cache-remote server.
	if *pushFlag || *pullFlag {
		if *cacheDir == "" || *remoteURL == "" {
			return fmt.Errorf("-push/-pull need both -cache (the local directory) and -cache-remote (the server)")
		}
		local, err := exp.NewDiskCache(*cacheDir)
		if err != nil {
			return err
		}
		remote, err := exp.NewRemoteStore(*remoteURL, local)
		if err != nil {
			return err
		}
		failed := 0
		if *pullFlag {
			rep, err := remote.Pull()
			if err != nil {
				return fmt.Errorf("pull: %w", err)
			}
			fmt.Fprintf(out, "pull: %s\n", rep)
			failed += rep.Failed
		}
		if *pushFlag {
			rep, err := remote.Push()
			if err != nil {
				return fmt.Errorf("push: %w", err)
			}
			fmt.Fprintf(out, "push: %s\n", rep)
			failed += rep.Failed
		}
		if failed > 0 {
			return fmt.Errorf("%d entries failed to sync", failed)
		}
		return nil
	}
	// -worker is the fleet's execution side: an endless pull loop against
	// a sweepd control plane. The matrix flags are ignored — the server
	// decides what runs — but -workers sizes the local pool and -cache
	// gives the worker a warm local tier under the server store.
	if *workerURL != "" {
		if *submitURL != "" {
			return fmt.Errorf("-worker and -submit are exclusive: one invocation is either fleet muscle or the submitting client")
		}
		id := *workerID
		if id == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			id = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		client, err := exp.NewQueueClient(*workerURL)
		if err != nil {
			return err
		}
		client.Retry = exp.Backoff{Window: *retryWindow}
		runner, remote, err := exp.NewRunnerCache(*workers, *cacheDir, *workerURL)
		if err != nil {
			return err
		}
		if remote != nil {
			remote.Retry = exp.Backoff{Window: *retryWindow}
		}
		// SIGTERM/SIGINT request a graceful exit: the cell in flight
		// finishes (and reports) before the loop returns.
		stopCh := make(chan struct{})
		signal.Notify(workerStop, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(workerStop)
		go func() {
			sig := <-workerStop
			fmt.Fprintf(errOut, "worker %s: %v, finishing current cell\n", id, sig)
			close(stopCh)
		}()
		fmt.Fprintf(errOut, "worker %s: polling %s (%d-worker pool)\n", id, *workerURL, runner.Workers())
		rep := client.Work(exp.WorkerConfig{
			ID:       id,
			Runner:   runner,
			Poll:     *workerPoll,
			IdleExit: *workerIdleExit,
			Stop:     stopCh,
			Log:      errOut,
		})
		fmt.Fprintln(out, rep)
		if rep.Errors > 0 || rep.Rejected > 0 {
			return fmt.Errorf("worker finished degraded: %d transport errors, %d rejected reports", rep.Errors, rep.Rejected)
		}
		return nil
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(errOut, err)
		}
	}()
	if *nodes < 1 {
		return fmt.Errorf("-nodes must be ≥ 1, got %d", *nodes)
	}
	size, err := exp.ParseSize(*sizeStr)
	if err != nil {
		return fmt.Errorf("bad -size: %w", err)
	}
	maxSize, err := exp.ParseSize(*maxSizeStr)
	if err != nil {
		return fmt.Errorf("bad -max-size: %w", err)
	}
	shard := exp.Shard{}
	if *shardStr != "" {
		if shard, err = exp.ParseShard(*shardStr); err != nil {
			return err
		}
	}
	var evict exp.EvictPolicy
	if *evictStr != "" {
		if *cacheDir == "" {
			return fmt.Errorf("-cache-evict needs -cache")
		}
		if evict, err = exp.ParseEvictPolicy(*evictStr); err != nil {
			return err
		}
	}
	impls, err := parseImpls(*implsStr)
	if err != nil {
		return err
	}
	tunings, err := parseTunings(*tuningsStr)
	if err != nil {
		return err
	}
	topos, err := parseTopos(*topoStr, *nodes, exp.Placement(*placementStr))
	if err != nil {
		return err
	}
	sizes := perf.PowersOfTwoSizes(1<<10, maxSize)
	workloads, err := parseWorkloads(*workloadStr, sizes, *reps, size, *iters, *scale)
	if err != nil {
		return err
	}

	// ray2mesh defaults to its fixed four-site testbed. An explicitly
	// chosen -topo is honored (per-site layouts run for real since the
	// Topology redesign); only the untouched default collapses to the
	// canonical description, so matrix labels and cache fingerprints
	// always reflect the run that actually happens. The application
	// places its own master, so a -placement cannot be honored.
	if strings.HasPrefix(*workloadStr, "ray2mesh") {
		if *placementStr != "" {
			return fmt.Errorf("ray2mesh places its own master (the workload's site); -placement cannot be honored")
		}
		topoSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "topo" {
				topoSet = true
			}
		})
		if !topoSet {
			topos = []exp.Topology{exp.Ray2MeshTopology()}
		}
	}
	faults, err := exp.ParseFaultPlan(*faultsStr)
	if err != nil {
		return err
	}
	if *guidelines && faults != nil {
		// A guideline compares an implementation against itself on a
		// healthy network; under a fault plan a violation would indict the
		// faults, not the collective algorithm.
		return fmt.Errorf("-guidelines assumes a healthy network; drop -faults")
	}
	sweep := exp.Sweep{Impls: impls, Tunings: tunings, Topologies: topos, Workloads: workloads}
	all := sweep.Experiments()
	// Faults apply before sharding: the partition keys on the faulted
	// fingerprints, so every shard of a faulted matrix agrees on ownership.
	if faults != nil {
		for i := range all {
			all[i].Faults = faults
		}
	}
	// -submit hands the whole matrix to a sweepd control plane instead of
	// running it here: the server partitions and leases it to the worker
	// fleet, this invocation waits and then pulls every cell back through
	// the verified read path, rendering exactly like a local run.
	if *submitURL != "" {
		if !shard.IsAll() {
			return fmt.Errorf("-shard does not combine with -submit: the control plane partitions the matrix itself")
		}
		if *guidelines {
			return fmt.Errorf("-guidelines is a local post-processor; drop -submit")
		}
		return submit(out, errOut, *submitURL, all, *slicesFlag, *detach, *format, *workloadStr, *retryWindow)
	}
	exps := shard.Select(all)
	runner, remote, err := exp.NewRunnerCache(*workers, *cacheDir, *remoteURL)
	if err != nil {
		return err
	}
	start := time.Now()
	results := runner.RunAll(exps)
	wall := time.Since(start)

	switch *format {
	case "json":
		if err := exp.WriteJSON(out, results); err != nil {
			return err
		}
	case "csv":
		if err := exp.WriteCSV(out, results); err != nil {
			return err
		}
	default:
		title := fmt.Sprintf("Sweep: %d experiments (%s workload)", len(results), *workloadStr)
		if !shard.IsAll() {
			title = fmt.Sprintf("Sweep shard %s: %d of %d experiments (%s workload)",
				shard, len(results), sweep.Size(), *workloadStr)
		}
		fmt.Fprintln(out, exp.MatrixTable(title, results))
		fmt.Fprintf(out, "%d experiments, %d workers, wall time %v\n",
			len(results), runner.Workers(), wall.Round(time.Millisecond))
	}
	// The guideline suite is a post-processor: its pattern cells run
	// through the same runner (so they hit the same cache tiers), whole
	// rather than sharded — verdicts need every pattern of a configuration
	// on one machine.
	guidelineViolations := 0
	if *guidelines {
		suite := exp.GuidelineSuite(impls, tunings, topos, exp.DefaultGuidelines, size, *iters)
		gres := runner.RunAll(suite)
		results = append(results, gres...)
		guidelineViolations = exp.WriteGuidelineReport(out, gres,
			exp.DefaultGuidelines, exp.DefaultGuidelineTolerance)
	}
	if *cacheDir != "" || *remoteURL != "" {
		stats := runner.CacheStats()
		// With a remote store the backing tier is not (only) local disk.
		source := "from disk"
		if remote != nil {
			source = "from store"
		}
		fmt.Fprintf(errOut, "cache: %d computed, %d %s, %d from memory\n",
			stats.Computed, stats.Disk, source, stats.Memory)
	}
	if remote != nil {
		fmt.Fprintln(errOut, remote.Stats())
	}
	if evict != (exp.EvictPolicy{}) {
		rep, err := exp.EvictDir(*cacheDir, evict)
		if err != nil {
			return fmt.Errorf("cache eviction: %w", err)
		}
		fmt.Fprintln(errOut, rep)
	}
	// Failed cells render as ERR/err fields above; surface the reason and
	// exit nonzero so scripts don't take a broken sweep as a measurement.
	var failed []exp.Result
	for _, r := range results {
		if r.Err != "" {
			failed = append(failed, r)
		}
	}
	if len(failed) > 0 {
		for _, r := range failed {
			fmt.Fprintf(errOut, "failed: %s: %s\n", r.Exp.Name(), r.Err)
		}
		return fmt.Errorf("%d of %d experiments failed", len(failed), len(results))
	}
	// Like a linter, guideline violations exit nonzero (after the report
	// has been printed) so scripts can gate on self-consistency.
	if guidelineViolations > 0 {
		return fmt.Errorf("%d guideline violations", guidelineViolations)
	}
	return nil
}

// submit is the -submit mode: post the matrix as one job, wait for the
// fleet (progress on stderr), pull the finished cells back in submission
// order, and render them like a local run. Failed cells have no stored
// result; they are reported on stderr and fail the invocation, mirroring
// the local failed-experiment exit path.
func submit(out, errOut io.Writer, url string, cells []exp.Experiment, slices int, detach bool, format, workload string, retry time.Duration) error {
	client, err := exp.NewQueueClient(url)
	if err != nil {
		return err
	}
	// The retry window is what lets a waiting submitter survive a sweepd
	// restart: the journaled queue comes back still holding the job.
	client.Retry = exp.Backoff{Window: retry}
	client.Log = errOut
	st, err := client.Submit(cells, slices)
	if err != nil {
		return err
	}
	fmt.Fprintf(errOut, "job %s: %d cells submitted, %d already cached\n", st.ID, st.Total, st.Cached)
	if detach {
		// The job ID is the machine-readable output; progress lives at
		// GET /v1/jobs/<id> and /statusz.
		fmt.Fprintln(out, st.ID)
		return nil
	}
	start := time.Now()
	last := ""
	final, err := client.WaitJob(st.ID, time.Second, func(s exp.JobStatus) {
		line := fmt.Sprintf("job %s: %d/%d done, %d leased, %d queued, %d failed, %d workers",
			s.ID, s.Done, s.Total, s.Leased, s.Queued, s.Failed, len(s.Workers))
		if line != last {
			fmt.Fprintln(errOut, line)
			last = line
		}
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	// Pull every finished cell through the same verified read path the
	// workers published through; order is the submission order, so the
	// rendering is byte-identical to a local run of the same matrix.
	store, err := exp.NewRemoteStore(url, nil)
	if err != nil {
		return err
	}
	store.Retry = exp.Backoff{Window: retry}
	results := make([]exp.Result, 0, len(cells))
	for _, e := range cells {
		if res, ok := store.Load(e.Fingerprint()); ok {
			results = append(results, res)
		}
	}
	switch format {
	case "json":
		if err := exp.WriteJSON(out, results); err != nil {
			return err
		}
	case "csv":
		if err := exp.WriteCSV(out, results); err != nil {
			return err
		}
	default:
		title := fmt.Sprintf("Sweep job %s: %d experiments (%s workload)", st.ID, len(results), workload)
		fmt.Fprintln(out, exp.MatrixTable(title, results))
		fmt.Fprintf(out, "%d experiments, %d computed by the fleet, %d cached, wall time %v\n",
			len(results), final.Computed, final.Cached, wall.Round(time.Millisecond))
	}
	if final.Failed > 0 {
		for _, f := range final.Failures {
			fmt.Fprintf(errOut, "failed: %s: %s\n", f.Name, f.Err)
		}
		return fmt.Errorf("%d of %d cells failed", final.Failed, final.Total)
	}
	return nil
}
