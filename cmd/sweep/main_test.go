package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exp"
)

// tinyArgs is a fast two-implementation, two-tuning pingpong matrix.
var tinyArgs = []string{
	"-impls", "TCP,GridMPI", "-tunings", "default,tcp",
	"-reps", "3", "-max-size", "64k", "-workers", "4",
}

// TestRunSmokeTable: flag parsing plus one tiny end-to-end parallel sweep
// rendered as a matrix.
func TestRunSmokeTable(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(tinyArgs, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"impl", "TCP", "GridMPI", "default", "tcp-tuned", "4 experiments, 4 workers"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
}

// TestRunJSONDeterministic: the JSON output of a parallel sweep is stable
// across runs and identical to a sequential one.
func TestRunJSONDeterministic(t *testing.T) {
	render := func(workers string) string {
		var out, errOut strings.Builder
		args := append([]string{"-format", "json", "-workers", workers}, tinyArgs[:len(tinyArgs)-2]...)
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	seq := render("1")
	par := render("8")
	if seq != par {
		t.Fatal("sequential and parallel sweep JSON differ")
	}
	var results []exp.Result
	if err := json.Unmarshal([]byte(seq), &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
}

// TestRunCSV covers the CSV output path.
func TestRunCSV(t *testing.T) {
	var out, errOut strings.Builder
	args := append([]string{"-format", "csv"}, tinyArgs...)
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d, want header + 4 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "fingerprint,impl,tuning") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestRunPaperMatrixShape: the default invocation covers the full
// implementation × tuning matrix of the paper (5 × 3), just at reduced
// sampling for test speed.
func TestRunPaperMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 15-experiment matrix in -short mode")
	}
	var out, errOut strings.Builder
	if err := run([]string{"-reps", "3", "-max-size", "1M"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, impl := range []string{"TCP", "MPICH2", "GridMPI", "MPICH-Madeleine", "OpenMPI"} {
		if !strings.Contains(got, impl) {
			t.Errorf("matrix missing implementation %q", impl)
		}
	}
	for _, col := range []string{"default", "tcp-tuned", "fully-tuned"} {
		if !strings.Contains(got, col) {
			t.Errorf("matrix missing tuning column %q", col)
		}
	}
	if !strings.Contains(got, "15 experiments") {
		t.Errorf("expected 15 experiments:\n%s", got)
	}
}

// TestRunBadFlags covers rejection paths.
func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-tunings", "bogus"},
		{"-topo", "mesh"},
		{"-topo", "rennes:0"},
		{"-placement", "scatter"},
		{"-impls", "LAM/MPI"},
		{"-shard", "0/2"},
		{"-shard", "3/2"},
		{"-shard", "x"},
		{"-cache-evict", "720h"}, // needs -cache
		{"-cache-evict", "nonsense", "-cache", "cachedir"},
		{"-faults", "1s frobnicate site=rennes"},
		{"-faults", "20ms down site=rennes; 120ms up site=rennes", "-workload", "ray2mesh:rennes"},
		{"-format", "xml", "-impls", "TCP", "-tunings", "default", "-reps", "1", "-max-size", "1k"},
		{"-guidelines", "-faults", "0s loss 0.02"}, // guidelines need a healthy network
	} {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunGuidelines: -guidelines appends the self-consistency report
// after the sweep, runs its pattern cells through the same cache, and
// stays deterministic across worker counts.
func TestRunGuidelines(t *testing.T) {
	render := func(workers string) string {
		var out, errOut strings.Builder
		args := []string{"-impls", "TCP,MPICH2", "-tunings", "default",
			"-reps", "2", "-max-size", "4k", "-size", "4k", "-iters", "2",
			"-guidelines", "-workers", workers}
		if err := run(args, &out, &errOut); err != nil {
			// Guideline violations exit nonzero by design; anything else
			// is a real failure.
			if !strings.Contains(err.Error(), "guideline violation") {
				t.Fatalf("run: %v", err)
			}
		}
		// Only the guideline section: the sweep table above it names the
		// worker count.
		_, report, ok := strings.Cut(out.String(), "Guidelines:")
		if !ok {
			t.Fatalf("no guideline report in output:\n%s", out.String())
		}
		return report
	}
	got := render("4")
	if !strings.Contains(got, "8 rules x 2 configurations") {
		t.Errorf("guideline report header missing:\n%s", got)
	}
	if !strings.Contains(got, "self-consistent") && !strings.Contains(got, "VIOLATION") {
		t.Errorf("guideline report carries no verdict:\n%s", got)
	}
	if seq := render("1"); seq != got {
		t.Errorf("guideline output differs between 1 and 4 workers:\n%s\nvs\n%s", seq, got)
	}
}

// faultSpec is the tiny seeded plan the fault tests share: a 100ms
// rennes-uplink outage over 2% background loss.
const faultSpec = "seed=7; 20ms down site=rennes; 120ms up site=rennes; 0s loss 0.02"

// TestRunFaultsDeterministicAndCacheable is the fault-smoke CI contract in
// miniature: a seeded faulted sweep is worker-count independent, replays
// bit-for-bit from the disk cache, and keys that cache on the plan — a
// healthy run must never be served a faulted cell.
func TestRunFaultsDeterministicAndCacheable(t *testing.T) {
	dir := t.TempDir()
	render := func(extra ...string) (string, string) {
		var out, errOut strings.Builder
		args := append(append([]string{"-format", "json", "-faults", faultSpec}, extra...),
			tinyArgs[:len(tinyArgs)-2]...) // tinyArgs minus its -workers pair
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run %v: %v\n%s", extra, err, errOut.String())
		}
		return out.String(), errOut.String()
	}
	seq, _ := render("-workers", "1", "-cache", dir)
	par, _ := render("-workers", "8")
	if seq != par {
		t.Fatal("faulted sweep differs between 1 and 8 workers")
	}
	replay, replayErr := render("-workers", "8", "-cache", dir)
	if replay != seq {
		t.Fatal("cached faulted replay rendered different JSON")
	}
	if !strings.Contains(replayErr, "0 computed, 4 from disk") {
		t.Errorf("faulted replay recomputed cells: %s", replayErr)
	}
	if !strings.Contains(seq, "fault_link_stalls") {
		t.Error("faulted sweep JSON carries no degraded-mode metrics")
	}

	var out, errOut strings.Builder
	if err := run(append([]string{"-format", "json", "-cache", dir}, tinyArgs...), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "4 computed, 0 from disk") {
		t.Errorf("healthy run was served faulted cache entries: %s", errOut.String())
	}
	if strings.Contains(out.String(), "fault_") {
		t.Error("healthy sweep JSON reports fault metrics")
	}
}

// TestRunShardsPartitionAndMerge: two -shard runs split the matrix
// disjointly; merging their cache directories by file copy lets the
// unsharded run replay every cell from disk with output identical to a
// cacheless run.
func TestRunShardsPartitionAndMerge(t *testing.T) {
	merged := t.TempDir()
	totalRows := 0
	for _, shard := range []string{"1/2", "2/2"} {
		dir := t.TempDir()
		var out, errOut strings.Builder
		args := append([]string{"-format", "csv", "-shard", shard, "-cache", dir}, tinyArgs...)
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("shard %s: %v", shard, err)
		}
		totalRows += len(strings.Split(strings.TrimSpace(out.String()), "\n")) - 1
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(merged, e.Name()), blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if totalRows != 4 {
		t.Fatalf("shards produced %d rows in total, want the full 4-cell matrix", totalRows)
	}

	render := func(extra ...string) (string, string) {
		var out, errOut strings.Builder
		if err := run(append(append([]string{"-format", "json"}, extra...), tinyArgs...), &out, &errOut); err != nil {
			t.Fatal(err)
		}
		return out.String(), errOut.String()
	}
	mergedOut, mergedErr := render("-cache", merged)
	directOut, _ := render()
	if mergedOut != directOut {
		t.Error("merged-shard replay differs from the direct run")
	}
	if !strings.Contains(mergedErr, "0 computed, 4 from disk") {
		t.Errorf("merged replay recomputed cells: %s", mergedErr)
	}
}

// newCacheServer starts an in-process cached server over a fresh
// DiskCache directory.
func newCacheServer(t *testing.T) *httptest.Server {
	t.Helper()
	store, err := exp.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(exp.NewCacheHandler(store))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunRemoteCache: shard runs publish to one cached server; a replay
// through the same server recomputes nothing and renders output
// identical to a serverless run.
func TestRunRemoteCache(t *testing.T) {
	srv := newCacheServer(t)
	for _, shard := range []string{"1/2", "2/2"} {
		var out, errOut strings.Builder
		args := append([]string{"-format", "json", "-shard", shard, "-cache-remote", srv.URL}, tinyArgs...)
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("shard %s: %v\n%s", shard, err, errOut.String())
		}
		if !strings.Contains(errOut.String(), "pushed") {
			t.Errorf("shard %s reported no remote stats: %s", shard, errOut.String())
		}
	}
	var remoteOut, remoteErr strings.Builder
	if err := run(append([]string{"-format", "json", "-cache-remote", srv.URL}, tinyArgs...), &remoteOut, &remoteErr); err != nil {
		t.Fatalf("remote replay: %v\n%s", err, remoteErr.String())
	}
	var directOut, directErr strings.Builder
	if err := run(append([]string{"-format", "json"}, tinyArgs...), &directOut, &directErr); err != nil {
		t.Fatal(err)
	}
	if remoteOut.String() != directOut.String() {
		t.Error("remote replay differs from the direct run")
	}
	if !strings.Contains(remoteErr.String(), "cache: 0 computed") {
		t.Errorf("remote replay recomputed cells: %s", remoteErr.String())
	}
	if !strings.Contains(remoteErr.String(), "remote: 4 hits") {
		t.Errorf("remote replay not served remotely: %s", remoteErr.String())
	}
}

// TestRunPushPull: the one-shot sync modes move a warmed -cache
// directory through a server into a fresh one, which then replays the
// sweep without recomputing.
func TestRunPushPull(t *testing.T) {
	srv := newCacheServer(t)
	warmed := t.TempDir()
	var out, errOut strings.Builder
	if err := run(append([]string{"-cache", warmed}, tinyArgs...), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-cache", warmed, "-cache-remote", srv.URL, "-push"}, &out, &errOut); err != nil {
		t.Fatalf("push: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "push: 4 entries scanned: 4 transferred") {
		t.Errorf("push report: %s", out.String())
	}
	pulled := t.TempDir()
	out.Reset()
	if err := run([]string{"-cache", pulled, "-cache-remote", srv.URL, "-pull"}, &out, &errOut); err != nil {
		t.Fatalf("pull: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "pull: 4 entries scanned: 4 transferred") {
		t.Errorf("pull report: %s", out.String())
	}
	var replayOut, replayErr strings.Builder
	if err := run(append([]string{"-cache", pulled}, tinyArgs...), &replayOut, &replayErr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(replayErr.String(), "0 computed, 4 from disk") {
		t.Errorf("pulled directory did not serve the replay: %s", replayErr.String())
	}

	// Sync modes need both sides named.
	for _, args := range [][]string{
		{"-push"},
		{"-pull", "-cache", warmed},
		{"-push", "-cache-remote", srv.URL},
	} {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunCacheEvict: -cache-evict reports an eviction pass on stderr; a
// generous age bound removes nothing.
func TestRunCacheEvict(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	args := append([]string{"-cache", dir, "-cache-evict", "24h"}, tinyArgs...)
	if err := run(args, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "cache evict: removed 0 of 4 entries") {
		t.Errorf("eviction summary missing: %s", errOut.String())
	}
}

// TestRunRay2MeshTopologies: the default collapses to the canonical
// four-site testbed; an explicit -topo layout is honored, not silently
// replaced; -placement cannot be honored at all.
func TestRunRay2MeshTopologies(t *testing.T) {
	var out, errOut strings.Builder
	// CSV output: the topology column always shows the testbed that ran.
	base := []string{"-format", "csv", "-impls", "MPICH2", "-tunings", "tcp", "-workload", "ray2mesh:rennes", "-scale", "0.01"}
	if err := run(append([]string{"-topo", "rennes:1+nancy:1"}, base...), &out, &errOut); err != nil {
		t.Fatalf("explicit ray2mesh layout: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "rennes+nancy x1") {
		t.Errorf("explicit layout not honored:\n%s", out.String())
	}
	out.Reset()
	if err := run(base, &out, &errOut); err != nil {
		t.Fatalf("default ray2mesh: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "nancy+rennes+sophia+toulouse x8") {
		t.Errorf("default did not collapse to the canonical testbed:\n%s", out.String())
	}
	if err := run(append([]string{"-placement", "round-robin"}, base...), &out, &errOut); err == nil {
		t.Error("-placement with ray2mesh accepted")
	}
}

// TestRunAsymmetricTopology: a per-site -topo layout runs end to end.
func TestRunAsymmetricTopology(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{"-impls", "GridMPI", "-tunings", "tcp", "-topo", "rennes:2+nancy:1+sophia:1",
		"-workload", "pattern:bcast", "-size", "4k", "-iters", "2"}
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v\n%s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "rennes:2+nancy:1+sophia:1") && !strings.Contains(out.String(), "1 experiments") {
		t.Errorf("asymmetric sweep output:\n%s", out.String())
	}
}

// TestRunCachePersists: a second invocation against the same -cache
// directory recomputes nothing and renders identical output.
func TestRunCachePersists(t *testing.T) {
	dir := t.TempDir()
	render := func() (string, string) {
		var out, errOut strings.Builder
		args := append([]string{"-format", "json", "-cache", dir}, tinyArgs...)
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String(), errOut.String()
	}
	first, firstErr := render()
	if !strings.Contains(firstErr, "4 computed, 0 from disk") {
		t.Errorf("first run cache summary: %s", firstErr)
	}
	second, secondErr := render()
	if first != second {
		t.Fatal("cached rerun rendered different JSON")
	}
	if !strings.Contains(secondErr, "0 computed, 4 from disk") {
		t.Errorf("second run recomputed cells: %s", secondErr)
	}
}

// newSweepdServer starts an in-process sweepd control plane (job queue
// over a fresh store) for fleet tests.
func newSweepdServer(t *testing.T) *httptest.Server {
	t.Helper()
	store, err := exp.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := exp.NewJobQueue(store, exp.QueueConfig{TTL: 30 * time.Second, Slices: 4})
	srv := httptest.NewServer(exp.NewQueueHandler(q, exp.NewCacheServer(store)))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunFleetSubmitMatchesLocal: -submit against a sweepd with one
// -worker invocation produces output byte-identical to a local run of
// the same matrix, and resubmission computes nothing.
func TestRunFleetSubmitMatchesLocal(t *testing.T) {
	srv := newSweepdServer(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var workerOut, workerErr strings.Builder
		args := []string{"-worker", srv.URL, "-worker-id", "w1",
			"-worker-poll", "10ms", "-worker-idle-exit", "300", "-workers", "2"}
		if err := run(args, &workerOut, &workerErr); err != nil {
			t.Errorf("worker: %v\n%s", err, workerErr.String())
		}
	}()

	var fleetOut, fleetErr strings.Builder
	if err := run(append([]string{"-submit", srv.URL, "-format", "json"}, tinyArgs...), &fleetOut, &fleetErr); err != nil {
		t.Fatalf("submit: %v\n%s", err, fleetErr.String())
	}
	var directOut, directErr strings.Builder
	if err := run(append([]string{"-format", "json"}, tinyArgs...), &directOut, &directErr); err != nil {
		t.Fatalf("direct: %v", err)
	}
	if fleetOut.String() != directOut.String() {
		t.Errorf("fleet output differs from the local run:\nfleet:  %s\ndirect: %s",
			fleetOut.String(), directOut.String())
	}

	// Resubmission: the store already holds every cell, so the job is
	// done on arrival — same bytes, nothing computed, no worker needed.
	var reOut, reErr strings.Builder
	if err := run(append([]string{"-submit", srv.URL, "-format", "json"}, tinyArgs...), &reOut, &reErr); err != nil {
		t.Fatalf("resubmit: %v\n%s", err, reErr.String())
	}
	if reOut.String() != directOut.String() {
		t.Error("resubmitted job renders different bytes")
	}
	if !strings.Contains(reErr.String(), "4 already cached") {
		t.Errorf("resubmission recomputed cells: %s", reErr.String())
	}
	wg.Wait()
}

// TestRunFleetDetachAndBadCombos: -detach prints the job ID and
// returns; the fleet flags refuse contradictory combinations.
func TestRunFleetDetachAndBadCombos(t *testing.T) {
	srv := newSweepdServer(t)
	var out, errOut strings.Builder
	if err := run(append([]string{"-submit", srv.URL, "-detach"}, tinyArgs...), &out, &errOut); err != nil {
		t.Fatalf("detach submit: %v", err)
	}
	if id := strings.TrimSpace(out.String()); !regexp.MustCompile(`^j[0-9]{4,}$`).MatchString(id) {
		t.Errorf("-detach printed %q, want a bare job ID", id)
	}
	for _, args := range [][]string{
		{"-submit", srv.URL, "-worker", srv.URL},
		{"-submit", srv.URL, "-shard", "1/2"},
		{"-submit", srv.URL, "-guidelines"},
		{"-submit", "not-a-url"},
		{"-worker", "not-a-url"},
	} {
		var out, errOut strings.Builder
		if err := run(append(append([]string{}, args...), tinyArgs...), &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunPushPartialFailureExitsNonzero: a server that 422s entries
// mid-sync must surface in the report line and fail the invocation.
func TestRunPushPartialFailureExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if err := run(append([]string{"-cache", dir}, tinyArgs...), &out, &errOut); err != nil {
		t.Fatalf("warm-up sweep: %v", err)
	}

	// A store whose ingest rejects every other PUT.
	store, err := exp.NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := exp.NewCacheHandler(store)
	var mu sync.Mutex
	puts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			mu.Lock()
			puts++
			reject := puts%2 == 0
			mu.Unlock()
			if reject {
				http.Error(w, "synthetic ingest refusal", http.StatusUnprocessableEntity)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var pushOut, pushErr strings.Builder
	err = run([]string{"-cache", dir, "-cache-remote", srv.URL, "-push"}, &pushOut, &pushErr)
	if err == nil || !strings.Contains(err.Error(), "failed to sync") {
		t.Fatalf("partial-failure push returned %v, want a failed-to-sync error", err)
	}
	if !strings.Contains(pushOut.String(), "2 failed") {
		t.Errorf("push report hides the failures: %q", pushOut.String())
	}
}
