package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/exp"
)

// tinyArgs is a fast two-implementation, two-tuning pingpong matrix.
var tinyArgs = []string{
	"-impls", "TCP,GridMPI", "-tunings", "default,tcp",
	"-reps", "3", "-max-size", "64k", "-workers", "4",
}

// TestRunSmokeTable: flag parsing plus one tiny end-to-end parallel sweep
// rendered as a matrix.
func TestRunSmokeTable(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(tinyArgs, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"impl", "TCP", "GridMPI", "default", "tcp-tuned", "4 experiments, 4 workers"} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
}

// TestRunJSONDeterministic: the JSON output of a parallel sweep is stable
// across runs and identical to a sequential one.
func TestRunJSONDeterministic(t *testing.T) {
	render := func(workers string) string {
		var out, errOut strings.Builder
		args := append([]string{"-format", "json", "-workers", workers}, tinyArgs[:len(tinyArgs)-2]...)
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	seq := render("1")
	par := render("8")
	if seq != par {
		t.Fatal("sequential and parallel sweep JSON differ")
	}
	var results []exp.Result
	if err := json.Unmarshal([]byte(seq), &results); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
}

// TestRunCSV covers the CSV output path.
func TestRunCSV(t *testing.T) {
	var out, errOut strings.Builder
	args := append([]string{"-format", "csv"}, tinyArgs...)
	if err := run(args, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV lines = %d, want header + 4 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "fingerprint,impl,tuning") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

// TestRunPaperMatrixShape: the default invocation covers the full
// implementation × tuning matrix of the paper (5 × 3), just at reduced
// sampling for test speed.
func TestRunPaperMatrixShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 15-experiment matrix in -short mode")
	}
	var out, errOut strings.Builder
	if err := run([]string{"-reps", "3", "-max-size", "1M"}, &out, &errOut); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, impl := range []string{"TCP", "MPICH2", "GridMPI", "MPICH-Madeleine", "OpenMPI"} {
		if !strings.Contains(got, impl) {
			t.Errorf("matrix missing implementation %q", impl)
		}
	}
	for _, col := range []string{"default", "tcp-tuned", "fully-tuned"} {
		if !strings.Contains(got, col) {
			t.Errorf("matrix missing tuning column %q", col)
		}
	}
	if !strings.Contains(got, "15 experiments") {
		t.Errorf("expected 15 experiments:\n%s", got)
	}
}

// TestRunBadFlags covers rejection paths.
func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	for _, args := range [][]string{
		{"-workload", "nope"},
		{"-tunings", "bogus"},
		{"-topo", "mesh"},
		{"-impls", "LAM/MPI"},
		{"-format", "xml", "-impls", "TCP", "-tunings", "default", "-reps", "1", "-max-size", "1k"},
	} {
		if err := run(args, &out, &errOut); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunCachePersists: a second invocation against the same -cache
// directory recomputes nothing and renders identical output.
func TestRunCachePersists(t *testing.T) {
	dir := t.TempDir()
	render := func() (string, string) {
		var out, errOut strings.Builder
		args := append([]string{"-format", "json", "-cache", dir}, tinyArgs...)
		if err := run(args, &out, &errOut); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String(), errOut.String()
	}
	first, firstErr := render()
	if !strings.Contains(firstErr, "4 computed, 0 from disk") {
		t.Errorf("first run cache summary: %s", firstErr)
	}
	second, secondErr := render()
	if first != second {
		t.Fatal("cached rerun rendered different JSON")
	}
	if !strings.Contains(secondErr, "0 computed, 4 from disk") {
		t.Errorf("second run recomputed cells: %s", secondErr)
	}
}
