#!/usr/bin/env bash
# bench.sh — run the kernel/sweep benchmarks and emit one normalized JSON
# snapshot (ns/op, B/op, allocs/op per benchmark) for the repository's
# BENCH trajectory (see BENCH_PR4.json for the recorded before/after of
# the kernel fast-path PR).
#
# Usage:
#   scripts/bench.sh [out.json]          # default stdout; raw `go test` output goes to stderr
#
# Environment:
#   BENCH_PATTERN  benchmarks to run (default: the kernel + sweep set)
#   BENCHTIME      -benchtime value   (default: 2s)
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-/dev/stdout}
pattern=${BENCH_PATTERN:-'BenchmarkKernelEvents|BenchmarkSweepPaperMatrix|BenchmarkSweepSequential|BenchmarkSweepCacheHit'}
benchtime=${BENCHTIME:-2s}

raw=$(go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" -count 1 .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
                           -v stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns     = $(i-1)
        if ($i == "B/op")      bytes  = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    line = sprintf("    \"%s\": {\"ns_per_op\": %s", name, ns)
    if (bytes  != "") line = line sprintf(", \"b_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    rows[n++] = line "}"
}
END {
    printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"benchmarks\": {\n", commit, stamp
    for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
    printf "  }\n}\n"
}' > "$out"
