#!/usr/bin/env bash
# bench_check.sh — CI regression gate for the committed BENCH trajectory.
#
# Compares a fresh benchmark run against the "after" block of the newest
# committed BENCH_PR*.json and fails when either tracked metric regresses
# more than TOLERANCE (default 10%):
#
#   - KernelEvents ns/op   (best of 3, the kernel's pure event-loop cost)
#   - SweepPaperMatrix allocs/op  (the end-to-end allocation lock; allocs
#     are deterministic, so 3 iterations amortize warmup without noise)
#
# Wall-clock of the full sweep is deliberately NOT gated: shared CI
# runners are too noisy for a 10% time bound on a 150ms benchmark, while
# the tight KernelEvents loop and the allocation count are stable.
#
# Usage:
#   scripts/bench_check.sh
#
# Environment:
#   TOLERANCE  allowed regression factor (default 1.10)
set -euo pipefail
cd "$(dirname "$0")/.."

tolerance=${TOLERANCE:-1.10}

baseline=$(ls BENCH_PR*.json | sort -V | tail -1)
if [[ -z "$baseline" ]]; then
    echo "bench_check: no BENCH_PR*.json baseline committed" >&2
    exit 1
fi

# read_after FILE KEY FIELD: pull one numeric field of one benchmark out
# of the baseline's "after" block (the committed snapshot format is
# frozen: one benchmark per line, see scripts/bench.sh).
read_after() {
    awk -v key="$2" -v field="$3" '
        /"after"/ { in_after = 1 }
        in_after && $0 ~ "\"" key "\"" {
            if (match($0, "\"" field "\": *[0-9.]+")) {
                v = substr($0, RSTART, RLENGTH)
                sub(/.*: */, "", v)
                print v
                exit
            }
        }' "$1"
}

base_kernel_ns=$(read_after "$baseline" KernelEvents ns_per_op)
base_sweep_allocs=$(read_after "$baseline" SweepPaperMatrix allocs_per_op)
if [[ -z "$base_kernel_ns" || -z "$base_sweep_allocs" ]]; then
    echo "bench_check: could not parse KernelEvents/SweepPaperMatrix from $baseline" >&2
    exit 1
fi

# bench_field PATTERN BENCHTIME COUNT UNIT: run a benchmark and print the
# smallest observed value of the metric next to UNIT in `go test` output.
bench_field() {
    go test -run '^$' -bench "$1" -benchmem -benchtime "$2" -count "$3" . |
        awk -v unit="$4" '
            /^Benchmark/ {
                for (i = 2; i <= NF; i++)
                    if ($i == unit && (best == "" || $(i-1) + 0 < best + 0))
                        best = $(i-1)
            }
            END {
                if (best == "") exit 1
                print best
            }'
}

kernel_ns=$(bench_field 'BenchmarkKernelEvents$' 1s 3 ns/op)
sweep_allocs=$(bench_field 'BenchmarkSweepPaperMatrix$' 3x 1 allocs/op)

status=0
check() { # NAME FRESH BASE
    if awk -v fresh="$2" -v base="$3" -v tol="$tolerance" \
           'BEGIN { exit !(fresh + 0 > base * tol) }'; then
        echo "bench_check: REGRESSION $1: $2 vs baseline $3 (tolerance x$tolerance, $baseline)" >&2
        status=1
    else
        echo "bench_check: ok $1: $2 vs baseline $3 ($baseline)"
    fi
}
check "KernelEvents ns/op" "$kernel_ns" "$base_kernel_ns"
check "SweepPaperMatrix allocs/op" "$sweep_allocs" "$base_sweep_allocs"
exit $status
