// Package repro's benchmarks regenerate every table and figure of the
// paper under `go test -bench`, reporting each experiment's headline
// metric so regressions in the reproduction are visible in benchmark
// output. One benchmark corresponds to one paper artifact. All paper
// artifacts are produced through the internal/exp experiment engine
// (directly or via internal/core's figure constructors), so these also
// benchmark the engine's scheduling and caching.
package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
	"repro/internal/perf"
	"repro/internal/sim"
)

// benchReps keeps pingpong benchmarks quick while preserving shapes.
const benchReps = 50

// benchScale is the NPB workload fraction used by the NAS benchmarks.
const benchScale = 0.1

func maxMbps(pts []perf.Point) float64 {
	best := 0.0
	for _, p := range pts {
		if p.Mbps > best {
			best = p.Mbps
		}
	}
	return best
}

func BenchmarkTable1Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.Table1()) != 4 {
			b.Fatal("feature matrix broken")
		}
	}
}

func BenchmarkTable2Census(b *testing.B) {
	var rows []core.CensusRow
	for i := 0; i < b.N; i++ {
		rows = core.Table2(exp.NewRunner(0), 0.05)
	}
	b.ReportMetric(float64(rows[3].P2PSends), "LU-msgs")
}

func BenchmarkTable4Latency(b *testing.B) {
	var rows []core.LatencyRow
	for i := 0; i < b.N; i++ {
		rows = core.Table4(exp.NewRunner(0), benchReps)
	}
	for _, r := range rows {
		if r.Impl == mpiimpl.MPICH2 {
			b.ReportMetric(float64(r.Grid)/float64(time.Microsecond), "grid-us")
			b.ReportMetric(float64(r.Cluster)/float64(time.Microsecond), "cluster-us")
		}
	}
}

func BenchmarkFigure3GridDefaults(b *testing.B) {
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure3(exp.NewRunner(0), benchReps)
	}
	b.ReportMetric(maxMbps(fig.Get(mpiimpl.RawTCP)), "tcp-max-Mbps")
	b.ReportMetric(maxMbps(fig.Get(mpiimpl.GridMPI)), "gridmpi-max-Mbps")
}

func BenchmarkFigure5ClusterDefaults(b *testing.B) {
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure5(exp.NewRunner(0), benchReps)
	}
	b.ReportMetric(maxMbps(fig.Get(mpiimpl.RawTCP)), "tcp-max-Mbps")
}

func BenchmarkFigure6GridTCPTuned(b *testing.B) {
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure6(exp.NewRunner(0), benchReps)
	}
	b.ReportMetric(maxMbps(fig.Get(mpiimpl.MPICH2)), "mpich2-max-Mbps")
	b.ReportMetric(fig.At(mpiimpl.MPICH2, 512<<10), "mpich2-512k-Mbps")
}

func BenchmarkFigure7FullyTuned(b *testing.B) {
	var fig core.Figure
	for i := 0; i < b.N; i++ {
		fig = core.Figure7(exp.NewRunner(0), benchReps)
	}
	b.ReportMetric(fig.At(mpiimpl.MPICH2, 64<<20), "mpich2-64M-Mbps")
	b.ReportMetric(fig.At(mpiimpl.OpenMPI, 64<<20), "openmpi-64M-Mbps")
}

func BenchmarkTable5Thresholds(b *testing.B) {
	var rows []core.ThresholdRow
	for i := 0; i < b.N; i++ {
		rows = core.Table5(exp.NewRunner(0), 5)
	}
	if rows[0].Grid != "65 MB" {
		b.Fatalf("MPICH2 ideal = %s", rows[0].Grid)
	}
}

func BenchmarkFigure9SlowStart(b *testing.B) {
	var traces []core.Trace
	for i := 0; i < b.N; i++ {
		traces = core.Figure9(exp.NewRunner(0), 200)
	}
	for _, tr := range traces {
		switch tr.Label {
		case mpiimpl.GridMPI:
			b.ReportMetric(perf.TimeTo(tr.Points, 450).Seconds(), "gridmpi-ramp-s")
		case mpiimpl.MPICH2:
			b.ReportMetric(perf.TimeTo(tr.Points, 450).Seconds(), "mpich2-ramp-s")
		}
	}
}

func BenchmarkFigure10ImplComparison(b *testing.B) {
	var fig core.NASFigure
	for i := 0; i < b.N; i++ {
		fig = core.Figure10(exp.NewRunner(0), benchScale)
	}
	ft, _ := fig.At("FT", mpiimpl.GridMPI)
	b.ReportMetric(ft, "gridmpi-FT-rel")
	if _, dnf := fig.At("BT", mpiimpl.Madeleine); !dnf {
		b.Fatal("expected Madeleine BT DNF")
	}
}

func BenchmarkFigure11SmallComparison(b *testing.B) {
	var fig core.NASFigure
	for i := 0; i < b.N; i++ {
		fig = core.Figure11(exp.NewRunner(0), benchScale)
	}
	ft, _ := fig.At("FT", mpiimpl.GridMPI)
	b.ReportMetric(ft, "gridmpi-FT-rel")
}

func BenchmarkFigure12GridVsCluster(b *testing.B) {
	var fig core.NASFigure
	for i := 0; i < b.N; i++ {
		fig = core.Figure12(exp.NewRunner(0), benchScale)
	}
	cg, _ := fig.At("CG", mpiimpl.GridMPI)
	lu, _ := fig.At("LU", mpiimpl.GridMPI)
	b.ReportMetric(cg, "CG-rel")
	b.ReportMetric(lu, "LU-rel")
}

func BenchmarkFigure13GridSpeedup(b *testing.B) {
	var fig core.NASFigure
	for i := 0; i < b.N; i++ {
		fig = core.Figure13(exp.NewRunner(0), benchScale)
	}
	lu, _ := fig.At("LU", mpiimpl.GridMPI)
	cg, _ := fig.At("CG", mpiimpl.GridMPI)
	b.ReportMetric(lu, "LU-speedup")
	b.ReportMetric(cg, "CG-speedup")
}

func BenchmarkTable6RayDistribution(b *testing.B) {
	var tab core.RayTable6
	for i := 0; i < b.N; i++ {
		tab = core.Table6(exp.NewRunner(0), 0.25)
	}
	b.ReportMetric(tab.Rays[grid5000.Sophia][grid5000.Sophia], "sophia-rays-per-node")
}

func BenchmarkTable7RayTimes(b *testing.B) {
	var tab core.RayTable7
	for i := 0; i < b.N; i++ {
		tab = core.Table7(exp.NewRunner(0), 0.25)
	}
	b.ReportMetric(tab.Total[grid5000.Rennes].Seconds(), "total-s")
}

// BenchmarkSweepPaperMatrix measures the cmd/sweep default: the paper's
// full 5-implementation × 3-tuning pingpong matrix through the parallel
// experiment Runner (one worker per CPU).
func BenchmarkSweepPaperMatrix(b *testing.B) {
	var results []exp.Result
	for i := 0; i < b.N; i++ {
		results = exp.NewRunner(0).RunSweep(exp.PaperMatrix(benchReps))
		for _, r := range results {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(results)), "experiments")
	b.ReportMetric(results[len(results)-1].MaxMbps(), "openmpi-tuned-max-Mbps")
}

// BenchmarkSweepSequential is the same matrix on one worker — the
// baseline the parallel Runner is measured against.
func BenchmarkSweepSequential(b *testing.B) {
	var results []exp.Result
	for i := 0; i < b.N; i++ {
		results = exp.NewRunner(1).RunSweep(exp.PaperMatrix(benchReps))
		for _, r := range results {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
	}
	b.ReportMetric(float64(len(results)), "experiments")
}

// BenchmarkSweepCacheHit measures the Runner's fingerprint cache: the
// matrix re-run through a warm runner costs lookups, not simulations.
func BenchmarkSweepCacheHit(b *testing.B) {
	runner := exp.NewRunner(0)
	exps := exp.PaperMatrix(benchReps).Experiments()
	runner.RunAll(exps) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := runner.RunAll(exps)
		if !results[0].Cached {
			b.Fatal("cache miss on warm runner")
		}
	}
}

// BenchmarkKernelEvents measures the raw event throughput of the
// simulation kernel (not a paper artifact; a performance baseline for the
// harness itself).
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.New(1)
	defer k.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		k.Run()
	}
}
