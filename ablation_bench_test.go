package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// isolates one mechanism of the model (pacing, congestion-control flavour,
// grid-aware collectives, parallel streams, socket buffers) and reports
// the performance difference it is responsible for.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/npb"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// BenchmarkAblationPacing isolates GridMPI's TCP pacing: time for the
// per-message bandwidth of 1 MB WAN pingpongs to reach 450 Mbps, paced vs
// unpaced, all else equal.
func BenchmarkAblationPacing(b *testing.B) {
	ramp := func(paced bool) time.Duration {
		prof := mpi.Reference()
		prof.EagerThreshold = mpi.Infinite
		prof.Pacing = paced
		k := sim.New(1)
		defer k.Close()
		net := grid5000.RennesNancy(1)
		hosts := []*netsim.Host{net.Host("rennes-1"), net.Host("nancy-1")}
		w := mpi.NewWorld(k, net, tcpsim.Tuned4MB(), prof, hosts)
		trace, err := perf.BandwidthTrace(w, 1<<20, 200)
		if err != nil {
			b.Fatal(err)
		}
		return perf.TimeTo(trace, 450)
	}
	var paced, unpaced time.Duration
	for i := 0; i < b.N; i++ {
		paced, unpaced = ramp(true), ramp(false)
	}
	b.ReportMetric(paced.Seconds(), "paced-ramp-s")
	b.ReportMetric(unpaced.Seconds(), "unpaced-ramp-s")
}

// BenchmarkAblationCongestionControl compares BIC and Reno window growth
// on the tuned WAN (the model's congestion-avoidance flavour).
func BenchmarkAblationCongestionControl(b *testing.B) {
	transfer := func(cc string) time.Duration {
		k, net := sim.New(1), grid5000.RennesNancy(1)
		defer k.Close()
		cfg := tcpsim.Tuned4MB()
		cfg.Congestion = cc
		f := tcpsim.NewFlow(k, net.Path(net.Host("rennes-1"), net.Host("nancy-1")), cfg, tcpsim.Autotune)
		var done sim.Time
		k.Go("s", func(p *sim.Proc) {
			f.Send(p, 64<<20, func() { done = k.Now() })
		})
		k.Run()
		return done
	}
	var bic, reno time.Duration
	for i := 0; i < b.N; i++ {
		bic, reno = transfer("bic"), transfer("reno")
	}
	b.ReportMetric(bic.Seconds(), "bic-64M-s")
	b.ReportMetric(reno.Seconds(), "reno-64M-s")
}

// BenchmarkAblationGridCollectives isolates GridMPI's grid-aware
// broadcast/allreduce: FT time on the 8+8 grid with and without them,
// pacing held constant.
func BenchmarkAblationGridCollectives(b *testing.B) {
	run := func(gridColl bool) time.Duration {
		prof, tcp := mpiimpl.Configure(mpiimpl.GridMPI, true, false)
		prof.GridBcast = gridColl
		prof.GridAllreduce = gridColl
		k := sim.New(1)
		defer k.Close()
		net := grid5000.RennesNancy(8)
		var hosts []*netsim.Host
		hosts = append(hosts, net.SiteHosts(grid5000.Rennes)...)
		hosts = append(hosts, net.SiteHosts(grid5000.Nancy)...)
		w := mpi.NewWorld(k, net, tcp, prof, hosts)
		spec := npb.Get("FT")
		elapsed, err := w.Run(func(r *mpi.Rank) {
			spec.Run(r, npb.Params{NP: 16, Scale: 0.2})
		})
		if err != nil {
			b.Fatal(err)
		}
		return elapsed
	}
	var with, without time.Duration
	for i := 0; i < b.N; i++ {
		with, without = run(true), run(false)
	}
	b.ReportMetric(with.Seconds(), "grid-coll-FT-s")
	b.ReportMetric(without.Seconds(), "binomial-FT-s")
}

// BenchmarkExtensionParallelStreams measures the MPICH-G2 future-work
// experiment: striped large messages on an untuned WAN.
func BenchmarkExtensionParallelStreams(b *testing.B) {
	var pts []core.StreamsPoint
	for i := 0; i < b.N; i++ {
		pts = core.ExtensionMPICHG2(exp.NewRunner(0), 10)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.MPICHG2Mbps/last.MPICH2Mbps, "stream-gain-64M")
}

// BenchmarkAblationBufferSweep reports the window-limit crossover of
// §4.2.1 as a sweep over explicit socket-buffer sizes.
func BenchmarkAblationBufferSweep(b *testing.B) {
	var pts []core.BufferPoint
	for i := 0; i < b.N; i++ {
		pts = core.BufferSweep(exp.NewRunner(0), 10)
	}
	b.ReportMetric(pts[0].Mbps, "64kB-Mbps")
	b.ReportMetric(pts[len(pts)-1].Mbps, "8MB-Mbps")
}

// BenchmarkAblationEagerThreshold isolates the §4.2.2 tuning on MPICH2:
// 512 kB WAN message latency with the default 256 kB threshold
// (rendezvous) vs the tuned 65 MB threshold (eager), as a two-point
// threshold axis on the experiment engine.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	sweep := exp.Sweep{
		Impls:           []string{mpiimpl.MPICH2},
		Tunings:         []exp.Tuning{{TCP: true}},
		Topologies:      []exp.Topology{exp.Grid(1)},
		Workloads:       []exp.Workload{exp.PingPongWorkload([]int{512 << 10}, 20)},
		EagerThresholds: []int{256 << 10, 65 << 20},
	}
	var rndv, eager time.Duration
	for i := 0; i < b.N; i++ {
		results := exp.NewRunner(0).RunSweep(sweep)
		for _, r := range results {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
		rndv, eager = results[0].Points[0].OneWay(), results[1].Points[0].OneWay()
	}
	b.ReportMetric(rndv.Seconds()*1e3, "rndv-512k-ms")
	b.ReportMetric(eager.Seconds()*1e3, "eager-512k-ms")
}
