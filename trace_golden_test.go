package repro

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
	"repro/internal/sim"
)

var updateTrace = flag.Bool("update-trace", false, "rewrite testdata/event_order.golden from the current kernel")

// traceExperiments is the canonical mixed workload of the event-order
// determinism lock: a pingpong, a collective pattern and the ray2mesh
// application, all on a 3-site asymmetric layout. Together they exercise
// every scheduling path of the kernel: timer events, same-instant
// wakeups (Signal, Queue, Mutex, proc transfers), rendezvous handshakes,
// striped/fragmented sends and the self-scheduler's AnySource matching.
func traceExperiments() []exp.Experiment {
	asym := exp.Asym(
		exp.Site(grid5000.Rennes, 2),
		exp.Site(grid5000.Nancy, 1),
		exp.Site(grid5000.Sophia, 1),
	)
	return []exp.Experiment{
		{
			Impl:     mpiimpl.MPICH2,
			Tuning:   exp.Tuning{TCP: true},
			Topology: asym,
			Workload: exp.PingPongWorkload([]int{1 << 10, 64 << 10, 1 << 20, 8 << 20}, 3),
		},
		{
			Impl:     mpiimpl.OpenMPI,
			Topology: asym,
			Workload: exp.PatternWorkload("alltoall", 256<<10, 2),
		},
		{
			// MPICH-G2 stripes large WAN messages over parallel flows,
			// covering the multi-flow scheduling paths.
			Impl:     mpiimpl.MPICHG2,
			Tuning:   exp.Tuning{TCP: true, MPI: true},
			Topology: asym,
			Workload: exp.PatternWorkload("bcast", 2<<20, 1),
		},
		{
			Impl:     mpiimpl.GridMPI,
			Tuning:   exp.Tuning{TCP: true},
			Topology: asym,
			Workload: exp.Ray2MeshWorkload(grid5000.Rennes, 0.02),
		},
	}
}

// TestEventOrderTrace replays the committed (time, seq) execution stream
// of the canonical mixed workload. The golden was recorded on the
// pre-fast-path kernel (container/heap of *event, double-rendezvous
// handoff), so any reordering introduced by a kernel optimization —
// including a changed seq assignment — fails this test byte-exactly at
// the first diverging event. Regenerate only for a deliberate semantic
// change, with -update-trace.
func TestEventOrderTrace(t *testing.T) {
	var buf bytes.Buffer
	sim.NewHook = func(k *sim.Kernel) {
		k.SetTracer(func(at sim.Time, seq uint64) {
			fmt.Fprintf(&buf, "%d %d\n", int64(at), seq)
		})
	}
	defer func() { sim.NewHook = nil }()

	for _, e := range traceExperiments() {
		fmt.Fprintf(&buf, "# %s\n", e.Name())
		res := exp.Run(e)
		if res.Err != "" {
			t.Fatalf("%s: %s", e.Name(), res.Err)
		}
		if res.DNF {
			t.Fatalf("%s: did not finish", e.Name())
		}
		fmt.Fprintf(&buf, "= elapsed %d\n", int64(res.Elapsed))
	}

	golden := filepath.Join("testdata", "event_order.golden")
	if *updateTrace {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d bytes, %d lines", golden, buf.Len(), bytes.Count(buf.Bytes(), []byte("\n")))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (generate with -update-trace): %v", err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("event order diverged at line %d:\n  got  %q\n  want %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("event stream length changed: got %d lines, want %d", len(gotLines), len(wantLines))
}
