// Quickstart: build a two-cluster grid, open an MPI world on it, and
// measure a pingpong — the smallest end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpiimpl"
	"repro/internal/perf"
)

func main() {
	// A 2-rank MPICH2 world across the Rennes–Nancy WAN with stock
	// Linux sysctls.
	k, w := core.NewPingPongWorld(mpiimpl.MPICH2, false, false, core.Grid)
	defer k.Close()

	sizes := perf.PowersOfTwoSizes(1<<10, 4<<20)
	points, err := perf.PingPong(w, sizes, 50)
	if err != nil {
		panic(err)
	}

	fmt.Println("MPICH2 pingpong across an 11.6 ms WAN, default parameters:")
	for _, p := range points {
		fmt.Printf("  %8d B  rtt=%-12v  %7.1f Mbps\n", p.Size, p.MinRTT, p.Mbps)
	}
	fmt.Println()
	fmt.Println("Note the ceiling around 100-120 Mbps: the default socket buffers")
	fmt.Println("cannot cover the bandwidth-delay product. See examples/tuning for")
	fmt.Println("the fix the paper develops in §4.2.")
}
