// Collectives compares a topology-unaware broadcast (MPICH2's binomial
// tree) with GridMPI's grid-aware van de Geijn broadcast on 8+8 nodes
// across a WAN — the mechanism behind FT's large speedup in Figure 10.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func bcastTime(impl string, n int) time.Duration {
	prof, tcp := mpiimpl.Configure(impl, true, false)
	k := sim.New(1)
	defer k.Close()
	net := grid5000.RennesNancy(8)
	var hosts []*netsim.Host
	hosts = append(hosts, net.SiteHosts(grid5000.Rennes)...)
	hosts = append(hosts, net.SiteHosts(grid5000.Nancy)...)
	w := mpi.NewWorld(k, net, tcp, prof, hosts)
	elapsed, err := w.Run(func(r *mpi.Rank) {
		for i := 0; i < 5; i++ { // repeat so TCP windows open
			r.Bcast(0, n)
		}
	})
	if err != nil {
		panic(err)
	}
	return elapsed / 5
}

func main() {
	fmt.Println("Broadcast on 8+8 nodes across an 11.6 ms WAN (mean of 5):")
	fmt.Println()
	for _, n := range []int{64 << 10, 1 << 20, 8 << 20, 32 << 20} {
		mp := bcastTime(mpiimpl.MPICH2, n)
		gm := bcastTime(mpiimpl.GridMPI, n)
		fmt.Printf("  %8d kB: MPICH2 (binomial) %10v   GridMPI (grid-aware) %10v   speedup %.1fx\n",
			n>>10, mp.Round(time.Microsecond), gm.Round(time.Microsecond),
			float64(mp)/float64(gm))
	}
	fmt.Println()
	fmt.Println("GridMPI scatters the payload inside the root cluster, ships the chunks")
	fmt.Println("over parallel node-to-node WAN connections, and allgathers locally.")
}
