// Tuning walks through the paper's §4.2 story on one implementation:
// default configuration, TCP buffer tuning, and eager/rendezvous
// threshold tuning, measuring a 16 MB WAN transfer at each step.
//
//	go run ./examples/tuning
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpiimpl"
	"repro/internal/perf"
)

func measure(tcpTuned, mpiTuned bool) (float64, float64) {
	k, w := core.NewPingPongWorld(mpiimpl.MPICH2, tcpTuned, mpiTuned, core.Grid)
	defer k.Close()
	pts, err := perf.PingPong(w, []int{512 << 10, 16 << 20}, 50)
	if err != nil {
		panic(err)
	}
	return pts[0].Mbps, pts[1].Mbps
}

func main() {
	fmt.Println("MPICH2 on the Rennes-Nancy WAN (11.6 ms RTT), 512 kB and 16 MB messages:")
	fmt.Println()

	at512k, at16M := measure(false, false)
	fmt.Printf("1. defaults:                  512 kB: %6.1f Mbps   16 MB: %6.1f Mbps\n", at512k, at16M)
	fmt.Println("   (windows capped by rmem_max/tcp_rmem: the paper's Figure 3)")

	at512k, at16M = measure(true, false)
	fmt.Printf("2. + 4 MB socket buffers:     512 kB: %6.1f Mbps   16 MB: %6.1f Mbps\n", at512k, at16M)
	fmt.Println("   (line rate recovered for big messages, but 512 kB still pays a")
	fmt.Println("    rendezvous round trip: the Figure 6 threshold artifact)")

	at512k, at16M = measure(true, true)
	fmt.Printf("3. + eager threshold 65 MB:   512 kB: %6.1f Mbps   16 MB: %6.1f Mbps\n", at512k, at16M)
	fmt.Println("   (the fully tuned Figure 7 configuration)")
}
