// NPB runs one NAS benchmark skeleton on a simulated grid and prints its
// communication census and cluster-vs-grid timing — a small version of
// what cmd/npbrun does for all of Figures 10-13.
//
//	go run ./examples/npb [-bench CG] [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mpiimpl"
	"repro/internal/npb"
)

func main() {
	bench := flag.String("bench", "CG", "benchmark: EP CG MG LU SP BT IS FT")
	scale := flag.Float64("scale", 0.2, "fraction of class-B iterations")
	flag.Parse()

	cluster := npb.Run(npb.Job{
		Bench: *bench, Impl: mpiimpl.GridMPI, NP: 16,
		Placement: npb.SingleCluster, Scale: *scale,
	})
	grid := npb.Run(npb.Job{
		Bench: *bench, Impl: mpiimpl.GridMPI, NP: 16,
		Placement: npb.TwoClusters, Scale: *scale,
	})
	for _, res := range []npb.Result{cluster, grid} {
		if res.Err != "" {
			fmt.Fprintln(os.Stderr, res.Err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s (class B skeleton, 16 ranks, scale %.2f) with GridMPI:\n\n", *bench, *scale)
	fmt.Printf("  16 nodes, one cluster:      %v\n", cluster.Elapsed)
	fmt.Printf("  8+8 nodes across the WAN:   %v\n", grid.Elapsed)
	fmt.Printf("  relative grid performance:  %.2f\n\n", cluster.Elapsed.Seconds()/grid.Elapsed.Seconds())

	s := grid.Stats
	fmt.Printf("communication census: %d point-to-point messages, %d bytes (%d across the WAN)\n",
		s.P2PSends, s.P2PBytes, s.WANSends)
	for _, sc := range s.SizeCensus() {
		fmt.Printf("  %9d B  x %d\n", sc.Size, sc.Count)
	}
	for _, op := range s.CollOps() {
		fmt.Printf("  collective %-10s x %d\n", op, s.CollCalls(op))
	}
}
