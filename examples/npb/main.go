// NPB runs one NAS benchmark skeleton on a simulated grid and prints its
// communication census and cluster-vs-grid timing — a small version of
// what cmd/npbrun does for all of Figures 10-13.
//
// Both runs flow through the exp engine (the single execution front
// door): the cluster placement is exp.Cluster(np), the grid placement an
// even split across Rennes and Nancy via exp.EvenSplit.
//
//	go run ./examples/npb [-bench CG] [-np 16] [-scale 0.2]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
)

func main() {
	bench := flag.String("bench", "CG", "benchmark: EP CG MG LU SP BT IS FT")
	np := flag.Int("np", 16, "rank count (must split evenly across the two grid sites)")
	scale := flag.Float64("scale", 0.2, "fraction of class-B iterations")
	flag.Parse()

	if err := exp.CheckBench(*bench); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gridTopo, err := exp.EvenSplit(*np, grid5000.Rennes, grid5000.Nancy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// NPB always runs at the paper's §4.2 TCP tuning (the study tunes
	// first, then runs the applications).
	experiment := func(topo exp.Topology) exp.Experiment {
		return exp.Experiment{
			Impl:     mpiimpl.GridMPI,
			Tuning:   exp.Tuning{TCP: true},
			Topology: topo,
			Workload: exp.NPBWorkload(*bench, *scale),
		}
	}
	r := exp.NewRunner(0)
	results := r.RunAll([]exp.Experiment{
		experiment(exp.Cluster(*np)),
		experiment(gridTopo),
	})
	for _, res := range results {
		if res.Err != "" {
			fmt.Fprintln(os.Stderr, res.Err)
			os.Exit(1)
		}
	}
	cluster, grid := results[0], results[1]

	fmt.Printf("%s (class B skeleton, %d ranks, scale %.2f) with GridMPI:\n\n", *bench, *np, *scale)
	fmt.Printf("  %d nodes, one cluster:      %v\n", *np, cluster.Elapsed)
	fmt.Printf("  %d+%d nodes across the WAN:   %v\n", *np/2, *np/2, grid.Elapsed)
	fmt.Printf("  relative grid performance:  %.2f\n\n", cluster.Elapsed.Seconds()/grid.Elapsed.Seconds())

	c := grid.Census
	fmt.Printf("communication census: %d point-to-point messages, %d bytes (%d across the WAN)\n",
		c.P2PSends, c.P2PBytes, c.WANSends)
	for _, sc := range c.Sizes {
		fmt.Printf("  %9d B  x %d\n", sc.Size, sc.Count)
	}
	for _, coll := range c.Collectives {
		fmt.Printf("  collective %-10s x %d\n", coll.Op, coll.Calls)
	}
}
