package netsim

import (
	"testing"
	"time"
)

const gbps = 125e6 // 1 Gbit/s in bytes/s

func buildTwoSites(t *testing.T) *Network {
	t.Helper()
	n := New()
	n.AddSite("rennes", 2, 1.0, gbps, 20*time.Microsecond)
	n.AddSite("nancy", 2, 0.9, gbps, 20*time.Microsecond)
	n.SetUplink("rennes", 10*gbps)
	n.SetUplink("nancy", 10*gbps)
	n.ConnectSites("rennes", "nancy", 5800*time.Microsecond)
	return n
}

func TestIntraSitePath(t *testing.T) {
	n := buildTwoSites(t)
	a, b := n.Host("rennes-1"), n.Host("rennes-2")
	p := n.Path(a, b)
	if p.OneWay != 20*time.Microsecond {
		t.Fatalf("intra OWD = %v", p.OneWay)
	}
	if len(p.Links) != 2 {
		t.Fatalf("intra path crosses %d links, want 2 (NICs only)", len(p.Links))
	}
	if p.Bottleneck() != gbps {
		t.Fatalf("bottleneck = %v, want 1 Gbps", p.Bottleneck())
	}
}

func TestInterSitePathCrossesUplinks(t *testing.T) {
	n := buildTwoSites(t)
	p := n.Path(n.Host("rennes-1"), n.Host("nancy-2"))
	if p.OneWay != 5800*time.Microsecond {
		t.Fatalf("WAN OWD = %v", p.OneWay)
	}
	if len(p.Links) != 4 {
		t.Fatalf("WAN path crosses %d links, want 4 (nic+2 uplinks+nic)", len(p.Links))
	}
	if p.RTT() != 11600*time.Microsecond {
		t.Fatalf("RTT = %v, want 11.6ms", p.RTT())
	}
}

func TestPathsAreDirectionalAndComplete(t *testing.T) {
	n := buildTwoSites(t)
	hosts := n.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			p := n.Path(a, b)
			if p.Src != a || p.Dst != b {
				t.Fatalf("path %v has wrong endpoints", p)
			}
		}
	}
}

func TestLinkFairShare(t *testing.T) {
	l := &Link{Name: "wan", Rate: 1000}
	if l.Share() != 1000 {
		t.Fatalf("idle share = %v", l.Share())
	}
	l.Acquire()
	if l.Share() != 1000 {
		t.Fatalf("single-flow share = %v, want full rate", l.Share())
	}
	l.Acquire()
	l.Acquire()
	l.Acquire()
	if l.Share() != 250 {
		t.Fatalf("4-flow share = %v, want 250", l.Share())
	}
	for i := 0; i < 4; i++ {
		l.Release()
	}
	if l.Active() != 0 {
		t.Fatalf("active = %d after releases", l.Active())
	}
}

func TestReleaseIdleLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release on idle link did not panic")
		}
	}()
	(&Link{Name: "x", Rate: 1}).Release()
}

func TestPathShareRateIsBottleneck(t *testing.T) {
	nicA := &Link{Name: "a", Rate: gbps}
	wan := &Link{Name: "wan", Rate: 10 * gbps}
	nicB := &Link{Name: "b", Rate: gbps}
	p := &Path{Links: []*Link{nicA, wan, nicB}}
	p.Acquire()
	if got := p.ShareRate(); got != gbps {
		t.Fatalf("share = %v, want NIC-limited 1 Gbps", got)
	}
	// Nine more flows on the WAN link: WAN share (10G/10 = 1G) ties the NIC;
	// one more makes the WAN the bottleneck.
	for i := 0; i < 10; i++ {
		wan.Acquire()
	}
	if got := p.ShareRate(); got >= gbps {
		t.Fatalf("share = %v, want < 1 Gbps under WAN contention", got)
	}
	p.Release()
}

func TestSiteQueries(t *testing.T) {
	n := buildTwoSites(t)
	if got := len(n.SiteHosts("rennes")); got != 2 {
		t.Fatalf("rennes hosts = %d", got)
	}
	sites := n.Sites()
	if len(sites) != 2 || sites[0] != "nancy" || sites[1] != "rennes" {
		t.Fatalf("sites = %v", sites)
	}
	if !SameSite(n.Host("rennes-1"), n.Host("rennes-2")) {
		t.Fatal("SameSite false for same-site hosts")
	}
	if SameSite(n.Host("rennes-1"), n.Host("nancy-1")) {
		t.Fatal("SameSite true across sites")
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddHost did not panic")
		}
	}()
	n := New()
	n.AddHost("x", "s", 1, gbps)
	n.AddHost("x", "s", 1, gbps)
}

func TestLoopbackPath(t *testing.T) {
	n := New()
	a := n.AddHost("a", "s", 1, gbps)
	p := n.Path(a, a)
	if p.OneWay != LoopbackDelay {
		t.Fatalf("loopback delay = %v", p.OneWay)
	}
	if p.Bottleneck() != LoopbackRate {
		t.Fatalf("loopback rate = %v", p.Bottleneck())
	}
	if n.Path(a, a) != p {
		t.Fatal("loopback path not cached")
	}
}

func TestFullDuplexNICs(t *testing.T) {
	n := buildTwoSites(t)
	fwd := n.Path(n.Host("rennes-1"), n.Host("nancy-1"))
	rev := n.Path(n.Host("nancy-1"), n.Host("rennes-1"))
	for _, lf := range fwd.Links {
		for _, lr := range rev.Links {
			if lf == lr {
				t.Fatalf("directions share link %s; NICs and uplinks must be full duplex", lf.Name)
			}
		}
	}
}

func TestMissingPathPanics(t *testing.T) {
	n := New()
	a := n.AddHost("a", "s1", 1, gbps)
	b := n.AddHost("b", "s2", 1, gbps)
	defer func() {
		if recover() == nil {
			t.Fatal("Path between unconnected hosts did not panic")
		}
	}()
	n.Path(a, b)
}

func TestSetDownEvictsAndVoidsRegistrations(t *testing.T) {
	l := &Link{Name: "wan", Rate: 1000}
	gen := l.Gen()
	l.Acquire()
	l.Acquire()
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("link not down after SetDown(true)")
	}
	if l.Active() != 0 {
		t.Fatalf("active = %d after SetDown, want 0 (flows evicted)", l.Active())
	}
	// The two holders release with their stale generation: both no-ops, no
	// panic — that is the fault-teardown path the ISSUE's Release bug is
	// about.
	l.ReleaseGen(gen)
	l.ReleaseGen(gen)
	if l.Active() != 0 {
		t.Fatalf("active = %d after stale releases", l.Active())
	}
	// A genuine double release with a current generation still panics.
	l.SetDown(false)
	l.Acquire()
	l.ReleaseGen(l.Gen())
	defer func() {
		if recover() == nil {
			t.Fatal("genuine double ReleaseGen did not panic")
		}
	}()
	l.ReleaseGen(l.Gen())
}

func TestNotifyUp(t *testing.T) {
	l := &Link{Name: "wan", Rate: 1000}
	ran := 0
	l.NotifyUp(func() { ran++ })
	if ran != 1 {
		t.Fatalf("NotifyUp on an up link ran %d times, want immediate call", ran)
	}
	l.SetDown(true)
	l.NotifyUp(func() { ran += 10 })
	l.NotifyUp(func() { ran += 100 })
	if ran != 1 {
		t.Fatal("callbacks ran while the link was down")
	}
	l.SetDown(false)
	if ran != 111 {
		t.Fatalf("ran = %d after SetDown(false), want both callbacks fired once", ran)
	}
	l.SetDown(false) // idempotent: nothing left to fire
	if ran != 111 {
		t.Fatalf("ran = %d after redundant SetDown(false)", ran)
	}
}

func TestPathNotifyUpWaitsForAllLinks(t *testing.T) {
	a := &Link{Name: "a", Rate: 1000}
	b := &Link{Name: "b", Rate: 1000}
	p := &Path{Links: []*Link{a, b}}
	a.SetDown(true)
	b.SetDown(true)
	if !p.Down() {
		t.Fatal("path not down with both links down")
	}
	ran := false
	p.NotifyUp(func() { ran = true })
	a.SetDown(false)
	if ran {
		t.Fatal("path callback fired with one link still down")
	}
	b.SetDown(false)
	if !ran {
		t.Fatal("path callback did not fire after full recovery")
	}
}

func TestAcquireReleaseGens(t *testing.T) {
	a := &Link{Name: "a", Rate: 1000}
	b := &Link{Name: "b", Rate: 1000}
	p := &Path{Links: []*Link{a, b}}
	gens := p.AcquireGens(nil)
	if len(gens) != 2 {
		t.Fatalf("len(gens) = %d, want 2", len(gens))
	}
	// b dies mid-hold; releasing must decrement a and skip b.
	b.SetDown(true)
	p.ReleaseGens(gens)
	if a.Active() != 0 || b.Active() != 0 {
		t.Fatalf("active = %d,%d after mixed release", a.Active(), b.Active())
	}
}

func TestPathExtraLossAndJitter(t *testing.T) {
	a := &Link{Name: "a", Rate: 1000}
	b := &Link{Name: "b", Rate: 1000}
	p := &Path{Links: []*Link{a, b}}
	if p.ExtraLoss() != 0 || p.Jitter() != 0 {
		t.Fatal("clean path reports injected faults")
	}
	a.SetExtraLoss(0.5)
	b.SetExtraLoss(0.5)
	if got := p.ExtraLoss(); got != 0.75 {
		t.Fatalf("combined loss = %v, want 0.75 (1-(1-0.5)^2)", got)
	}
	a.SetJitter(2 * time.Millisecond)
	b.SetJitter(1 * time.Millisecond)
	if got := p.Jitter(); got != 3*time.Millisecond {
		t.Fatalf("summed jitter = %v, want 3ms", got)
	}
}

func TestNetworkUplink(t *testing.T) {
	n := buildTwoSites(t)
	out, in, ok := n.Uplink("rennes")
	if !ok || out == nil || in == nil {
		t.Fatal("rennes uplink not found")
	}
	if out.Name != "rennes:uplink-out" || in.Name != "rennes:uplink-in" {
		t.Fatalf("uplink names = %s, %s", out.Name, in.Name)
	}
	if _, _, ok := n.Uplink("sophia"); ok {
		t.Fatal("nonexistent site reported an uplink")
	}
}
