// Package netsim models the physical network of a computational grid:
// hosts with NICs, shared links, and host-to-host paths with one-way delay
// and a chain of capacity-constrained links.
//
// Capacity sharing uses a max-min-style approximation suited to flow-level
// TCP simulation: each link tracks how many flows are actively transferring
// through it, and a flow's attainable rate on a path is the minimum over the
// path's links of rate/activeFlows. The tcpsim package samples this share
// once per congestion-window round, so shares adapt as flows come and go.
package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Host is a grid node: a named machine on a site with a relative CPU speed
// and a dedicated NIC link.
type Host struct {
	Name string
	Site string
	// CPUSpeed is the node's relative compute speed; 1.0 is the reference
	// (the paper's Rennes Opteron 248). Application compute times divide
	// by this factor.
	CPUSpeed float64
	// NIC is the transmit side and NICIn the receive side of the host's
	// full-duplex network interface: outgoing flows contend on NIC,
	// incoming flows (incast) on NICIn, and opposite directions never
	// contend with each other.
	NIC   *Link
	NICIn *Link
}

func (h *Host) String() string { return h.Name }

// Link is a shared transmission resource with a fixed raw rate in bytes per
// second. Flows register while actively transferring; the link divides its
// rate evenly among them.
//
// A link can also be taken down by a fault plan: flows that hold it are
// evicted (their registrations voided via the generation counter) and must
// re-register once the link comes back, which NotifyUp signals.
type Link struct {
	Name   string
	Rate   float64 // bytes/second, raw (framing efficiency is applied by tcpsim)
	active int
	// gen counts SetDown(true) transitions. A registration made at gen g is
	// void once gen != g: SetDown zeroes active, so a flow releasing with a
	// stale gen must not decrement again (see ReleaseGen).
	gen       uint32
	down      bool
	extraLoss float64       // injected per-round loss probability
	jitter    time.Duration // injected one-way latency jitter amplitude
	onUp      []func()      // callbacks fired when the link comes back up
}

// Acquire registers one active flow on the link.
func (l *Link) Acquire() { l.active++ }

// Release deregisters one active flow. Releasing an idle link panics, as it
// indicates a flow accounting bug. Fault-driven teardown (the link went down
// while the flow held it) must go through ReleaseGen instead, which the
// generation counter makes idempotent.
func (l *Link) Release() {
	if l.active <= 0 {
		panic(fmt.Sprintf("netsim: release of idle link %s", l.Name))
	}
	l.active--
}

// ReleaseGen deregisters a flow that registered while the link was at
// generation gen. If the link has since gone down (bumping the generation
// and voiding all registrations), the release is a no-op; with a current
// gen it behaves exactly like Release, including the idle-release panic.
func (l *Link) ReleaseGen(gen uint32) {
	if gen != l.gen {
		return
	}
	l.Release()
}

// Gen returns the link's current registration generation.
func (l *Link) Gen() uint32 { return l.gen }

// SetDown changes the link's up/down state. Taking the link down evicts all
// registered flows (active resets to zero and their generation is voided);
// bringing it up fires the callbacks registered with NotifyUp, in
// registration order.
func (l *Link) SetDown(down bool) {
	if down == l.down {
		return
	}
	l.down = down
	if down {
		l.gen++
		l.active = 0
		return
	}
	cbs := l.onUp
	l.onUp = nil
	for _, fn := range cbs {
		fn()
	}
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// NotifyUp registers fn to run when the link next comes up. If the link is
// already up, fn runs immediately.
func (l *Link) NotifyUp(fn func()) {
	if !l.down {
		fn()
		return
	}
	l.onUp = append(l.onUp, fn)
}

// SetExtraLoss sets an injected per-round loss probability on the link.
func (l *Link) SetExtraLoss(p float64) { l.extraLoss = p }

// ExtraLoss returns the injected per-round loss probability.
func (l *Link) ExtraLoss() float64 { return l.extraLoss }

// SetJitter sets an injected latency jitter amplitude on the link.
func (l *Link) SetJitter(j time.Duration) { l.jitter = j }

// Jitter returns the injected latency jitter amplitude.
func (l *Link) Jitter() time.Duration { return l.jitter }

// Active reports the number of flows currently registered.
func (l *Link) Active() int { return l.active }

// Share returns the rate available to one of the currently active flows.
// If no flow is registered it returns the full rate.
func (l *Link) Share() float64 {
	if l.active <= 1 {
		return l.Rate
	}
	return l.Rate / float64(l.active)
}

// Path is a unidirectional route between two hosts.
type Path struct {
	Src, Dst *Host
	// OneWay is the one-way propagation + switching delay, excluding
	// serialization (which depends on the transfer size and is computed by
	// the transport).
	OneWay time.Duration
	// Links is the ordered chain of shared links the path crosses.
	Links []*Link
}

// RTT is the round-trip propagation delay of the path.
func (p *Path) RTT() time.Duration { return 2 * p.OneWay }

// Acquire registers an active flow on every link of the path.
func (p *Path) Acquire() {
	for _, l := range p.Links {
		l.Acquire()
	}
}

// Release deregisters an active flow from every link of the path.
func (p *Path) Release() {
	for _, l := range p.Links {
		l.Release()
	}
}

// AcquireGens registers a flow on every link and appends each link's current
// generation to gens (normally the caller's reused scratch, passed with
// length zero), returning the extended slice. Pair with ReleaseGens so a
// fault taking a link down mid-hold cannot be confused with a double
// release.
func (p *Path) AcquireGens(gens []uint32) []uint32 {
	for _, l := range p.Links {
		l.Acquire()
		gens = append(gens, l.gen)
	}
	return gens
}

// ReleaseGens deregisters a flow that registered with AcquireGens: links
// whose generation moved on (they went down in between) are skipped, the
// rest release strictly. len(gens) must equal len(p.Links).
func (p *Path) ReleaseGens(gens []uint32) {
	for i, l := range p.Links {
		l.ReleaseGen(gens[i])
	}
}

// Down reports whether any link of the path is down.
func (p *Path) Down() bool {
	for _, l := range p.Links {
		if l.down {
			return true
		}
	}
	return false
}

// NotifyUp arranges for fn to run once no link of the path is down. It
// registers on the first down link found; when that one recovers, the check
// repeats until the whole path is clear, then fn runs. If the path is
// already up, fn runs immediately.
func (p *Path) NotifyUp(fn func()) {
	for _, l := range p.Links {
		if l.down {
			l.NotifyUp(func() { p.NotifyUp(fn) })
			return
		}
	}
	fn()
}

// ExtraLoss returns the combined injected loss probability along the path:
// 1 - Π(1 - p_link), the chance at least one lossy link drops the round.
func (p *Path) ExtraLoss() float64 {
	pass := 1.0
	for _, l := range p.Links {
		if l.extraLoss > 0 {
			pass *= 1 - l.extraLoss
		}
	}
	return 1 - pass
}

// Jitter returns the summed injected latency jitter amplitude of the path.
func (p *Path) Jitter() time.Duration {
	var j time.Duration
	for _, l := range p.Links {
		j += l.jitter
	}
	return j
}

// ShareRate returns the current bottleneck fair-share rate (bytes/second)
// for a flow that has already Acquired the path.
func (p *Path) ShareRate() float64 {
	rate := p.Links[0].Share()
	for _, l := range p.Links[1:] {
		if s := l.Share(); s < rate {
			rate = s
		}
	}
	return rate
}

// Bottleneck returns the minimum raw rate along the path.
func (p *Path) Bottleneck() float64 {
	rate := p.Links[0].Rate
	for _, l := range p.Links[1:] {
		if l.Rate < rate {
			rate = l.Rate
		}
	}
	return rate
}

func (p *Path) String() string {
	return fmt.Sprintf("%s->%s owd=%v", p.Src.Name, p.Dst.Name, p.OneWay)
}

// Network is a set of hosts plus a route table of host-pair paths.
type Network struct {
	hosts   map[string]*Host
	ordered []*Host
	paths   map[[2]string]*Path
	// uplinks maps a site name to its shared WAN access links (egress and
	// ingress sides), if any.
	uplinks map[string]*duplex
	// intraOWD remembers each site's intra-cluster one-way delay.
	intraOWD map[string]time.Duration
}

// New creates an empty network.
// duplex is a full-duplex link pair.
type duplex struct {
	out *Link
	in  *Link
}

func New() *Network {
	return &Network{
		hosts:    make(map[string]*Host),
		paths:    make(map[[2]string]*Path),
		uplinks:  make(map[string]*duplex),
		intraOWD: make(map[string]time.Duration),
	}
}

// AddHost creates a host with a dedicated NIC of the given rate (bytes/s).
func (n *Network) AddHost(name, site string, cpuSpeed, nicRate float64) *Host {
	if _, dup := n.hosts[name]; dup {
		panic("netsim: duplicate host " + name)
	}
	h := &Host{
		Name:     name,
		Site:     site,
		CPUSpeed: cpuSpeed,
		NIC:      &Link{Name: name + ":nic-tx", Rate: nicRate},
		NICIn:    &Link{Name: name + ":nic-rx", Rate: nicRate},
	}
	n.hosts[name] = h
	n.ordered = append(n.ordered, h)
	return h
}

// Host returns the named host, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// Hosts returns all hosts in insertion order.
func (n *Network) Hosts() []*Host { return n.ordered }

// SiteHosts returns the hosts of one site, in insertion order.
func (n *Network) SiteHosts(site string) []*Host {
	var out []*Host
	for _, h := range n.ordered {
		if h.Site == site {
			out = append(out, h)
		}
	}
	return out
}

// Sites returns the distinct site names, sorted.
func (n *Network) Sites() []string {
	seen := make(map[string]bool)
	var out []string
	for _, h := range n.ordered {
		if !seen[h.Site] {
			seen[h.Site] = true
			out = append(out, h.Site)
		}
	}
	sort.Strings(out)
	return out
}

// AddSite creates count hosts named <site>-1..count on one cluster with a
// non-blocking switch: intra-site paths cross only the two NICs.
func (n *Network) AddSite(site string, count int, cpuSpeed, nicRate float64, intraOWD time.Duration) []*Host {
	hosts := make([]*Host, count)
	for i := range hosts {
		hosts[i] = n.AddHost(fmt.Sprintf("%s-%d", site, i+1), site, cpuSpeed, nicRate)
	}
	n.intraOWD[site] = intraOWD
	// Full mesh of intra-site paths (switch assumed non-blocking).
	all := n.SiteHosts(site)
	for _, a := range all {
		for _, b := range all {
			if a != b {
				n.setPath(a, b, intraOWD, []*Link{a.NIC, b.NICIn})
			}
		}
	}
	return hosts
}

// SetUplink gives a site a shared full-duplex WAN access of the given rate
// per direction. All inter-site paths from or to the site cross it. Call
// before ConnectSites.
func (n *Network) SetUplink(site string, rate float64) {
	n.uplinks[site] = &duplex{
		out: &Link{Name: site + ":uplink-out", Rate: rate},
		in:  &Link{Name: site + ":uplink-in", Rate: rate},
	}
}

// Uplink returns the site's WAN access links (egress, ingress), or ok=false
// when the site has no uplink configured. Fault injection uses it to target
// "the rennes uplink" by name.
func (n *Network) Uplink(site string) (out, in *Link, ok bool) {
	up := n.uplinks[site]
	if up == nil {
		return nil, nil, false
	}
	return up.out, up.in, true
}

// ConnectSites installs paths between every host of site a and every host
// of site b (both directions) with one-way delay owd. Paths cross the two
// NICs and any configured site uplinks.
func (n *Network) ConnectSites(a, b string, owd time.Duration) {
	ha, hb := n.SiteHosts(a), n.SiteHosts(b)
	if len(ha) == 0 || len(hb) == 0 {
		panic(fmt.Sprintf("netsim: ConnectSites(%q,%q): missing hosts", a, b))
	}
	for _, x := range ha {
		for _, y := range hb {
			n.setPath(x, y, owd, n.wanLinks(x, y))
			n.setPath(y, x, owd, n.wanLinks(y, x))
		}
	}
}

func (n *Network) wanLinks(src, dst *Host) []*Link {
	links := []*Link{src.NIC}
	if up := n.uplinks[src.Site]; up != nil {
		links = append(links, up.out)
	}
	if up := n.uplinks[dst.Site]; up != nil {
		links = append(links, up.in)
	}
	return append(links, dst.NICIn)
}

func (n *Network) setPath(a, b *Host, owd time.Duration, links []*Link) {
	n.paths[[2]string{a.Name, b.Name}] = &Path{Src: a, Dst: b, OneWay: owd, Links: links}
}

// LoopbackRate is the byte rate of intra-host communication (shared-memory
// copy speed) and LoopbackDelay its latency.
const (
	LoopbackRate  = 2.5e9
	LoopbackDelay = 5 * time.Microsecond
)

// Path returns the route from a to b. Two processes on the same host
// communicate over a synthetic loopback path. It panics when no route
// exists between distinct hosts, because every experiment topology is
// fully connected by construction.
func (n *Network) Path(a, b *Host) *Path {
	key := [2]string{a.Name, b.Name}
	if p, ok := n.paths[key]; ok {
		return p
	}
	if a == b {
		p := &Path{
			Src: a, Dst: b,
			OneWay: LoopbackDelay,
			Links:  []*Link{{Name: a.Name + ":lo", Rate: LoopbackRate}},
		}
		n.paths[key] = p
		return p
	}
	panic(fmt.Sprintf("netsim: no path %s -> %s", a.Name, b.Name))
}

// SameSite reports whether two hosts are on the same site.
func SameSite(a, b *Host) bool { return a.Site == b.Site }
