// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the CLI front-ends, so performance work profiles the real
// workloads (a full sweep, the whole-paper regeneration) instead of
// microbenchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges for a heap
// profile at heapPath; either may be empty. The returned stop function
// must run at process end (defer it in run()): it stops the CPU profile
// and writes the heap profile.
func Start(cpuPath, heapPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if heapPath != "" {
			f, err := os.Create(heapPath)
			if err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // profile live retention, not transient garbage
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				return fmt.Errorf("heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
