package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/mpiimpl"
	"repro/internal/tables"
)

// RenderPingPongFigure formats a bandwidth figure as a size × implementation
// table (Mbps).
func RenderPingPongFigure(f Figure) string {
	headers := []string{"size"}
	for _, s := range f.Series {
		headers = append(headers, s.Label)
	}
	var rows [][]string
	if len(f.Series) > 0 {
		for i, p := range f.Series[0].Points {
			row := []string{tables.Size(int64(p.Size))}
			for _, s := range f.Series {
				row = append(row, fmt.Sprintf("%.1f", s.Points[i].Mbps))
			}
			rows = append(rows, row)
		}
	}
	return f.Title + "\n" + tables.Render(headers, rows)
}

// RenderTable4 formats the latency table.
func RenderTable4(rows []LatencyRow) string {
	headers := []string{"", "cluster (us)", "grid (us)"}
	var out [][]string
	for _, r := range rows {
		c := fmt.Sprintf("%.0f", float64(r.Cluster)/float64(time.Microsecond))
		g := fmt.Sprintf("%.0f", float64(r.Grid)/float64(time.Microsecond))
		if r.Impl != mpiimpl.RawTCP {
			c += fmt.Sprintf(" (+%.0f)", float64(r.OverCluster)/float64(time.Microsecond))
			g += fmt.Sprintf(" (+%.0f)", float64(r.OverGrid)/float64(time.Microsecond))
		}
		out = append(out, []string{r.Impl, c, g})
	}
	return "Table 4: one-way 1-byte latency, cluster vs grid\n" + tables.Render(headers, out)
}

// RenderTable5 formats the ideal-threshold table.
func RenderTable5(rows []ThresholdRow) string {
	headers := []string{"", "original threshold", "ideal (cluster)", "ideal (grid)"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Impl, r.Original, r.Cluster, r.Grid})
	}
	return "Table 5: ideal eager/rendezvous thresholds\n" + tables.Render(headers, out)
}

// RenderFigure9 formats the slow-start traces as sampled series: one line
// per second per implementation.
func RenderFigure9(traces []Trace) string {
	var b strings.Builder
	b.WriteString("Figure 9: per-message bandwidth of 1 MB pingpongs over time (Mbps)\n")
	for _, tr := range traces {
		fmt.Fprintf(&b, "\n[%s]\n", tr.Label)
		next := time.Duration(0)
		for _, p := range tr.Points {
			if p.T >= next {
				fmt.Fprintf(&b, "  t=%6.2fs  %7.1f Mbps\n", p.T.Seconds(), p.Mbps)
				next += 250 * time.Millisecond
			}
		}
	}
	return b.String()
}

// RenderNASFigure formats a benchmark × implementation matrix of relative
// values, with DNF marks.
func RenderNASFigure(f NASFigure) string {
	headers := []string{"benchmark"}
	headers = append(headers, mpiimpl.All...)
	var rows [][]string
	for _, bench := range f.Benchmarks {
		row := []string{bench}
		for _, impl := range mpiimpl.All {
			if v, dnf := f.At(bench, impl); dnf {
				row = append(row, "DNF")
			} else {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		rows = append(rows, row)
	}
	return f.Title + "\n" + tables.Render(headers, rows)
}

// RenderTable2 formats the communication census.
func RenderTable2(rows []CensusRow) string {
	headers := []string{"bench", "type", "p2p msgs", "p2p bytes", "sizes", "collectives"}
	var out [][]string
	for _, r := range rows {
		sizes := "-"
		if r.P2PSends > 0 {
			sizes = tables.Size(r.SmallestB) + " .. " + tables.Size(r.LargestB)
		}
		coll := "-"
		if len(r.Collective) > 0 {
			var parts []string
			for _, op := range []string{"bcast", "reduce", "allreduce", "alltoall", "alltoallv", "barrier"} {
				if n, ok := r.Collective[op]; ok {
					parts = append(parts, fmt.Sprintf("%s x%d", op, n))
				}
			}
			coll = strings.Join(parts, ", ")
		}
		out = append(out, []string{
			r.Bench, r.Type,
			fmt.Sprintf("%d", r.P2PSends),
			fmt.Sprintf("%d", r.P2PBytes),
			sizes, coll,
		})
	}
	return "Table 2: NPB communication census (16 ranks)\n" + tables.Render(headers, out)
}

// RenderTable1 formats the feature matrix.
func RenderTable1(rows []mpiimpl.Feature) string {
	headers := []string{"", "long-distance optimizations", "heterogeneity management", "first/last publication"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Name, r.LongDistance, r.Heterogeneity, r.FirstLastPublic})
	}
	return "Table 1: implementation features\n" + tables.Render(headers, out)
}

// RenderTable6 formats the ray-distribution table.
func RenderTable6(t RayTable6) string {
	headers := []string{"cluster \\ master"}
	headers = append(headers, t.Masters...)
	var rows [][]string
	for _, cluster := range t.Clusters {
		row := []string{cluster}
		for _, m := range t.Masters {
			row = append(row, fmt.Sprintf("%.0f", t.Rays[cluster][m]))
		}
		rows = append(rows, row)
	}
	return "Table 6: mean rays per node by cluster and master location\n" + tables.Render(headers, rows)
}

// RenderTable7 formats the phase-time table.
func RenderTable7(t RayTable7) string {
	headers := []string{"phase"}
	headers = append(headers, t.Masters...)
	sec := func(m map[string]time.Duration) []string {
		row := make([]string, 0, len(t.Masters))
		for _, master := range t.Masters {
			row = append(row, fmt.Sprintf("%.2f", m[master].Seconds()))
		}
		return row
	}
	rows := [][]string{
		append([]string{"comp. time (s)"}, sec(t.Comp)...),
		append([]string{"merge time (s)"}, sec(t.Merge)...),
		append([]string{"total time (s)"}, sec(t.Total)...),
	}
	return "Table 7: ray2mesh phase times by master location\n" + tables.Render(headers, rows)
}
