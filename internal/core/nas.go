package core

import (
	"time"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
	"repro/internal/npb"
)

// DNFBudgetFactor is the job time budget relative to the MPICH2 reference:
// runs exceeding it are reported DNF, like the paper's MPICH-Madeleine
// BT/SP grid runs.
const DNFBudgetFactor = 2

// NASFigure holds one NPB comparison figure: for each benchmark, a
// relative performance value per implementation (higher is better), with
// DNF marks.
type NASFigure struct {
	Name       string
	Title      string
	Benchmarks []string
	// Values[bench][impl] is the relative performance; missing means DNF.
	Values map[string]map[string]float64
	DNF    map[string]map[string]bool
}

func newNASFigure(name, title string) NASFigure {
	return NASFigure{
		Name:       name,
		Title:      title,
		Benchmarks: npb.Names,
		Values:     make(map[string]map[string]float64),
		DNF:        make(map[string]map[string]bool),
	}
}

func (f *NASFigure) set(bench, impl string, v float64, dnf bool) {
	if f.Values[bench] == nil {
		f.Values[bench] = make(map[string]float64)
		f.DNF[bench] = make(map[string]bool)
	}
	if dnf {
		f.DNF[bench][impl] = true
		return
	}
	f.Values[bench][impl] = v
}

// At returns the value and DNF flag for one cell.
func (f NASFigure) At(bench, impl string) (float64, bool) {
	if f.DNF[bench][impl] {
		return 0, true
	}
	return f.Values[bench][impl], false
}

// npbExperiment runs one benchmark on one topology, always at the §4.2
// TCP tuning level (the study tunes first, then runs the applications).
// The topology carries the placement story the old npb.Run enum used to:
// exp.Cluster(np) is the single-cluster run, exp.Grid(np/2) the paper's
// even WAN split, and any per-site layout works the same way.
func npbExperiment(bench, impl string, topo exp.Topology, scale float64, timeout time.Duration) exp.Experiment {
	wl := exp.NPBWorkload(bench, scale)
	wl.Timeout = timeout
	return exp.Experiment{
		Impl:     impl,
		Tuning:   exp.Tuning{TCP: true},
		Topology: topo,
		Workload: wl,
	}
}

// implComparison runs every implementation on every benchmark at one
// topology and reports times relative to MPICH2 (T_ref/T_impl). The
// MPICH2 references run first (their elapsed time defines every other
// implementation's DNF budget), then all remaining cells fan out across
// the runner's pool.
func implComparison(r *exp.Runner, name, title string, topo exp.Topology, scale float64) NASFigure {
	fig := newNASFigure(name, title)
	refExps := make([]exp.Experiment, len(npb.Names))
	for i, bench := range npb.Names {
		refExps[i] = npbExperiment(bench, mpiimpl.MPICH2, topo, scale, 0)
	}
	refs := make(map[string]exp.Result, len(npb.Names))
	for i, res := range r.RunAll(refExps) {
		if res.Err != "" {
			panic("core: " + name + ": " + res.Err)
		}
		refs[npb.Names[i]] = res
		fig.set(npb.Names[i], mpiimpl.MPICH2, 1.0, res.DNF)
	}

	var exps []exp.Experiment
	for _, bench := range npb.Names {
		for _, impl := range mpiimpl.All {
			if impl == mpiimpl.MPICH2 {
				continue
			}
			exps = append(exps, npbExperiment(bench, impl, topo, scale,
				refs[bench].Elapsed*DNFBudgetFactor))
		}
	}
	for _, res := range r.RunAll(exps) {
		if res.Err != "" {
			panic("core: " + name + ": " + res.Err)
		}
		bench := res.Exp.Workload.Bench
		ref := refs[bench]
		fig.set(bench, res.Exp.Impl, ref.Elapsed.Seconds()/res.Elapsed.Seconds(), res.DNF)
	}
	return fig
}

// Figure10 compares the four implementations on 8+8 nodes across the WAN,
// relative to MPICH2 (the paper's Figure 10; MPICH-Madeleine DNFs on BT
// and SP).
func Figure10(r *exp.Runner, scale float64) NASFigure {
	return implComparison(r, "figure10",
		"NPB class B, 8-8 nodes between two clusters, relative to MPICH2",
		exp.Grid(8), scale)
}

// Figure11 is the same comparison on 2+2 nodes.
func Figure11(r *exp.Runner, scale float64) NASFigure {
	return implComparison(r, "figure11",
		"NPB class B, 2-2 nodes between two clusters, relative to MPICH2",
		exp.Grid(2), scale)
}

// gridVsCluster computes per implementation T(cluster with npCluster
// nodes) / T(8+8 grid): Figure 12 (npCluster=16) and Figure 13
// (npCluster=4). Cluster references run first and bound the grid runs'
// DNF budgets.
func gridVsCluster(r *exp.Runner, name, title string, npCluster int, scale float64) NASFigure {
	fig := newNASFigure(name, title)
	type cell struct{ bench, impl string }
	var clExps []exp.Experiment
	var cells []cell
	for _, bench := range npb.Names {
		for _, impl := range mpiimpl.All {
			clExps = append(clExps, npbExperiment(bench, impl, exp.Cluster(npCluster), scale, 0))
			cells = append(cells, cell{bench, impl})
		}
	}
	clusters := make(map[cell]exp.Result, len(cells))
	grExps := make([]exp.Experiment, len(cells))
	for i, res := range r.RunAll(clExps) {
		if res.Err != "" {
			panic("core: " + name + ": " + res.Err)
		}
		clusters[cells[i]] = res
		budget := time.Duration(float64(res.Elapsed) * 4 * DNFBudgetFactor)
		grExps[i] = npbExperiment(cells[i].bench, cells[i].impl, exp.Grid(8), scale, budget)
	}
	for i, res := range r.RunAll(grExps) {
		if res.Err != "" {
			panic("core: " + name + ": " + res.Err)
		}
		cl := clusters[cells[i]]
		fig.set(cells[i].bench, cells[i].impl,
			cl.Elapsed.Seconds()/res.Elapsed.Seconds(), cl.DNF || res.DNF)
	}
	return fig
}

// Figure12 compares 16 nodes on one cluster against 8+8 across the WAN,
// per implementation (values ≤ 1: the grid always costs something).
func Figure12(r *exp.Runner, scale float64) NASFigure {
	return gridVsCluster(r, "figure12",
		"NPB class B: T(16 nodes, one cluster) / T(8-8 nodes, two clusters)",
		16, scale)
}

// Figure13 compares 4 local nodes against 16 grid nodes: the speedup of
// quadrupling resources across a WAN (ideal 4).
func Figure13(r *exp.Runner, scale float64) NASFigure {
	return gridVsCluster(r, "figure13",
		"NPB class B: T(4 nodes, one cluster) / T(8-8 nodes, two clusters)",
		4, scale)
}

// CensusRow summarises one benchmark's communication for Table 2.
type CensusRow struct {
	Bench      string
	Type       string // "point-to-point" or "collective"
	P2PSends   int64
	P2PBytes   int64
	SmallestB  int64
	LargestB   int64
	Collective map[string]int64
}

// Table2 regenerates the NPB communication census by running each
// benchmark on a 16-rank cluster and reading the message statistics.
func Table2(r *exp.Runner, scale float64) []CensusRow {
	exps := make([]exp.Experiment, len(npb.Names))
	for i, bench := range npb.Names {
		exps[i] = npbExperiment(bench, mpiimpl.MPICH2, exp.Cluster(16), scale, 0)
	}
	rows := make([]CensusRow, 0, len(npb.Names))
	for i, res := range r.RunAll(exps) {
		if res.Err != "" {
			panic("core: table2: " + res.Err)
		}
		c := res.Census
		row := CensusRow{
			Bench:      npb.Names[i],
			Type:       "point-to-point",
			P2PSends:   c.P2PSends,
			P2PBytes:   c.P2PBytes,
			Collective: make(map[string]int64),
		}
		if len(c.Sizes) > 0 {
			row.SmallestB = c.Sizes[0].Size
			row.LargestB = c.Sizes[len(c.Sizes)-1].Size
		}
		for _, coll := range c.Collectives {
			row.Collective[coll.Op] = coll.Calls
		}
		if c.P2PSends == 0 {
			row.Type = "collective"
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1 returns the implementation feature matrix.
func Table1() []mpiimpl.Feature { return mpiimpl.Features() }
