package core

import (
	"time"

	"repro/internal/mpiimpl"
	"repro/internal/npb"
)

// DNFBudgetFactor is the job time budget relative to the MPICH2 reference:
// runs exceeding it are reported DNF, like the paper's MPICH-Madeleine
// BT/SP grid runs.
const DNFBudgetFactor = 2

// NASFigure holds one NPB comparison figure: for each benchmark, a
// relative performance value per implementation (higher is better), with
// DNF marks.
type NASFigure struct {
	Name       string
	Title      string
	Benchmarks []string
	// Values[bench][impl] is the relative performance; missing means DNF.
	Values map[string]map[string]float64
	DNF    map[string]map[string]bool
}

func newNASFigure(name, title string) NASFigure {
	return NASFigure{
		Name:       name,
		Title:      title,
		Benchmarks: npb.Names,
		Values:     make(map[string]map[string]float64),
		DNF:        make(map[string]map[string]bool),
	}
}

func (f *NASFigure) set(bench, impl string, v float64, dnf bool) {
	if f.Values[bench] == nil {
		f.Values[bench] = make(map[string]float64)
		f.DNF[bench] = make(map[string]bool)
	}
	if dnf {
		f.DNF[bench][impl] = true
		return
	}
	f.Values[bench][impl] = v
}

// At returns the value and DNF flag for one cell.
func (f NASFigure) At(bench, impl string) (float64, bool) {
	if f.DNF[bench][impl] {
		return 0, true
	}
	return f.Values[bench][impl], false
}

// implComparison runs every implementation on every benchmark at one
// (np, placement) and reports times relative to MPICH2 (T_ref/T_impl).
func implComparison(name, title string, np int, placement npb.Placement, scale float64) NASFigure {
	fig := newNASFigure(name, title)
	for _, bench := range npb.Names {
		ref := npb.Run(npb.Job{
			Bench: bench, Impl: mpiimpl.MPICH2, NP: np,
			Placement: placement, Scale: scale,
		})
		fig.set(bench, mpiimpl.MPICH2, 1.0, ref.DNF)
		for _, impl := range mpiimpl.All {
			if impl == mpiimpl.MPICH2 {
				continue
			}
			res := npb.Run(npb.Job{
				Bench: bench, Impl: impl, NP: np,
				Placement: placement, Scale: scale,
				Timeout: ref.Elapsed * DNFBudgetFactor,
			})
			fig.set(bench, impl, ref.Elapsed.Seconds()/res.Elapsed.Seconds(), res.DNF)
		}
	}
	return fig
}

// Figure10 compares the four implementations on 8+8 nodes across the WAN,
// relative to MPICH2 (the paper's Figure 10; MPICH-Madeleine DNFs on BT
// and SP).
func Figure10(scale float64) NASFigure {
	return implComparison("figure10",
		"NPB class B, 8-8 nodes between two clusters, relative to MPICH2",
		16, npb.TwoClusters, scale)
}

// Figure11 is the same comparison on 2+2 nodes.
func Figure11(scale float64) NASFigure {
	return implComparison("figure11",
		"NPB class B, 2-2 nodes between two clusters, relative to MPICH2",
		4, npb.TwoClusters, scale)
}

// gridVsCluster computes per implementation T(cluster with npCluster
// nodes) / T(8+8 grid): Figure 12 (npCluster=16) and Figure 13
// (npCluster=4).
func gridVsCluster(name, title string, npCluster int, scale float64) NASFigure {
	fig := newNASFigure(name, title)
	for _, bench := range npb.Names {
		for _, impl := range mpiimpl.All {
			cl := npb.Run(npb.Job{
				Bench: bench, Impl: impl, NP: npCluster,
				Placement: npb.SingleCluster, Scale: scale,
			})
			budget := time.Duration(float64(cl.Elapsed) * 4 * DNFBudgetFactor)
			gr := npb.Run(npb.Job{
				Bench: bench, Impl: impl, NP: 16,
				Placement: npb.TwoClusters, Scale: scale,
				Timeout: budget,
			})
			fig.set(bench, impl, cl.Elapsed.Seconds()/gr.Elapsed.Seconds(), cl.DNF || gr.DNF)
		}
	}
	return fig
}

// Figure12 compares 16 nodes on one cluster against 8+8 across the WAN,
// per implementation (values ≤ 1: the grid always costs something).
func Figure12(scale float64) NASFigure {
	return gridVsCluster("figure12",
		"NPB class B: T(16 nodes, one cluster) / T(8-8 nodes, two clusters)",
		16, scale)
}

// Figure13 compares 4 local nodes against 16 grid nodes: the speedup of
// quadrupling resources across a WAN (ideal 4).
func Figure13(scale float64) NASFigure {
	return gridVsCluster("figure13",
		"NPB class B: T(4 nodes, one cluster) / T(8-8 nodes, two clusters)",
		4, scale)
}

// CensusRow summarises one benchmark's communication for Table 2.
type CensusRow struct {
	Bench      string
	Type       string // "point-to-point" or "collective"
	P2PSends   int64
	P2PBytes   int64
	SmallestB  int64
	LargestB   int64
	Collective map[string]int64
}

// Table2 regenerates the NPB communication census by running each
// benchmark on a 16-rank cluster and reading the message statistics.
func Table2(scale float64) []CensusRow {
	rows := make([]CensusRow, 0, len(npb.Names))
	for _, bench := range npb.Names {
		res := npb.Run(npb.Job{
			Bench: bench, Impl: mpiimpl.MPICH2, NP: 16,
			Placement: npb.SingleCluster, Scale: scale,
		})
		s := res.Stats
		row := CensusRow{
			Bench:      bench,
			Type:       "point-to-point",
			P2PSends:   s.P2PSends,
			P2PBytes:   s.P2PBytes,
			Collective: make(map[string]int64),
		}
		if census := s.SizeCensus(); len(census) > 0 {
			row.SmallestB = census[0].Size
			row.LargestB = census[len(census)-1].Size
		}
		for _, op := range s.CollOps() {
			row.Collective[op] = s.CollCalls(op)
		}
		if s.P2PSends == 0 {
			row.Type = "collective"
		}
		rows = append(rows, row)
	}
	return rows
}

// Table1 returns the implementation feature matrix.
func Table1() []mpiimpl.Feature { return mpiimpl.Features() }
