package core

import (
	"testing"
	"time"
)

// TestExtensionHeterogeneity checks the paper's §5 criterion: a
// high-speed fabric pays off as long as the gateway overhead stays below
// the TCP cost it replaces.
func TestExtensionHeterogeneity(t *testing.T) {
	pts := ExtensionHeterogeneity(testRunner, 10)
	if pts[0].Fabric != GigabitEthernetFabric.Name {
		t.Fatal("first row must be the TCP/GbE baseline")
	}
	base := pts[0]
	byKey := make(map[string]HeterogeneityPoint)
	for _, p := range pts[1:] {
		byKey[p.Fabric+p.GatewayOverhead.String()] = p
	}
	// With no gateway overhead, both fabrics clearly beat TCP.
	for _, fabric := range []string{MyrinetFabric.Name, InfinibandFabric.Name} {
		p := byKey[fabric+"0s"]
		if !p.BeatsTCP {
			t.Errorf("%s without gateway overhead does not beat TCP (lat %v vs %v)",
				fabric, p.Latency1B, base.Latency1B)
		}
		if p.Latency1B >= base.Latency1B/2 {
			t.Errorf("%s latency %v, want well under the TCP %v", fabric, p.Latency1B, base.Latency1B)
		}
	}
	// A 160 µs gateway exceeds the TCP cost: the advantage is gone.
	p := byKey[MyrinetFabric.Name+(160*time.Microsecond).String()]
	if p.BeatsTCP {
		t.Error("Myrinet behind a 160 µs gateway should not beat plain TCP")
	}
	// Latency grows monotonically with gateway overhead.
	prev := time.Duration(0)
	for _, gw := range []time.Duration{0, 10 * time.Microsecond, 40 * time.Microsecond, 160 * time.Microsecond} {
		cur := byKey[MyrinetFabric.Name+gw.String()].Latency1B
		if cur <= prev {
			t.Errorf("latency not increasing with gateway overhead at %v", gw)
		}
		prev = cur
	}
}
