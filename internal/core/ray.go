package core

import (
	"time"

	"repro/internal/ray2mesh"
)

// RayTable6 is the paper's Table 6: mean rays per node on each cluster
// (rows) for each master location (columns).
type RayTable6 struct {
	Clusters []string
	Masters  []string
	// Rays[cluster][master] is the mean ray count per node.
	Rays map[string]map[string]float64
}

// RayTable7 is the paper's Table 7: compute / merge / total times per
// master location.
type RayTable7 struct {
	Masters []string
	Comp    map[string]time.Duration
	Merge   map[string]time.Duration
	Total   map[string]time.Duration
}

// Table6 runs ray2mesh with the master on each of the four clusters and
// tabulates the ray distribution. scale shrinks the workload for tests
// (1.0 = the paper's one million rays).
func Table6(scale float64) RayTable6 {
	t := RayTable6{
		Clusters: ray2mesh.Sites,
		Masters:  ray2mesh.Sites,
		Rays:     make(map[string]map[string]float64),
	}
	for _, master := range t.Masters {
		res := ray2mesh.Run(ray2mesh.Default(master).Scaled(scale))
		for _, cluster := range t.Clusters {
			if t.Rays[cluster] == nil {
				t.Rays[cluster] = make(map[string]float64)
			}
			t.Rays[cluster][master] = res.RaysPerNode[cluster]
		}
	}
	return t
}

// Table7 runs ray2mesh with the master on each cluster and tabulates the
// phase times.
func Table7(scale float64) RayTable7 {
	t := RayTable7{
		Masters: ray2mesh.Sites,
		Comp:    make(map[string]time.Duration),
		Merge:   make(map[string]time.Duration),
		Total:   make(map[string]time.Duration),
	}
	for _, master := range t.Masters {
		res := ray2mesh.Run(ray2mesh.Default(master).Scaled(scale))
		t.Comp[master] = res.CompTime
		t.Merge[master] = res.MergeTime
		t.Total[master] = res.TotalTime
	}
	return t
}
