package core

import (
	"time"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
	"repro/internal/ray2mesh"
)

// RayTable6 is the paper's Table 6: mean rays per node on each cluster
// (rows) for each master location (columns).
type RayTable6 struct {
	Clusters []string
	Masters  []string
	// Rays[cluster][master] is the mean ray count per node.
	Rays map[string]map[string]float64
}

// RayTable7 is the paper's Table 7: compute / merge / total times per
// master location.
type RayTable7 struct {
	Masters []string
	Comp    map[string]time.Duration
	Merge   map[string]time.Duration
	Total   map[string]time.Duration
}

// rayResults runs ray2mesh once per master location through the shared
// runner (Table 6 and Table 7 read different metrics of the same four
// experiments, so generating both costs four runs, not eight).
func rayResults(r *exp.Runner, scale float64) map[string]exp.Result {
	exps := make([]exp.Experiment, len(ray2mesh.Sites))
	for i, master := range ray2mesh.Sites {
		exps[i] = exp.Experiment{
			Impl:     mpiimpl.MPICH2,
			Tuning:   exp.Tuning{TCP: true},
			Topology: exp.Ray2MeshTopology(),
			Workload: exp.Ray2MeshWorkload(master, scale),
		}
	}
	out := make(map[string]exp.Result, len(exps))
	for i, res := range r.RunAll(exps) {
		if res.Err != "" {
			panic("core: ray2mesh@" + ray2mesh.Sites[i] + ": " + res.Err)
		}
		out[ray2mesh.Sites[i]] = res
	}
	return out
}

func seconds(res exp.Result, key string) time.Duration {
	return time.Duration(res.Metrics[key] * float64(time.Second))
}

// Table6 runs ray2mesh with the master on each of the four clusters and
// tabulates the ray distribution. scale shrinks the workload for tests
// (1.0 = the paper's one million rays).
func Table6(r *exp.Runner, scale float64) RayTable6 {
	t := RayTable6{
		Clusters: ray2mesh.Sites,
		Masters:  ray2mesh.Sites,
		Rays:     make(map[string]map[string]float64),
	}
	results := rayResults(r, scale)
	for _, master := range t.Masters {
		res := results[master]
		for _, cluster := range t.Clusters {
			if t.Rays[cluster] == nil {
				t.Rays[cluster] = make(map[string]float64)
			}
			t.Rays[cluster][master] = res.Metrics["rays_per_node_"+cluster]
		}
	}
	return t
}

// Table7 runs ray2mesh with the master on each cluster and tabulates the
// phase times.
func Table7(r *exp.Runner, scale float64) RayTable7 {
	t := RayTable7{
		Masters: ray2mesh.Sites,
		Comp:    make(map[string]time.Duration),
		Merge:   make(map[string]time.Duration),
		Total:   make(map[string]time.Duration),
	}
	results := rayResults(r, scale)
	for _, master := range t.Masters {
		res := results[master]
		// Elapsed is the exact virtual end time; deriving the merge phase
		// from it keeps comp+merge == total to the nanosecond, which the
		// rounded metrics floats cannot guarantee.
		t.Comp[master] = seconds(res, "comp_s")
		t.Total[master] = res.Elapsed
		t.Merge[master] = t.Total[master] - t.Comp[master]
	}
	return t
}
