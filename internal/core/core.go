// Package core is the experiment engine of the reproduction: one
// constructor per table and figure of the paper, each assembling the
// right testbed, TCP stack, implementation profile and measurement
// harness, and returning structured results.
//
// Configurations follow the paper's tuning story:
//
//	default            — stock Linux sysctls, implementation defaults
//	                     (Figures 3 and 5);
//	TCP-tuned          — 4 MB socket buffers + per-implementation buffer
//	                     fixes (Figure 6);
//	fully tuned        — additionally the Table 5 eager/rendezvous
//	                     thresholds (Figure 7).
package core

import (
	"time"

	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Placement says where the two pingpong processes run.
type Placement int

const (
	// Cluster places both processes in Rennes (PR1, PR2 of Figure 2).
	Cluster Placement = iota
	// Grid places them in Rennes and Nancy (PR1, PN1 of Figure 2).
	Grid
)

func (p Placement) String() string {
	if p == Cluster {
		return "cluster"
	}
	return "grid"
}

// Topology maps a placement onto the experiment engine's testbed
// description: both pingpong processes in Rennes, or one in Rennes and
// one in Nancy (Figure 2).
func (p Placement) Topology() exp.Topology {
	if p == Cluster {
		return exp.Cluster(2)
	}
	return exp.Grid(1)
}

// NewPingPongWorld builds a fresh kernel and 2-rank world for one
// implementation at one tuning level and placement.
func NewPingPongWorld(impl string, tcpTuned, mpiTuned bool, placement Placement) (*sim.Kernel, *mpi.World) {
	prof, tcp := mpiimpl.Configure(impl, tcpTuned, mpiTuned)
	k := sim.New(1)
	var net *netsim.Network
	var hosts []*netsim.Host
	if placement == Grid {
		net = grid5000.RennesNancy(1)
		hosts = []*netsim.Host{net.Host("rennes-1"), net.Host("nancy-1")}
	} else {
		net = grid5000.Build(2, grid5000.Rennes)
		hosts = []*netsim.Host{net.Host("rennes-1"), net.Host("rennes-2")}
	}
	return k, mpi.NewWorld(k, net, tcp, prof, hosts)
}

// Series is one labeled pingpong curve.
type Series struct {
	Label  string
	Points []perf.Point
}

// Figure is a family of curves, one per implementation.
type Figure struct {
	Name   string
	Title  string
	Series []Series
}

// Get returns the series labeled label, or nil.
func (f Figure) Get(label string) []perf.Point {
	for _, s := range f.Series {
		if s.Label == label {
			return s.Points
		}
	}
	return nil
}

// At returns the bandwidth of the labeled curve at a given size, or -1.
func (f Figure) At(label string, size int) float64 {
	for _, p := range f.Get(label) {
		if p.Size == size {
			return p.Mbps
		}
	}
	return -1
}

// DefaultSizes is the figures' size grid: 1 kB to 64 MB in powers of two
// (the engine's PaperSizes).
func DefaultSizes() []int { return exp.PaperSizes() }

// DefaultReps matches the paper's 200 round trips per size.
const DefaultReps = 200

func pingpongFigure(r *exp.Runner, name, title string, placement Placement, tcpTuned, mpiTuned bool, sizes []int, reps int) Figure {
	sweep := exp.Sweep{
		Impls:      mpiimpl.WithTCP,
		Tunings:    []exp.Tuning{{TCP: tcpTuned, MPI: mpiTuned}},
		Topologies: []exp.Topology{placement.Topology()},
		Workloads:  []exp.Workload{exp.PingPongWorkload(sizes, reps)},
	}
	fig := Figure{Name: name, Title: title}
	for _, res := range r.RunSweep(sweep) {
		if res.Err != "" {
			panic("core: " + name + "/" + res.Exp.Impl + ": " + res.Err)
		}
		fig.Series = append(fig.Series, Series{Label: res.Exp.Impl, Points: res.Points})
	}
	return fig
}

// Figure3 is the grid pingpong with default parameters: every curve is
// strangled below ~120 Mbps by default socket buffers.
func Figure3(r *exp.Runner, reps int) Figure {
	return pingpongFigure(r, "figure3",
		"MPI bandwidth, grid (Rennes-Nancy), default parameters",
		Grid, false, false, DefaultSizes(), reps)
}

// Figure5 is the cluster pingpong with default parameters: everything
// reaches the 940 Mbps TCP goodput, with the eager/rendezvous threshold
// dip around 128 kB.
func Figure5(r *exp.Runner, reps int) Figure {
	return pingpongFigure(r, "figure5",
		"MPI bandwidth, cluster (Rennes), default parameters",
		Cluster, false, false, DefaultSizes(), reps)
}

// Figure6 is the grid pingpong after TCP tuning (4 MB buffers plus the
// per-implementation buffer fixes): ~900 Mbps recovered, threshold dip
// still present except for GridMPI.
func Figure6(r *exp.Runner, reps int) Figure {
	return pingpongFigure(r, "figure6",
		"MPI bandwidth, grid, after TCP tuning",
		Grid, true, false, DefaultSizes(), reps)
}

// Figure7 is the grid pingpong after TCP and MPI tuning: every curve
// matches TCP, with OpenMPI slightly lower on big messages.
func Figure7(r *exp.Runner, reps int) Figure {
	return pingpongFigure(r, "figure7",
		"MPI bandwidth, grid, after TCP tuning and MPI optimizations",
		Grid, true, true, DefaultSizes(), reps)
}

// LatencyRow is one row of Table 4: 1-byte one-way latency in the cluster
// and on the grid, with the overhead over raw TCP.
type LatencyRow struct {
	Impl          string
	Cluster, Grid time.Duration
	OverCluster   time.Duration
	OverGrid      time.Duration
}

// Table4 measures the latency comparison of Table 4. The ten
// (implementation, placement) cells run as one parallel sweep.
func Table4(r *exp.Runner, reps int) []LatencyRow {
	sweep := exp.Sweep{
		Impls:      mpiimpl.WithTCP,
		Tunings:    []exp.Tuning{{}},
		Topologies: []exp.Topology{Cluster.Topology(), Grid.Topology()},
		Workloads:  []exp.Workload{exp.PingPongWorkload([]int{1}, reps)},
	}
	results := r.RunSweep(sweep)
	oneWay := func(i int) time.Duration {
		res := results[i]
		if res.Err != "" {
			panic("core: table4: " + res.Err)
		}
		return res.Points[0].OneWay()
	}
	var rows []LatencyRow
	var tcpCluster, tcpGrid time.Duration
	for i, impl := range mpiimpl.WithTCP {
		c, g := oneWay(2*i), oneWay(2*i+1)
		if impl == mpiimpl.RawTCP {
			tcpCluster, tcpGrid = c, g
		}
		rows = append(rows, LatencyRow{
			Impl:        impl,
			Cluster:     c,
			Grid:        g,
			OverCluster: c - tcpCluster,
			OverGrid:    g - tcpGrid,
		})
	}
	return rows
}

// Trace is one Figure 9 sub-plot: the per-message bandwidth of 1 MB
// pingpongs over time for one implementation.
type Trace struct {
	Label  string
	Points []perf.TracePoint
}

// Figure9 reproduces the slow-start study: 200 messages of 1 MB on the
// fully tuned grid (the study follows the §4.2 tuning), per-message
// bandwidth against time, for raw TCP and the four implementations.
func Figure9(r *exp.Runner, count int) []Trace {
	sweep := exp.Sweep{
		Impls:      mpiimpl.WithTCP,
		Tunings:    []exp.Tuning{{TCP: true, MPI: true}},
		Topologies: []exp.Topology{Grid.Topology()},
		Workloads:  []exp.Workload{exp.TraceWorkload(1<<20, count)},
	}
	var traces []Trace
	for _, res := range r.RunSweep(sweep) {
		if res.Err != "" {
			panic("core: figure9/" + res.Exp.Impl + ": " + res.Err)
		}
		traces = append(traces, Trace{Label: res.Exp.Impl, Points: res.Trace})
	}
	return traces
}

// ThresholdRow is one row of Table 5: the default eager/rendezvous
// threshold and the swept ideal for cluster and grid.
type ThresholdRow struct {
	Impl     string
	Original string
	Cluster  string
	Grid     string
}

// thresholdCandidates are the swept eager/rendezvous switch points.
var thresholdCandidates = []int{128 << 10, 1 << 20, 8 << 20, 32 << 20, 65 << 20}

// Table5 sweeps the eager/rendezvous threshold per implementation and
// placement and reports the value minimizing total pingpong time for
// messages up to 64 MB (receives pre-posted, as the paper's note says).
// OpenMPI's btl_tcp_eager_limit is capped at 32 MB, so its sweep stops
// there. The selection is independent of the runner's worker count.
func Table5(runner *exp.Runner, reps int) []ThresholdRow {
	sweepSizes := []int{256 << 10, 1 << 20, 8 << 20, 48 << 20}

	// Expand every (impl, placement, candidate) cell into one experiment.
	var exps []exp.Experiment
	for _, impl := range mpiimpl.All {
		if mpiimpl.Profile(impl).EagerThreshold == mpi.Infinite {
			continue
		}
		for _, placement := range []Placement{Cluster, Grid} {
			for _, thr := range thresholdCandidates {
				if impl == mpiimpl.OpenMPI && thr > 32<<20 {
					continue
				}
				exps = append(exps, exp.Experiment{
					Impl:           impl,
					Tuning:         exp.Tuning{TCP: true},
					Topology:       placement.Topology(),
					Workload:       exp.PingPongWorkload(sweepSizes, reps),
					EagerThreshold: thr,
				})
			}
		}
	}
	results := runner.RunAll(exps)

	// Pick the best threshold per (impl, placement): minimum total
	// pingpong time, ties to the larger threshold — rendezvous never beats
	// eager here, so the ideal is the largest value available. Candidates
	// expand in ascending order, making <= the tie-break.
	type cell struct {
		impl      string
		placement string
	}
	bestThr := make(map[cell]int)
	bestTime := make(map[cell]time.Duration)
	for _, res := range results {
		if res.Err != "" {
			panic("core: table5: " + res.Err)
		}
		var total time.Duration
		for _, p := range res.Points {
			total += p.MinRTT
		}
		c := cell{res.Exp.Impl, res.Exp.Topology.String()}
		if bestTime[c] == 0 || total <= bestTime[c] {
			bestTime[c], bestThr[c] = total, res.Exp.EagerThreshold
		}
	}

	rows := make([]ThresholdRow, 0, 4)
	for _, impl := range mpiimpl.All {
		base := mpiimpl.Profile(impl)
		if base.EagerThreshold == mpi.Infinite {
			rows = append(rows, ThresholdRow{Impl: impl, Original: "inf", Cluster: "-", Grid: "-"})
			continue
		}
		rows = append(rows, ThresholdRow{
			Impl:     impl,
			Original: formatSize(base.EagerThreshold),
			Cluster:  formatSize(bestThr[cell{impl, Cluster.Topology().String()}]),
			Grid:     formatSize(bestThr[cell{impl, Grid.Topology().String()}]),
		})
	}
	return rows
}

func formatSize(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + " MB"
	case n >= 1<<10:
		return itoa(n>>10) + " kB"
	default:
		return itoa(n) + " B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
