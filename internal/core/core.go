// Package core is the experiment engine of the reproduction: one
// constructor per table and figure of the paper, each assembling the
// right testbed, TCP stack, implementation profile and measurement
// harness, and returning structured results.
//
// Configurations follow the paper's tuning story:
//
//	default            — stock Linux sysctls, implementation defaults
//	                     (Figures 3 and 5);
//	TCP-tuned          — 4 MB socket buffers + per-implementation buffer
//	                     fixes (Figure 6);
//	fully tuned        — additionally the Table 5 eager/rendezvous
//	                     thresholds (Figure 7).
package core

import (
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Placement says where the two pingpong processes run.
type Placement int

const (
	// Cluster places both processes in Rennes (PR1, PR2 of Figure 2).
	Cluster Placement = iota
	// Grid places them in Rennes and Nancy (PR1, PN1 of Figure 2).
	Grid
)

func (p Placement) String() string {
	if p == Cluster {
		return "cluster"
	}
	return "grid"
}

// NewPingPongWorld builds a fresh kernel and 2-rank world for one
// implementation at one tuning level and placement.
func NewPingPongWorld(impl string, tcpTuned, mpiTuned bool, placement Placement) (*sim.Kernel, *mpi.World) {
	prof, tcp := mpiimpl.Configure(impl, tcpTuned, mpiTuned)
	k := sim.New(1)
	var net *netsim.Network
	var hosts []*netsim.Host
	if placement == Grid {
		net = grid5000.RennesNancy(1)
		hosts = []*netsim.Host{net.Host("rennes-1"), net.Host("nancy-1")}
	} else {
		net = grid5000.Build(2, grid5000.Rennes)
		hosts = []*netsim.Host{net.Host("rennes-1"), net.Host("rennes-2")}
	}
	return k, mpi.NewWorld(k, net, tcp, prof, hosts)
}

// Series is one labeled pingpong curve.
type Series struct {
	Label  string
	Points []perf.Point
}

// Figure is a family of curves, one per implementation.
type Figure struct {
	Name   string
	Title  string
	Series []Series
}

// Get returns the series labeled label, or nil.
func (f Figure) Get(label string) []perf.Point {
	for _, s := range f.Series {
		if s.Label == label {
			return s.Points
		}
	}
	return nil
}

// At returns the bandwidth of the labeled curve at a given size, or -1.
func (f Figure) At(label string, size int) float64 {
	for _, p := range f.Get(label) {
		if p.Size == size {
			return p.Mbps
		}
	}
	return -1
}

// DefaultSizes is the figures' size grid: 1 kB to 64 MB in powers of two.
func DefaultSizes() []int { return perf.PowersOfTwoSizes(1<<10, 64<<20) }

// DefaultReps matches the paper's 200 round trips per size.
const DefaultReps = 200

func pingpongFigure(name, title string, placement Placement, tcpTuned, mpiTuned bool, sizes []int, reps int) Figure {
	fig := Figure{Name: name, Title: title}
	for _, impl := range mpiimpl.WithTCP {
		k, w := NewPingPongWorld(impl, tcpTuned, mpiTuned, placement)
		pts, err := perf.PingPong(w, sizes, reps)
		k.Close()
		if err != nil {
			panic("core: " + name + "/" + impl + ": " + err.Error())
		}
		fig.Series = append(fig.Series, Series{Label: impl, Points: pts})
	}
	return fig
}

// Figure3 is the grid pingpong with default parameters: every curve is
// strangled below ~120 Mbps by default socket buffers.
func Figure3(reps int) Figure {
	return pingpongFigure("figure3",
		"MPI bandwidth, grid (Rennes-Nancy), default parameters",
		Grid, false, false, DefaultSizes(), reps)
}

// Figure5 is the cluster pingpong with default parameters: everything
// reaches the 940 Mbps TCP goodput, with the eager/rendezvous threshold
// dip around 128 kB.
func Figure5(reps int) Figure {
	return pingpongFigure("figure5",
		"MPI bandwidth, cluster (Rennes), default parameters",
		Cluster, false, false, DefaultSizes(), reps)
}

// Figure6 is the grid pingpong after TCP tuning (4 MB buffers plus the
// per-implementation buffer fixes): ~900 Mbps recovered, threshold dip
// still present except for GridMPI.
func Figure6(reps int) Figure {
	return pingpongFigure("figure6",
		"MPI bandwidth, grid, after TCP tuning",
		Grid, true, false, DefaultSizes(), reps)
}

// Figure7 is the grid pingpong after TCP and MPI tuning: every curve
// matches TCP, with OpenMPI slightly lower on big messages.
func Figure7(reps int) Figure {
	return pingpongFigure("figure7",
		"MPI bandwidth, grid, after TCP tuning and MPI optimizations",
		Grid, true, true, DefaultSizes(), reps)
}

// LatencyRow is one row of Table 4: 1-byte one-way latency in the cluster
// and on the grid, with the overhead over raw TCP.
type LatencyRow struct {
	Impl          string
	Cluster, Grid time.Duration
	OverCluster   time.Duration
	OverGrid      time.Duration
}

// Table4 measures the latency comparison of Table 4.
func Table4(reps int) []LatencyRow {
	measure := func(impl string, placement Placement) time.Duration {
		k, w := NewPingPongWorld(impl, false, false, placement)
		defer k.Close()
		lat, err := perf.Latency1Byte(w, reps)
		if err != nil {
			panic("core: table4: " + err.Error())
		}
		return lat
	}
	var rows []LatencyRow
	var tcpCluster, tcpGrid time.Duration
	for _, impl := range mpiimpl.WithTCP {
		c := measure(impl, Cluster)
		g := measure(impl, Grid)
		if impl == mpiimpl.RawTCP {
			tcpCluster, tcpGrid = c, g
		}
		rows = append(rows, LatencyRow{
			Impl:        impl,
			Cluster:     c,
			Grid:        g,
			OverCluster: c - tcpCluster,
			OverGrid:    g - tcpGrid,
		})
	}
	return rows
}

// Trace is one Figure 9 sub-plot: the per-message bandwidth of 1 MB
// pingpongs over time for one implementation.
type Trace struct {
	Label  string
	Points []perf.TracePoint
}

// Figure9 reproduces the slow-start study: 200 messages of 1 MB on the
// fully tuned grid (the study follows the §4.2 tuning), per-message
// bandwidth against time, for raw TCP and the four implementations.
func Figure9(count int) []Trace {
	var traces []Trace
	for _, impl := range mpiimpl.WithTCP {
		k, w := NewPingPongWorld(impl, true, true, Grid)
		pts, err := perf.BandwidthTrace(w, 1<<20, count)
		k.Close()
		if err != nil {
			panic("core: figure9/" + impl + ": " + err.Error())
		}
		traces = append(traces, Trace{Label: impl, Points: pts})
	}
	return traces
}

// ThresholdRow is one row of Table 5: the default eager/rendezvous
// threshold and the swept ideal for cluster and grid.
type ThresholdRow struct {
	Impl     string
	Original string
	Cluster  string
	Grid     string
}

// thresholdCandidates are the swept eager/rendezvous switch points.
var thresholdCandidates = []int{128 << 10, 1 << 20, 8 << 20, 32 << 20, 65 << 20}

// Table5 sweeps the eager/rendezvous threshold per implementation and
// placement and reports the value minimizing total pingpong time for
// messages up to 64 MB (receives pre-posted, as the paper's note says).
// OpenMPI's btl_tcp_eager_limit is capped at 32 MB, so its sweep stops
// there.
func Table5(reps int) []ThresholdRow {
	sweepSizes := []int{256 << 10, 1 << 20, 8 << 20, 48 << 20}
	rows := make([]ThresholdRow, 0, 4)
	for _, impl := range mpiimpl.All {
		base := mpiimpl.Profile(impl)
		if base.EagerThreshold == mpi.Infinite {
			rows = append(rows, ThresholdRow{Impl: impl, Original: "inf", Cluster: "-", Grid: "-"})
			continue
		}
		best := func(placement Placement) int {
			bestThr, bestTime := 0, time.Duration(0)
			for _, thr := range thresholdCandidates {
				if impl == mpiimpl.OpenMPI && thr > 32<<20 {
					continue
				}
				k, w := NewPingPongWorld(impl, true, false, placement)
				w.Prof = w.Prof.WithEagerThreshold(thr)
				pts, err := perf.PingPong(w, sweepSizes, reps)
				k.Close()
				if err != nil {
					panic("core: table5: " + err.Error())
				}
				var total time.Duration
				for _, p := range pts {
					total += p.MinRTT
				}
				// Ties go to the larger threshold: rendezvous never beats
				// eager here, so the ideal is the largest value available.
				if bestTime == 0 || total <= bestTime {
					bestTime, bestThr = total, thr
				}
			}
			return bestThr
		}
		rows = append(rows, ThresholdRow{
			Impl:     impl,
			Original: formatSize(base.EagerThreshold),
			Cluster:  formatSize(best(Cluster)),
			Grid:     formatSize(best(Grid)),
		})
	}
	return rows
}

func formatSize(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + " MB"
	case n >= 1<<10:
		return itoa(n>>10) + " kB"
	default:
		return itoa(n) + " B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
