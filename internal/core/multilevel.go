package core

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
	"repro/internal/tables"
)

// MultilevelCell is one row of the flat-vs-multilevel extension table: a
// collective pattern on an asymmetric layout, fully tuned, with and
// without the topology-aware multilevel algorithms.
type MultilevelCell struct {
	Topo    exp.Topology
	Pattern string
	Flat    time.Duration
	ML      time.Duration
}

// multilevelLayouts are the asymmetric testbeds of the comparison: the
// two-site split the paper measures plus the 3- and 4-site layouts on
// which gridBcast/gridAllreduce fall back to flat trees — the gap the
// multilevel tuning level exists to close.
func multilevelLayouts() []exp.Topology {
	return []exp.Topology{
		exp.Asym(exp.Site(grid5000.Rennes, 8), exp.Site(grid5000.Nancy, 4)),
		exp.Asym(exp.Site(grid5000.Rennes, 4), exp.Site(grid5000.Nancy, 2), exp.Site(grid5000.Sophia, 2)),
		exp.Asym(exp.Site(grid5000.Rennes, 4), exp.Site(grid5000.Nancy, 2), exp.Site(grid5000.Sophia, 1), exp.Site(grid5000.Toulouse, 1)),
	}
}

// MultilevelTable measures GridMPI fully tuned against the same profile
// with Tuning.Multilevel on, for size-byte collectives across the
// asymmetric layouts. The cells are ordinary cached experiments.
func MultilevelTable(r *exp.Runner, size, iters int) []MultilevelCell {
	patterns := []string{"bcast", "reduce", "allreduce", "gather", "scatter", "allgather", "alltoall", "barrier"}
	var exps []exp.Experiment
	var cells []MultilevelCell
	for _, topo := range multilevelLayouts() {
		for _, p := range patterns {
			for _, tun := range []exp.Tuning{{TCP: true, MPI: true}, exp.MultilevelTuning} {
				exps = append(exps, exp.Experiment{
					Impl:     mpiimpl.GridMPI,
					Tuning:   tun,
					Topology: topo,
					Workload: exp.PatternWorkload(p, size, iters),
				})
			}
			cells = append(cells, MultilevelCell{Topo: topo, Pattern: p})
		}
	}
	results := r.RunAll(exps)
	for i := range cells {
		flat, ml := results[2*i], results[2*i+1]
		if flat.Err != "" {
			panic("core: multilevel table: " + flat.Err)
		}
		if ml.Err != "" {
			panic("core: multilevel table: " + ml.Err)
		}
		cells[i].Flat = flat.Elapsed
		cells[i].ML = ml.Elapsed
	}
	return cells
}

// RenderMultilevelTable formats the comparison, one row per layout ×
// collective with the multilevel speedup.
func RenderMultilevelTable(cells []MultilevelCell, size int) string {
	headers := []string{"layout", "collective", "fully-tuned", "multilevel", "speedup"}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			c.Topo.String(),
			c.Pattern,
			fmt.Sprintf("%.1fms", float64(c.Flat)/float64(time.Millisecond)),
			fmt.Sprintf("%.1fms", float64(c.ML)/float64(time.Millisecond)),
			fmt.Sprintf("%.2fx", float64(c.Flat)/float64(c.ML)),
		})
	}
	title := fmt.Sprintf("Extension: flat vs multilevel collectives at %s (GridMPI, fully tuned)", tables.Size(int64(size)))
	return title + "\n" + tables.Render(headers, rows)
}
