package core

import (
	"testing"

	"repro/internal/tcpsim"
)

// TestExtensionMPICHG2 checks the parallel-streams payoff: on an untuned
// WAN, four streams multiply the window-limited bandwidth severalfold.
func TestExtensionMPICHG2(t *testing.T) {
	pts := ExtensionMPICHG2(testRunner, 10)
	last := pts[len(pts)-1] // 64 MB
	gain := last.MPICHG2Mbps / last.MPICH2Mbps
	if gain < 2.5 {
		t.Errorf("4-stream gain at 64 MB = %.2fx, want ≥2.5 (≈4 windows in flight)", gain)
	}
	if gain > 4.6 {
		t.Errorf("4-stream gain = %.2fx exceeds the stream count", gain)
	}
	if last.MPICH2Mbps > 120 {
		t.Errorf("MPICH2 untuned baseline = %.0f Mbps, want window-limited <120", last.MPICH2Mbps)
	}
}

// TestBufferSweep checks the §4.2.1 ablation: bandwidth grows with the
// buffer until the BDP (~1.45 MB), then plateaus at line rate.
func TestBufferSweep(t *testing.T) {
	pts := BufferSweep(testRunner, 10)
	for i := 1; i < len(pts); i++ {
		if pts[i].Mbps+30 < pts[i-1].Mbps {
			t.Errorf("bandwidth decreased with larger buffers: %v -> %v Mbps at %d B",
				pts[i-1].Mbps, pts[i].Mbps, pts[i].BufferBytes)
		}
	}
	small := pts[0] // 64 kB
	if small.Mbps > 60 {
		t.Errorf("64 kB buffer gives %.0f Mbps, want window-limited ≈33", small.Mbps)
	}
	big := pts[len(pts)-1] // 8 MB
	if big.Mbps < 800 {
		t.Errorf("8 MB buffer gives %.0f Mbps, want near line rate", big.Mbps)
	}
	// The window-limited regime scales linearly with buffer size.
	ratio := pts[2].Mbps / pts[0].Mbps // 256 kB vs 64 kB
	if ratio < 3 || ratio > 5 {
		t.Errorf("window-limited scaling 64k→256k = %.2fx, want ≈4x", ratio)
	}
}

// TestWindowCapExplicitSweep pins the effective windows the sweep relies
// on (3/4 advertised-window rule applied to explicit buffers).
func TestWindowCapExplicitSweep(t *testing.T) {
	cfg := tcpsim.Tuned4MB()
	cfg.RmemMax = 1 << 20
	cfg.WmemMax = 1 << 20
	if got := cfg.WindowCap(tcpsim.BufferPolicy{Explicit: 1 << 20}); got != 768<<10 {
		t.Fatalf("explicit 1 MB cap = %d, want 786432", got)
	}
}
