package core

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
	"repro/internal/perf"
	"repro/internal/tables"
)

// The experiments in this file go beyond the paper's figures: they cover
// the future work its §5 announces (MPICH-G2) and ablations of the design
// choices DESIGN.md calls out (socket-buffer sizing, pacing, congestion
// control, grid collectives).

// StreamsPoint is one row of the parallel-streams extension experiment.
type StreamsPoint struct {
	Size        int
	MPICH2Mbps  float64
	MPICHG2Mbps float64
}

// ExtensionMPICHG2 measures MPICH-G2's parallel-stream large-message
// support against MPICH2 on an untuned WAN: with default socket buffers,
// k streams carry k windows, multiplying the window-limited bandwidth —
// the reason MPICH-G2's "support for large messages using several TCP
// streams" (§2.1.5) matters on unconfigured grids.
func ExtensionMPICHG2(r *exp.Runner, reps int) []StreamsPoint {
	sizes := []int{1 << 20, 4 << 20, 16 << 20, 64 << 20}
	measure := func(impl string) []perf.Point {
		res := r.Run(exp.Experiment{
			Impl:     impl,
			Topology: Grid.Topology(),
			Workload: exp.PingPongWorkload(sizes, reps),
		})
		if res.Err != "" {
			panic("core: extension-g2: " + res.Err)
		}
		return res.Points
	}
	mp := measure(mpiimpl.MPICH2)
	g2 := measure(mpiimpl.MPICHG2)
	out := make([]StreamsPoint, len(sizes))
	for i := range sizes {
		out[i] = StreamsPoint{Size: sizes[i], MPICH2Mbps: mp[i].Mbps, MPICHG2Mbps: g2[i].Mbps}
	}
	return out
}

// RenderExtensionMPICHG2 formats the parallel-streams comparison.
func RenderExtensionMPICHG2(pts []StreamsPoint) string {
	headers := []string{"size", "MPICH2 (Mbps)", "MPICH-G2, 4 streams (Mbps)", "gain"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			tables.Size(int64(p.Size)),
			fmt.Sprintf("%.1f", p.MPICH2Mbps),
			fmt.Sprintf("%.1f", p.MPICHG2Mbps),
			fmt.Sprintf("%.1fx", p.MPICHG2Mbps/p.MPICH2Mbps),
		})
	}
	return "Extension: MPICH-G2 parallel streams on an untuned WAN\n" + tables.Render(headers, rows)
}

// BufferPoint is one row of the socket-buffer sweep.
type BufferPoint struct {
	BufferBytes int
	Mbps        float64
}

// BufferSweep is the §4.2.1 ablation: 64 MB WAN bandwidth as a function of
// the socket-buffer size, showing the window-limited regime (bandwidth ∝
// buffer/RTT) up to the ≈1.45 MB bandwidth-delay product and the line-rate
// plateau beyond it.
func BufferSweep(r *exp.Runner, reps int) []BufferPoint {
	bufs := []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	exps := make([]exp.Experiment, len(bufs))
	for i, buf := range bufs {
		exps[i] = exp.Experiment{
			Impl:         mpiimpl.RawTCP,
			Tuning:       exp.Tuning{TCP: true},
			Topology:     Grid.Topology(),
			Workload:     exp.PingPongWorkload([]int{64 << 20}, reps),
			SocketBuffer: buf,
		}
	}
	out := make([]BufferPoint, 0, len(bufs))
	for i, res := range r.RunAll(exps) {
		if res.Err != "" {
			panic("core: buffer sweep: " + res.Err)
		}
		out = append(out, BufferPoint{BufferBytes: bufs[i], Mbps: res.Points[0].Mbps})
	}
	return out
}

// RenderBufferSweep formats the buffer sweep.
func RenderBufferSweep(pts []BufferPoint) string {
	headers := []string{"socket buffer", "64 MB bandwidth (Mbps)"}
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{tables.Size(int64(p.BufferBytes)), fmt.Sprintf("%.1f", p.Mbps)})
	}
	return "Ablation: WAN bandwidth vs socket-buffer size (BDP ≈ 1.45 MB)\n" + tables.Render(headers, rows)
}
