package core

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
	"repro/internal/perf"
)

// testReps keeps unit tests fast; the cmd tools and benches use the
// paper's 200.
const testReps = 20

// testRunner is shared by every generator test in the package: the
// generators are pure functions of their experiments, so sharing one
// fingerprint cache across (parallel) tests only removes duplicate work.
var testRunner = exp.NewRunner(0)

func maxMbps(pts []perf.Point) float64 {
	best := 0.0
	for _, p := range pts {
		if p.Mbps > best {
			best = p.Mbps
		}
	}
	return best
}

// TestFigure3Shape: with default parameters on the grid, nothing exceeds
// ~120 Mbps, and the per-implementation buffer behaviours order the curves
// TCP/MPICH2/Madeleine (~120) > OpenMPI (~88) > GridMPI (~60).
func TestFigure3Shape(t *testing.T) {
	fig := Figure3(testRunner, testReps)
	for _, s := range fig.Series {
		if got := maxMbps(s.Points); got > 120 {
			t.Errorf("%s reaches %.0f Mbps with default buffers, want <120", s.Label, got)
		}
	}
	tcp := maxMbps(fig.Get(mpiimpl.RawTCP))
	ompi := maxMbps(fig.Get(mpiimpl.OpenMPI))
	gmpi := maxMbps(fig.Get(mpiimpl.GridMPI))
	if !(tcp > ompi && ompi > gmpi) {
		t.Errorf("curve ordering: tcp=%.0f openmpi=%.0f gridmpi=%.0f, want tcp>openmpi>gridmpi", tcp, ompi, gmpi)
	}
	if tcp < 75 || tcp > 120 {
		t.Errorf("TCP default grid max = %.0f Mbps, want ≈90-120", tcp)
	}
	if gmpi < 35 || gmpi > 65 {
		t.Errorf("GridMPI default grid max = %.0f Mbps, want ≈45-60", gmpi)
	}
	// Steady state at 64 MB is strictly window-limited: window/RTT.
	if bw := fig.At(mpiimpl.RawTCP, 64<<20); bw < 75 || bw > 120 {
		t.Errorf("TCP default grid steady bandwidth = %.0f Mbps, want ≈90", bw)
	}
}

// TestFigure5Shape: on the cluster everything reaches the 940 Mbps TCP
// goodput, with half bandwidth already around 8 kB.
func TestFigure5Shape(t *testing.T) {
	fig := Figure5(testRunner, testReps)
	for _, s := range fig.Series {
		if got := maxMbps(s.Points); got < 880 || got > 945 {
			t.Errorf("%s cluster max = %.0f Mbps, want ≈940", s.Label, got)
		}
	}
	// Half bandwidth around 8 kB (paper §4.2.1).
	if bw := fig.At(mpiimpl.RawTCP, 8<<10); bw < 350 || bw > 650 {
		t.Errorf("TCP cluster bandwidth at 8 kB = %.0f Mbps, want ≈ half of 940", bw)
	}
	// The eager/rendezvous dip: MPICH-Madeleine (128 kB threshold) loses
	// bandwidth when crossing into rendezvous.
	below := fig.At(mpiimpl.Madeleine, 128<<10)
	above := fig.At(mpiimpl.Madeleine, 256<<10)
	if above >= below {
		t.Errorf("no rendezvous dip on cluster: 128k=%.0f, 256k=%.0f", below, above)
	}
}

// TestFigure6Shape: TCP tuning recovers ~900 Mbps on the grid; the
// rendezvous dip remains for all but GridMPI; half bandwidth moves out to
// ~1 MB.
func TestFigure6Shape(t *testing.T) {
	fig := Figure6(testRunner, testReps)
	for _, s := range fig.Series {
		if got := maxMbps(s.Points); got < 800 || got > 945 {
			t.Errorf("%s tuned grid max = %.0f Mbps, want ≈900", s.Label, got)
		}
	}
	// MPICH2's threshold at 256 kB: crossing it on an 11.6 ms path costs a
	// full round trip and craters the curve.
	below := fig.At(mpiimpl.MPICH2, 256<<10)
	above := fig.At(mpiimpl.MPICH2, 512<<10)
	if above >= below*0.95 {
		t.Errorf("no grid rendezvous dip for MPICH2: 256k=%.0f, 512k=%.0f", below, above)
	}
	// GridMPI has no threshold: its curve is monotone in this region.
	g1, g2 := fig.At(mpiimpl.GridMPI, 256<<10), fig.At(mpiimpl.GridMPI, 512<<10)
	if g2 < g1 {
		t.Errorf("GridMPI shows a dip it should not have: 256k=%.0f, 512k=%.0f", g1, g2)
	}
	// Half bandwidth ≈1 MB on the grid (paper: "the half bandwidth is only
	// reached around 1 MB in the grid against 8 kB in the cluster").
	if bw := fig.At(mpiimpl.RawTCP, 1<<20); bw < 300 || bw > 650 {
		t.Errorf("TCP tuned grid bandwidth at 1 MB = %.0f Mbps, want ≈ half rate", bw)
	}
}

// TestFigure7Shape: full tuning removes the dips; OpenMPI trails slightly
// on big messages (fragment pipeline).
func TestFigure7Shape(t *testing.T) {
	fig := Figure7(testRunner, testReps)
	for _, s := range fig.Series {
		// No dips: crossing 256 kB → 512 kB must not lose >5%.
		b, a := fig.At(s.Label, 256<<10), fig.At(s.Label, 512<<10)
		if a < b*0.95 {
			t.Errorf("%s still dips after tuning: 256k=%.0f, 512k=%.0f", s.Label, b, a)
		}
	}
	mp := fig.At(mpiimpl.MPICH2, 64<<20)
	om := fig.At(mpiimpl.OpenMPI, 64<<20)
	if om >= mp {
		t.Errorf("OpenMPI big-message bandwidth (%.0f) not below MPICH2 (%.0f)", om, mp)
	}
	if om < mp*0.80 {
		t.Errorf("OpenMPI trails too much: %.0f vs %.0f", om, mp)
	}
}

// TestTable4 reproduces the latency table within a microsecond-scale
// tolerance.
func TestTable4(t *testing.T) {
	rows := Table4(testRunner, testReps)
	want := map[string]struct{ cluster, grid time.Duration }{
		mpiimpl.RawTCP:    {41 * time.Microsecond, 5812 * time.Microsecond},
		mpiimpl.MPICH2:    {46 * time.Microsecond, 5818 * time.Microsecond},
		mpiimpl.GridMPI:   {46 * time.Microsecond, 5819 * time.Microsecond},
		mpiimpl.Madeleine: {62 * time.Microsecond, 5826 * time.Microsecond},
		mpiimpl.OpenMPI:   {46 * time.Microsecond, 5820 * time.Microsecond},
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		w, ok := want[row.Impl]
		if !ok {
			t.Fatalf("unexpected row %q", row.Impl)
		}
		if d := row.Cluster - w.cluster; d < -2*time.Microsecond || d > 2*time.Microsecond {
			t.Errorf("%s cluster latency = %v, want ≈%v", row.Impl, row.Cluster, w.cluster)
		}
		if d := row.Grid - w.grid; d < -4*time.Microsecond || d > 4*time.Microsecond {
			t.Errorf("%s grid latency = %v, want ≈%v", row.Impl, row.Grid, w.grid)
		}
	}
}

// TestFigure9Shape: all traces ramp to a 1 MB-message plateau (~500-580
// Mbps); GridMPI (paced) gets there several times faster than MPICH2.
func TestFigure9Shape(t *testing.T) {
	traces := Figure9(testRunner, 200)
	byLabel := make(map[string][]perf.TracePoint)
	for _, tr := range traces {
		byLabel[tr.Label] = tr.Points
		if max := perf.MaxMbps(tr.Points); max < 450 || max > 600 {
			t.Errorf("%s plateau = %.0f Mbps, want ≈550 (1 MB messages are latency-bound)", tr.Label, max)
		}
	}
	gm := perf.TimeTo(byLabel[mpiimpl.GridMPI], 450)
	mp := perf.TimeTo(byLabel[mpiimpl.MPICH2], 450)
	tcp := perf.TimeTo(byLabel[mpiimpl.RawTCP], 450)
	if gm < 0 || mp < 0 || tcp < 0 {
		t.Fatalf("some trace never reached 450 Mbps: gridmpi=%v mpich2=%v tcp=%v", gm, mp, tcp)
	}
	if ratio := float64(mp) / float64(gm); ratio < 3 {
		t.Errorf("GridMPI ramp advantage = %.1fx (gridmpi %v, mpich2 %v), want ≥3x", ratio, gm, mp)
	}
	if mp < 500*time.Millisecond {
		t.Errorf("MPICH2 ramp = %v, want a multi-second second phase like the paper's ~4 s", mp)
	}
}

// TestTable5 reproduces the ideal-threshold table: eager always wins below
// 64 MB, so the swept ideal is 65 MB (32 MB for OpenMPI's capped
// parameter), and GridMPI needs no change.
func TestTable5(t *testing.T) {
	rows := Table5(testRunner, 5)
	want := map[string]ThresholdRow{
		mpiimpl.MPICH2:    {Original: "256 kB", Cluster: "65 MB", Grid: "65 MB"},
		mpiimpl.GridMPI:   {Original: "inf", Cluster: "-", Grid: "-"},
		mpiimpl.Madeleine: {Original: "128 kB", Cluster: "65 MB", Grid: "65 MB"},
		mpiimpl.OpenMPI:   {Original: "64 kB", Cluster: "32 MB", Grid: "32 MB"},
	}
	for _, row := range rows {
		w := want[row.Impl]
		if row.Original != w.Original || row.Cluster != w.Cluster || row.Grid != w.Grid {
			t.Errorf("%s: got {%s %s %s}, want {%s %s %s}", row.Impl,
				row.Original, row.Cluster, row.Grid, w.Original, w.Cluster, w.Grid)
		}
	}
}
