package core

import (
	"testing"

	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
)

// nasScale keeps the NAS figure tests fast while leaving enough
// iterations for TCP windows to open. Short mode halves the workload
// again: the qualitative shapes (orderings, DNFs, ratios) survive, and
// `go test -short ./...` stays in the seconds while full runs keep the
// calibrated fidelity.
func nasScale(t *testing.T) float64 {
	t.Helper()
	if testing.Short() {
		// 0.06 is the smallest scale that keeps ≥2 iterations for every
		// kernel (one MG iteration overweights the TCP ramp and drops its
		// Figure 13 speedup below 1).
		return 0.06
	}
	return 0.1
}

// TestFigure10Shape asserts the paper's qualitative Figure 10: GridMPI is
// the best overall implementation on the grid, with its largest advantage
// on the collective benchmarks, and MPICH-Madeleine DNFs on BT and SP.
func TestFigure10Shape(t *testing.T) {
	t.Parallel()
	fig := Figure10(testRunner, nasScale(t))
	// Madeleine's DNFs.
	for _, bench := range []string{"BT", "SP"} {
		if _, dnf := fig.At(bench, mpiimpl.Madeleine); !dnf {
			v, _ := fig.At(bench, mpiimpl.Madeleine)
			t.Errorf("Madeleine %s = %.2f, want DNF", bench, v)
		}
	}
	// Madeleine completes the others.
	for _, bench := range []string{"EP", "CG", "MG", "LU", "IS", "FT"} {
		if _, dnf := fig.At(bench, mpiimpl.Madeleine); dnf {
			t.Errorf("Madeleine unexpectedly DNF on %s", bench)
		}
	}
	// GridMPI's collective advantage.
	if ft, _ := fig.At("FT", mpiimpl.GridMPI); ft < 1.5 {
		t.Errorf("GridMPI FT = %.2f, want ≥1.5 (paper ≈3.5)", ft)
	}
	if is, _ := fig.At("IS", mpiimpl.GridMPI); is < 1.05 {
		t.Errorf("GridMPI IS = %.2f, want ≥1.05 (paper ≈3)", is)
	}
	// GridMPI never loses badly anywhere.
	for _, bench := range fig.Benchmarks {
		if v, dnf := fig.At(bench, mpiimpl.GridMPI); dnf || v < 0.85 {
			t.Errorf("GridMPI %s = %.2f (dnf=%v), want ≥0.85", bench, v, dnf)
		}
	}
	// EP is compute-bound: everyone is within a few percent of MPICH2.
	for _, impl := range mpiimpl.All {
		if v, dnf := fig.At("EP", impl); dnf || v < 0.95 || v > 1.05 {
			t.Errorf("%s EP = %.2f (dnf=%v), want ≈1", impl, v, dnf)
		}
	}
}

// TestFigure11Shape: on 2+2 nodes the same orderings hold, with smaller
// margins.
func TestFigure11Shape(t *testing.T) {
	t.Parallel()
	fig := Figure11(testRunner, nasScale(t))
	if ft, dnf := fig.At("FT", mpiimpl.GridMPI); dnf || ft < 1.1 {
		t.Errorf("GridMPI FT on 2+2 = %.2f (dnf=%v), want ≥1.1", ft, dnf)
	}
	for _, impl := range mpiimpl.All {
		if v, dnf := fig.At("EP", impl); dnf || v < 0.95 || v > 1.05 {
			t.Errorf("%s EP = %.2f (dnf=%v), want ≈1", impl, v, dnf)
		}
	}
}

// TestFigure12Shape asserts the grid-overhead story: EP ≈ 1; the big
// point-to-point codes tolerate the WAN; CG, MG and IS suffer most.
func TestFigure12Shape(t *testing.T) {
	t.Parallel()
	fig := Figure12(testRunner, nasScale(t))
	g := func(bench string) float64 {
		v, dnf := fig.At(bench, mpiimpl.GridMPI)
		if dnf {
			t.Fatalf("GridMPI DNF on %s", bench)
		}
		return v
	}
	if ep := g("EP"); ep < 0.9 || ep > 1.05 {
		t.Errorf("EP = %.2f, want ≈1", ep)
	}
	for _, bench := range []string{"CG", "MG"} {
		if v := g(bench); v > 0.7 {
			t.Errorf("%s = %.2f, want ≤0.7 (small messages suffer the latency)", bench, v)
		}
	}
	for _, bench := range []string{"LU", "SP", "BT"} {
		if v := g(bench); v < 0.55 || v > 1.0 {
			t.Errorf("%s = %.2f, want in [0.55, 1.0] (big messages tolerate the grid)", bench, v)
		}
	}
	// The grid always costs something: no value above ~1.
	for _, bench := range fig.Benchmarks {
		for _, impl := range mpiimpl.All {
			if v, dnf := fig.At(bench, impl); !dnf && v > 1.08 {
				t.Errorf("%s/%s = %.2f > 1: grid beating an equal-size cluster", bench, impl, v)
			}
		}
	}
}

// TestFigure13Shape: quadrupling nodes across the WAN gives a speedup for
// every benchmark (the paper's conclusion), near 4 for LU/BT/EP and modest
// for the latency-bound codes.
func TestFigure13Shape(t *testing.T) {
	t.Parallel()
	fig := Figure13(testRunner, nasScale(t))
	for _, bench := range fig.Benchmarks {
		v, dnf := fig.At(bench, mpiimpl.GridMPI)
		if dnf {
			t.Fatalf("GridMPI DNF on %s", bench)
		}
		if v < 1 {
			t.Errorf("%s speedup = %.2f < 1; the paper finds the grid worthwhile everywhere", bench, v)
		}
		if v > 4.8 {
			t.Errorf("%s speedup = %.2f, above the physical ≈4 limit", bench, v)
		}
	}
	for _, bench := range []string{"EP", "LU", "BT"} {
		if v, _ := fig.At(bench, mpiimpl.GridMPI); v < 2.5 {
			t.Errorf("%s speedup = %.2f, want ≥2.5 (paper ≈3-4)", bench, v)
		}
	}
	cg, _ := fig.At("CG", mpiimpl.GridMPI)
	lu, _ := fig.At("LU", mpiimpl.GridMPI)
	if cg >= lu {
		t.Errorf("CG speedup (%.2f) ≥ LU (%.2f); latency-bound codes must benefit least", cg, lu)
	}
}

func TestTable2Summary(t *testing.T) {
	rows := Table2(testRunner, 0.05)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := make(map[string]CensusRow)
	for _, r := range rows {
		byName[r.Bench] = r
	}
	if byName["IS"].Type != "collective" || byName["FT"].Type != "collective" {
		t.Errorf("IS/FT types = %s/%s, want collective", byName["IS"].Type, byName["FT"].Type)
	}
	for _, b := range []string{"EP", "CG", "MG", "LU", "SP", "BT"} {
		if byName[b].Type != "point-to-point" {
			t.Errorf("%s type = %s, want point-to-point", b, byName[b].Type)
		}
	}
	if byName["LU"].P2PSends <= byName["EP"].P2PSends {
		t.Error("LU must be the most message-intensive benchmark")
	}
}

func TestTable1Features(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("feature rows = %d", len(rows))
	}
	if rows[1].Name != mpiimpl.GridMPI || rows[1].LongDistance == "None" {
		t.Errorf("GridMPI feature row wrong: %+v", rows[1])
	}
}

// TestTable6Shape: Sophia dominates every column; the diagonal (local
// master) is never worse than remote masters for the same cluster.
func TestTable6Shape(t *testing.T) {
	t.Parallel()
	tab := Table6(testRunner, 0.1)
	for _, master := range tab.Masters {
		s := tab.Rays[grid5000.Sophia][master]
		for _, cluster := range tab.Clusters {
			if cluster != grid5000.Sophia && tab.Rays[cluster][master] >= s {
				t.Errorf("master@%s: %s (%.0f) ≥ Sophia (%.0f)", master, cluster, tab.Rays[cluster][master], s)
			}
		}
	}
	for _, cluster := range tab.Clusters {
		local := tab.Rays[cluster][cluster]
		for _, master := range tab.Masters {
			if master == cluster {
				continue
			}
			if local+130 < tab.Rays[cluster][master] {
				t.Errorf("cluster %s: local-master rays/node %.0f well below master@%s %.0f",
					cluster, local, master, tab.Rays[cluster][master])
			}
		}
	}
}

// TestTable7Shape: compute times are nearly equal across master
// locations; merge and total vary only slightly.
func TestTable7Shape(t *testing.T) {
	t.Parallel()
	tab := Table7(testRunner, 0.1)
	var minC, maxC float64
	for i, m := range tab.Masters {
		c := tab.Comp[m].Seconds()
		if i == 0 || c < minC {
			minC = c
		}
		if i == 0 || c > maxC {
			maxC = c
		}
		if tab.Total[m] < tab.Comp[m]+tab.Merge[m] {
			t.Errorf("master@%s: total < comp+merge", m)
		}
	}
	if (maxC-minC)/minC > 0.05 {
		t.Errorf("compute times vary %.1f%% across master locations", 100*(maxC-minC)/minC)
	}
}
