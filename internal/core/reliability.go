package core

import (
	"fmt"

	"repro/internal/exp"
	"repro/internal/tables"
)

// ReliabilityCell is one implementation × tuning cell of the reliability
// matrix: the paper's pingpong measured on the healthy grid and again under
// a fault plan, with the degraded-mode transport counters of the faulted
// run.
type ReliabilityCell struct {
	Impl        string
	Tuning      exp.Tuning
	HealthyMbps float64
	FaultedMbps float64
	// Retransmits counts rounds lost to injected loss, Stalls the
	// link-down episodes, StallSec the total time flows spent parked on a
	// dead link.
	Retransmits float64
	Stalls      float64
	StallSec    float64
	// Failed marks a faulted run that never completed (for example a link
	// taken down and never brought back): the cell reports the failure
	// instead of a bandwidth.
	Failed bool
}

// ReliabilityMatrix re-runs the paper's implementation × tuning pingpong
// grid (the Figure 3/6/7 matrix) under a fault plan and pairs each cell
// with its healthy baseline — what the paper's comparison looks like on the
// grid real users get: dead uplinks, loss and jitter. The healthy cells
// share fingerprints with the regular figures, so a warm cache serves them
// without recomputation.
func ReliabilityMatrix(r *exp.Runner, reps int, plan *exp.FaultPlan) []ReliabilityCell {
	healthy := exp.PaperMatrix(reps).Experiments()
	faulted := make([]exp.Experiment, len(healthy))
	for i, e := range healthy {
		e.Faults = plan
		faulted[i] = e
	}
	hres := r.RunAll(healthy)
	fres := r.RunAll(faulted)
	cells := make([]ReliabilityCell, len(healthy))
	for i := range healthy {
		h, f := hres[i], fres[i]
		if h.Err != "" {
			panic("core: reliability baseline: " + h.Err)
		}
		cells[i] = ReliabilityCell{
			Impl:        h.Exp.Impl,
			Tuning:      h.Exp.Tuning,
			HealthyMbps: h.MaxMbps(),
			FaultedMbps: f.MaxMbps(),
			Retransmits: f.Metrics["fault_retransmits"],
			Stalls:      f.Metrics["fault_link_stalls"],
			StallSec:    f.Metrics["fault_stall_s"],
			Failed:      f.Err != "" || f.DNF,
		}
	}
	return cells
}

// RenderReliabilityMatrix formats the reliability matrix.
func RenderReliabilityMatrix(plan *exp.FaultPlan, cells []ReliabilityCell) string {
	headers := []string{"impl", "tuning", "healthy (Mbps)", "faulted (Mbps)", "kept", "retrans", "stalls", "stall (s)"}
	var rows [][]string
	for _, c := range cells {
		faulted, kept := "FAIL", "-"
		if !c.Failed {
			faulted = fmt.Sprintf("%.1f", c.FaultedMbps)
			if c.HealthyMbps > 0 {
				kept = fmt.Sprintf("%.0f%%", 100*c.FaultedMbps/c.HealthyMbps)
			}
		}
		rows = append(rows, []string{
			c.Impl,
			c.Tuning.String(),
			fmt.Sprintf("%.1f", c.HealthyMbps),
			faulted,
			kept,
			fmt.Sprintf("%.0f", c.Retransmits),
			fmt.Sprintf("%.0f", c.Stalls),
			fmt.Sprintf("%.2f", c.StallSec),
		})
	}
	return fmt.Sprintf("Reliability: the paper's matrix under faults [%s]\n", plan) +
		tables.Render(headers, rows)
}
