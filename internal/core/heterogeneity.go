package core

import (
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/tables"
)

// This file implements the paper's second future-work thread (§5):
// "we will test the heterogeneity management of each implementation with
// different high performance networks. Using these networks for local
// communications can be efficient ... but the overhead introduced by the
// management of heterogeneity has to be less important than the TCP cost."
//
// We model a Myrinet-class local fabric and an MPICH-Madeleine-style
// gateway, and measure at which per-message gateway overhead the
// high-speed fabric stops paying off against plain TCP on Ethernet.

// Fabric describes an intra-cluster interconnect.
type Fabric struct {
	Name   string
	OneWay time.Duration // switch+wire one-way delay
	Rate   float64       // bytes/second
	// StackOverhead is the per-endpoint software cost; OS-bypass fabrics
	// (Myrinet MX) are far cheaper than the kernel TCP stack.
	StackOverhead time.Duration
}

// Fabrics of the era, from the paper's Table 1 ecosystem.
var (
	GigabitEthernetFabric = Fabric{"1 GbE / TCP", 29 * time.Microsecond, 125e6, 6 * time.Microsecond}
	MyrinetFabric         = Fabric{"Myrinet MX", 3 * time.Microsecond, 250e6, 1 * time.Microsecond}
	InfinibandFabric      = Fabric{"Infiniband", 2 * time.Microsecond, 1e9, 1 * time.Microsecond}
)

// HeterogeneityPoint is one measurement of the gateway experiment.
type HeterogeneityPoint struct {
	Fabric          string
	GatewayOverhead time.Duration
	Latency1B       time.Duration
	Mbps1MB         float64
	BeatsTCP        bool
}

// ExtensionHeterogeneity measures intra-cluster pingpongs over high-speed
// fabrics reached through a Madeleine-style gateway with increasing
// per-message overheads, against the plain TCP/Ethernet baseline. Every
// (fabric, gateway) cell is one fabric-workload experiment on the shared
// runner.
func ExtensionHeterogeneity(r *exp.Runner, reps int) []HeterogeneityPoint {
	gateways := []time.Duration{0, 10 * time.Microsecond, 40 * time.Microsecond, 160 * time.Microsecond}
	var exps []exp.Experiment
	fabricExp := func(f Fabric, gw time.Duration) exp.Experiment {
		return exp.Experiment{
			Impl: mpiimpl.Madeleine,
			// The eager/rendezvous switch is tuned away per Table 5.
			EagerThreshold: mpi.Infinite,
			Workload:       exp.FabricWorkload(f.OneWay, f.Rate, f.StackOverhead, gw, []int{1, 1 << 20}, reps),
		}
	}
	exps = append(exps, fabricExp(GigabitEthernetFabric, 0))
	for _, fabric := range []Fabric{MyrinetFabric, InfinibandFabric} {
		for _, gw := range gateways {
			exps = append(exps, fabricExp(fabric, gw))
		}
	}
	results := r.RunAll(exps)
	measure := func(i int) (time.Duration, float64) {
		res := results[i]
		if res.Err != "" {
			panic("core: heterogeneity: " + res.Err)
		}
		return res.Points[0].OneWay(), res.Points[1].Mbps
	}

	baseLat, baseBW := measure(0)
	out := []HeterogeneityPoint{{
		Fabric:    GigabitEthernetFabric.Name,
		Latency1B: baseLat,
		Mbps1MB:   baseBW,
		BeatsTCP:  true,
	}}
	i := 1
	for _, fabric := range []Fabric{MyrinetFabric, InfinibandFabric} {
		for _, gw := range gateways {
			lat, bw := measure(i)
			i++
			out = append(out, HeterogeneityPoint{
				Fabric:          fabric.Name,
				GatewayOverhead: gw,
				Latency1B:       lat,
				Mbps1MB:         bw,
				BeatsTCP:        lat < baseLat && bw > baseBW,
			})
		}
	}
	return out
}

// RenderExtensionHeterogeneity formats the gateway experiment.
func RenderExtensionHeterogeneity(pts []HeterogeneityPoint) string {
	headers := []string{"fabric", "gateway overhead", "1 B latency", "1 MB bandwidth", "beats TCP/GbE"}
	var rows [][]string
	for _, p := range pts {
		gw := "-"
		if p.Fabric != GigabitEthernetFabric.Name {
			gw = p.GatewayOverhead.String()
		}
		beats := "yes"
		if !p.BeatsTCP {
			beats = "no"
		}
		rows = append(rows, []string{
			p.Fabric, gw, p.Latency1B.String(),
			fmt.Sprintf("%.0f", p.Mbps1MB), beats,
		})
	}
	return "Extension: high-speed local fabrics behind a Madeleine-style gateway\n" +
		tables.Render(headers, rows)
}
