package grid5000

import (
	"testing"
	"time"
)

func TestRTTMatrixSymmetricAndComplete(t *testing.T) {
	names := []string{Rennes, Nancy, Sophia, Toulouse}
	for i, a := range names {
		for j, b := range names {
			if i == j {
				continue
			}
			if RTT(a, b) != RTT(b, a) {
				t.Fatalf("RTT(%s,%s) != RTT(%s,%s)", a, b, b, a)
			}
		}
	}
	if RTT(Rennes, Nancy) != 11600*time.Microsecond {
		t.Fatalf("Rennes-Nancy RTT = %v, want 11.6ms", RTT(Rennes, Nancy))
	}
}

func TestRennesNancyTopology(t *testing.T) {
	net := RennesNancy(8)
	if got := len(net.Hosts()); got != 16 {
		t.Fatalf("hosts = %d, want 16", got)
	}
	p := net.Path(net.Host("rennes-1"), net.Host("nancy-1"))
	if p.RTT() != 11600*time.Microsecond {
		t.Fatalf("WAN RTT = %v", p.RTT())
	}
	intra := net.Path(net.Host("rennes-1"), net.Host("rennes-2"))
	if intra.OneWay != IntraClusterOneWay {
		t.Fatalf("intra OWD = %v", intra.OneWay)
	}
}

func TestRayTestbedSpeeds(t *testing.T) {
	net := RayTestbed()
	if got := len(net.Hosts()); got != 32 {
		t.Fatalf("hosts = %d, want 32", got)
	}
	s := net.Host("sophia-1").CPUSpeed
	for _, other := range []string{"rennes-1", "nancy-1", "toulouse-1"} {
		if net.Host(other).CPUSpeed >= s {
			t.Fatalf("Sophia should be the fastest cluster (%s has %.2f ≥ %.2f)",
				other, net.Host(other).CPUSpeed, s)
		}
	}
	if net.Host("nancy-1").CPUSpeed >= net.Host("rennes-1").CPUSpeed {
		t.Fatal("Nancy should be slower than Rennes")
	}
}

func TestUnknownSitePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown site did not panic")
		}
	}()
	Build(2, "lyon") // not in the four-site spec table
}
