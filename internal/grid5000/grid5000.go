// Package grid5000 provides ready-made netsim topologies for the Grid'5000
// testbeds the paper experiments on: the Rennes–Nancy pingpong/NPB setup of
// Figure 2 / Table 3, and the four-site ray2mesh setup of Figure 8.
//
// One-way delays are chosen so a raw TCP pingpong reproduces Table 4: the
// 29 µs intra-cluster delay plus 2×6 µs of stack overhead gives the paper's
// 41 µs cluster latency, and half the published RTTs plus stack overhead
// gives the grid latencies (5812 µs for Rennes–Nancy).
package grid5000

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcpsim"
)

// Site names used throughout the experiments.
const (
	Rennes   = "rennes"
	Nancy    = "nancy"
	Sophia   = "sophia"
	Toulouse = "toulouse"
)

// IntraClusterOneWay is the one-way switch+wire delay inside a cluster.
const IntraClusterOneWay = 29 * time.Microsecond

// Site describes one Grid'5000 cluster as used in the paper.
type Site struct {
	Name string
	// CPUSpeed is the relative node speed (Rennes Opteron 248 = 1.0),
	// calibrated from Table 3 clock rates and the Table 6 per-cluster ray
	// throughput ("Nancy < Rennes, Toulouse < Sophia").
	CPUSpeed  float64
	Processor string
}

// Sites lists the four clusters of the ray2mesh experiment in a fixed
// order (deterministic topology construction).
var Sites = []Site{
	{Rennes, 1.00, "AMD Opteron 248, 2.2 GHz"},
	{Nancy, 0.97, "AMD Opteron 246, 2.0 GHz"},
	{Sophia, 1.22, "AMD Opteron, 2.4 GHz class"},
	{Toulouse, 0.99, "AMD Opteron, 2.0 GHz class"},
}

// rttMillis is the published round-trip matrix (Figure 8, plus the text's
// Rennes–Sophia ≈19 ms). Keys are alphabetically ordered pairs.
var rttMillis = map[[2]string]float64{
	{Nancy, Rennes}:    11.6,
	{Nancy, Sophia}:    17.2,
	{Nancy, Toulouse}:  17.8,
	{Rennes, Sophia}:   19.2,
	{Rennes, Toulouse}: 14.5,
	{Sophia, Toulouse}: 19.9,
}

// RTT returns the WAN round-trip time between two distinct sites.
func RTT(a, b string) time.Duration {
	if a > b {
		a, b = b, a
	}
	ms, ok := rttMillis[[2]string{a, b}]
	if !ok {
		panic(fmt.Sprintf("grid5000: no RTT for %s-%s", a, b))
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// OneWay returns half the WAN RTT between two sites.
func OneWay(a, b string) time.Duration { return RTT(a, b) / 2 }

func spec(name string) Site {
	s, ok := Lookup(name)
	if !ok {
		panic("grid5000: unknown site " + name)
	}
	return s
}

// Lookup returns the named site's description, reporting whether it is
// one of the four paper clusters (callers that prefer errors over panics
// validate with it before building).
func Lookup(name string) (Site, bool) {
	for _, s := range Sites {
		if s.Name == name {
			return s, true
		}
	}
	return Site{}, false
}

// SiteCount pairs a site with its node count, for layouts whose clusters
// contribute different numbers of nodes.
type SiteCount struct {
	Name  string
	Nodes int
}

// Build constructs a network with the named sites, n nodes each, 1 Gbps
// NICs, 10 Gbps site uplinks, and the published WAN delays between every
// pair of requested sites.
func Build(nodesPerSite int, sites ...string) *netsim.Network {
	layout := make([]SiteCount, len(sites))
	for i, name := range sites {
		layout[i] = SiteCount{Name: name, Nodes: nodesPerSite}
	}
	return BuildLayout(layout)
}

// BuildLayout is Build for per-site node counts: each entry contributes
// its own number of nodes, with the same NICs, uplinks and WAN delays.
func BuildLayout(layout []SiteCount) *netsim.Network {
	net := netsim.New()
	for _, sc := range layout {
		s := spec(sc.Name)
		net.AddSite(s.Name, sc.Nodes, s.CPUSpeed, tcpsim.GigabitEthernet, IntraClusterOneWay)
		net.SetUplink(s.Name, tcpsim.TenGigabitEthernet)
	}
	for i := 0; i < len(layout); i++ {
		for j := i + 1; j < len(layout); j++ {
			net.ConnectSites(layout[i].Name, layout[j].Name, OneWay(layout[i].Name, layout[j].Name))
		}
	}
	return net
}

// RennesNancy builds the Figure 2 testbed: n nodes in Rennes and n in
// Nancy across the 11.6 ms RTT WAN.
func RennesNancy(nodesPerSite int) *netsim.Network {
	return Build(nodesPerSite, Rennes, Nancy)
}

// RayTestbed builds the Figure 8 testbed: all four sites with eight nodes
// each, as used by the ray2mesh experiments.
func RayTestbed() *netsim.Network {
	return Build(8, Rennes, Nancy, Sophia, Toulouse)
}
