package npb

import (
	"fmt"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Placement of the NPB job's ranks.
type Placement int

const (
	// SingleCluster puts all ranks in Rennes.
	SingleCluster Placement = iota
	// TwoClusters splits ranks evenly between Rennes and Nancy across the
	// 11.6 ms WAN (the paper's 8-8 and 2-2 layouts).
	TwoClusters
)

// Job describes one benchmark execution.
type Job struct {
	Bench     string
	Impl      string // mpiimpl name
	NP        int
	Placement Placement
	Scale     float64
	// Timeout aborts the run (the paper's "application timeout"); zero
	// means a generous default of one simulated hour.
	Timeout time.Duration
}

// Result of a Job.
type Result struct {
	Job     Job
	Elapsed time.Duration
	// DNF is set when the job hit its timeout, as MPICH-Madeleine does on
	// grid BT/SP in the paper.
	DNF bool
	// Err reports a job that could not run at all (e.g. a TwoClusters
	// placement whose NP does not split evenly); nothing was simulated
	// and the other fields are zero.
	Err string
	// Stats is the world's communication census.
	Stats *mpi.Stats
}

// Run executes the job on a fresh simulated testbed. NPB jobs always run
// with the paper's §4.2 TCP tuning (the study tunes first, then runs the
// applications); implementation defaults like eager thresholds stay.
func Run(job Job) Result {
	if job.Scale == 0 {
		job.Scale = 1
	}
	if job.Timeout == 0 {
		job.Timeout = time.Hour
	}
	if job.NP < 1 {
		return Result{Job: job, Err: fmt.Sprintf("npb: NP = %d, need at least one rank", job.NP)}
	}
	// A TwoClusters world is built as NP/2 nodes per site: an odd NP
	// would silently drop a rank and run a malformed (NP-1)-rank world
	// labeled NP. Refuse instead.
	if job.Placement == TwoClusters && job.NP%2 != 0 {
		return Result{Job: job, Err: fmt.Sprintf("npb: NP = %d cannot split evenly across two clusters", job.NP)}
	}
	prof, tcp := mpiimpl.Configure(job.Impl, true, false)
	k := sim.New(1)
	defer k.Close()

	var net *netsim.Network
	var hosts []*netsim.Host
	if job.Placement == TwoClusters {
		net = grid5000.Build(job.NP/2, grid5000.Rennes, grid5000.Nancy)
		hosts = append(hosts, net.SiteHosts(grid5000.Rennes)...)
		hosts = append(hosts, net.SiteHosts(grid5000.Nancy)...)
	} else {
		net = grid5000.Build(job.NP, grid5000.Rennes)
		hosts = net.SiteHosts(grid5000.Rennes)
	}
	w := mpi.NewWorld(k, net, tcp, prof, hosts)

	spec := Get(job.Bench)
	params := Params{NP: job.NP, Scale: job.Scale}
	elapsed, err := w.RunTimeout(func(r *mpi.Rank) { spec.Run(r, params) }, job.Timeout)
	return Result{
		Job:     job,
		Elapsed: elapsed,
		DNF:     err != nil,
		Stats:   w.Stats(),
	}
}
