// Package npb implements communication skeletons of the eight NAS Parallel
// Benchmarks 2.4 the paper runs (class B, 4 or 16 ranks): each skeleton
// replays the benchmark's communication pattern — message sizes, counts,
// partners, and collective operations calibrated against the paper's
// Table 2 — interleaved with compute phases calibrated against published
// class-B behaviour on the testbed's 2–2.2 GHz Opterons.
//
// Skeletons are what the paper's Figures 10–13 need: they are *relative*
// measurements (implementation vs implementation, grid vs cluster), which
// depend on the communication structure and the comm/compute ratio, not on
// the numerics being computed.
package npb

import (
	"fmt"
	"time"

	"repro/internal/mpi"
)

// Names in the paper's presentation order.
var Names = []string{"EP", "CG", "MG", "LU", "SP", "BT", "IS", "FT"}

// Params configures one skeleton run.
type Params struct {
	// NP is the number of ranks: 4 or 16 in the paper's experiments.
	NP int
	// Scale multiplies iteration counts (1.0 = full class B); tests use
	// small scales for speed. Iteration counts round up to at least 1.
	Scale float64
}

func (p Params) iters(full int) int {
	n := int(float64(full)*p.Scale + 0.999)
	if n < 1 {
		return 1
	}
	if n > full {
		return full
	}
	return n
}

// Spec is one benchmark skeleton.
type Spec struct {
	Name string
	// Work is the total class-B compute on the reference CPU, divided
	// evenly among ranks.
	Work time.Duration
	// FullIters is the class-B iteration count Scale multiplies.
	FullIters int
	Run       func(r *mpi.Rank, p Params)
}

// Get returns the named benchmark skeleton.
func Get(name string) Spec {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	panic(fmt.Sprintf("npb: unknown benchmark %q", name))
}

// Suite returns all eight skeletons in order.
func Suite() []Spec {
	return []Spec{
		{"EP", 100 * time.Second, 1, runEP},
		{"CG", 510 * time.Second, 75, runCG},
		{"MG", 36 * time.Second, 20, runMG},
		{"LU", 320 * time.Second, 250, runLU},
		{"SP", 380 * time.Second, 400, runSP},
		{"BT", 450 * time.Second, 200, runBT},
		{"IS", 25 * time.Second, 11, runIS},
		{"FT", 90 * time.Second, 20, runFT},
	}
}

// stepTime slices a benchmark's total work into per-iteration compute using
// the *full* class-B iteration count, so scaled-down runs keep the same
// comm/compute ratio per iteration.
func stepTime(spec Spec, np, slicesPerIter int) time.Duration {
	return time.Duration(float64(spec.Work) / float64(np) / float64(spec.FullIters*slicesPerIter))
}

// --- process-grid helpers ---

// gridDims returns the 2D logical process grid (rows × cols) used by CG,
// LU, SP and BT: 4×4 for 16 ranks, 2×2 for 4.
func gridDims(np int) (rows, cols int) {
	switch np {
	case 16:
		return 4, 4
	case 4:
		return 2, 2
	case 2:
		return 1, 2
	case 1:
		return 1, 1
	default:
		// Fall back to a single row; keeps small test worlds working.
		return 1, np
	}
}

func rowCol(id, cols int) (row, col int) { return id / cols, id % cols }

// dotProduct models the recursive-doubling global sum CG and MG use for
// dot products / norms: log2(np) point-to-point exchanges of 8 bytes.
func dotProduct(r *mpi.Rank, tag int) {
	np := r.Size()
	for mask := 1; mask < np; mask <<= 1 {
		partner := r.Rank() ^ mask
		if partner < np {
			exchange(r, partner, tag+mask, 8)
		}
	}
}

// exchange is a symmetric sendrecv of n bytes with a partner.
func exchange(r *mpi.Rank, partner, tag, n int) {
	req := r.Isend(partner, tag, n)
	r.Recv(partner, tag)
	r.Wait(req)
}

// --- EP: embarrassingly parallel ---
//
// Table 2: 192 × 8 B + 68 × 80 B point-to-point messages over the whole
// job — a long compute phase followed by a handful of tiny global sums.
func runEP(r *mpi.Rank, p Params) {
	spec := Get("EP")
	r.Compute(time.Duration(float64(spec.Work) / float64(r.Size())))
	// 12 scalar sums of 8 B and 4 vector sums of 80 B, as trees of
	// point-to-point messages: (np-1) messages each.
	for i := 0; i < 12; i++ {
		treeReduce(r, 100+i*4, 8)
	}
	for i := 0; i < 4; i++ {
		treeReduce(r, 200+i*4, 80)
	}
}

// treeReduce is a binomial reduction to rank 0 using user-level messages.
func treeReduce(r *mpi.Rank, tag, n int) {
	np := r.Size()
	id := r.Rank()
	for mask := 1; mask < np; mask <<= 1 {
		if id&mask != 0 {
			r.Send(id&^mask, tag, n)
			return
		}
		if id|mask < np {
			r.Recv(id|mask, tag)
		}
	}
}

// --- CG: conjugate gradient ---
//
// Table 2: 126479 × 8 B + 86944 × 147 kB. Per inner iteration each rank
// exchanges its boundary vector with a transpose partner three times
// (147456 B = 18432 doubles, the class-B n/4 row block) and performs one
// recursive-doubling dot product (log2(np) × 8 B).
func runCG(r *mpi.Rank, p Params) {
	spec := Get("CG")
	const inner = 25
	outer := p.iters(spec.FullIters)
	rows, cols := gridDims(r.Size())
	row, col := rowCol(r.Rank(), cols)
	// Transpose partner. Diagonal ranks are their own transpose; they pair
	// with the next diagonal rank instead (a symmetric perfect matching),
	// so every rank takes part in the heavy exchange.
	partner := col*rows + row
	if partner == r.Rank() {
		d := row ^ 1
		if d < rows && d < cols {
			partner = d*cols + d
		}
	}
	msg := 147456
	if r.Size() == 4 {
		msg = 294912 // n/2 row block on a 2×2 grid
	}
	step := stepTime(spec, r.Size(), inner)
	for it := 0; it < outer; it++ {
		for in := 0; in < inner; in++ {
			r.Compute(step)
			if partner != r.Rank() {
				for x := 0; x < 3; x++ {
					exchange(r, partner, 1000+x, msg)
				}
			}
			dotProduct(r, 2000)
		}
	}
}

// --- MG: multigrid ---
//
// Table 2: 50809 messages of 4 B to 130 kB. Each V-cycle visits the level
// hierarchy down and up, exchanging halo faces with up to three neighbours
// (x, y, z) at every level, plus two residual-norm global sums per cycle.
func runMG(r *mpi.Rank, p Params) {
	spec := Get("MG")
	cycles := p.iters(spec.FullIters)
	levels := []int{130 << 10, 33 << 10, 8 << 10, 2 << 10, 512, 128, 32, 8}
	np := r.Size()
	neighbours := mgNeighbours(r.Rank(), np)
	visit := func(size, tagBase int) {
		for _, nb := range neighbours {
			// Symmetric pair-keyed tags (see runFaceExchange).
			lo := r.Rank()
			if nb < lo {
				lo = nb
			}
			for x := 0; x < 3; x++ {
				exchange(r, nb, tagBase+lo*4+x, size)
			}
		}
	}
	step := stepTime(spec, np, 2*len(levels))
	for c := 0; c < cycles; c++ {
		for li := 0; li < len(levels); li++ { // down
			r.Compute(step)
			visit(levels[li], 3000+li*128)
		}
		for li := len(levels) - 1; li >= 0; li-- { // up
			r.Compute(step)
			visit(levels[li], 8000+li*128)
		}
		dotProduct(r, 5000)
		dotProduct(r, 5200)
	}
}

// mgNeighbours returns the 3D halo partners: x (±1 in rank space), y (±2),
// z (across the site split, np/2 away).
func mgNeighbours(id, np int) []int {
	var out []int
	for _, mask := range []int{1, 2, np / 2} {
		if mask == 0 {
			continue
		}
		nb := id ^ mask
		if nb < np && nb != id && !containsInt(out, nb) {
			out = append(out, nb)
		}
	}
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// --- LU: SSOR wavefront ---
//
// Table 2: 1.2 M messages of ~1 kB. Each iteration performs a south-east
// then a north-west wavefront sweep over the 2D process grid, one ~1 kB
// message per plane per direction — the pipelined pattern whose latency
// tolerance makes LU the best grid citizen among the communicating codes.
func runLU(r *mpi.Rank, p Params) {
	spec := Get("LU")
	iters := p.iters(spec.FullIters)
	const planes = 100
	const msg = 1000
	rows, cols := gridDims(r.Size())
	row, col := rowCol(r.Rank(), cols)
	north := r.Rank() - cols
	south := r.Rank() + cols
	west := r.Rank() - 1
	east := r.Rank() + 1
	hasN, hasS := row > 0, row < rows-1
	hasW, hasE := col > 0, col < cols-1
	step := stepTime(spec, r.Size(), 2*planes)
	for it := 0; it < iters; it++ {
		for pl := 0; pl < planes; pl++ { // lower-triangular sweep (SE)
			if hasN {
				r.Recv(north, 6000+pl%16)
			}
			if hasW {
				r.Recv(west, 6100+pl%16)
			}
			r.Compute(step)
			if hasS {
				r.Send(south, 6000+pl%16, msg)
			}
			if hasE {
				r.Send(east, 6100+pl%16, msg)
			}
		}
		for pl := 0; pl < planes; pl++ { // upper-triangular sweep (NW)
			if hasS {
				r.Recv(south, 6200+pl%16)
			}
			if hasE {
				r.Recv(east, 6300+pl%16)
			}
			r.Compute(step)
			if hasN {
				r.Send(north, 6200+pl%16, msg)
			}
			if hasW {
				r.Send(west, 6300+pl%16, msg)
			}
		}
	}
}

// --- SP and BT: ADI face exchanges ---
//
// Table 2: SP 57744 × ~50 kB + 96336 × 100–160 kB over 400 iterations;
// BT 28944 × 26 kB + 48336 × 146–156 kB over 200. Per iteration each rank
// exchanges with its grid neighbours: three small and five large messages
// per directed edge. The large messages (152 kB) are what overflow
// MPICH-Madeleine's fast buffer on the WAN.
func runSP(r *mpi.Rank, p Params) { runFaceExchange(r, p, Get("SP"), 50<<10, 152<<10) }
func runBT(r *mpi.Rank, p Params) { runFaceExchange(r, p, Get("BT"), 26<<10, 152<<10) }

func runFaceExchange(r *mpi.Rank, p Params, spec Spec, small, big int) {
	iters := p.iters(spec.FullIters)
	rows, cols := gridDims(r.Size())
	if r.Size() == 4 {
		// A 2×2 decomposition halves the cuts: faces are twice as large
		// as on the 4×4 grid the Table 2 sizes correspond to.
		small *= 2
		big *= 2
	}
	row, col := rowCol(r.Rank(), cols)
	// Each ADI sweep exchanges faces only in its own dimension; the z
	// dimension is not decomposed on a 2D process grid, so the z sweep is
	// compute-only.
	var xNbrs, yNbrs []int
	if col > 0 {
		xNbrs = append(xNbrs, r.Rank()-1)
	}
	if col < cols-1 {
		xNbrs = append(xNbrs, r.Rank()+1)
	}
	if row > 0 {
		yNbrs = append(yNbrs, r.Rank()-cols)
	}
	if row < rows-1 {
		yNbrs = append(yNbrs, r.Rank()+cols)
	}
	sweep := func(d int, nbrs []int) {
		for _, nb := range nbrs {
			// Tags must be identical on both sides of an edge, so key
			// them by the pair (via the smaller rank), not by the local
			// neighbour index. Three small and five large exchanges per
			// directed edge per iteration match Table 2's counts.
			lo := r.Rank()
			if nb < lo {
				lo = nb
			}
			base := 7000 + d*1000 + lo*16
			for x := 0; x < 3; x++ {
				exchange(r, nb, base+x, small)
			}
			for x := 0; x < 5; x++ {
				exchange(r, nb, base+4+x, big)
			}
		}
	}
	step := stepTime(spec, r.Size(), 3)
	for it := 0; it < iters; it++ {
		r.Compute(step)
		sweep(0, xNbrs)
		r.Compute(step)
		sweep(1, yNbrs)
		r.Compute(step) // z sweep: local
	}
}

// --- IS: integer sort ---
//
// Table 2: 176 × 1 kB + 176 × 30 MB collectives: per iteration one small
// Allreduce (bucket counts) and one huge Alltoallv (key redistribution,
// ~30 MB per rank). The paper notes GridMPI only optimizes the Allreduce,
// which is why IS stays slow on the grid.
func runIS(r *mpi.Rank, p Params) {
	spec := Get("IS")
	iters := p.iters(spec.FullIters)
	np := r.Size()
	sizes := make([]int, np)
	for i := range sizes {
		if i != r.Rank() {
			sizes[i] = 30 << 20 / (np - 1)
		}
	}
	step := stepTime(spec, np, 1)
	for it := 0; it < iters; it++ {
		r.Compute(step)
		r.Allreduce(1 << 10)
		r.Alltoallv(sizes)
	}
}

// --- FT: 3D FFT ---
//
// The paper attributes FT's grid behaviour to MPI_Bcast (§3.1, §4.3): we
// model each iteration as a large broadcast of the evolved source term
// plus a small checksum Allreduce. GridMPI's van de Geijn broadcast is
// what gives it the paper's large FT speedup on the grid.
func runFT(r *mpi.Rank, p Params) {
	spec := Get("FT")
	iters := p.iters(spec.FullIters)
	step := stepTime(spec, r.Size(), 1)
	for it := 0; it < iters; it++ {
		r.Compute(step)
		r.Bcast(0, 32<<20)
		r.Allreduce(1 << 10)
	}
}
