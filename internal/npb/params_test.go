package npb

import "testing"

// The iteration-scaling arithmetic is the one piece of skeleton behaviour
// not observable through exp.Run's census, so it keeps an internal test.
func TestIterationScaling(t *testing.T) {
	p := Params{NP: 16, Scale: 0.5}
	if got := p.iters(250); got != 125 {
		t.Fatalf("iters(250)@0.5 = %d", got)
	}
	p.Scale = 0.001
	if got := p.iters(20); got != 1 {
		t.Fatalf("iters floor = %d, want 1", got)
	}
}
