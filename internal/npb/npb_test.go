package npb

import (
	"testing"
	"time"

	"repro/internal/mpiimpl"
)

// shortScale returns full in normal runs and reduced under -short; the
// reduced values are chosen so every qualitative assertion (orderings,
// DNFs, ratio floors) still holds, keeping `go test -short ./...` in the
// seconds without losing the full-fidelity path.
func shortScale(t *testing.T, full, reduced float64) float64 {
	t.Helper()
	if testing.Short() {
		return reduced
	}
	return full
}

// run is a helper with a small scale for test speed.
func run(t *testing.T, bench, impl string, np int, placement Placement, scale float64) Result {
	t.Helper()
	res := Run(Job{Bench: bench, Impl: impl, NP: np, Placement: placement, Scale: scale})
	if res.DNF {
		t.Fatalf("%s/%s unexpectedly timed out after %v", bench, impl, res.Elapsed)
	}
	return res
}

func TestAllBenchmarksCompleteBothPlacements(t *testing.T) {
	for _, spec := range Suite() {
		for _, placement := range []Placement{SingleCluster, TwoClusters} {
			res := run(t, spec.Name, mpiimpl.MPICH2, 16, placement, 0.02)
			if res.Elapsed <= 0 {
				t.Errorf("%s placement=%v: elapsed %v", spec.Name, placement, res.Elapsed)
			}
		}
	}
}

func TestAllBenchmarksCompleteOn4Ranks(t *testing.T) {
	for _, spec := range Suite() {
		res := run(t, spec.Name, mpiimpl.GridMPI, 4, TwoClusters, 0.02)
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", spec.Name, res.Elapsed)
		}
	}
}

// TestTable2Census verifies the skeletons against the paper's message
// census (Table 2): point-to-point counts and size classes, and the
// collective structure of IS and FT. Counts are checked at a reduced scale
// with proportional expectations.
func TestTable2Census(t *testing.T) {
	t.Parallel()
	scale := shortScale(t, 0.2, 0.1)
	tol := func(got, want float64) bool { return got > want*0.7 && got < want*1.3 }

	t.Run("EP", func(t *testing.T) {
		s := run(t, "EP", mpiimpl.MPICH2, 16, SingleCluster, 1).Stats // EP is cheap at full scale
		// 192 × 8 B + 68 × 80 B over the job; our trees give (np-1) per sum.
		if got := s.CountBetween(8, 8); !tol(float64(got), 180) {
			t.Errorf("8 B messages = %d, want ≈180 (paper: 192)", got)
		}
		if got := s.CountBetween(80, 80); !tol(float64(got), 60) {
			t.Errorf("80 B messages = %d, want ≈60 (paper: 68)", got)
		}
	})

	t.Run("CG", func(t *testing.T) {
		s := run(t, "CG", mpiimpl.MPICH2, 16, SingleCluster, scale).Stats
		// Paper: 86944 × 147 kB; at scale 0.2 ≈ 17400.
		if got := s.CountBetween(100<<10, 200<<10); !tol(float64(got), 86944*scale) {
			t.Errorf("147 kB messages = %d, want ≈%.0f", got, 86944*scale)
		}
		// Paper: 126479 × 8 B.
		if got := s.CountBetween(1, 16); !tol(float64(got), 126479*scale) {
			t.Errorf("8 B messages = %d, want ≈%.0f", got, 126479*scale)
		}
	})

	t.Run("MG", func(t *testing.T) {
		s := run(t, "MG", mpiimpl.MPICH2, 16, SingleCluster, scale).Stats
		// Paper: 50809 messages from 4 B to 130 kB.
		if got := s.CountBetween(1, 131<<10); !tol(float64(got), 50809*scale) {
			t.Errorf("total messages = %d, want ≈%.0f", got, 50809*scale)
		}
		rows := s.SizeCensus()
		if rows[0].Size > 16 || rows[len(rows)-1].Size < 100<<10 {
			t.Errorf("size span = [%d, %d], want 8 B…130 kB", rows[0].Size, rows[len(rows)-1].Size)
		}
	})

	t.Run("LU", func(t *testing.T) {
		s := run(t, "LU", mpiimpl.MPICH2, 16, SingleCluster, 0.05).Stats
		// Paper: 1.2 M messages of 960–1040 B over 250 iterations.
		iters := float64((Params{NP: 16, Scale: 0.05}).iters(250))
		want := 1.2e6 * iters / 250
		if got := s.CountBetween(900, 1100); !tol(float64(got), want) {
			t.Errorf("1 kB messages = %d, want ≈%.0f", got, want)
		}
		if got := s.CountBetween(2000, 1<<30); got != 0 {
			t.Errorf("LU sent %d messages above ~1 kB, want none", got)
		}
	})

	t.Run("SP", func(t *testing.T) {
		s := run(t, "SP", mpiimpl.MPICH2, 16, SingleCluster, scale).Stats
		if got := s.CountBetween(40<<10, 60<<10); !tol(float64(got), 57744*scale) {
			t.Errorf("~50 kB messages = %d, want ≈%.0f", got, 57744*scale)
		}
		if got := s.CountBetween(100<<10, 160<<10); !tol(float64(got), 96336*scale) {
			t.Errorf("100-160 kB messages = %d, want ≈%.0f", got, 96336*scale)
		}
	})

	t.Run("BT", func(t *testing.T) {
		s := run(t, "BT", mpiimpl.MPICH2, 16, SingleCluster, scale).Stats
		if got := s.CountBetween(20<<10, 30<<10); !tol(float64(got), 28944*scale) {
			t.Errorf("26 kB messages = %d, want ≈%.0f", got, 28944*scale)
		}
		if got := s.CountBetween(146<<10, 156<<10); !tol(float64(got), 48336*scale) {
			t.Errorf("146-156 kB messages = %d, want ≈%.0f", got, 48336*scale)
		}
	})

	t.Run("IS", func(t *testing.T) {
		s := run(t, "IS", mpiimpl.MPICH2, 16, SingleCluster, 1).Stats
		if got := s.CollCalls("allreduce"); got != 11 {
			t.Errorf("allreduce calls = %d, want 11 (one per iteration)", got)
		}
		if got := s.CollCalls("alltoallv"); got != 11 {
			t.Errorf("alltoallv calls = %d, want 11", got)
		}
		if s.P2PSends != 0 {
			t.Errorf("IS is collective-only in the paper; saw %d p2p sends", s.P2PSends)
		}
	})

	t.Run("FT", func(t *testing.T) {
		s := run(t, "FT", mpiimpl.MPICH2, 16, SingleCluster, 1).Stats
		if got := s.CollCalls("bcast"); got != 20 {
			t.Errorf("bcast calls = %d, want 20", got)
		}
		if got := s.CollCalls("allreduce"); got != 20 {
			t.Errorf("allreduce calls = %d, want 20", got)
		}
	})
}

// TestGridOverheadOrdering checks the qualitative heart of Figure 12: EP is
// nearly free on the grid, LU/SP/BT tolerate it, CG and MG suffer badly.
func TestGridOverheadOrdering(t *testing.T) {
	t.Parallel()
	scale := shortScale(t, 0.1, 0.05)
	rel := func(bench string) float64 {
		cl := run(t, bench, mpiimpl.GridMPI, 16, SingleCluster, scale)
		gr := run(t, bench, mpiimpl.GridMPI, 16, TwoClusters, scale)
		return cl.Elapsed.Seconds() / gr.Elapsed.Seconds()
	}
	ep := rel("EP")
	cg := rel("CG")
	lu := rel("LU")
	mg := rel("MG")
	if ep < 0.9 {
		t.Errorf("EP grid/cluster = %.2f, want ≈1 (almost no communication)", ep)
	}
	if !(ep > lu && lu > cg) {
		t.Errorf("ordering broken: EP %.2f, LU %.2f, CG %.2f (want EP > LU > CG)", ep, lu, cg)
	}
	if cg > 0.65 {
		t.Errorf("CG grid relative perf = %.2f, want ≤0.65 (latency-bound)", cg)
	}
	if mg > 0.75 {
		t.Errorf("MG grid relative perf = %.2f, want ≤0.75", mg)
	}
	if lu < 0.55 {
		t.Errorf("LU grid relative perf = %.2f, want ≥0.55 (pipelined wavefront)", lu)
	}
}

// TestMadeleineTimesOutOnGridBTSP reproduces the paper's DNF: with the
// fast-buffer slow path, BT and SP across the WAN exceed a 2.5× budget.
func TestMadeleineTimesOutOnGridBTSP(t *testing.T) {
	t.Parallel()
	const scale = 0.05
	for _, bench := range []string{"BT", "SP"} {
		ref := run(t, bench, mpiimpl.MPICH2, 16, TwoClusters, scale)
		res := Run(Job{
			Bench: bench, Impl: mpiimpl.Madeleine, NP: 16,
			Placement: TwoClusters, Scale: scale,
			Timeout: ref.Elapsed * 2,
		})
		if !res.DNF {
			t.Errorf("%s with MPICH-Madeleine finished in %v (MPICH2: %v); paper reports a timeout",
				bench, res.Elapsed, ref.Elapsed)
		}
		// The same job inside one cluster completes.
		cl := run(t, bench, mpiimpl.Madeleine, 16, SingleCluster, scale)
		if cl.Elapsed <= 0 {
			t.Errorf("%s Madeleine cluster run broken", bench)
		}
	}
}

// TestCGSurvivesMadeleine: CG's 147 kB messages fit the fast buffer, so
// Madeleine completes CG on the grid (as in Figure 10).
func TestCGSurvivesMadeleine(t *testing.T) {
	const scale = 0.05
	ref := run(t, "CG", mpiimpl.MPICH2, 16, TwoClusters, scale)
	res := Run(Job{
		Bench: "CG", Impl: mpiimpl.Madeleine, NP: 16,
		Placement: TwoClusters, Scale: scale,
		Timeout: ref.Elapsed * 2,
	})
	if res.DNF {
		t.Fatalf("CG with Madeleine timed out (%v vs MPICH2 %v); its 147 kB messages should fit the fast path",
			res.Elapsed, ref.Elapsed)
	}
}

// TestGridMPIWinsCollectives: GridMPI's broadcast optimization gives it a
// large FT advantage over MPICH2 on the grid (Figure 10's tallest bar).
func TestGridMPIWinsCollectives(t *testing.T) {
	const scale = 0.25
	mp := run(t, "FT", mpiimpl.MPICH2, 16, TwoClusters, scale)
	gm := run(t, "FT", mpiimpl.GridMPI, 16, TwoClusters, scale)
	if ratio := mp.Elapsed.Seconds() / gm.Elapsed.Seconds(); ratio < 1.5 {
		t.Errorf("GridMPI FT speedup = %.2f, want ≥1.5 (paper ≈3.5)", ratio)
	}
	mpIS := run(t, "IS", mpiimpl.MPICH2, 16, TwoClusters, scale)
	gmIS := run(t, "IS", mpiimpl.GridMPI, 16, TwoClusters, scale)
	if ratio := mpIS.Elapsed.Seconds() / gmIS.Elapsed.Seconds(); ratio < 1.1 {
		t.Errorf("GridMPI IS speedup = %.2f, want ≥1.1", ratio)
	}
}

// TestScaleUpBeatsSmallCluster is Figure 13's headline: 16 grid nodes beat
// 4 local nodes for every benchmark (speedup > 1), approaching 4 for the
// compute-bound ones.
func TestScaleUpBeatsSmallCluster(t *testing.T) {
	t.Parallel()
	// A larger scale lets the WAN flows' congestion windows open, as they
	// do over the full class-B runs; tiny scales overweight the ramp-up
	// (0.1 is the validated floor for the ≥2.5 speedup assertions).
	scale := shortScale(t, 0.2, 0.1)
	for _, bench := range []string{"EP", "LU", "BT"} {
		small := run(t, bench, mpiimpl.GridMPI, 4, SingleCluster, scale)
		big := run(t, bench, mpiimpl.GridMPI, 16, TwoClusters, scale)
		speedup := small.Elapsed.Seconds() / big.Elapsed.Seconds()
		if speedup < 2.5 {
			t.Errorf("%s speedup 4→16 = %.2f, want ≥2.5 (paper ≈3-4)", bench, speedup)
		}
		if speedup > 4.6 {
			t.Errorf("%s speedup 4→16 = %.2f, impossibly high", bench, speedup)
		}
	}
	small := run(t, "CG", mpiimpl.GridMPI, 4, SingleCluster, scale)
	big := run(t, "CG", mpiimpl.GridMPI, 16, TwoClusters, scale)
	if speedup := small.Elapsed.Seconds() / big.Elapsed.Seconds(); speedup < 1 {
		t.Errorf("CG grid speedup = %.2f; the paper still sees >1", speedup)
	}
}

func TestIterationScaling(t *testing.T) {
	p := Params{NP: 16, Scale: 0.5}
	if got := p.iters(250); got != 125 {
		t.Fatalf("iters(250)@0.5 = %d", got)
	}
	p.Scale = 0.001
	if got := p.iters(20); got != 1 {
		t.Fatalf("iters floor = %d, want 1", got)
	}
}

// TestDeterministicRuns: identical jobs produce identical virtual times —
// the property every relative figure in the paper reproduction relies on.
func TestDeterministicRuns(t *testing.T) {
	job := Job{Bench: "CG", Impl: mpiimpl.GridMPI, NP: 16, Placement: TwoClusters, Scale: 0.05}
	a := Run(job)
	b := Run(job)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic NPB run: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if a.Stats.P2PSends != b.Stats.P2PSends {
		t.Fatalf("census differs between identical runs")
	}
}

func TestResultTimeoutDefault(t *testing.T) {
	res := Run(Job{Bench: "EP", Impl: mpiimpl.MPICH2, NP: 4, Placement: SingleCluster, Scale: 0.01})
	if res.DNF {
		t.Fatal("EP timed out under the default one-hour budget")
	}
	if res.Elapsed > time.Hour {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}

// TestMalformedJobsRefused: a TwoClusters placement builds NP/2 nodes
// per site, so an odd NP used to drop a rank silently and run a
// malformed world; it must come back as a clean Err without simulating.
func TestMalformedJobsRefused(t *testing.T) {
	res := Run(Job{Bench: "EP", Impl: mpiimpl.MPICH2, NP: 5, Placement: TwoClusters, Scale: 0.01})
	if res.Err == "" {
		t.Fatal("odd NP across two clusters was not refused")
	}
	if res.Stats != nil || res.Elapsed != 0 || res.DNF {
		t.Errorf("refused job still simulated: %+v", res)
	}
	if res := Run(Job{Bench: "EP", Impl: mpiimpl.MPICH2, NP: 0, Placement: SingleCluster}); res.Err == "" {
		t.Error("NP=0 was not refused")
	}
	// The even split still runs.
	if res := Run(Job{Bench: "EP", Impl: mpiimpl.MPICH2, NP: 4, Placement: TwoClusters, Scale: 0.01}); res.Err != "" {
		t.Errorf("even NP refused: %s", res.Err)
	}
}
