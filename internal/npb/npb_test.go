// The npb package keeps only the benchmark skeletons; execution flows
// through the exp engine. These tests therefore live in an external test
// package and drive every skeleton via exp.Run — the same front door the
// cmd tools, examples and figures use.
package npb_test

import (
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/mpiimpl"
	"repro/internal/npb"
)

// testRunner is shared across the package's tests: skeleton runs are
// pure functions of their experiments, so the fingerprint cache only
// removes duplicate work between (parallel) tests.
var testRunner = exp.NewRunner(0)

// shortScale returns full in normal runs and reduced under -short; the
// reduced values are chosen so every qualitative assertion (orderings,
// DNFs, ratio floors) still holds, keeping `go test -short ./...` in the
// seconds without losing the full-fidelity path.
func shortScale(t *testing.T, full, reduced float64) float64 {
	t.Helper()
	if testing.Short() {
		return reduced
	}
	return full
}

// run executes one benchmark on one topology at the paper's TCP tuning
// level (what the retired npb.Run hardcoded).
func run(t *testing.T, bench, impl string, topo exp.Topology, scale float64, timeout time.Duration) exp.Result {
	t.Helper()
	wl := exp.NPBWorkload(bench, scale)
	wl.Timeout = timeout
	res := testRunner.Run(exp.Experiment{
		Impl: impl, Tuning: exp.Tuning{TCP: true}, Topology: topo, Workload: wl,
	})
	if res.Err != "" {
		t.Fatalf("%s/%s on %s: %s", bench, impl, topo, res.Err)
	}
	return res
}

// mustRun is run plus a DNF check.
func mustRun(t *testing.T, bench, impl string, topo exp.Topology, scale float64) exp.Result {
	t.Helper()
	res := run(t, bench, impl, topo, scale, 0)
	if res.DNF {
		t.Fatalf("%s/%s on %s unexpectedly timed out after %v", bench, impl, topo, res.Elapsed)
	}
	return res
}

// countBetween sums the census counts of message sizes in [lo, hi].
func countBetween(c exp.Census, lo, hi int64) int64 {
	var n int64
	for _, sc := range c.Sizes {
		if sc.Size >= lo && sc.Size <= hi {
			n += sc.Count
		}
	}
	return n
}

// collCalls returns one collective's call count from the census.
func collCalls(c exp.Census, op string) int64 {
	for _, coll := range c.Collectives {
		if coll.Op == op {
			return coll.Calls
		}
	}
	return 0
}

func TestAllBenchmarksCompleteBothPlacements(t *testing.T) {
	for _, spec := range npb.Suite() {
		for _, topo := range []exp.Topology{exp.Cluster(16), exp.Grid(8)} {
			res := mustRun(t, spec.Name, mpiimpl.MPICH2, topo, 0.02)
			if res.Elapsed <= 0 {
				t.Errorf("%s on %s: elapsed %v", spec.Name, topo, res.Elapsed)
			}
		}
	}
}

func TestAllBenchmarksCompleteOn4Ranks(t *testing.T) {
	for _, spec := range npb.Suite() {
		res := mustRun(t, spec.Name, mpiimpl.GridMPI, exp.Grid(2), 0.02)
		if res.Elapsed <= 0 {
			t.Errorf("%s: elapsed %v", spec.Name, res.Elapsed)
		}
	}
}

// TestTable2Census verifies the skeletons against the paper's message
// census (Table 2): point-to-point counts and size classes, and the
// collective structure of IS and FT. Counts are checked at a reduced scale
// with proportional expectations.
func TestTable2Census(t *testing.T) {
	t.Parallel()
	scale := shortScale(t, 0.2, 0.1)
	cluster16 := exp.Cluster(16)
	tol := func(got, want float64) bool { return got > want*0.7 && got < want*1.3 }

	t.Run("EP", func(t *testing.T) {
		c := mustRun(t, "EP", mpiimpl.MPICH2, cluster16, 1).Census // EP is cheap at full scale
		// 192 × 8 B + 68 × 80 B over the job; our trees give (np-1) per sum.
		if got := countBetween(c, 8, 8); !tol(float64(got), 180) {
			t.Errorf("8 B messages = %d, want ≈180 (paper: 192)", got)
		}
		if got := countBetween(c, 80, 80); !tol(float64(got), 60) {
			t.Errorf("80 B messages = %d, want ≈60 (paper: 68)", got)
		}
	})

	t.Run("CG", func(t *testing.T) {
		c := mustRun(t, "CG", mpiimpl.MPICH2, cluster16, scale).Census
		// Paper: 86944 × 147 kB; at scale 0.2 ≈ 17400.
		if got := countBetween(c, 100<<10, 200<<10); !tol(float64(got), 86944*scale) {
			t.Errorf("147 kB messages = %d, want ≈%.0f", got, 86944*scale)
		}
		// Paper: 126479 × 8 B.
		if got := countBetween(c, 1, 16); !tol(float64(got), 126479*scale) {
			t.Errorf("8 B messages = %d, want ≈%.0f", got, 126479*scale)
		}
	})

	t.Run("MG", func(t *testing.T) {
		c := mustRun(t, "MG", mpiimpl.MPICH2, cluster16, scale).Census
		// Paper: 50809 messages from 4 B to 130 kB.
		if got := countBetween(c, 1, 131<<10); !tol(float64(got), 50809*scale) {
			t.Errorf("total messages = %d, want ≈%.0f", got, 50809*scale)
		}
		if c.Sizes[0].Size > 16 || c.Sizes[len(c.Sizes)-1].Size < 100<<10 {
			t.Errorf("size span = [%d, %d], want 8 B…130 kB", c.Sizes[0].Size, c.Sizes[len(c.Sizes)-1].Size)
		}
	})

	t.Run("LU", func(t *testing.T) {
		c := mustRun(t, "LU", mpiimpl.MPICH2, cluster16, 0.05).Census
		// Paper: 1.2 M messages of 960–1040 B over 250 iterations; the
		// skeleton floors iteration counts at one, so scale the
		// expectation the same way (ceil with a floor of 1).
		luScale := 0.05
		iters := float64(int(250*luScale + 0.999))
		want := 1.2e6 * iters / 250
		if got := countBetween(c, 900, 1100); !tol(float64(got), want) {
			t.Errorf("1 kB messages = %d, want ≈%.0f", got, want)
		}
		if got := countBetween(c, 2000, 1<<30); got != 0 {
			t.Errorf("LU sent %d messages above ~1 kB, want none", got)
		}
	})

	t.Run("SP", func(t *testing.T) {
		c := mustRun(t, "SP", mpiimpl.MPICH2, cluster16, scale).Census
		if got := countBetween(c, 40<<10, 60<<10); !tol(float64(got), 57744*scale) {
			t.Errorf("~50 kB messages = %d, want ≈%.0f", got, 57744*scale)
		}
		if got := countBetween(c, 100<<10, 160<<10); !tol(float64(got), 96336*scale) {
			t.Errorf("100-160 kB messages = %d, want ≈%.0f", got, 96336*scale)
		}
	})

	t.Run("BT", func(t *testing.T) {
		c := mustRun(t, "BT", mpiimpl.MPICH2, cluster16, scale).Census
		if got := countBetween(c, 20<<10, 30<<10); !tol(float64(got), 28944*scale) {
			t.Errorf("26 kB messages = %d, want ≈%.0f", got, 28944*scale)
		}
		if got := countBetween(c, 146<<10, 156<<10); !tol(float64(got), 48336*scale) {
			t.Errorf("146-156 kB messages = %d, want ≈%.0f", got, 48336*scale)
		}
	})

	t.Run("IS", func(t *testing.T) {
		c := mustRun(t, "IS", mpiimpl.MPICH2, cluster16, 1).Census
		if got := collCalls(c, "allreduce"); got != 11 {
			t.Errorf("allreduce calls = %d, want 11 (one per iteration)", got)
		}
		if got := collCalls(c, "alltoallv"); got != 11 {
			t.Errorf("alltoallv calls = %d, want 11", got)
		}
		if c.P2PSends != 0 {
			t.Errorf("IS is collective-only in the paper; saw %d p2p sends", c.P2PSends)
		}
	})

	t.Run("FT", func(t *testing.T) {
		c := mustRun(t, "FT", mpiimpl.MPICH2, cluster16, 1).Census
		if got := collCalls(c, "bcast"); got != 20 {
			t.Errorf("bcast calls = %d, want 20", got)
		}
		if got := collCalls(c, "allreduce"); got != 20 {
			t.Errorf("allreduce calls = %d, want 20", got)
		}
	})
}

// TestGridOverheadOrdering checks the qualitative heart of Figure 12: EP is
// nearly free on the grid, LU/SP/BT tolerate it, CG and MG suffer badly.
func TestGridOverheadOrdering(t *testing.T) {
	t.Parallel()
	scale := shortScale(t, 0.1, 0.05)
	rel := func(bench string) float64 {
		cl := mustRun(t, bench, mpiimpl.GridMPI, exp.Cluster(16), scale)
		gr := mustRun(t, bench, mpiimpl.GridMPI, exp.Grid(8), scale)
		return cl.Elapsed.Seconds() / gr.Elapsed.Seconds()
	}
	ep := rel("EP")
	cg := rel("CG")
	lu := rel("LU")
	mg := rel("MG")
	if ep < 0.9 {
		t.Errorf("EP grid/cluster = %.2f, want ≈1 (almost no communication)", ep)
	}
	if !(ep > lu && lu > cg) {
		t.Errorf("ordering broken: EP %.2f, LU %.2f, CG %.2f (want EP > LU > CG)", ep, lu, cg)
	}
	if cg > 0.65 {
		t.Errorf("CG grid relative perf = %.2f, want ≤0.65 (latency-bound)", cg)
	}
	if mg > 0.75 {
		t.Errorf("MG grid relative perf = %.2f, want ≤0.75", mg)
	}
	if lu < 0.55 {
		t.Errorf("LU grid relative perf = %.2f, want ≥0.55 (pipelined wavefront)", lu)
	}
}

// TestMadeleineTimesOutOnGridBTSP reproduces the paper's DNF: with the
// fast-buffer slow path, BT and SP across the WAN exceed a 2.5× budget.
func TestMadeleineTimesOutOnGridBTSP(t *testing.T) {
	t.Parallel()
	const scale = 0.05
	for _, bench := range []string{"BT", "SP"} {
		ref := mustRun(t, bench, mpiimpl.MPICH2, exp.Grid(8), scale)
		res := run(t, bench, mpiimpl.Madeleine, exp.Grid(8), scale, ref.Elapsed*2)
		if !res.DNF {
			t.Errorf("%s with MPICH-Madeleine finished in %v (MPICH2: %v); paper reports a timeout",
				bench, res.Elapsed, ref.Elapsed)
		}
		// The same job inside one cluster completes.
		cl := mustRun(t, bench, mpiimpl.Madeleine, exp.Cluster(16), scale)
		if cl.Elapsed <= 0 {
			t.Errorf("%s Madeleine cluster run broken", bench)
		}
	}
}

// TestCGSurvivesMadeleine: CG's 147 kB messages fit the fast buffer, so
// Madeleine completes CG on the grid (as in Figure 10).
func TestCGSurvivesMadeleine(t *testing.T) {
	const scale = 0.05
	ref := mustRun(t, "CG", mpiimpl.MPICH2, exp.Grid(8), scale)
	res := run(t, "CG", mpiimpl.Madeleine, exp.Grid(8), scale, ref.Elapsed*2)
	if res.DNF {
		t.Fatalf("CG with Madeleine timed out (%v vs MPICH2 %v); its 147 kB messages should fit the fast path",
			res.Elapsed, ref.Elapsed)
	}
}

// TestGridMPIWinsCollectives: GridMPI's broadcast optimization gives it a
// large FT advantage over MPICH2 on the grid (Figure 10's tallest bar).
func TestGridMPIWinsCollectives(t *testing.T) {
	const scale = 0.25
	mp := mustRun(t, "FT", mpiimpl.MPICH2, exp.Grid(8), scale)
	gm := mustRun(t, "FT", mpiimpl.GridMPI, exp.Grid(8), scale)
	if ratio := mp.Elapsed.Seconds() / gm.Elapsed.Seconds(); ratio < 1.5 {
		t.Errorf("GridMPI FT speedup = %.2f, want ≥1.5 (paper ≈3.5)", ratio)
	}
	mpIS := mustRun(t, "IS", mpiimpl.MPICH2, exp.Grid(8), scale)
	gmIS := mustRun(t, "IS", mpiimpl.GridMPI, exp.Grid(8), scale)
	if ratio := mpIS.Elapsed.Seconds() / gmIS.Elapsed.Seconds(); ratio < 1.1 {
		t.Errorf("GridMPI IS speedup = %.2f, want ≥1.1", ratio)
	}
}

// TestScaleUpBeatsSmallCluster is Figure 13's headline: 16 grid nodes beat
// 4 local nodes for every benchmark (speedup > 1), approaching 4 for the
// compute-bound ones.
func TestScaleUpBeatsSmallCluster(t *testing.T) {
	t.Parallel()
	// A larger scale lets the WAN flows' congestion windows open, as they
	// do over the full class-B runs; tiny scales overweight the ramp-up
	// (0.1 is the validated floor for the ≥2.5 speedup assertions).
	scale := shortScale(t, 0.2, 0.1)
	for _, bench := range []string{"EP", "LU", "BT"} {
		small := mustRun(t, bench, mpiimpl.GridMPI, exp.Cluster(4), scale)
		big := mustRun(t, bench, mpiimpl.GridMPI, exp.Grid(8), scale)
		speedup := small.Elapsed.Seconds() / big.Elapsed.Seconds()
		if speedup < 2.5 {
			t.Errorf("%s speedup 4→16 = %.2f, want ≥2.5 (paper ≈3-4)", bench, speedup)
		}
		if speedup > 4.6 {
			t.Errorf("%s speedup 4→16 = %.2f, impossibly high", bench, speedup)
		}
	}
	small := mustRun(t, "CG", mpiimpl.GridMPI, exp.Cluster(4), scale)
	big := mustRun(t, "CG", mpiimpl.GridMPI, exp.Grid(8), scale)
	if speedup := small.Elapsed.Seconds() / big.Elapsed.Seconds(); speedup < 1 {
		t.Errorf("CG grid speedup = %.2f; the paper still sees >1", speedup)
	}
}

// TestAsymmetricTopology: a 3-site asymmetric layout (Rennes×8 +
// Nancy×4 + Sophia×4, the 16 ranks the skeletons decompose as 4×4) runs
// every skeleton through exp.Run — the scenario the per-site Topology
// redesign unlocks.
func TestAsymmetricTopology(t *testing.T) {
	t.Parallel()
	topo := exp.Asym(exp.Site("rennes", 8), exp.Site("nancy", 4), exp.Site("sophia", 4))
	for _, bench := range []string{"EP", "CG", "FT"} {
		res := mustRun(t, bench, mpiimpl.GridMPI, topo, 0.02)
		if res.Elapsed <= 0 || res.Census.P2PSends+collCalls(res.Census, "bcast") == 0 {
			t.Errorf("%s on %s: elapsed=%v, empty census", bench, topo, res.Elapsed)
		}
	}
	// The asymmetric WAN split costs more than one cluster of equal size.
	cl := mustRun(t, "CG", mpiimpl.GridMPI, exp.Cluster(16), 0.02)
	asym := mustRun(t, "CG", mpiimpl.GridMPI, topo, 0.02)
	if asym.Elapsed <= cl.Elapsed {
		t.Errorf("asymmetric grid CG (%v) not slower than single cluster (%v)", asym.Elapsed, cl.Elapsed)
	}
}

// TestDeterministicRuns: identical experiments produce identical virtual
// times — the property every relative figure in the paper reproduction
// relies on.
func TestDeterministicRuns(t *testing.T) {
	e := exp.Experiment{
		Impl: mpiimpl.GridMPI, Tuning: exp.Tuning{TCP: true},
		Topology: exp.Grid(8), Workload: exp.NPBWorkload("CG", 0.05),
	}
	a := exp.Run(e)
	b := exp.Run(e)
	if a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic NPB run: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if a.Census.P2PSends != b.Census.P2PSends {
		t.Fatalf("census differs between identical runs")
	}
}

func TestResultTimeoutDefault(t *testing.T) {
	res := mustRun(t, "EP", mpiimpl.MPICH2, exp.Cluster(4), 0.01)
	if res.Elapsed > time.Hour {
		t.Fatalf("elapsed = %v", res.Elapsed)
	}
}
