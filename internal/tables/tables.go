// Package tables renders aligned ASCII tables and gnuplot-style data
// series for the command-line tools and EXPERIMENTS.md generation.
package tables

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Render formats a header row and data rows as an aligned text table.
func Render(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV formats a header row and data rows as RFC 4180 CSV (the sweep
// engine's machine-readable output).
func CSV(headers []string, rows [][]string) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.Write(headers); err != nil {
		return "", err
	}
	if err := w.WriteAll(rows); err != nil {
		return "", err
	}
	w.Flush()
	return b.String(), w.Error()
}

// Size formats a byte count compactly (B, kB, MB).
func Size(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d kB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
