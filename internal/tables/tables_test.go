package tables

import (
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	out := Render(
		[]string{"name", "value"},
		[][]string{{"a", "1"}, {"longer-name", "22"}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	// All rows share the first column width.
	col := strings.Index(lines[0], "value")
	if strings.Index(lines[3], "22") != col {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	out, err := CSV(
		[]string{"impl", "note"},
		[][]string{{"GridMPI", "pacing, collectives"}, {"MPICH2", "plain"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := "impl,note\nGridMPI,\"pacing, collectives\"\nMPICH2,plain\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestSize(t *testing.T) {
	cases := map[int64]string{
		64:       "64 B",
		1024:     "1 kB",
		147456:   "144 kB",
		1 << 20:  "1 MB",
		64 << 20: "64 MB",
		3 << 19:  "1536 kB", // not a whole MB
	}
	for in, want := range cases {
		if got := Size(in); got != want {
			t.Errorf("Size(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFloatFormats(t *testing.T) {
	if F1(3.14159) != "3.1" || F2(3.14159) != "3.14" {
		t.Fatal("float formatting broken")
	}
}
