package tcpsim

import "testing"

// TestWindowCap pins the socket-buffer window model for all three policies,
// untuned and 4 MB-tuned. Notable cells:
//
//   - Explicit caps at rmem_max/wmem_max and loses a quarter of the receive
//     side to metadata (tcp_adv_win_scale=2);
//   - KernelDefault advertises from the tcp_rmem middle value but its send
//     ceiling is tcp_wmem[2] — Linux send-side autotuning is unconditional,
//     only receive moderation sticks (the asymmetry the seed code got wrong
//     by ignoring the send side entirely);
//   - Autotune grows to the tcp_rmem[2]/tcp_wmem[2] maxima.
func TestWindowCap(t *testing.T) {
	def := DefaultLinux26()
	tuned := Tuned4MB()

	// GridMPI tcp-tuned raises the middle values (mpiimpl.Configure); model
	// that stack here to pin the tuned KernelDefault cell.
	gridmpiTuned := tuned
	gridmpiTuned.TCPRmem[1] = 4 << 20
	gridmpiTuned.TCPWmem[1] = 4 << 20

	// A stack whose send autotuning maximum is genuinely binding: before
	// the fix, KernelDefault ignored it and answered adv(tcp_rmem[1]).
	sendBound := def
	sendBound.TCPWmem[2] = 32 << 10

	cases := []struct {
		name   string
		cfg    Config
		policy BufferPolicy
		want   int
	}{
		{"default/explicit-64k", def, BufferPolicy{Explicit: 64 << 10}, 49152},
		{"default/explicit-capped-256k", def, BufferPolicy{Explicit: 256 << 10}, 98304},
		{"default/kernel-default", def, BufferPolicy{KernelDefault: true}, 65535},
		{"default/autotune", def, Autotune, 131070},
		{"tuned/explicit-4M", tuned, BufferPolicy{Explicit: 4 << 20}, 3145728},
		{"tuned/kernel-default", tuned, BufferPolicy{KernelDefault: true}, 65535},
		{"tuned/kernel-default-gridmpi", gridmpiTuned, BufferPolicy{KernelDefault: true}, 3145728},
		{"tuned/autotune", tuned, Autotune, 3145728},
		{"send-bound/kernel-default", sendBound, BufferPolicy{KernelDefault: true}, 32 << 10},
	}
	for _, tc := range cases {
		if got := tc.cfg.WindowCap(tc.policy); got != tc.want {
			t.Errorf("%s: WindowCap = %d, want %d", tc.name, got, tc.want)
		}
	}
}
