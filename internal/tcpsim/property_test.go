package tcpsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestPropertyDeliveryMonotone: for any random message schedule, delivery
// callbacks fire in order, exactly once each, at non-decreasing times.
func TestPropertyDeliveryMonotone(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		k, net := testbed()
		defer k.Close()
		path := gridPath(net)
		if seed%2 == 0 {
			path = clusterPath(net)
		}
		policy := Autotune
		if seed%3 == 0 {
			policy = BufferPolicy{Explicit: 64 << 10}
		}
		f := NewFlow(k, path, Tuned4MB(), policy)
		var order []int
		var times []sim.Time
		k.Go("s", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				i := i
				size := int64(rng.Intn(1<<20) + 1)
				f.Send(p, size, func() {
					order = append(order, i)
					times = append(times, k.Now())
				})
				if rng.Intn(3) == 0 {
					p.Sleep(time.Duration(rng.Intn(50)) * time.Millisecond)
				}
			}
		})
		k.Run()
		if len(order) != n {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
			if i > 0 && times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByteConservation: the flow delivers exactly the bytes
// queued, whatever the schedule.
func TestPropertyByteConservation(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		k, net := testbed()
		defer k.Close()
		f := NewFlow(k, gridPath(net), DefaultLinux26(), Autotune)
		var queued int64
		k.Go("s", func(p *sim.Proc) {
			for i := 0; i < n; i++ {
				size := int64(rng.Intn(256<<10) + 1)
				queued += size
				f.Send(p, size, nil)
			}
		})
		k.Run()
		return f.Stats.BytesQueued == queued && f.Stats.BytesDelivered == queued &&
			f.Delivered() == queued
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(29))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCwndBounds: the congestion window never exceeds the window
// cap nor drops below one MSS, across random transfers.
func TestPropertyCwndBounds(t *testing.T) {
	prop := func(seed int64) bool {
		k, net := testbed()
		defer k.Close()
		cfg := Tuned4MB()
		f := NewFlow(k, gridPath(net), cfg, Autotune)
		ok := true
		k.Go("s", func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 10; i++ {
				f.Send(p, int64(rng.Intn(4<<20)+1), nil)
				if f.Cwnd() > float64(f.WindowCap())+1 || f.Cwnd() < float64(cfg.MSS)-1 {
					ok = false
				}
			}
		})
		k.Run()
		return ok
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicTrajectory: identical seeds and schedules give
// identical virtual end times, byte for byte.
func TestDeterministicTrajectory(t *testing.T) {
	run := func() sim.Time {
		k, net := testbed()
		defer k.Close()
		f1 := NewFlow(k, gridPath(net), Tuned4MB(), Autotune)
		f2 := NewFlow(k, gridPath(net), Tuned4MB(), Autotune)
		k.Go("a", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				f1.Send(p, 300<<10, nil)
			}
		})
		k.Go("b", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				f2.Send(p, 200<<10, nil)
			}
		})
		k.Run()
		return k.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// TestIncastTimeouts: many unpaced flows into one receiver NIC suffer RTO
// stalls; the same pattern paced does not.
func TestIncastTimeouts(t *testing.T) {
	run := func(paced bool) int64 {
		k := sim.New(7)
		defer k.Close()
		net := incastNet()
		cfg := Tuned4MB()
		cfg.Pacing = paced
		var timeouts int64
		flows := make([]*Flow, 8)
		dst := net.Host("nancy-1")
		for i := range flows {
			src := net.SiteHosts("rennes")[i]
			flows[i] = NewFlow(k, net.Path(src, dst), cfg, Autotune)
		}
		for _, f := range flows {
			f := f
			k.Go("s", func(p *sim.Proc) { f.Send(p, 16<<20, nil) })
		}
		k.Run()
		for _, f := range flows {
			timeouts += f.Stats.Timeouts
		}
		return timeouts
	}
	unpaced, paced := run(false), run(true)
	if unpaced == 0 {
		t.Error("8-way unpaced WAN incast produced no RTO stalls")
	}
	if paced > unpaced {
		t.Errorf("paced incast timed out more (%d) than unpaced (%d)", paced, unpaced)
	}
}

// incastNet builds eight senders in Rennes and one receiver in Nancy: the
// receiver's NIC is the oversubscribed bottleneck.
func incastNet() *netsim.Network {
	n := netsim.New()
	n.AddSite("rennes", 8, 1.0, GigabitEthernet, 29*time.Microsecond)
	n.AddSite("nancy", 1, 1.0, GigabitEthernet, 29*time.Microsecond)
	n.SetUplink("rennes", TenGigabitEthernet)
	n.SetUplink("nancy", TenGigabitEthernet)
	n.ConnectSites("rennes", "nancy", 5800*time.Microsecond)
	return n
}
