package tcpsim

import (
	"testing"
	"time"
)

// TestLinkDownMidTransferStallsAndResumes is the ISSUE's Release-panic
// regression: an uplink dies while a flow holds the path. The seed code
// panicked ("release of idle link") because SetDown zeroed the link's flow
// count out from under the holder; with generation-tracked registrations
// the flow stalls, waits for the link, and finishes the transfer.
func TestLinkDownMidTransferStallsAndResumes(t *testing.T) {
	const total = 64 << 20

	run := func(fault bool) (time.Duration, FlowStats) {
		k, n := testbed()
		defer k.Close()
		f := NewFlow(k, gridPath(n), Tuned4MB(), Autotune)
		if fault {
			out, in, ok := n.Uplink("rennes")
			if !ok {
				t.Fatal("rennes uplink missing")
			}
			k.Schedule(50*time.Millisecond, func() {
				out.SetDown(true)
				in.SetDown(true)
			})
			k.Schedule(250*time.Millisecond, func() {
				out.SetDown(false)
				in.SetDown(false)
			})
		}
		d := transferTime(t, k, f, total, total)
		return d, f.Stats
	}

	healthy, _ := run(false)
	faulted, stats := run(true)

	if stats.LinkStalls != 1 {
		t.Fatalf("LinkStalls = %d, want exactly one stall episode", stats.LinkStalls)
	}
	if stats.StallTime <= 100*time.Millisecond {
		t.Fatalf("StallTime = %v, want most of the 200ms outage", stats.StallTime)
	}
	if stats.BytesDelivered != total {
		t.Fatalf("delivered %d of %d bytes", stats.BytesDelivered, total)
	}
	if faulted < healthy+100*time.Millisecond {
		t.Fatalf("faulted transfer %v vs healthy %v: outage not reflected", faulted, healthy)
	}
}

// TestDownBeforeStartDefersTransfer covers the other stall entry: the link
// is already dead when the flow first pumps, so AcquireGens must not run
// until the path recovers.
func TestDownBeforeStartDefersTransfer(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	out, in, _ := n.Uplink("nancy")
	out.SetDown(true)
	in.SetDown(true)
	k.Schedule(30*time.Millisecond, func() {
		out.SetDown(false)
		in.SetDown(false)
	})
	f := NewFlow(k, gridPath(n), Tuned4MB(), Autotune)
	d := transferTime(t, k, f, 1<<20, 1<<20)
	if d < 30*time.Millisecond {
		t.Fatalf("transfer finished at %v, before the link came up", d)
	}
	if f.Stats.LinkStalls != 1 || f.Stats.StallTime < 25*time.Millisecond {
		t.Fatalf("stats = %+v, want one ≈30ms stall", f.Stats)
	}
}

// TestInjectedLossDegradesDeterministically checks the loss hook: a lossy
// path counts retransmissions, costs bandwidth, and — because every draw
// comes from the kernel RNG — replays to the identical result.
func TestInjectedLossDegradesDeterministically(t *testing.T) {
	const total = 16 << 20

	run := func(loss float64) (time.Duration, FlowStats) {
		k, n := testbed()
		defer k.Close()
		p := gridPath(n)
		for _, l := range p.Links {
			l.SetExtraLoss(loss)
		}
		f := NewFlow(k, p, Tuned4MB(), Autotune)
		d := transferTime(t, k, f, total, total)
		return d, f.Stats
	}

	clean, cleanStats := run(0)
	lossy1, stats1 := run(0.05)
	lossy2, stats2 := run(0.05)

	if cleanStats.InjectedLosses != 0 || cleanStats.RetransBytes != 0 {
		t.Fatalf("clean run recorded injected losses: %+v", cleanStats)
	}
	if stats1.InjectedLosses == 0 || stats1.RetransBytes == 0 {
		t.Fatalf("lossy run recorded no injected losses: %+v", stats1)
	}
	if lossy1 <= clean {
		t.Fatalf("lossy transfer %v not slower than clean %v", lossy1, clean)
	}
	if lossy1 != lossy2 || stats1 != stats2 {
		t.Fatalf("lossy replay diverged: %v/%+v vs %v/%+v", lossy1, stats1, lossy2, stats2)
	}
}

// TestInjectedJitterSlowsButStaysDeterministic checks the jitter hook and
// the delivery-order invariant: jitter stretches rounds (never reorders
// them — deliverHead's FIFO would silently corrupt offsets) and replays
// bit-for-bit.
func TestInjectedJitterSlowsButStaysDeterministic(t *testing.T) {
	const total = 16 << 20

	run := func(j time.Duration) time.Duration {
		k, n := testbed()
		defer k.Close()
		p := gridPath(n)
		p.Links[1].SetJitter(j) // the rennes uplink
		f := NewFlow(k, p, Tuned4MB(), Autotune)
		d := transferTime(t, k, f, total, total)
		if f.Stats.BytesDelivered != total {
			t.Fatalf("jitter %v: delivered %d of %d", j, f.Stats.BytesDelivered, total)
		}
		return d
	}

	clean := run(0)
	jit1 := run(3 * time.Millisecond)
	jit2 := run(3 * time.Millisecond)
	if jit1 <= clean {
		t.Fatalf("jittered transfer %v not slower than clean %v", jit1, clean)
	}
	if jit1 != jit2 {
		t.Fatalf("jittered replay diverged: %v vs %v", jit1, jit2)
	}
}
