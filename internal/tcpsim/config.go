// Package tcpsim simulates TCP transport over a netsim network at
// flow level: one simulation event per congestion-window round instead of
// one per segment. Each round transmits min(cwnd, socket window, pending)
// bytes, lasts max(RTT, serialization), and updates the congestion window
// with slow-start / BIC / Reno rules, burst losses on unpaced slow-start
// overshoot (the phenomenon behind the paper's Figure 9), and contention
// losses on oversubscribed links.
//
// The socket-buffer model reproduces the Linux 2.6.18 semantics the paper
// tunes in §4.2.1: explicit setsockopt sizes are capped by rmem_max /
// wmem_max, while connections that do not call setsockopt are governed by
// the tcp_rmem / tcp_wmem autotuning bounds.
package tcpsim

import "time"

// Common rates in bytes per second.
const (
	GigabitEthernet    = 125e6  // 1 Gbit/s
	TenGigabitEthernet = 1.25e9 // 10 Gbit/s
)

// Config models the host TCP stack: the Linux sysctls the paper tunes plus
// the congestion-control behaviour knobs.
type Config struct {
	// RmemMax / WmemMax cap explicit setsockopt(SO_RCVBUF/SO_SNDBUF)
	// requests (/proc/sys/net/core/rmem_max, wmem_max).
	RmemMax, WmemMax int

	// TCPRmem / TCPWmem are the {min, default, max} autotuning bounds
	// (/proc/sys/net/ipv4/tcp_rmem, tcp_wmem). Index 1 (the "middle
	// value") is the initial window used by stacks that disable
	// autotuning; index 2 bounds autotuned growth.
	TCPRmem, TCPWmem [3]int

	// MSS is the TCP payload per segment; FrameOverhead is the per-segment
	// wire overhead (IP+TCP+Ethernet framing), giving a goodput efficiency
	// of MSS/(MSS+FrameOverhead) — 94.1% on GbE, the paper's 940 Mbps.
	MSS           int
	FrameOverhead int

	// InitCwndSegs is the initial congestion window in segments.
	InitCwndSegs int

	// InitialSsthresh (bytes) models the conservative slow-start threshold
	// a fresh Linux connection starts from (route-cache metrics / early
	// ack-train losses). It is what makes the first seconds of a
	// long-distance transfer slow (Figure 9): above it, the window grows
	// only at congestion-avoidance speed.
	InitialSsthresh int

	// Congestion selects the avoidance algorithm: "bic" (the paper's
	// kernel default) or "reno".
	Congestion string

	// SlowStartAfterIdle mirrors tcp_slow_start_after_idle: connections
	// idle for longer than the RTO restart from the initial window.
	SlowStartAfterIdle bool

	// BurstQueue is the bottleneck queue capacity (bytes) of a
	// long-distance path: an unpaced slow-start burst whose window exceeds
	// the path BDP plus this queue overflows it and loses segments. Paced
	// senders (GridMPI's kernel modification) smooth their bursts and
	// tolerate PacingBurstFactor times more.
	BurstQueue        int
	PacingBurstFactor float64

	// PacingGrowthFactor scales congestion-avoidance growth for paced
	// flows: a smooth ack clock lets BIC take its full increments, so a
	// paced connection recovers window multiple times faster — the
	// behaviour behind GridMPI's fast ramp in Figure 9(c).
	PacingGrowthFactor float64

	// ContentionLossCoef scales the per-round loss probability of a flow
	// whose path links are oversubscribed; paced flows multiply it by
	// PacingLossFactor (<1).
	ContentionLossCoef float64
	PacingLossFactor   float64

	// MinRTO is the lower bound on the retransmission timeout used for the
	// idle-restart rule.
	MinRTO time.Duration

	// HostOverhead is the per-endpoint software latency added to every
	// one-way traversal (interrupt + stack + copy). Two endpoints
	// contribute 2*HostOverhead to a one-way message latency.
	HostOverhead time.Duration

	// Pacing enables software pacing on flows opened under this config
	// (GridMPI's TCP modification, Takano et al. PFLDnet'05).
	Pacing bool

	// WANThreshold classifies a path as long-distance when its RTT is at
	// least this value; burst losses only occur on long-distance paths
	// (cluster switches have ample queues relative to the tiny BDP).
	WANThreshold time.Duration
}

// DefaultLinux26 returns the Linux 2.6.18 stack the paper's nodes boot
// with, untuned: 128 kB-class socket buffer ceilings that strangle a
// 11.6 ms RTT path to ~120 Mbps (Figure 3).
func DefaultLinux26() Config {
	return Config{
		RmemMax:            131072,
		WmemMax:            131072,
		TCPRmem:            [3]int{4096, 87380, 174760},
		TCPWmem:            [3]int{4096, 16384, 262144},
		MSS:                1448,
		FrameOverhead:      90,
		InitCwndSegs:       3,
		InitialSsthresh:    512 << 10,
		Congestion:         "bic",
		SlowStartAfterIdle: true,
		BurstQueue:         256 << 10,
		PacingBurstFactor:  4,
		PacingGrowthFactor: 8,
		ContentionLossCoef: 0.12,
		PacingLossFactor:   0.10,
		MinRTO:             200 * time.Millisecond,
		HostOverhead:       6 * time.Microsecond,
		WANThreshold:       time.Millisecond,
	}
}

// Tuned4MB returns the paper's §4.2.1 tuning: rmem_max/wmem_max and the
// autotuning maxima raised to 4 MB — at least the 1.45 MB bandwidth-delay
// product of the Rennes–Nancy path, with headroom for the rest of the grid.
// It deliberately leaves the tcp_rmem/tcp_wmem middle values alone: raising
// those is a per-stack need (GridMPI never autotunes past the middle value)
// and lives with the stack, in mpiimpl.Configure's GridMPI branch, not in
// the host-wide sysctl tuning.
func Tuned4MB() Config {
	c := DefaultLinux26()
	const buf = 4 << 20
	c.RmemMax = buf
	c.WmemMax = buf
	c.TCPRmem[2] = buf
	c.TCPWmem[2] = buf
	// Companion WAN tuning: without it, every >0.2 s pingpong message
	// restarts from the initial window and large-message bandwidth
	// plateaus hundreds of Mbps short of the paper's ~900 Mbps
	// (tcp_slow_start_after_idle=0 is standard practice on long fat
	// networks and necessary to reproduce Figures 6 and 7).
	c.SlowStartAfterIdle = false
	return c
}

// Efficiency returns the goodput fraction of raw link rate.
func (c Config) Efficiency() float64 {
	return float64(c.MSS) / float64(c.MSS+c.FrameOverhead)
}

// BufferPolicy says how a connection sizes its socket buffers, mirroring
// the three behaviours the paper encounters (§4.2.1).
type BufferPolicy struct {
	// Explicit > 0 means the application calls setsockopt with this size
	// (OpenMPI's btl_tcp_sndbuf/rcvbuf); the kernel caps it at
	// rmem_max/wmem_max and autotuning is disabled.
	Explicit int
	// KernelDefault means the connection sticks to the tcp_rmem middle
	// value and never autotunes (GridMPI's behaviour: tuning it requires
	// raising the middle value).
	KernelDefault bool
	// Otherwise the kernel autotunes up to tcp_rmem[2]/tcp_wmem[2]
	// (MPICH2, MPICH-Madeleine, and the raw-TCP pingpong).
}

// Autotune is the zero BufferPolicy: kernel autotuning.
var Autotune = BufferPolicy{}

// WindowCap returns the effective window limit (bytes) a connection can
// ever have in flight under this policy: the binding minimum of the send
// buffer ceiling and the advertisable receive window. Linux reserves a
// quarter of the receive buffer for metadata (tcp_adv_win_scale=2), so
// only 3/4 of the receive-side bytes are usable as window — this is what
// keeps the paper's untuned grid curves under 120 Mbps at every size.
func (c Config) WindowCap(p BufferPolicy) int {
	adv := func(rcv int) int { return rcv - rcv/4 }
	switch {
	case p.Explicit > 0:
		snd := min(p.Explicit, c.WmemMax)
		rcv := min(p.Explicit, c.RmemMax)
		return min(snd, adv(rcv))
	case p.KernelDefault:
		// "KernelDefault" is a receive-side condition: moderation keeps the
		// advertised window at the tcp_rmem middle value (GridMPI's
		// behaviour). The send buffer is NOT stuck at tcp_wmem[1] — Linux
		// send-side autotuning is unconditional (it needs no application
		// cooperation), so the send ceiling is tcp_wmem[2]. With the stock
		// 2.6.18 sysctls that ceiling (256 kB) clears adv(87380) ≈ 64 kB and
		// the receive window binds, which is why the asymmetry with the
		// Explicit branch is invisible in the shipped configs — but a stack
		// with a small tcp_wmem[2] would be send-limited, and this honors it.
		return min(c.TCPWmem[2], adv(c.TCPRmem[1]))
	default:
		return min(c.TCPWmem[2], adv(c.TCPRmem[2]))
	}
}
