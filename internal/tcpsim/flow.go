package tcpsim

import (
	"math"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// FlowStats accumulates per-flow counters for diagnostics and tests.
type FlowStats struct {
	BytesQueued    int64
	BytesDelivered int64
	Rounds         int64
	BurstLosses    int64
	ContentionLoss int64
	Timeouts       int64
	IdleRestarts   int64
	PeakCwnd       float64

	// Fault-injection counters: rounds lost to injected (plan-driven) loss,
	// the bytes those rounds retransmitted, link-down stall episodes and
	// the total time spent stalled waiting for a dead link to come back.
	InjectedLosses int64
	RetransBytes   int64
	LinkStalls     int64
	StallTime      time.Duration
}

// Add accumulates o into s (summing counters, taking the max of peaks), for
// aggregating degraded-mode metrics across a world's flows.
func (s *FlowStats) Add(o FlowStats) {
	s.BytesQueued += o.BytesQueued
	s.BytesDelivered += o.BytesDelivered
	s.Rounds += o.Rounds
	s.BurstLosses += o.BurstLosses
	s.ContentionLoss += o.ContentionLoss
	s.Timeouts += o.Timeouts
	s.IdleRestarts += o.IdleRestarts
	if o.PeakCwnd > s.PeakCwnd {
		s.PeakCwnd = o.PeakCwnd
	}
	s.InjectedLosses += o.InjectedLosses
	s.RetransBytes += o.RetransBytes
	s.LinkStalls += o.LinkStalls
	s.StallTime += o.StallTime
}

// Flow is one direction of a TCP connection: a reliable byte stream from
// path.Src to path.Dst with congestion-window dynamics. Senders enqueue
// byte counts (message payloads are abstract); the flow reports delivery of
// stream offsets to registered callbacks in order.
type Flow struct {
	k      *sim.Kernel
	cfg    Config
	path   *netsim.Path
	policy BufferPolicy

	windowCap int     // min(send buffer, receive buffer) ceiling
	eff       float64 // goodput fraction of raw link rate

	cwnd      float64
	ssthresh  float64
	wmax      float64 // BIC reference point (last loss window)
	slowStart bool

	queued       int64 // total bytes ever enqueued
	sentOff      int64 // bytes handed to the network
	ackedOff     int64 // bytes acknowledged (freed from the send buffer)
	deliveredOff int64 // bytes fully received at Dst

	busy       bool // a round is in flight
	pathActive bool // links acquired
	lastActive sim.Time
	stallUntil sim.Time // RTO stall deadline after an incast timeout

	// Fault-injection state. linkGens holds the per-link registration
	// generations of the current path hold (reused scratch): releasing with
	// them makes fault teardown (link went down and evicted us) idempotent
	// while preserving the double-release panic for real accounting bugs.
	// downWait marks the flow parked on a dead path; onUpFn is the bound
	// wakeup NotifyUp fires. lastArriveAt keeps delivery events monotone
	// when injected loss or jitter stretches one round's arrival, upholding
	// delivQ's FIFO invariant. ackInjLoss travels with the one outstanding
	// round like ackW does.
	linkGens     []uint32
	downWait     bool
	stallStart   sim.Time
	onUpFn       func()
	lastArriveAt sim.Time
	ackInjLoss   bool

	writeMu *sim.Mutex
	// spaceFree gates a writer blocked on send-buffer space. One signal,
	// created with the flow, is fired and rearmed per wakeup: writeMu
	// serializes writers, so at most one process ever waits on it, and
	// allocating a fresh Signal per blocked write (the seed behavior) is
	// the single largest allocation source in a large-message sweep.
	spaceFree *sim.Signal
	wantSpace bool // a writer is parked on spaceFree

	notifies []notifyEntry
	due      []notifyEntry // deliver's reusable scratch for due callbacks

	// Bound callbacks, created once per flow: the transmit loop schedules
	// kernel events every round, and a fresh method-value or closure per
	// Schedule call is an allocation the event loop pays millions of
	// times per sweep. Round parameters travel in ackW/ackRoundTime/
	// ackRateLimited (one round outstanding, guarded by busy) and delivQ
	// (a FIFO of in-flight round end offsets; arrival times are monotone,
	// so events pop it in order).
	pumpFn         func()
	deliverFn      func()
	ackFn          func()
	delivQ         []int64
	ackW           int64
	ackRoundTime   time.Duration
	ackRateLimited bool

	Stats FlowStats
}

// notifyEntry is one registered delivery callback: fn, or fn1(arg) for
// callers that avoid the closure by passing a package-level function plus
// a pooled argument (see SendArg).
type notifyEntry struct {
	off int64
	fn  func()
	fn1 func(any)
	arg any
}

// NewFlow opens a one-directional TCP stream over path using stack cfg and
// socket-buffer policy policy.
func NewFlow(k *sim.Kernel, path *netsim.Path, cfg Config, policy BufferPolicy) *Flow {
	f := &Flow{
		k:         k,
		cfg:       cfg,
		path:      path,
		policy:    policy,
		windowCap: cfg.WindowCap(policy),
		eff:       cfg.Efficiency(),
		cwnd:      float64(cfg.InitCwndSegs * cfg.MSS),
		ssthresh:  math.MaxFloat64 / 4,
		slowStart: true,
		writeMu:   k.NewMutex(),
		spaceFree: k.NewSignal(),
	}
	if f.windowCap < cfg.MSS {
		f.windowCap = cfg.MSS
	}
	f.pumpFn = f.pump
	f.deliverFn = f.deliverHead
	f.ackFn = f.roundAckedPending
	f.onUpFn = f.pathUp
	// A conservative initial ssthresh only matters on long paths: cluster
	// BDPs are far below it, so local connections effectively slow-start
	// straight to their operating window. Paced senders do not suffer the
	// early ack-train losses the low initial threshold models, so they
	// keep slow-starting to the pipe capacity — GridMPI's fast ramp.
	if cfg.InitialSsthresh > 0 && f.isWAN() && !cfg.Pacing {
		f.ssthresh = float64(cfg.InitialSsthresh)
	}
	return f
}

// bdp returns the path's bandwidth-delay product in bytes.
func (f *Flow) bdp() float64 {
	return f.path.Bottleneck() * f.eff * f.rtt().Seconds()
}

// Path returns the network path the flow runs over.
func (f *Flow) Path() *netsim.Path { return f.path }

// WindowCap returns the socket-buffer-imposed window ceiling in bytes.
func (f *Flow) WindowCap() int { return f.windowCap }

// Cwnd returns the current congestion window in bytes.
func (f *Flow) Cwnd() float64 { return f.cwnd }

// InSlowStart reports whether the flow is in slow start.
func (f *Flow) InSlowStart() bool { return f.slowStart }

// Delivered returns the stream offset fully received at the destination.
func (f *Flow) Delivered() int64 { return f.deliveredOff }

// isWAN reports whether this path counts as long-distance for the burst
// loss model.
func (f *Flow) isWAN() bool { return f.path.RTT() >= f.cfg.WANThreshold }

// rtt is the effective round-trip time including endpoint software costs.
func (f *Flow) rtt() time.Duration { return f.path.RTT() + 2*f.cfg.HostOverhead }

// rto is the idle-restart threshold.
func (f *Flow) rto() time.Duration {
	r := 2 * f.rtt()
	if r < f.cfg.MinRTO {
		r = f.cfg.MinRTO
	}
	return r
}

// Send enqueues n bytes from process p, blocking until the send socket
// buffer has accepted all of them (the paper's eager-mode completion
// semantics: MPI_Send returns once the data is copied into the TCP buffer).
// If delivered is non-nil it runs when the destination has received the
// last of these n bytes. Concurrent senders are serialized FIFO.
func (f *Flow) Send(p *sim.Proc, n int64, delivered func()) {
	if n <= 0 {
		if delivered != nil {
			f.notifyAt(f.queued, delivered)
		}
		return
	}
	f.write(p, n)
	if delivered != nil {
		f.notifyAt(f.queued, delivered)
	}
	f.writeMu.Unlock()
}

// SendArg is Send with an argument-taking delivered callback: fn(arg) runs
// when the destination has received the last of the n bytes. A
// package-level fn plus a pooled arg lets per-message protocol layers
// (mpi's delivery arena) register completion without the closure Send's
// delivered parameter would allocate.
func (f *Flow) SendArg(p *sim.Proc, n int64, fn func(any), arg any) {
	if n <= 0 {
		f.notifyAtArg(f.queued, fn, arg)
		return
	}
	f.write(p, n)
	f.notifyAtArg(f.queued, fn, arg)
	f.writeMu.Unlock()
}

// write blocks p until the send socket buffer has accepted n bytes,
// holding the write lock. The caller registers its delivery callback and
// then releases writeMu, so the notify order matches the write order.
func (f *Flow) write(p *sim.Proc, n int64) {
	f.writeMu.Lock(p)
	remaining := n
	for remaining > 0 {
		// Like write(2): fill whatever buffer space is free, block only
		// when there is none. Keeping the buffer topped up keeps the
		// congestion window fully utilizable.
		free := f.sndbufFree()
		if free <= 0 {
			f.wantSpace = true
			f.spaceFree.Wait(p)
			continue
		}
		chunk := remaining
		if chunk > free {
			chunk = free
		}
		f.enqueue(chunk, nil)
		remaining -= chunk
	}
}

// SendAsync enqueues n bytes without blocking for buffer space; it is meant
// for small control messages (rendezvous RTS/CTS) issued from event
// context. delivered, if non-nil, runs when the bytes reach the receiver.
func (f *Flow) SendAsync(n int64, delivered func()) {
	if n <= 0 {
		n = 1
	}
	f.enqueue(n, delivered)
}

// SendAsyncArg is SendAsync with an argument-taking delivered callback.
func (f *Flow) SendAsyncArg(n int64, fn func(any), arg any) {
	if n <= 0 {
		n = 1
	}
	f.queued += n
	f.Stats.BytesQueued += n
	f.notifyAtArg(f.queued, fn, arg)
	f.pump()
}

// sndbufFree returns the free space in the send socket buffer.
func (f *Flow) sndbufFree() int64 {
	return int64(f.windowCap) - (f.queued - f.ackedOff)
}

// enqueue adds n bytes to the stream and starts the transmit loop.
func (f *Flow) enqueue(n int64, delivered func()) {
	f.queued += n
	f.Stats.BytesQueued += n
	if delivered != nil {
		f.notifyAt(f.queued, delivered)
	}
	f.pump()
}

// notifyAt registers fn to run once deliveredOff ≥ off.
func (f *Flow) notifyAt(off int64, fn func()) {
	if off <= f.deliveredOff {
		f.k.Schedule(f.k.Now(), fn)
		return
	}
	// Insert keeping ascending offset order; appends dominate because
	// stream offsets grow monotonically.
	i := len(f.notifies)
	for i > 0 && f.notifies[i-1].off > off {
		i--
	}
	f.notifies = append(f.notifies, notifyEntry{})
	copy(f.notifies[i+1:], f.notifies[i:])
	f.notifies[i] = notifyEntry{off: off, fn: fn}
}

// notifyAtArg registers fn(arg) to run once deliveredOff ≥ off.
func (f *Flow) notifyAtArg(off int64, fn func(any), arg any) {
	if off <= f.deliveredOff {
		f.k.Schedule(f.k.Now(), func() { fn(arg) })
		return
	}
	i := len(f.notifies)
	for i > 0 && f.notifies[i-1].off > off {
		i--
	}
	f.notifies = append(f.notifies, notifyEntry{})
	copy(f.notifies[i+1:], f.notifies[i:])
	f.notifies[i] = notifyEntry{off: off, fn1: fn, arg: arg}
}

// pump transmits the next congestion-window round if the flow is idle and
// has pending data.
func (f *Flow) pump() {
	if f.busy {
		return
	}
	pending := f.queued - f.sentOff
	if pending == 0 {
		if f.pathActive {
			f.path.ReleaseGens(f.linkGens)
			f.linkGens = f.linkGens[:0]
			f.pathActive = false
		}
		return
	}
	if f.path.Down() {
		f.stallOnDown()
		return
	}
	now := f.k.Now()
	if now < f.stallUntil {
		f.k.Schedule(f.stallUntil, f.pumpFn)
		return
	}
	if f.cfg.SlowStartAfterIdle && f.lastActive > 0 && now-f.lastActive > f.rto() {
		f.idleRestart()
	}
	if !f.pathActive {
		f.linkGens = f.path.AcquireGens(f.linkGens[:0])
		f.pathActive = true
	}
	w := int64(f.window())
	if w > pending {
		w = pending
	}
	if w < int64(f.cfg.MSS) && pending >= int64(f.cfg.MSS) {
		w = int64(f.cfg.MSS)
	}
	rate := f.path.ShareRate() * f.eff
	serial := time.Duration(float64(w) / rate * float64(time.Second))
	rtt := f.rtt()
	// The ack clock only gates the sender in proportion to how much of
	// the usable window this round consumed: a full window must wait a
	// whole RTT for acks, while a short round (message tail, sparse
	// sends) leaves cwnd headroom and transmission stays continuous.
	// Sustained throughput is thus capped at exactly window/RTT.
	gate := time.Duration(float64(rtt) * float64(w) / f.window())
	if gate > rtt {
		gate = rtt
	}
	roundTime := gate
	rateLimited := serial >= gate
	if serial > roundTime {
		roundTime = serial
	}
	arrive := f.path.OneWay + 2*f.cfg.HostOverhead + serial

	// Injected faults. Both guards are exact zero-checks so a run without a
	// fault plan draws nothing from the kernel RNG — the RNG stream, and
	// with it the event-order golden, is untouched. A lost round is
	// retransmitted after one more RTT (data and ack both late); the
	// congestion response is applied when the round completes, via
	// ackInjLoss. Jitter stretches data and ack clock alike, so arrival
	// times stay monotone and delivQ's FIFO matching stays valid — the
	// lastArriveAt clamp below is the belt to that suspenders.
	injLoss := false
	if p := f.path.ExtraLoss(); p > 0 && f.k.Rand().Float64() < p {
		injLoss = true
		f.Stats.InjectedLosses++
		f.Stats.RetransBytes += w
		arrive += rtt
		roundTime += rtt
	}
	if j := f.path.Jitter(); j > 0 {
		dj := time.Duration(f.k.Rand().Float64() * float64(j))
		arrive += dj
		roundTime += dj
	}
	arriveAt := now + arrive
	if arriveAt < f.lastArriveAt {
		arriveAt = f.lastArriveAt
	}
	f.lastArriveAt = arriveAt

	f.busy = true
	f.sentOff += w
	f.Stats.Rounds++
	f.delivQ = append(f.delivQ, f.sentOff)
	f.k.Schedule(arriveAt, f.deliverFn)
	f.ackW, f.ackRoundTime, f.ackRateLimited, f.ackInjLoss = w, roundTime, rateLimited, injLoss
	f.k.After(roundTime, f.ackFn)
}

// stallOnDown parks the flow while its path has a dead link: registrations
// are dropped (idempotently — the dead link already voided its own) and the
// flow re-pumps when the path recovers. Pending data stays queued, so the
// transfer resumes where it stalled instead of panicking in Release.
func (f *Flow) stallOnDown() {
	if f.pathActive {
		f.path.ReleaseGens(f.linkGens)
		f.linkGens = f.linkGens[:0]
		f.pathActive = false
	}
	if f.downWait {
		return
	}
	f.downWait = true
	f.Stats.LinkStalls++
	f.stallStart = f.k.Now()
	f.path.NotifyUp(f.onUpFn)
}

// pathUp is the NotifyUp callback: account the stall and resume the
// transmit loop. It runs inside the link-up fault event.
func (f *Flow) pathUp() {
	if !f.downWait {
		return
	}
	f.downWait = false
	f.Stats.StallTime += f.k.Now() - f.stallStart
	f.pump()
}

// deliverHead completes the oldest in-flight round's arrival. Rounds
// deliver in schedule order (arrival times never decrease: round n+1
// starts no earlier than round n's serialization ends), so a FIFO of end
// offsets matches events to rounds without a per-round closure.
func (f *Flow) deliverHead() {
	endOff := f.delivQ[0]
	n := copy(f.delivQ, f.delivQ[1:])
	f.delivQ = f.delivQ[:n]
	f.deliver(endOff)
}

// roundAckedPending runs the pending round-completion with the parameters
// pump recorded; busy guarantees exactly one round is outstanding.
func (f *Flow) roundAckedPending() {
	f.roundAcked(f.ackW, f.ackRoundTime, f.ackRateLimited)
}

// window is the usable window this round.
func (f *Flow) window() float64 {
	w := f.cwnd
	if c := float64(f.windowCap); w > c {
		w = c
	}
	if m := float64(f.cfg.MSS); w < m {
		w = m
	}
	return w
}

// deliver advances the receive offset and fires due callbacks in order.
func (f *Flow) deliver(endOff int64) {
	if endOff <= f.deliveredOff {
		return
	}
	f.Stats.BytesDelivered += endOff - f.deliveredOff
	f.deliveredOff = endOff
	n := 0
	for n < len(f.notifies) && f.notifies[n].off <= f.deliveredOff {
		n++
	}
	if n == 0 {
		return
	}
	// Move the due prefix to the reusable scratch, then compact the rest
	// in place: reslicing (f.notifies = f.notifies[n:]) would pin the
	// consumed prefix — and every callback it captured — in the backing
	// array, and surrender the array's front capacity so later inserts
	// reallocate. Callbacks run from the scratch because they may append
	// fresh notifies (rendezvous chains) while we iterate.
	f.due = append(f.due[:0], f.notifies[:n]...)
	m := copy(f.notifies, f.notifies[n:])
	clear(f.notifies[m:])
	f.notifies = f.notifies[:m]
	for i := range f.due {
		if e := &f.due[i]; e.fn1 != nil {
			e.fn1(e.arg)
		} else {
			e.fn()
		}
	}
	clear(f.due) // release the callback refs until the next round
	f.due = f.due[:0]
}

// roundAcked completes a window round: frees buffer space, grows or shrinks
// the congestion window, wakes a blocked writer, and continues transmitting.
func (f *Flow) roundAcked(w int64, roundTime time.Duration, rateLimited bool) {
	f.ackedOff += w
	f.lastActive = f.k.Now()
	f.updateCwnd(w, roundTime, rateLimited)
	f.busy = false
	if f.wantSpace && f.sndbufFree() > 0 {
		// Wake the blocked writer first, then pump: the writer's resume
		// event is scheduled before the pump event, so it refills the
		// buffer and the next round sends a full window instead of the
		// leftover tail. The signal is rearmed immediately — the woken
		// writer is the only process that can Wait on it again.
		f.wantSpace = false
		f.spaceFree.Fire()
		f.spaceFree.Reset()
		f.k.Schedule(f.k.Now(), f.pumpFn)
		return
	}
	f.pump()
}

// updateCwnd applies slow start / congestion avoidance plus the two loss
// models (slow-start burst overshoot; contention on shared links).
func (f *Flow) updateCwnd(w int64, roundTime time.Duration, rateLimited bool) {
	mss := float64(f.cfg.MSS)
	cap64 := float64(f.windowCap)
	if f.ackInjLoss {
		// The round lost a segment to injected path loss and recovered by
		// fast retransmit: multiplicative decrease, no growth this round.
		f.ackInjLoss = false
		f.wmax = f.cwnd
		f.cwnd *= 0.5
		f.ssthresh = f.cwnd
		f.slowStart = false
		if f.cwnd < mss {
			f.cwnd = mss
		}
		return
	}
	if f.slowStart {
		f.cwnd += float64(w)
		queue := float64(f.cfg.BurstQueue)
		if f.cfg.Pacing {
			queue *= f.cfg.PacingBurstFactor
		}
		burst := f.bdp() + queue
		switch {
		case f.isWAN() && f.cwnd > burst && f.cwnd < cap64:
			f.burstLoss()
		case f.cwnd >= f.ssthresh:
			f.slowStart = false
			if f.cwnd > f.wmax {
				f.wmax = f.cwnd
			}
		case f.cwnd >= cap64:
			f.slowStart = false
			f.wmax = f.cwnd
		}
	} else {
		frac := float64(w) / f.cwnd
		if frac > 1 {
			frac = 1
		}
		var inc float64
		if f.cfg.Congestion == "reno" {
			inc = mss
		} else {
			inc = f.bicIncrement(mss)
		}
		if f.cfg.Pacing && f.cfg.PacingGrowthFactor > 1 {
			inc *= f.cfg.PacingGrowthFactor
		}
		f.cwnd += inc * frac
		if rateLimited {
			f.maybeContentionLoss(roundTime)
		}
	}
	if f.cwnd > cap64 {
		f.cwnd = cap64
		f.slowStart = false
	}
	if f.cwnd < mss {
		f.cwnd = mss
	}
	if f.cwnd > f.Stats.PeakCwnd {
		f.Stats.PeakCwnd = f.cwnd
	}
}

// bicIncrement returns the per-RTT window increase of BIC: binary search
// below the last loss point, gentle max-probing above it. The caps are
// deliberately small: on a clean long path BIC's effective growth is a few
// segments per RTT, which is what stretches the paper's Figure 9 ramp over
// seconds.
func (f *Flow) bicIncrement(mss float64) float64 {
	const (
		binaryCapSegs = 4 // effective Smax during binary search
		probeCapSegs  = 3 // gentle growth while probing past wmax
	)
	if f.wmax > 0 && f.cwnd < f.wmax {
		inc := (f.wmax - f.cwnd) / 2
		return clamp(inc, mss, binaryCapSegs*mss)
	}
	inc := f.cwnd - f.wmax // doubles each RTT while probing
	return clamp(inc, mss, probeCapSegs*mss)
}

// burstLoss models an unpaced slow-start burst overflowing the bottleneck
// queue of a long-distance path: multiplicative back-off and exit to
// congestion avoidance.
func (f *Flow) burstLoss() {
	f.Stats.BurstLosses++
	f.wmax = f.cwnd
	f.cwnd *= 0.5
	f.ssthresh = f.cwnd
	f.slowStart = false
}

// maybeContentionLoss applies a probabilistic loss when the path's links
// are oversubscribed AND this flow actually pushed at its share (callers
// gate it on rate-limited rounds: a window-limited flow underuses its
// share and does not overflow queues). Real TCP is exposed to queue
// overflows once per RTT, so a round spanning several RTTs draws
// proportionally more risk. On long paths a fraction of losses escalates
// to retransmission timeouts — the incast collapse that hammers unpaced
// many-flow patterns like IS's alltoall.
func (f *Flow) maybeContentionLoss(roundTime time.Duration) {
	share := f.path.ShareRate()
	bott := f.path.Bottleneck()
	if share >= bott {
		return
	}
	over := bott/share - 1
	if over > 3 {
		over = 3
	}
	draws := float64(roundTime) / float64(f.rtt())
	if draws < 1 {
		draws = 1
	}
	p := f.cfg.ContentionLossCoef * over * draws
	if f.cfg.Pacing {
		p *= f.cfg.PacingLossFactor
	}
	if p > 0.75 {
		p = 0.75
	}
	if f.k.Rand().Float64() >= p {
		return
	}
	const rtoShare = 0.3 // fraction of contention losses that become RTOs
	if f.isWAN() && f.k.Rand().Float64() < rtoShare {
		f.Stats.Timeouts++
		f.stallUntil = f.k.Now() + f.cfg.MinRTO
		f.ssthresh = math.Max(f.cwnd/2, 2*float64(f.cfg.MSS))
		f.cwnd = float64(f.cfg.InitCwndSegs * f.cfg.MSS)
		f.slowStart = true
		return
	}
	f.Stats.ContentionLoss++
	f.wmax = f.cwnd
	f.cwnd *= 0.7
	f.ssthresh = f.cwnd
}

// idleRestart resets the window after an idle period, per
// tcp_slow_start_after_idle, keeping ssthresh near the previous operating
// point so the ramp back is quick.
func (f *Flow) idleRestart() {
	f.Stats.IdleRestarts++
	f.ssthresh = math.Max(f.ssthresh, f.cwnd)
	f.cwnd = float64(f.cfg.InitCwndSegs * f.cfg.MSS)
	f.slowStart = true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
