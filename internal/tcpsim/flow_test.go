package tcpsim

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// testbed builds the Rennes/Nancy two-site network of the paper's Figure 2:
// 1 Gbps NICs, 10 Gbps uplinks, 29 µs intra-site one-way delay (41 µs TCP
// latency after stack overheads), 5.8 ms one-way across the WAN.
func testbed() (*sim.Kernel, *netsim.Network) {
	k := sim.New(1)
	n := netsim.New()
	n.AddSite("rennes", 2, 1.0, GigabitEthernet, 29*time.Microsecond)
	n.AddSite("nancy", 2, 1.0, GigabitEthernet, 29*time.Microsecond)
	n.SetUplink("rennes", TenGigabitEthernet)
	n.SetUplink("nancy", TenGigabitEthernet)
	n.ConnectSites("rennes", "nancy", 5800*time.Microsecond)
	return k, n
}

func clusterPath(n *netsim.Network) *netsim.Path {
	return n.Path(n.Host("rennes-1"), n.Host("rennes-2"))
}

func gridPath(n *netsim.Network) *netsim.Path {
	return n.Path(n.Host("rennes-1"), n.Host("nancy-1"))
}

// transferTime sends total bytes (in msg-sized messages back to back) and
// returns the virtual time until the last byte is delivered.
func transferTime(t *testing.T, k *sim.Kernel, f *Flow, total, msg int64) time.Duration {
	t.Helper()
	var done sim.Time = -1
	k.Go("sender", func(p *sim.Proc) {
		remaining := total
		for remaining > 0 {
			n := msg
			if n > remaining {
				n = remaining
			}
			last := remaining == n
			f.Send(p, n, func() {
				if last {
					done = k.Now()
				}
			})
			remaining -= n
		}
	})
	k.Run()
	if done < 0 {
		t.Fatal("transfer never completed")
	}
	return done
}

func mbps(n int64, d time.Duration) float64 {
	return float64(n) * 8 / d.Seconds() / 1e6
}

func TestSmallMessageLatencyCluster(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, clusterPath(n), DefaultLinux26(), Autotune)
	d := transferTime(t, k, f, 1, 1)
	// 29 µs propagation + 2×6 µs stack + ~0 serialization ≈ 41 µs.
	if d < 40*time.Microsecond || d > 45*time.Microsecond {
		t.Fatalf("1-byte cluster latency = %v, want ≈41 µs", d)
	}
}

func TestSmallMessageLatencyGrid(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, gridPath(n), DefaultLinux26(), Autotune)
	d := transferTime(t, k, f, 1, 1)
	if d < 5810*time.Microsecond || d > 5820*time.Microsecond {
		t.Fatalf("1-byte grid latency = %v, want ≈5812 µs", d)
	}
}

func TestClusterThroughputNearLineRate(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, clusterPath(n), DefaultLinux26(), Autotune)
	const total = 32 << 20
	d := transferTime(t, k, f, total, total)
	bw := mbps(total, d)
	if bw < 880 || bw > 945 {
		t.Fatalf("cluster throughput = %.0f Mbps, want ≈940", bw)
	}
}

// TestGridDefaultBufferCeilings reproduces the core of the paper's Figure 3:
// with default sysctls the 11.6 ms path is window-limited far below 1 Gbps,
// with the three buffer policies ordered autotune > explicit 128 kB >
// kernel-default.
func TestGridDefaultBufferCeilings(t *testing.T) {
	cases := []struct {
		name     string
		policy   BufferPolicy
		min, max float64 // Mbps
	}{
		{"autotune (MPICH2-like)", Autotune, 78, 100},
		{"explicit 128k (OpenMPI-like)", BufferPolicy{Explicit: 128 << 10}, 55, 78},
		{"kernel default (GridMPI-like)", BufferPolicy{KernelDefault: true}, 35, 55},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, n := testbed()
			defer k.Close()
			f := NewFlow(k, gridPath(n), DefaultLinux26(), tc.policy)
			const total = 16 << 20
			d := transferTime(t, k, f, total, total)
			bw := mbps(total, d)
			if bw < tc.min || bw > tc.max {
				t.Fatalf("throughput = %.1f Mbps, want in [%.0f, %.0f]", bw, tc.min, tc.max)
			}
		})
	}
}

// TestGridTunedThroughput reproduces Figure 6/7's headline: 4 MB buffers
// recover most of the gigabit on the WAN once the window has ramped.
func TestGridTunedThroughput(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, gridPath(n), Tuned4MB(), Autotune)
	// Warm the window as the paper's 200-repetition pingpong does (the
	// figure reports the max over repetitions), then measure one message.
	warm := transferTime(t, k, f, 1<<30, 64<<20)
	start := k.Now()
	var done sim.Time
	k.Go("measured", func(p *sim.Proc) {
		f.Send(p, 64<<20, func() { done = k.Now() })
	})
	k.Run()
	bw := mbps(64<<20, done-start)
	if bw < 800 || bw > 945 {
		t.Fatalf("tuned WAN throughput = %.0f Mbps (warm ramp took %v), want ≥800", bw, warm)
	}
}

// TestPacingRampsFaster is the Figure 9 mechanism: a paced sender reaches
// near-plateau per-message bandwidth many times sooner than an unpaced one.
func TestPacingRampsFaster(t *testing.T) {
	timeTo450Mbps := func(paced bool) time.Duration {
		k, n := testbed()
		defer k.Close()
		cfg := Tuned4MB()
		cfg.Pacing = paced
		f := NewFlow(k, gridPath(n), cfg, Autotune)
		reached := sim.Time(-1)
		k.Go("s", func(p *sim.Proc) {
			const msg = 1 << 20
			for i := 0; i < 300 && reached < 0; i++ {
				start := k.Now()
				done := k.NewSignal()
				f.Send(p, msg, func() { done.Fire() })
				done.Wait(p)
				if bw := mbps(msg, k.Now()-start); bw >= 450 && reached < 0 {
					reached = k.Now()
				}
			}
		})
		k.Run()
		if reached < 0 {
			t.Fatalf("paced=%v never reached 450 Mbps per-message", paced)
		}
		return reached
	}
	unpaced, paced := timeTo450Mbps(false), timeTo450Mbps(true)
	if ratio := float64(unpaced) / float64(paced); ratio < 3 {
		t.Fatalf("pacing ramp speedup = %.2f (paced %v, unpaced %v), want ≥3",
			ratio, paced, unpaced)
	}
}

func TestSlowStartDoublesWindow(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	cfg := Tuned4MB()
	f := NewFlow(k, gridPath(n), cfg, Autotune)
	w0 := f.Cwnd()
	k.Go("s", func(p *sim.Proc) { f.Send(p, 1<<20, nil) })
	// Run just past the first round's ack.
	k.RunUntil(f.rtt() + time.Millisecond)
	if !f.InSlowStart() {
		t.Fatal("flow left slow start during first round")
	}
	if got := f.Cwnd(); got < 1.9*w0 || got > 2.1*w0 {
		t.Fatalf("cwnd after one slow-start round = %.0f, want ≈2×%0.f", got, w0)
	}
	k.Run()
}

func TestIdleRestart(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	cfg := Tuned4MB()
	cfg.SlowStartAfterIdle = true // the stock-kernel behaviour under test
	f := NewFlow(k, gridPath(n), cfg, Autotune)
	k.Go("s", func(p *sim.Proc) {
		f.Send(p, 8<<20, nil)
		p.Sleep(2 * time.Second) // well beyond the RTO
		f.Send(p, 1<<20, nil)
	})
	k.Run()
	if f.Stats.IdleRestarts != 1 {
		t.Fatalf("idle restarts = %d, want 1", f.Stats.IdleRestarts)
	}
}

func TestNoIdleRestartWithinRTO(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, gridPath(n), Tuned4MB(), Autotune)
	k.Go("s", func(p *sim.Proc) {
		f.Send(p, 1<<20, nil)
		p.Sleep(50 * time.Millisecond) // below the 200 ms MinRTO
		f.Send(p, 1<<20, nil)
	})
	k.Run()
	if f.Stats.IdleRestarts != 0 {
		t.Fatalf("idle restarts = %d, want 0", f.Stats.IdleRestarts)
	}
}

func TestSendBlocksOnSocketBuffer(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, gridPath(n), DefaultLinux26(), BufferPolicy{Explicit: 128 << 10})
	var returned sim.Time
	k.Go("s", func(p *sim.Proc) {
		f.Send(p, 1<<20, nil)
		returned = k.Now()
	})
	k.Run()
	// 1 MB through a 128 kB buffer: Send cannot return before ~7 window
	// rounds of 11.6 ms have drained the buffer.
	if returned < 50*time.Millisecond {
		t.Fatalf("Send returned at %v; expected blocking on 128 kB buffer", returned)
	}
}

func TestDeliveryCallbacksInOrder(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, gridPath(n), Tuned4MB(), Autotune)
	var order []int
	var times []sim.Time
	k.Go("s", func(p *sim.Proc) {
		sizes := []int64{100, 64 << 10, 3, 1 << 20, 777, 128 << 10}
		for i, sz := range sizes {
			i := i
			f.Send(p, sz, func() {
				order = append(order, i)
				times = append(times, k.Now())
			})
		}
	})
	k.Run()
	if len(order) != 6 {
		t.Fatalf("delivered %d messages, want 6", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("delivery order = %v, want in-order", order)
		}
		if i > 0 && times[i] < times[i-1] {
			t.Fatalf("delivery times not monotonic: %v", times)
		}
	}
}

func TestThroughputUpperBounds(t *testing.T) {
	// Property: measured goodput never exceeds min(line rate × efficiency,
	// windowCap/RTT), whatever the policy and size.
	policies := []BufferPolicy{Autotune, {Explicit: 64 << 10}, {Explicit: 1 << 20}, {KernelDefault: true}}
	sizes := []int64{4 << 10, 256 << 10, 4 << 20, 32 << 20}
	for _, pol := range policies {
		for _, sz := range sizes {
			k, n := testbed()
			cfg := Tuned4MB()
			f := NewFlow(k, gridPath(n), cfg, pol)
			d := transferTime(t, k, f, sz, sz)
			rate := float64(sz) / d.Seconds() // bytes/s
			lineLimit := GigabitEthernet * cfg.Efficiency()
			windowLimit := float64(f.WindowCap()) / f.rtt().Seconds()
			limit := lineLimit
			if windowLimit < limit {
				limit = windowLimit
			}
			if rate > limit*1.05 {
				t.Fatalf("policy %+v size %d: rate %.0f B/s exceeds limit %.0f", pol, sz, rate, limit)
			}
			k.Close()
		}
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	// Two flows out of the same NIC: each should get roughly half.
	src := n.Host("rennes-1")
	p1 := n.Path(src, n.Host("rennes-2"))
	f1 := NewFlow(k, p1, DefaultLinux26(), Autotune)
	f2 := NewFlow(k, p1, DefaultLinux26(), Autotune)
	const total = 8 << 20
	var t1, t2 sim.Time
	k.Go("s1", func(p *sim.Proc) { f1.Send(p, total, func() { t1 = k.Now() }) })
	k.Go("s2", func(p *sim.Proc) { f2.Send(p, total, func() { t2 = k.Now() }) })
	k.Run()
	// Sequential would take ~0.57 s for the pair; sharing should make both
	// finish around the same time, each at roughly half rate.
	if bw := mbps(total, t1); bw > 700 {
		t.Fatalf("flow1 got %.0f Mbps despite contention", bw)
	}
	ratio := float64(t1) / float64(t2)
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("contending flows finished at %v vs %v; expected near-equal shares", t1, t2)
	}
}

func TestWindowCapPolicies(t *testing.T) {
	cfg := DefaultLinux26()
	// The advertisable window is 3/4 of the receive-side bytes
	// (tcp_adv_win_scale=2).
	if got := cfg.WindowCap(Autotune); got != 131070 {
		t.Fatalf("autotune cap = %d, want 3/4×tcp_rmem[2]=131070", got)
	}
	if got := cfg.WindowCap(BufferPolicy{KernelDefault: true}); got != 65535 {
		t.Fatalf("kernel-default cap = %d, want 3/4×tcp_rmem[1]=65535", got)
	}
	if got := cfg.WindowCap(BufferPolicy{Explicit: 4 << 20}); got != 98304 {
		t.Fatalf("explicit 4M under default sysctls = %d, want 3/4×rmem_max=98304", got)
	}
	tuned := Tuned4MB()
	if got := tuned.WindowCap(BufferPolicy{Explicit: 4 << 20}); got != 3<<20 {
		t.Fatalf("explicit 4M tuned = %d, want 3 MB advertisable", got)
	}
	if got := tuned.WindowCap(Autotune); got != 3<<20 {
		t.Fatalf("tuned autotune cap = %d, want 3 MB advertisable", got)
	}
}

func TestEfficiencyMatchesGigabitGoodput(t *testing.T) {
	eff := DefaultLinux26().Efficiency()
	goodput := 1000 * eff // Mbps on GbE
	if goodput < 935 || goodput > 945 {
		t.Fatalf("modelled GbE goodput = %.1f Mbps, want ≈940", goodput)
	}
}

func TestSendAsyncFromEventContext(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, gridPath(n), DefaultLinux26(), Autotune)
	delivered := false
	k.Schedule(0, func() { f.SendAsync(64, func() { delivered = true }) })
	k.Run()
	if !delivered {
		t.Fatal("async control message never delivered")
	}
}

func TestZeroByteSendCompletes(t *testing.T) {
	k, n := testbed()
	defer k.Close()
	f := NewFlow(k, clusterPath(n), DefaultLinux26(), Autotune)
	ok := false
	k.Go("s", func(p *sim.Proc) { f.Send(p, 0, func() { ok = true }) })
	k.Run()
	if !ok {
		t.Fatal("zero-byte send callback did not fire")
	}
}
