// Package mpi implements a message-passing library with MPI semantics on
// top of the simulated TCP transport: blocking and nonblocking
// point-to-point operations with tag matching, eager and rendezvous wire
// protocols, and the collective operations used by the paper's workloads.
//
// The behavioural differences between the four MPI implementations the
// paper compares are captured by a Profile: software latency overheads,
// the eager/rendezvous threshold, the socket-buffer policy, TCP pacing,
// grid-aware collective algorithms, and two implementation quirks
// (OpenMPI's fragment pipeline, MPICH-Madeleine's serialized rendezvous).
package mpi

import (
	"time"

	"repro/internal/tcpsim"
)

// EnvelopeBytes is the wire overhead added to every MPI message.
const EnvelopeBytes = 64

// ControlBytes is the wire size of rendezvous RTS/CTS control messages.
const ControlBytes = 64

// Infinite disables the rendezvous protocol when used as EagerThreshold.
const Infinite = int(^uint(0) >> 1)

// Profile parameterises the MPI engine to behave like one concrete MPI
// implementation. The zero value is not useful; start from one of the
// mpiimpl constructors or from Reference.
type Profile struct {
	Name string

	// OverheadLocal and OverheadWAN are the per-message software latency
	// the implementation adds over raw TCP on intra-cluster and WAN paths
	// respectively (the paper's Table 4 deltas).
	OverheadLocal time.Duration
	OverheadWAN   time.Duration

	// EagerThreshold is the largest payload sent eagerly; larger messages
	// use the rendezvous protocol. Use Infinite to disable rendezvous
	// (GridMPI's default for MPI_Send).
	EagerThreshold int

	// Buffers is the socket-buffer policy for the implementation's TCP
	// connections (§4.2.1).
	Buffers tcpsim.BufferPolicy

	// Pacing enables the GridMPI TCP pacing modification on all flows.
	Pacing bool

	// GridBcast enables the van de Geijn style grid broadcast and
	// GridAllreduce the grid-aware Rabenseifner allreduce (GridMPI's
	// collective optimizations, Matsuda et al. Cluster'06).
	GridBcast     bool
	GridAllreduce bool

	// Multilevel switches every collective to the topology-aware
	// multilevel algorithms (Karonis et al., MPICH-G2): an intra-site
	// phase over each siteGroups() group, an inter-site phase over one
	// gateway rank per site, then intra-site redistribution. Unlike
	// GridBcast/GridAllreduce it handles arbitrary N-site layouts and
	// takes precedence over them; on a single site it falls through to
	// the flat algorithms unchanged.
	Multilevel bool

	// SerialRendezvous serializes rendezvous exchanges per peer pair
	// (MPICH-Madeleine's ch_mad engine behaviour).
	SerialRendezvous bool

	// SlowPathThreshold, when positive, models the size limit of an
	// implementation's pinned fast buffer (MPICH-Madeleine's
	// -fast-buffer channel): WAN messages larger than it fall back to a
	// polled path costing SlowPathStall of extra sender time each. With
	// the limit at ~148 kB, CG's 147 kB exchanges stay on the fast path
	// while BT/SP's ~152 kB ones stall — our model of the paper's
	// "application timeout" on grid BT/SP (Figure 10).
	SlowPathThreshold int
	SlowPathStall     time.Duration

	// FragmentSize > 0 splits payloads into pipeline fragments that each
	// cost FragmentOverhead of sender CPU (OpenMPI's BTL pipeline; the
	// cause of its slightly lower large-message bandwidth in Figure 7).
	FragmentSize     int
	FragmentOverhead time.Duration

	// ParallelStreams > 1 stripes large WAN payloads over that many TCP
	// connections (MPICH-G2's GridFTP-style large-message support,
	// §2.1.5): each stream ramps and keeps its own window, multiplying
	// window-limited throughput.
	ParallelStreams int
	// StreamMinSize is the smallest payload worth striping.
	StreamMinSize int

	// CopyRate is the memory-copy bandwidth (bytes/s) used to price the
	// extra copy of unexpected eager messages.
	CopyRate float64
}

// Reference is a minimal well-behaved profile used by unit tests: no
// overheads beyond TCP, a 128 kB eager threshold, autotuned buffers.
func Reference() Profile {
	return Profile{
		Name:           "reference",
		EagerThreshold: 128 << 10,
		Buffers:        tcpsim.Autotune,
		CopyRate:       2.5e9,
	}
}

// Overhead returns the per-message software latency for a local or WAN
// destination.
func (pr Profile) Overhead(wan bool) time.Duration {
	if wan {
		return pr.OverheadWAN
	}
	return pr.OverheadLocal
}

// UsesRendezvous reports whether a payload of n bytes goes through the
// rendezvous protocol under this profile.
func (pr Profile) UsesRendezvous(n int) bool {
	return pr.EagerThreshold != Infinite && n > pr.EagerThreshold
}

// WithEagerThreshold returns a copy with the eager/rendezvous threshold
// replaced (the paper's §4.2.2 tuning).
func (pr Profile) WithEagerThreshold(n int) Profile {
	pr.Name = pr.Name + "+rndv"
	pr.EagerThreshold = n
	return pr
}

// WithBuffers returns a copy with the socket-buffer policy replaced (the
// paper's §4.2.1 tuning).
func (pr Profile) WithBuffers(b tcpsim.BufferPolicy) Profile {
	pr.Buffers = b
	return pr
}
