package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/grid5000"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// The property suite: table-driven over 1–4-site asymmetric layouts ×
// all eight collectives × flat/multilevel, asserting per-rank byte
// conservation against the flat variant, WAN-message economy, rerun
// determinism, and single-site event-stream identity.

// mlLayouts are the testbeds. Node counts are deliberately misaligned
// with powers of two so the flat binomial trees genuinely straddle site
// boundaries; the 1-site layout pins the fall-through path.
var mlLayouts = []struct {
	name   string
	layout []grid5000.SiteCount
}{
	{"1site", []grid5000.SiteCount{{Name: grid5000.Rennes, Nodes: 5}}},
	{"2site", []grid5000.SiteCount{{Name: grid5000.Rennes, Nodes: 5}, {Name: grid5000.Nancy, Nodes: 3}}},
	{"3site", []grid5000.SiteCount{{Name: grid5000.Rennes, Nodes: 3}, {Name: grid5000.Nancy, Nodes: 2}, {Name: grid5000.Sophia, Nodes: 2}}},
	{"4site", []grid5000.SiteCount{{Name: grid5000.Rennes, Nodes: 3}, {Name: grid5000.Nancy, Nodes: 2}, {Name: grid5000.Sophia, Nodes: 2}, {Name: grid5000.Toulouse, Nodes: 1}}},
}

func layoutNP(layout []grid5000.SiteCount) int {
	np := 0
	for _, sc := range layout {
		np += sc.Nodes
	}
	return np
}

// newLayoutWorld builds a world over an arbitrary per-site layout, hosts
// in site order (block placement).
func newLayoutWorld(t *testing.T, prof Profile, layout []grid5000.SiteCount) (*sim.Kernel, *World) {
	t.Helper()
	k := sim.New(1)
	net := grid5000.BuildLayout(layout)
	var hosts []*netsim.Host
	for _, sc := range layout {
		hosts = append(hosts, net.SiteHosts(sc.Name)...)
	}
	return k, NewWorld(k, net, tcpsim.Tuned4MB(), prof, hosts)
}

// runCollStats runs body on the layout and returns the world's stats.
func runCollStats(t *testing.T, multilevel bool, layout []grid5000.SiteCount, body func(r *Rank)) *Stats {
	t.Helper()
	prof := Reference()
	prof.Multilevel = multilevel
	k, w := newLayoutWorld(t, prof, layout)
	defer k.Close()
	if _, err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	return w.Stats()
}

// collCase is one collective under test. Rooted operations use root
// P-1 — the last site's last rank — so the flat trees are maximally
// misaligned with the site boundaries, the regime multilevel staging is
// for. check asserts the per-rank byte-conservation property of the
// operation given both runs' stats.
type collCase struct {
	name   string
	strict bool // WAN count must be strictly lower at the large size
	body   func(r *Rank, root, n int)
	check  func(t *testing.T, flat, ml *Stats, P, root int, n int64)
}

var collCases = []collCase{
	{
		name: "bcast", strict: true,
		body: func(r *Rank, root, n int) { r.Bcast(root, n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			// Every non-root rank receives exactly the payload, in both
			// variants: the received-bytes vectors must match rank for rank.
			for i := 0; i < P; i++ {
				if f, m := flat.CollRecvBytes(i), ml.CollRecvBytes(i); f != m {
					t.Errorf("rank %d received %d bytes flat vs %d multilevel", i, f, m)
				}
			}
		},
	},
	{
		name: "reduce",
		body: func(r *Rank, root, n int) { r.Reduce(root, n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			// Every non-root rank contributes its n bytes exactly once.
			for i := 0; i < P; i++ {
				if f, m := flat.CollSentBytes(i), ml.CollSentBytes(i); f != m {
					t.Errorf("rank %d sent %d bytes flat vs %d multilevel", i, f, m)
				}
			}
		},
	},
	{
		name: "allreduce", strict: true,
		body: func(r *Rank, _, n int) { r.Allreduce(n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			for i := 0; i < P; i++ {
				if got := ml.CollRecvBytes(i); got < n {
					t.Errorf("rank %d received %d bytes, needs the %d-byte combined result", i, got, n)
				}
				if got := ml.CollSentBytes(i); got < n {
					t.Errorf("rank %d sent %d bytes, must contribute %d", i, got, n)
				}
			}
		},
	},
	{
		name: "gather",
		body: func(r *Rank, root, n int) { r.Gather(root, n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			want := int64(P-1) * n
			if f, m := flat.CollRecvBytes(root), ml.CollRecvBytes(root); f != want || m != want {
				t.Errorf("root received %d flat / %d multilevel bytes, want %d both", f, m, want)
			}
		},
	},
	{
		name: "scatter",
		body: func(r *Rank, root, n int) { r.Scatter(root, n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			want := int64(P-1) * n
			if f, m := flat.CollSentBytes(root), ml.CollSentBytes(root); f != want || m != want {
				t.Errorf("root sent %d flat / %d multilevel bytes, want %d both", f, m, want)
			}
			for i := 0; i < P; i++ {
				if i != root && ml.CollRecvBytes(i) < n {
					t.Errorf("rank %d received %d bytes, wants its %d-byte slice", i, ml.CollRecvBytes(i), n)
				}
			}
		},
	},
	{
		name: "allgather",
		body: func(r *Rank, _, n int) { r.Allgather(n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			for i := 0; i < P; i++ {
				if got := ml.CollRecvBytes(i); got < int64(P-1)*n {
					t.Errorf("rank %d received %d bytes, needs the other %d blocks", i, got, P-1)
				}
			}
		},
	},
	{
		name: "alltoall", strict: true,
		body: func(r *Rank, _, n int) { r.Alltoall(n) },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			want := int64(P-1) * n
			for i := 0; i < P; i++ {
				if got := ml.CollRecvBytes(i); got < want {
					t.Errorf("rank %d received %d bytes, needs %d", i, got, want)
				}
				if got := ml.CollSentBytes(i); got < want {
					t.Errorf("rank %d sent %d bytes, must send %d", i, got, want)
				}
			}
		},
	},
	{
		name: "barrier",
		body: func(r *Rank, _, _ int) { r.Barrier() },
		check: func(t *testing.T, flat, ml *Stats, P, root int, n int64) {
			for i := 0; i < P; i++ {
				if ml.CollSentBytes(i) < 1 || ml.CollRecvBytes(i) < 1 {
					t.Errorf("rank %d did not both signal and hear the barrier (sent %d, recv %d)",
						i, ml.CollSentBytes(i), ml.CollRecvBytes(i))
				}
			}
		},
	},
}

// TestMultilevelProperties is the property suite over layouts ×
// collectives × sizes:
//
//	(a) per-rank byte conservation vs the flat variant,
//	(b) WAN-crossing message count <= flat on multi-site layouts,
//	    strictly lower for large-message bcast/allreduce/alltoall,
//	(c) bit-for-bit rerun determinism of both variants.
func TestMultilevelProperties(t *testing.T) {
	for _, lt := range mlLayouts {
		for _, tc := range collCases {
			for _, n := range []int{2 << 10, 256 << 10} {
				t.Run(fmt.Sprintf("%s/%s/%d", lt.name, tc.name, n), func(t *testing.T) {
					P := layoutNP(lt.layout)
					root := P - 1
					body := func(r *Rank) { tc.body(r, root, n) }
					flat := runCollStats(t, false, lt.layout, body)
					ml := runCollStats(t, true, lt.layout, body)

					tc.check(t, flat, ml, P, root, int64(n))

					if len(lt.layout) >= 2 {
						if ml.CollWANSends > flat.CollWANSends {
							t.Errorf("multilevel crosses the WAN %d times, flat only %d",
								ml.CollWANSends, flat.CollWANSends)
						}
						if tc.strict && n >= 256<<10 && ml.CollWANSends >= flat.CollWANSends {
							t.Errorf("multilevel %s must cross the WAN strictly less: %d vs flat %d",
								tc.name, ml.CollWANSends, flat.CollWANSends)
						}
					} else if ml.CollWANSends != 0 || flat.CollWANSends != 0 {
						t.Errorf("single-site run crossed the WAN (%d flat, %d multilevel)",
							flat.CollWANSends, ml.CollWANSends)
					}

					// Reruns reproduce the traffic census bit for bit.
					again := runCollStats(t, true, lt.layout, body)
					if again.CollSends != ml.CollSends || again.CollBytes != ml.CollBytes ||
						again.CollWANSends != ml.CollWANSends || again.CollWANBytes != ml.CollWANBytes {
						t.Errorf("multilevel rerun census diverged: %+v vs %+v",
							[4]int64{again.CollSends, again.CollBytes, again.CollWANSends, again.CollWANBytes},
							[4]int64{ml.CollSends, ml.CollBytes, ml.CollWANSends, ml.CollWANBytes})
					}
				})
			}
		}
	}
}

// TestMultilevelSingleSiteEventStreamIdentical: property (d) — with one
// site there is nothing to stage, so Multilevel must fall through to the
// flat algorithms and replay their exact (time, seq) event stream.
func TestMultilevelSingleSiteEventStreamIdentical(t *testing.T) {
	trace := func(multilevel bool) string {
		var buf bytes.Buffer
		sim.NewHook = func(k *sim.Kernel) {
			k.SetTracer(func(at sim.Time, seq uint64) {
				fmt.Fprintf(&buf, "%d %d\n", int64(at), seq)
			})
		}
		defer func() { sim.NewHook = nil }()
		prof := Reference()
		prof.Multilevel = multilevel
		k, w := newLayoutWorld(t, prof, mlLayouts[0].layout)
		defer k.Close()
		if _, err := w.Run(func(r *Rank) {
			r.Bcast(0, 4096)
			r.Reduce(1, 4096)
			r.Allreduce(4096)
			r.Gather(2, 4096)
			r.Scatter(2, 4096)
			r.Allgather(4096)
			r.Alltoall(4096)
			r.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	flat, ml := trace(false), trace(true)
	if flat != ml {
		t.Fatalf("single-site multilevel event stream diverged from flat (%d vs %d bytes)", len(ml), len(flat))
	}
}

// TestSiteGroupsFirstAppearanceOrder pins the contract multilevel
// gateway selection depends on: groups are ordered by the site's first
// appearance walking ranks 0..P-1, and each group lists its ranks in
// rank order.
func TestSiteGroupsFirstAppearanceOrder(t *testing.T) {
	k := sim.New(1)
	defer k.Close()
	net := grid5000.BuildLayout([]grid5000.SiteCount{
		{Name: grid5000.Rennes, Nodes: 3},
		{Name: grid5000.Nancy, Nodes: 2},
		{Name: grid5000.Sophia, Nodes: 1},
	})
	r := net.SiteHosts(grid5000.Rennes)
	n := net.SiteHosts(grid5000.Nancy)
	s := net.SiteHosts(grid5000.Sophia)
	// Interleave the sites: rank -> site is R N R S N R.
	hosts := []*netsim.Host{r[0], n[0], r[1], s[0], n[1], r[2]}
	w := NewWorld(k, net, tcpsim.Tuned4MB(), Reference(), hosts)
	got := w.siteGroups()
	want := [][]int{{0, 2, 5}, {1, 4}, {3}}
	if len(got) != len(want) {
		t.Fatalf("siteGroups = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("siteGroups = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("siteGroups = %v, want %v (first-appearance order)", got, want)
			}
		}
	}
}

// TestMultilevelLatencyWinsOnGrid: the reason the tuning level exists —
// large-message collectives on a multi-site grid finish faster staged
// than flat.
func TestMultilevelLatencyWinsOnGrid(t *testing.T) {
	layout := mlLayouts[2].layout // 3 sites: the case gridBcast gives up on
	for _, tc := range []struct {
		name string
		body func(r *Rank)
	}{
		{"bcast", func(r *Rank) { r.Bcast(0, 1<<20) }},
		{"allreduce", func(r *Rank) { r.Allreduce(1 << 20) }},
	} {
		elapsed := func(multilevel bool) int64 {
			prof := Reference()
			prof.Multilevel = multilevel
			k, w := newLayoutWorld(t, prof, layout)
			defer k.Close()
			d, err := w.Run(tc.body)
			if err != nil {
				t.Fatal(err)
			}
			return int64(d)
		}
		flat, ml := elapsed(false), elapsed(true)
		if ml > flat {
			t.Errorf("%s: multilevel %d ns slower than flat %d ns", tc.name, ml, flat)
		}
	}
}
