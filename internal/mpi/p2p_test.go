package mpi

import (
	"errors"
	"testing"
	"time"

	"repro/internal/grid5000"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// newWorld builds a world of n ranks per site over the Rennes–Nancy
// testbed. With one site, all ranks are in Rennes.
func newWorld(t *testing.T, prof Profile, tcp tcpsim.Config, perSite int, grid bool) (*sim.Kernel, *World) {
	t.Helper()
	k := sim.New(1)
	var net *netsim.Network
	var hosts []*netsim.Host
	if grid {
		net = grid5000.RennesNancy(perSite)
		hosts = append(hosts, net.SiteHosts(grid5000.Rennes)...)
		hosts = append(hosts, net.SiteHosts(grid5000.Nancy)...)
	} else {
		net = grid5000.Build(2*perSite, grid5000.Rennes)
		hosts = net.SiteHosts(grid5000.Rennes)
	}
	return k, NewWorld(k, net, tcp, prof, hosts)
}

func TestSendRecvLatencyCluster(t *testing.T) {
	prof := Reference()
	prof.OverheadLocal = 5 * time.Microsecond
	k, w := newWorld(t, prof, tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	var lat sim.Time
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, 1)
		case 1:
			r.Recv(0, 7)
			lat = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 41 µs TCP + 5 µs MPI overhead ≈ 46 µs (Table 4).
	if lat < 44*time.Microsecond || lat > 49*time.Microsecond {
		t.Fatalf("1-byte MPI cluster latency = %v, want ≈46 µs", lat)
	}
}

func TestSendRecvLatencyGrid(t *testing.T) {
	prof := Reference()
	prof.OverheadWAN = 6 * time.Microsecond
	k, w := newWorld(t, prof, tcpsim.DefaultLinux26(), 1, true)
	defer k.Close()
	var lat sim.Time
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 7, 1)
		case 1:
			r.Recv(0, 7)
			lat = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if lat < 5815*time.Microsecond || lat > 5825*time.Microsecond {
		t.Fatalf("1-byte MPI grid latency = %v, want ≈5818 µs", lat)
	}
}

func TestMessagesMatchFIFO(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	var sizes []int64
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			for i := 1; i <= 5; i++ {
				r.Send(1, 3, i*100)
			}
		case 1:
			for i := 0; i < 5; i++ {
				st := r.Recv(0, 3)
				sizes = append(sizes, st.Size)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sz := range sizes {
		if sz != int64((i+1)*100) {
			t.Fatalf("out-of-order matching: %v", sizes)
		}
	}
}

func TestWildcardMatching(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 2, false)
	defer k.Close()
	var got []Status
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(3, 42, 10)
		case 1:
			r.Send(3, 99, 20)
		case 2:
			r.Send(3, 42, 30)
		case 3:
			got = append(got, r.Recv(AnySource, 42))
			got = append(got, r.Recv(1, AnyTag))
			got = append(got, r.Recv(AnySource, AnyTag))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("received %d messages", len(got))
	}
	if got[0].Tag != 42 {
		t.Fatalf("first wildcard recv matched tag %d", got[0].Tag)
	}
	if got[1].Source != 1 || got[1].Tag != 99 {
		t.Fatalf("source-wildcarded recv = %+v", got[1])
	}
	if got[2].Tag != 42 {
		t.Fatalf("final recv = %+v, want the remaining tag-42 message", got[2])
	}
}

func TestUnexpectedMessageCopyCost(t *testing.T) {
	prof := Reference()
	k, w := newWorld(t, prof, tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	const n = 64 << 10
	var postedFirst, unexpected sim.Time
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			// Message 1: receiver already posted. Message 2: arrives while
			// the receiver sleeps, so it is buffered and copied out later.
			r.Send(1, 1, n)
			r.Send(1, 2, n)
		case 1:
			r.Recv(0, 1)
			postedFirst = r.Now()
			r.Sleep(50 * time.Millisecond)
			before := r.Now()
			r.Recv(0, 2)
			unexpected = r.Now() - before
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if postedFirst == 0 {
		t.Fatal("first receive never completed")
	}
	copyCost := time.Duration(float64(n) / prof.CopyRate * float64(time.Second))
	if unexpected < copyCost {
		t.Fatalf("unexpected-message receive took %v, want ≥ copy cost %v", unexpected, copyCost)
	}
	if unexpected > copyCost+time.Millisecond {
		t.Fatalf("unexpected-message receive took %v, want ≈ copy cost %v", unexpected, copyCost)
	}
	if w.Stats().Unexpected != 1 {
		t.Fatalf("unexpected counter = %d, want 1", w.Stats().Unexpected)
	}
}

func TestRendezvousAddsRoundTrip(t *testing.T) {
	const n = 512 << 10
	oneWay := func(threshold int) sim.Time {
		prof := Reference()
		prof.EagerThreshold = threshold
		k, w := newWorld(t, prof, tcpsim.Tuned4MB(), 1, true)
		defer k.Close()
		var lat sim.Time
		if _, err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				r.Send(1, 0, n)
			} else {
				r.Recv(0, 0)
				lat = r.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	eager := oneWay(Infinite)
	rndv := oneWay(128 << 10)
	extra := rndv - eager
	// RTS + CTS cost one full WAN round trip before the data moves.
	if extra < 11*time.Millisecond || extra > 14*time.Millisecond {
		t.Fatalf("rendezvous penalty = %v (eager %v, rndv %v), want ≈11.6 ms", extra, eager, rndv)
	}
}

func TestIsendWaitAndSendrecv(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 2, false)
	defer k.Close()
	_, err := w.Run(func(r *Rank) {
		partner := r.Rank() ^ 1
		if r.Rank() < 2 {
			st := r.Sendrecv(partner, 5, 1000, partner, 5)
			if st.Source != partner || st.Size != 1000 {
				t.Errorf("rank %d sendrecv status = %+v", r.Rank(), st)
			}
		} else {
			// Ranks 2,3 exchange via explicit Isend/Recv/Wait.
			req := r.Isend(partner^2+2, 9, 77)
			st := r.Recv(AnySource, 9)
			if st.Size != 77 {
				t.Errorf("rank %d recv size = %d", r.Rank(), st.Size)
			}
			r.Wait(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSerialRendezvousSerializesBigMessages(t *testing.T) {
	run := func(serial bool) time.Duration {
		prof := Reference()
		prof.EagerThreshold = 16 << 10
		prof.SerialRendezvous = serial
		k, w := newWorld(t, prof, tcpsim.Tuned4MB(), 1, true)
		defer k.Close()
		const msgs, n = 16, 40 << 10
		elapsed, err := w.Run(func(r *Rank) {
			reqs := make([]*Request, msgs)
			if r.Rank() == 0 {
				for i := range reqs {
					reqs[i] = r.Isend(1, 1, n)
				}
			} else {
				for i := range reqs {
					reqs[i] = r.Irecv(0, 1)
				}
			}
			r.WaitAll(reqs...)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	pipelined, serial := run(false), run(true)
	// Serialized rendezvous pays a full WAN handshake per message with no
	// overlap: 8 messages ≈ 8 × ~17 ms, vs overlapping handshakes.
	if ratio := float64(serial) / float64(pipelined); ratio < 2 {
		t.Fatalf("serialized rndv only %.2fx slower (%v vs %v)", ratio, serial, pipelined)
	}
}

func TestPayloadsRideMessages(t *testing.T) {
	// Payloads must survive every path: eager matched, eager unexpected,
	// and rendezvous.
	prof := Reference()
	prof.EagerThreshold = 64 << 10
	k, w := newWorld(t, prof, tcpsim.Tuned4MB(), 1, true)
	defer k.Close()
	var got []any
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.SendPayload(1, 1, 100, "eager-posted")
			r.SendPayload(1, 2, 100, 42)         // will arrive unexpected
			r.SendPayload(1, 3, 256<<10, "rndv") // above the threshold
			req := r.IsendPayload(1, 4, 10, []int{7, 8})
			r.Wait(req)
		case 1:
			got = append(got, r.Recv(0, 1).Data)
			r.Sleep(50 * time.Millisecond) // force tag-2 into the unexpected queue
			got = append(got, r.Recv(0, 2).Data)
			got = append(got, r.Recv(0, 3).Data)
			got = append(got, r.Recv(0, 4).Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != "eager-posted" || got[1] != 42 || got[2] != "rndv" {
		t.Fatalf("payloads = %v", got)
	}
	if s, ok := got[3].([]int); !ok || len(s) != 2 || s[0] != 7 {
		t.Fatalf("isend payload = %v", got[3])
	}
}

func TestDeadlockDetection(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	_, err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Recv(0, 0) // never sent
		}
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestRunTimeout(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	elapsed, err := w.RunTimeout(func(r *Rank) {
		r.Sleep(10 * time.Second)
	}, time.Second)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed != time.Second {
		t.Fatalf("elapsed = %v, want clamp to limit", elapsed)
	}
}

func TestStatsCensus(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 2, true)
	defer k.Close()
	_, err := w.Run(func(r *Rank) {
		switch r.Rank() {
		case 0:
			r.Send(1, 0, 100) // intra-site (both in Rennes)
			r.Send(2, 0, 200) // cross-site
			r.Send(3, 0, 200) // cross-site
		case 1:
			r.Recv(0, 0)
		case 2:
			r.Recv(0, 0)
		case 3:
			r.Recv(0, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.P2PSends != 3 || s.P2PBytes != 500 {
		t.Fatalf("census: sends=%d bytes=%d", s.P2PSends, s.P2PBytes)
	}
	if s.WANSends != 2 || s.WANBytes != 400 {
		t.Fatalf("WAN census: sends=%d bytes=%d", s.WANSends, s.WANBytes)
	}
	rows := s.SizeCensus()
	if len(rows) != 2 || rows[0] != (SizeCount{100, 1}) || rows[1] != (SizeCount{200, 2}) {
		t.Fatalf("size census = %v", rows)
	}
	if got := s.CountBetween(150, 250); got != 2 {
		t.Fatalf("CountBetween = %d", got)
	}
}

func TestComputeScalesWithCPUSpeed(t *testing.T) {
	k := sim.New(1)
	defer k.Close()
	net := grid5000.Build(1, grid5000.Rennes, grid5000.Sophia) // 1.0 vs 1.22
	hosts := []*netsim.Host{net.Host("rennes-1"), net.Host("sophia-1")}
	w := NewWorld(k, net, tcpsim.DefaultLinux26(), Reference(), hosts)
	var tr, ts sim.Time
	if _, err := w.Run(func(r *Rank) {
		r.Compute(time.Second)
		if r.Rank() == 0 {
			tr = r.Now()
		} else {
			ts = r.Now()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if tr != time.Second {
		t.Fatalf("reference-speed compute took %v", tr)
	}
	if ts >= tr {
		t.Fatalf("faster node (%v) not faster than reference (%v)", ts, tr)
	}
}
