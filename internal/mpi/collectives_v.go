package mpi

// Vector collectives and scan-class operations. The paper singles out
// MPI_Gatherv / MPI_Scatterv / MPI_Alltoallv as the operations MPICH-G2
// leaves topology-unaware (§2.1.5); all implementations here use the
// straightforward linear algorithms their TCP devices used.

// Gatherv collects sizes[i] bytes from rank i at root (sizes must be the
// same slice contents on every rank, as in MPI).
func (r *Rank) Gatherv(root int, sizes []int) {
	tag := r.nextCollTag()
	if r.id == root {
		var total int64
		for _, s := range sizes {
			total += int64(s)
		}
		r.w.stats.recordColl("gatherv", total)
		reqs := make([]*Request, 0, r.Size()-1)
		for i := 0; i < r.Size(); i++ {
			if i != root && sizes[i] > 0 {
				reqs = append(reqs, r.cirecv(i, tag))
			}
		}
		r.WaitAll(reqs...)
		return
	}
	if sizes[r.id] > 0 {
		r.csend(root, tag, int64(sizes[r.id]))
	}
}

// Scatterv distributes sizes[i] bytes from root to rank i.
func (r *Rank) Scatterv(root int, sizes []int) {
	tag := r.nextCollTag()
	if r.id == root {
		var total int64
		for _, s := range sizes {
			total += int64(s)
		}
		r.w.stats.recordColl("scatterv", total)
		reqs := make([]*Request, 0, r.Size()-1)
		for i := 0; i < r.Size(); i++ {
			if i != root && sizes[i] > 0 {
				reqs = append(reqs, r.cisend(i, tag, int64(sizes[i])))
			}
		}
		r.WaitAll(reqs...)
		return
	}
	if sizes[r.id] > 0 {
		r.crecv(root, tag)
	}
}

// ReduceScatter combines n bytes across all ranks and leaves each rank
// its n/P block: a ring reduce-scatter (P-1 steps of n/P bytes), the
// first half of the Rabenseifner allreduce.
func (r *Rank) ReduceScatter(n int) {
	tag := r.nextCollTag()
	if r.id == 0 {
		r.w.stats.recordColl("reducescatter", int64(n))
	}
	P := r.Size()
	chunk := int64(n) / int64(P)
	if chunk < 1 {
		chunk = 1
	}
	right := (r.id + 1) % P
	left := (r.id - 1 + P) % P
	for step := 0; step < P-1; step++ {
		r.csendrecv(right, tag+step, chunk, left, tag+step)
		r.combineCost(chunk)
	}
}

// Scan computes a prefix reduction: rank i receives the combination of
// ranks 0..i. The linear algorithm passes partial results up the rank
// order.
func (r *Rank) Scan(n int) {
	tag := r.nextCollTag()
	if r.id == 0 {
		r.w.stats.recordColl("scan", int64(n))
	}
	if r.id > 0 {
		r.crecv(r.id-1, tag)
		r.combineCost(int64(n))
	}
	if r.id < r.Size()-1 {
		r.csend(r.id+1, tag, int64(n))
	}
}
