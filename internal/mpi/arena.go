package mpi

// Protocol arenas: free lists recycling the per-message objects a sweep
// used to heap-allocate once per message — Requests, arrived-but-unmatched
// inMsg envelopes, Isend protocol bodies (sendJob) and delivery callbacks
// (delivery) — plus the rendezvous CTS signals. A World runs on a single
// kernel, which is one flow of control (see sim.Proc), so the pools need
// no locking. Together with the kernel's event slab and pooled process
// coroutines, steady-state message traffic allocates nothing (pinned by
// TestMpiHotPathAllocFree).

import "repro/internal/sim"

// sendJob carries one Isend's protocol parameters into its pooled process
// body (runSendJob), replacing the per-Isend closure.
type sendJob struct {
	r    *Rank
	dst  int
	tag  int
	ctx  int
	size int64
	data any
	req  *Request
}

// runSendJob is the pooled Isend body, spawned via sim.Kernel.GoJob.
func runSendJob(p *sim.Proc, a any) {
	j := a.(*sendJob)
	j.r.sendProto(p, j.dst, j.tag, j.size, j.ctx, false, j.data)
	j.req.done.Fire()
	j.r.w.putJob(j)
}

// Delivery kinds: what runDelivery does when the bytes land.
const (
	delivEager    uint8 = iota // eager payload arrived: deliverEager(m)
	delivRTS                   // rendezvous RTS arrived: deliverRTS(m)
	delivCTS                   // clear-to-send arrived back: fireCTS(reqID)
	delivRndvData              // rendezvous payload arrived: deliverRndvData
)

// delivery is a pooled what-happens-when-the-bytes-land record, handed to
// tcpsim.Flow.SendArg/SendAsyncArg with runDelivery. src is the rank that
// wrote the bytes, dst the rank receiving them; big marks a payload that
// holds the fast-buffer collision slot until it lands (see sendProto).
type delivery struct {
	src   *Rank
	dst   *Rank
	m     *inMsg // eager payload or RTS envelope (delivEager/delivRTS)
	reqID int64  // rendezvous handshake id (delivCTS/delivRndvData)
	big   bool
	kind  uint8
}

// runDelivery dispatches a pooled delivery and recycles it. It is the
// single package-level callback behind every protocol-level flow write.
func runDelivery(a any) {
	d := a.(*delivery)
	w := d.src.w
	if d.big {
		d.src.bigOut[d.dst.id]--
	}
	switch d.kind {
	case delivEager:
		d.dst.deliverEager(d.m)
	case delivRTS:
		d.dst.deliverRTS(d.m)
	case delivCTS:
		d.dst.fireCTS(d.reqID)
	default:
		d.dst.deliverRndvData(d.reqID)
	}
	w.putDelivery(d)
}

// getReq takes a Request from the pool, keeping its done Signal across
// recycles (rearmed here). Requests return to the pool when Wait returns.
func (w *World) getReq(r *Rank) *Request {
	if n := len(w.freeReqs); n > 0 {
		q := w.freeReqs[n-1]
		w.freeReqs[n-1] = nil
		w.freeReqs = w.freeReqs[:n-1]
		q.rank = r
		q.done.Reset()
		return q
	}
	return &Request{rank: r, done: w.K.NewSignal()}
}

func (w *World) putReq(q *Request) {
	q.rank = nil
	q.isRecv = false
	q.ctx, q.src, q.tag = 0, 0, 0
	q.Status = Status{} // drop the payload ref; don't pin user data
	w.freeReqs = append(w.freeReqs, q)
}

// getMsg takes a zeroed inMsg from the pool. Messages return to the pool
// at their consumption points: an eager match, an unexpected-queue take,
// or rendezvous acceptance.
func (w *World) getMsg() *inMsg {
	if n := len(w.freeMsgs); n > 0 {
		m := w.freeMsgs[n-1]
		w.freeMsgs[n-1] = nil
		w.freeMsgs = w.freeMsgs[:n-1]
		return m
	}
	return &inMsg{}
}

func (w *World) putMsg(m *inMsg) {
	*m = inMsg{}
	w.freeMsgs = append(w.freeMsgs, m)
}

func (w *World) getJob() *sendJob {
	if n := len(w.freeJobs); n > 0 {
		j := w.freeJobs[n-1]
		w.freeJobs[n-1] = nil
		w.freeJobs = w.freeJobs[:n-1]
		return j
	}
	return &sendJob{}
}

func (w *World) putJob(j *sendJob) {
	*j = sendJob{}
	w.freeJobs = append(w.freeJobs, j)
}

func (w *World) getDelivery() *delivery {
	if n := len(w.freeDeliv); n > 0 {
		d := w.freeDeliv[n-1]
		w.freeDeliv[n-1] = nil
		w.freeDeliv = w.freeDeliv[:n-1]
		return d
	}
	return &delivery{}
}

func (w *World) putDelivery(d *delivery) {
	*d = delivery{}
	w.freeDeliv = append(w.freeDeliv, d)
}

// getSignal takes a rearmed one-shot Signal from the pool (rendezvous CTS
// gates); putSignal accepts only fired signals, per Signal.Reset.
func (w *World) getSignal() *sim.Signal {
	if n := len(w.freeSigs); n > 0 {
		s := w.freeSigs[n-1]
		w.freeSigs[n-1] = nil
		w.freeSigs = w.freeSigs[:n-1]
		s.Reset()
		return s
	}
	return w.K.NewSignal()
}

func (w *World) putSignal(s *sim.Signal) {
	w.freeSigs = append(w.freeSigs, s)
}

// popAt removes element i of s preserving order, zeroing the vacated tail
// slot so the backing array never pins removed entries.
func popAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	var zero T
	n := len(s) - 1
	s[n] = zero
	return s[:n]
}
