package mpi

import "sort"

// Stats aggregates the communication census of a world: application-level
// point-to-point messages (by exact size and by locality) and collective
// calls. The NPB experiments use it to verify the paper's Table 2.
type Stats struct {
	// P2PSends counts user-level Send/Isend calls; P2PBytes their payload.
	P2PSends int64
	P2PBytes int64
	// WANSends / WANBytes count the subset crossing sites.
	WANSends int64
	WANBytes int64
	// Rendezvous counts sends that used the rendezvous protocol.
	Rendezvous int64
	// Unexpected counts eager messages that arrived before a matching
	// receive was posted.
	Unexpected int64

	// CollSends/CollBytes count the transport messages the collective
	// algorithms themselves exchange, and CollWANSends/CollWANBytes the
	// subset crossing sites. They exist so tests can compare flat vs
	// multilevel traffic; they are deliberately NOT part of the
	// serialized Census, so zero-Multilevel artifacts (goldens, caches,
	// fingerprinted results) stay byte-identical.
	CollSends    int64
	CollBytes    int64
	CollWANSends int64
	CollWANBytes int64

	sizeCounts map[int64]int64
	collCalls  map[string]int64
	collBytes  map[string]int64
	collSentBy []int64
	collRecvBy []int64
}

func newStats() *Stats {
	return &Stats{
		sizeCounts: make(map[int64]int64),
		collCalls:  make(map[string]int64),
		collBytes:  make(map[string]int64),
	}
}

func (s *Stats) recordP2P(size int64, wan bool) {
	s.P2PSends++
	s.P2PBytes += size
	if wan {
		s.WANSends++
		s.WANBytes += size
	}
	s.sizeCounts[size]++
}

func (s *Stats) recordColl(op string, bytes int64) {
	s.collCalls[op]++
	s.collBytes[op] += bytes
}

// recordCollMsg books one collective-context transport message. The
// receiver is credited at send time; that is sound because collectives
// only complete once every posted message is consumed.
func (s *Stats) recordCollMsg(src, dst int, size int64, wan bool) {
	s.CollSends++
	s.CollBytes += size
	if wan {
		s.CollWANSends++
		s.CollWANBytes += size
	}
	if n := max(src, dst) + 1; n > len(s.collSentBy) {
		s.collSentBy = append(s.collSentBy, make([]int64, n-len(s.collSentBy))...)
		s.collRecvBy = append(s.collRecvBy, make([]int64, n-len(s.collRecvBy))...)
	}
	s.collSentBy[src] += size
	s.collRecvBy[dst] += size
}

// CollSentBytes returns the collective payload bytes rank sent.
func (s *Stats) CollSentBytes(rank int) int64 {
	if rank >= len(s.collSentBy) {
		return 0
	}
	return s.collSentBy[rank]
}

// CollRecvBytes returns the collective payload bytes rank received.
func (s *Stats) CollRecvBytes(rank int) int64 {
	if rank >= len(s.collRecvBy) {
		return 0
	}
	return s.collRecvBy[rank]
}

// SizeCount is one row of the message-size census.
type SizeCount struct {
	Size  int64
	Count int64
}

// SizeCensus returns the per-size message counts sorted by size.
func (s *Stats) SizeCensus() []SizeCount {
	out := make([]SizeCount, 0, len(s.sizeCounts))
	for sz, c := range s.sizeCounts {
		out = append(out, SizeCount{sz, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// CountBetween returns how many point-to-point messages had sizes in
// [lo, hi].
func (s *Stats) CountBetween(lo, hi int64) int64 {
	var n int64
	for sz, c := range s.sizeCounts {
		if sz >= lo && sz <= hi {
			n += c
		}
	}
	return n
}

// CollCalls returns the number of calls of one collective operation
// (e.g. "bcast", "allreduce", "alltoallv").
func (s *Stats) CollCalls(op string) int64 { return s.collCalls[op] }

// CollOps returns the names of collective operations invoked, sorted.
func (s *Stats) CollOps() []string {
	ops := make([]string, 0, len(s.collCalls))
	for op := range s.collCalls {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}
