package mpi

import (
	"testing"
	"time"

	"repro/internal/tcpsim"
)

// runColl executes body on a world and fails the test on deadlock/timeout.
func runColl(t *testing.T, prof Profile, perSite int, grid bool, body func(r *Rank)) time.Duration {
	t.Helper()
	k, w := newWorld(t, prof, tcpsim.Tuned4MB(), perSite, grid)
	defer k.Close()
	elapsed, err := w.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestBcastCompletesAllShapes(t *testing.T) {
	for _, perSite := range []int{1, 2, 4} {
		for _, root := range []int{0, 1} {
			root, perSite := root, perSite
			done := make(map[int]bool)
			runColl(t, Reference(), perSite, true, func(r *Rank) {
				r.Bcast(root, 64<<10)
				done[r.Rank()] = true
			})
			if len(done) != 2*perSite {
				t.Fatalf("perSite=%d root=%d: only %d ranks finished bcast", perSite, root, len(done))
			}
		}
	}
}

func TestGridBcastBeatsBinomialOnWAN(t *testing.T) {
	const n = 4 << 20
	body := func(r *Rank) { r.Bcast(0, n) }
	plain := Reference()
	gridAware := Reference()
	gridAware.GridBcast = true
	tBinomial := runColl(t, plain, 8, true, body)
	tGrid := runColl(t, gridAware, 8, true, body)
	if tGrid >= tBinomial {
		t.Fatalf("grid bcast (%v) not faster than binomial (%v) for %d bytes on 8+8", tGrid, tBinomial, n)
	}
	if ratio := float64(tBinomial) / float64(tGrid); ratio < 1.3 {
		t.Fatalf("grid bcast speedup = %.2f, want ≥1.3", ratio)
	}
}

func TestGridBcastFallsBackForSmallMessages(t *testing.T) {
	// Below gridCollMin the grid algorithm is skipped; both configurations
	// must produce identical latency-bound behaviour.
	body := func(r *Rank) { r.Bcast(0, 1024) }
	plain := runColl(t, Reference(), 4, true, body)
	aware := Reference()
	aware.GridBcast = true
	grid := runColl(t, aware, 4, true, body)
	if plain != grid {
		t.Fatalf("small bcast differs: plain %v vs grid-aware %v", plain, grid)
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	finished := 0
	runColl(t, Reference(), 4, true, func(r *Rank) {
		r.Reduce(0, 32<<10)
		r.Allreduce(32 << 10)
		finished++
	})
	if finished != 8 {
		t.Fatalf("finished = %d", finished)
	}
}

func TestGridAllreduceBeatsRecursiveDoubling(t *testing.T) {
	const n = 4 << 20
	body := func(r *Rank) { r.Allreduce(n) }
	plain := runColl(t, Reference(), 8, true, body)
	aware := Reference()
	aware.GridAllreduce = true
	grid := runColl(t, aware, 8, true, body)
	if grid >= plain {
		t.Fatalf("grid allreduce (%v) not faster than recursive doubling (%v)", grid, plain)
	}
}

func TestAllreduceNonPowerOfTwoFallback(t *testing.T) {
	// 3 ranks per site = 6 ranks: exercises the reduce+bcast fallback.
	count := 0
	runColl(t, Reference(), 3, true, func(r *Rank) {
		r.Allreduce(8 << 10)
		count++
	})
	if count != 6 {
		t.Fatalf("count = %d", count)
	}
}

func TestAlltoallAndAlltoallv(t *testing.T) {
	runColl(t, Reference(), 2, true, func(r *Rank) {
		r.Alltoall(16 << 10)
		sizes := make([]int, r.Size())
		for i := range sizes {
			sizes[i] = 1024 * (r.Rank() + i + 1) // pairwise-consistent? no — see below
		}
		// Alltoallv requires sizes[i] on rank r to match what rank i
		// expects from r; using a symmetric formula keeps that true.
		for i := range sizes {
			sizes[i] = 1024 * ((r.Rank() + i) % r.Size())
		}
		r.Alltoallv(sizes)
	})
}

func TestGatherScatterBarrier(t *testing.T) {
	var afterBarrier []time.Duration
	runColl(t, Reference(), 2, true, func(r *Rank) {
		r.Scatter(0, 8<<10)
		r.Gather(0, 8<<10)
		r.Barrier()
		afterBarrier = append(afterBarrier, time.Duration(r.Now()))
	})
	if len(afterBarrier) != 4 {
		t.Fatalf("ranks past barrier = %d", len(afterBarrier))
	}
	// All ranks leave the barrier within one WAN round trip of each other.
	minT, maxT := afterBarrier[0], afterBarrier[0]
	for _, v := range afterBarrier {
		if v < minT {
			minT = v
		}
		if v > maxT {
			maxT = v
		}
	}
	if maxT-minT > 15*time.Millisecond {
		t.Fatalf("barrier exit skew = %v", maxT-minT)
	}
}

func TestAllgatherCompletes(t *testing.T) {
	n := 0
	runColl(t, Reference(), 4, true, func(r *Rank) {
		r.Allgather(64 << 10)
		n++
	})
	if n != 8 {
		t.Fatalf("n = %d", n)
	}
}

func TestCollectiveStatsRecordedOncePerCall(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.Tuned4MB(), 2, true)
	defer k.Close()
	if _, err := w.Run(func(r *Rank) {
		r.Bcast(0, 1000)
		r.Bcast(1, 1000)
		r.Allreduce(500)
		r.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if got := s.CollCalls("bcast"); got != 2 {
		t.Fatalf("bcast calls = %d, want 2", got)
	}
	if got := s.CollCalls("allreduce"); got != 1 {
		t.Fatalf("allreduce calls = %d, want 1", got)
	}
	if got := s.CollCalls("barrier"); got != 1 {
		t.Fatalf("barrier calls = %d, want 1", got)
	}
	// Collective-internal traffic must not pollute the p2p census.
	if s.P2PSends != 0 {
		t.Fatalf("collectives leaked %d messages into the p2p census", s.P2PSends)
	}
}
