package mpi

import (
	"time"
)

// gridCollMin is the smallest payload for which the grid-aware collective
// algorithms are worthwhile; below it the latency of extra phases dominates
// and the binomial algorithms win even across a WAN.
const gridCollMin = 32 << 10

// internal point-to-point helpers running in the collective context.

func (r *Rank) csend(dst, tag int, size int64) {
	r.sendProto(r.proc, dst, tag, size, ctxColl, false, nil)
}

func (r *Rank) cisend(dst, tag int, size int64) *Request {
	req := r.w.getReq(r)
	j := r.w.getJob()
	j.r, j.dst, j.tag, j.ctx, j.size, j.req = r, dst, tag, ctxColl, size, req
	r.w.K.GoJob("coll-isend", runSendJob, j)
	return req
}

func (r *Rank) crecv(src, tag int) Status { return r.Wait(r.irecv(src, tag, ctxColl)) }

func (r *Rank) cirecv(src, tag int) *Request { return r.irecv(src, tag, ctxColl) }

func (r *Rank) csendrecv(dst, sendTag int, size int64, src, recvTag int) {
	sreq := r.cisend(dst, sendTag, size)
	r.crecv(src, recvTag)
	r.Wait(sreq)
}

// nextCollTag reserves a tag block for one collective call. All ranks call
// collectives in the same order (the usual SPMD contract), so the blocks
// agree across ranks.
func (r *Rank) nextCollTag() int {
	r.collSeq++
	return r.collSeq << 6
}

// combineCost models the arithmetic of a reduction over n bytes.
func (r *Rank) combineCost(n int64) {
	r.Compute(time.Duration(float64(n) / r.w.Prof.CopyRate * float64(time.Second)))
}

// siteGroups returns rank ids grouped by site. Group order is the order
// in which sites first appear walking ranks 0..P-1, and each group lists
// its ranks in ascending rank order — the multilevel algorithms depend on
// this (group[0] is the site's gateway, and groups[0][0] == rank 0), so
// it is pinned by TestSiteGroupsFirstAppearanceOrder.
func (w *World) siteGroups() [][]int {
	idx := make(map[string]int)
	var groups [][]int
	for _, rk := range w.ranks {
		s := rk.host.Site
		if _, ok := idx[s]; !ok {
			idx[s] = len(groups)
			groups = append(groups, nil)
		}
		groups[idx[s]] = append(groups[idx[s]], rk.id)
	}
	return groups
}

// Bcast broadcasts n payload bytes from root to every rank.
func (r *Rank) Bcast(root int, n int) {
	tag := r.nextCollTag()
	if r.id == root {
		r.w.stats.recordColl("bcast", int64(n))
	}
	groups := r.w.siteGroups()
	if r.w.Prof.Multilevel && len(groups) >= 2 {
		r.mlBcast(tag, root, int64(n), groups)
		return
	}
	if r.w.Prof.GridBcast {
		if len(groups) == 2 && n >= gridCollMin {
			r.gridBcast(tag, root, int64(n), groups)
			return
		}
		if n >= largeBcastMin {
			// GridMPI's large-message broadcast inside one cluster:
			// van de Geijn scatter + ring allgather (2n per NIC instead
			// of the binomial's log2(P)·n at the root).
			r.scatterRingBcast(tag, root, int64(n))
			return
		}
	}
	r.binomialBcast(tag, root, int64(n))
}

// largeBcastMin is where scatter+allgather beats the binomial tree.
const largeBcastMin = 512 << 10

// scatterRingBcast: the root scatters P chunks, then a ring allgather
// circulates them.
func (r *Rank) scatterRingBcast(tag, root int, n int64) {
	P := r.Size()
	chunk := n / int64(P)
	if chunk < 1 {
		chunk = 1
	}
	vrank := (r.id - root + P) % P
	// Scatter: root sends chunk i to vrank i.
	if r.id == root {
		reqs := make([]*Request, 0, P-1)
		for v := 1; v < P; v++ {
			reqs = append(reqs, r.cisend((v+root)%P, tag, chunk))
		}
		r.WaitAll(reqs...)
	} else {
		r.crecv(root, tag)
	}
	// Ring allgather: P-1 steps, each passing one chunk to the right.
	right := (r.id + 1) % P
	left := (r.id - 1 + P) % P
	for s := 0; s < P-1; s++ {
		r.csendrecv(right, tag+1+s, chunk, left, tag+1+s)
	}
	_ = vrank
}

// binomialBcast is the classic log2(P) tree used by the non-grid-aware
// implementations; across a WAN its tree edges pay the full latency and
// the root's single NIC carries the whole payload to the remote cluster.
func (r *Rank) binomialBcast(tag, root int, n int64) {
	P := r.Size()
	vrank := (r.id - root + P) % P
	mask := 1
	for mask < P {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % P
			r.crecv(parent, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < P {
			child := ((vrank + mask) + root) % P
			r.csend(child, tag, n)
		}
		mask >>= 1
	}
}

// gridBcast is the van de Geijn style broadcast GridMPI uses between
// clusters (Matsuda et al., Cluster'06): scatter the payload inside the
// root's cluster, ship the chunks over the WAN on parallel node-to-node
// connections, and allgather inside each cluster. The WAN phase moves n/k
// bytes per flow on k simultaneous flows instead of n bytes on one.
func (r *Rank) gridBcast(tag, root int, n int64, groups [][]int) {
	local, remote := groups[0], groups[1]
	if !contains(local, root) {
		local, remote = remote, local
	}
	local = rotateToFront(local, root)
	k := min(len(local), len(remote))
	chunk := n / int64(k)
	last := n - chunk*int64(k-1)

	sz := func(i int) int64 {
		if i == k-1 {
			return last
		}
		return chunk
	}

	// Phase 1: scatter chunks inside the root cluster.
	if r.id == root {
		reqs := make([]*Request, 0, k-1)
		for i := 1; i < k; i++ {
			reqs = append(reqs, r.cisend(local[i], tag, sz(i)))
		}
		r.WaitAll(reqs...)
	} else if i := indexOf(local[:k], r.id); i > 0 {
		r.crecv(root, tag)
	}

	// Phase 2: parallel WAN transfers, pair i: local[i] -> remote[i].
	if i := indexOf(local[:k], r.id); i >= 0 {
		r.csend(remote[i], tag+1, sz(i))
	} else if i := indexOf(remote[:k], r.id); i >= 0 {
		r.crecv(local[i], tag+1)
	}

	// Phase 3: allgather chunks inside each cluster.
	r.localAllgatherChunks(tag+2, local, remote, k, sz)
}

// localAllgatherChunks distributes the k chunks held by the first k
// members of each site group to the rest of their group.
func (r *Rank) localAllgatherChunks(tag int, local, remote []int, k int, sz func(int) int64) {
	group := local
	if !contains(group, r.id) {
		group = remote
	}
	me := indexOf(group, r.id)
	var reqs []*Request
	// Post receives for every chunk another member holds.
	for i := 0; i < k; i++ {
		if i != me {
			reqs = append(reqs, r.cirecv(group[i], tag))
		}
	}
	// If I hold a chunk, send it to everyone else in my group.
	if me < k {
		for j := range group {
			if j != me {
				reqs = append(reqs, r.cisend(group[j], tag, sz(me)))
			}
		}
	}
	r.WaitAll(reqs...)
}

// Reduce combines n payload bytes from every rank onto root.
func (r *Rank) Reduce(root int, n int) {
	tag := r.nextCollTag()
	if r.id == root {
		r.w.stats.recordColl("reduce", int64(n))
	}
	if r.w.Prof.Multilevel {
		if groups := r.w.siteGroups(); len(groups) >= 2 {
			r.mlReduce(tag, root, int64(n), groups)
			return
		}
	}
	r.binomialReduce(tag, root, int64(n))
}

func (r *Rank) binomialReduce(tag, root int, n int64) {
	P := r.Size()
	vrank := (r.id - root + P) % P
	mask := 1
	for mask < P {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % P
			r.csend(parent, tag, n)
			return
		}
		if child := vrank | mask; child < P {
			r.crecv((child+root)%P, tag)
			r.combineCost(n)
		}
		mask <<= 1
	}
}

// Allreduce combines n payload bytes across all ranks, leaving the result
// everywhere.
func (r *Rank) Allreduce(n int) {
	tag := r.nextCollTag()
	if r.id == 0 {
		r.w.stats.recordColl("allreduce", int64(n))
	}
	groups := r.w.siteGroups()
	if r.w.Prof.Multilevel && len(groups) >= 2 {
		r.mlAllreduce(tag, int64(n), groups)
		return
	}
	if r.w.Prof.GridAllreduce && len(groups) == 2 && n >= gridCollMin {
		r.gridAllreduce(tag, int64(n), groups)
		return
	}
	if isPow2(r.Size()) {
		r.recursiveDoublingAllreduce(tag, int64(n), allRanks(r.Size()))
		return
	}
	r.binomialReduce(tag, 0, int64(n))
	r.binomialBcast(tag+1, 0, int64(n))
}

// recursiveDoublingAllreduce runs over the given rank group (a power of
// two); each round exchanges the full payload with a partner.
func (r *Rank) recursiveDoublingAllreduce(tag int, n int64, group []int) {
	me := indexOf(group, r.id)
	if me < 0 {
		return
	}
	for mask := 1; mask < len(group); mask <<= 1 {
		partner := group[me^mask]
		r.csendrecv(partner, tag, n, partner, tag)
		r.combineCost(n)
		tag++
	}
}

// gridAllreduce is the grid-aware Rabenseifner scheme: allreduce within
// each cluster, exchange result chunks pairwise over parallel WAN flows,
// then allgather the combined chunks inside each cluster.
func (r *Rank) gridAllreduce(tag int, n int64, groups [][]int) {
	g0, g1 := groups[0], groups[1]
	mine, peer := g0, g1
	if !contains(mine, r.id) {
		mine, peer = g1, g0
	}
	// Phase 1: local allreduce.
	if isPow2(len(mine)) {
		r.recursiveDoublingAllreduce(tag, n, mine)
	} else {
		r.binomialReduce(tag, mine[0], n)
		r.binomialBcast(tag+1, mine[0], n)
	}
	// Phase 2: pairwise WAN chunk exchange and combine.
	k := min(len(g0), len(g1))
	chunk := n / int64(k)
	last := n - chunk*int64(k-1)
	sz := func(i int) int64 {
		if i == k-1 {
			return last
		}
		return chunk
	}
	wtag := tag + 32
	if i := indexOf(mine[:k], r.id); i >= 0 {
		r.csendrecv(peer[i], wtag, sz(i), peer[i], wtag)
		r.combineCost(sz(i))
	}
	// Phase 3: allgather combined chunks locally.
	r.localAllgatherChunks(wtag+1, g0, g1, k, sz)
}

// Allgather makes every rank's block of n bytes available everywhere,
// using the ring algorithm.
func (r *Rank) Allgather(n int) {
	tag := r.nextCollTag()
	if r.id == 0 {
		r.w.stats.recordColl("allgather", int64(n))
	}
	if r.w.Prof.Multilevel {
		if groups := r.w.siteGroups(); len(groups) >= 2 {
			r.mlAllgather(tag, int64(n), groups)
			return
		}
	}
	P := r.Size()
	right := (r.id + 1) % P
	left := (r.id - 1 + P) % P
	for step := 0; step < P-1; step++ {
		r.csendrecv(right, tag, int64(n), left, tag)
		tag++
	}
}

// Alltoall exchanges n bytes between every rank pair (each rank sends n to
// every other rank). None of the four implementations optimizes it for the
// grid (§4.3): all post the full isend/irecv storm at once, so a 16-rank
// exchange drives dozens of simultaneous WAN flows into the uplink — the
// oversubscription under which GridMPI's pacing shines and the others
// take contention losses.
func (r *Rank) Alltoall(n int) {
	if r.w.Prof.Multilevel {
		if groups := r.w.siteGroups(); len(groups) >= 2 {
			tag := r.nextCollTag()
			if r.id == 0 {
				r.w.stats.recordColl("alltoall", int64(n)*int64(r.Size()))
			}
			r.mlAlltoall(tag, int64(n), groups)
			return
		}
	}
	sizes := make([]int, r.Size())
	for i := range sizes {
		sizes[i] = n
	}
	r.alltoallv(sizes, "alltoall")
}

// Alltoallv is Alltoall with per-destination sizes; sizes[i] is what this
// rank sends to rank i (sizes must agree pairwise across ranks, as in MPI).
func (r *Rank) Alltoallv(sizes []int) {
	r.alltoallv(sizes, "alltoallv")
}

func (r *Rank) alltoallv(sizes []int, op string) {
	tag := r.nextCollTag()
	if r.id == 0 {
		var total int64
		for _, s := range sizes {
			total += int64(s)
		}
		r.w.stats.recordColl(op, total)
	}
	P := r.Size()
	reqs := make([]*Request, 0, 2*(P-1))
	for step := 1; step < P; step++ {
		src := (r.id - step + P) % P
		if sizes[src] >= 0 {
			reqs = append(reqs, r.cirecv(src, tag))
		}
	}
	for step := 1; step < P; step++ {
		dst := (r.id + step) % P
		reqs = append(reqs, r.cisend(dst, tag, int64(sizes[dst])))
	}
	r.WaitAll(reqs...)
}

// Gather collects n bytes from every rank at root.
func (r *Rank) Gather(root int, n int) {
	tag := r.nextCollTag()
	if r.id == root {
		r.w.stats.recordColl("gather", int64(n))
	}
	if r.w.Prof.Multilevel {
		if groups := r.w.siteGroups(); len(groups) >= 2 {
			r.mlGather(tag, root, int64(n), groups)
			return
		}
	}
	if r.id == root {
		reqs := make([]*Request, 0, r.Size()-1)
		for i := 0; i < r.Size(); i++ {
			if i != root {
				reqs = append(reqs, r.cirecv(i, tag))
			}
		}
		r.WaitAll(reqs...)
		return
	}
	r.csend(root, tag, int64(n))
}

// Scatter distributes n bytes from root to every rank.
func (r *Rank) Scatter(root int, n int) {
	tag := r.nextCollTag()
	if r.id == root {
		r.w.stats.recordColl("scatter", int64(n))
	}
	if r.w.Prof.Multilevel {
		if groups := r.w.siteGroups(); len(groups) >= 2 {
			r.mlScatter(tag, root, int64(n), groups)
			return
		}
	}
	if r.id == root {
		reqs := make([]*Request, 0, r.Size()-1)
		for i := 0; i < r.Size(); i++ {
			if i != root {
				reqs = append(reqs, r.cisend(i, tag, int64(n)))
			}
		}
		r.WaitAll(reqs...)
		return
	}
	r.crecv(root, tag)
}

// Barrier synchronizes all ranks with the dissemination algorithm.
func (r *Rank) Barrier() {
	tag := r.nextCollTag()
	if r.id == 0 {
		r.w.stats.recordColl("barrier", 0)
	}
	if r.w.Prof.Multilevel {
		if groups := r.w.siteGroups(); len(groups) >= 2 {
			r.mlBarrier(tag, groups)
			return
		}
	}
	P := r.Size()
	for mask := 1; mask < P; mask <<= 1 {
		dst := (r.id + mask) % P
		src := (r.id - mask + P) % P
		r.csendrecv(dst, tag, 1, src, tag)
		tag++
	}
}

// --- small helpers ---

func contains(xs []int, v int) bool { return indexOf(xs, v) >= 0 }

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

func rotateToFront(xs []int, v int) []int {
	i := indexOf(xs, v)
	if i <= 0 {
		return xs
	}
	out := make([]int, 0, len(xs))
	out = append(out, xs[i:]...)
	return append(out, xs[:i]...)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func allRanks(P int) []int {
	out := make([]int, P)
	for i := range out {
		out[i] = i
	}
	return out
}
