//go:build !race

package mpi

// raceEnabled reports whether the race detector is compiled in; the
// allocation-lock tests skip themselves under it.
const raceEnabled = false
