package mpi

// Topology-aware multilevel collectives (Karonis et al., MPICH-G2; the
// "multilevel approach" paper). Every operation is staged to minimize WAN
// crossings: an intra-site phase runs the existing binomial /
// recursive-doubling kernels restricted to one siteGroups() group, an
// inter-site phase runs over one gateway rank per site (the first rank of
// each group, with the root's site rotated to the front for rooted
// operations), and an intra-site redistribution phase fans results back
// out. Unlike gridBcast/gridAllreduce these handle arbitrary N-site
// layouts; the callers in collectives.go fall through to the flat
// algorithms when only one site is present, so a single-site multilevel
// run is event-for-event identical to a flat one.
//
// Tag discipline: each phase of one collective call uses a distinct
// offset inside the 64-tag block reserved by nextCollTag, so messages of
// different phases can never match each other even while different ranks
// are in different phases. Offsets 0..19 and 20..39 leave room for the
// per-round tags of recursive doubling / dissemination over groups of up
// to 2^20 members.

// mlArrange orders the site groups for a rooted collective: the groups
// list is rotated so the root's site comes first, and the root is rotated
// to the front of its own group, making it that site's gateway. Every
// other group keeps first-appearance order with its first rank as
// gateway. For root 0 (the unrooted operations) this is the identity.
func mlArrange(groups [][]int, root int) (arranged [][]int, gateways []int) {
	rootIdx := 0
	for i, g := range groups {
		if contains(g, root) {
			rootIdx = i
			break
		}
	}
	arranged = make([][]int, 0, len(groups))
	arranged = append(arranged, groups[rootIdx:]...)
	arranged = append(arranged, groups[:rootIdx]...)
	arranged[0] = rotateToFront(arranged[0], root)
	gateways = make([]int, len(arranged))
	for i, g := range arranged {
		gateways[i] = g[0]
	}
	return arranged, gateways
}

// gatewaysOf returns the gateway (first) rank of each group.
func gatewaysOf(groups [][]int) []int {
	gws := make([]int, len(groups))
	for i, g := range groups {
		gws[i] = g[0]
	}
	return gws
}

// groupOf returns the group containing rank id.
func groupOf(groups [][]int, id int) []int {
	for _, g := range groups {
		if contains(g, id) {
			return g
		}
	}
	return nil
}

// groupBinomialBcast broadcasts n bytes from group[0] down a binomial
// tree over the group; ranks outside the group (and singleton groups)
// do nothing.
func (r *Rank) groupBinomialBcast(tag int, n int64, group []int) {
	P := len(group)
	me := indexOf(group, r.id)
	if me < 0 || P < 2 {
		return
	}
	mask := 1
	for mask < P {
		if me&mask != 0 {
			r.crecv(group[me&^mask], tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if me+mask < P {
			r.csend(group[me+mask], tag, n)
		}
		mask >>= 1
	}
}

// groupBinomialReduce combines n bytes from every group member onto
// group[0] up a binomial tree.
func (r *Rank) groupBinomialReduce(tag int, n int64, group []int) {
	P := len(group)
	me := indexOf(group, r.id)
	if me < 0 || P < 2 {
		return
	}
	mask := 1
	for mask < P {
		if me&mask != 0 {
			r.csend(group[me&^mask], tag, n)
			return
		}
		if child := me | mask; child < P {
			r.crecv(group[child], tag)
			r.combineCost(n)
		}
		mask <<= 1
	}
}

// groupExchangeAllreduce leaves the combined n bytes on every group
// member by direct pairwise exchange: everyone posts receives from all
// peers, sends all peers its vector, and combines locally. One
// latency round of S-1 concurrent messages — for the handful of
// gateways a grid has, this beats the 2·log S serial WAN rounds of
// reduce+bcast (and recursive doubling's log S) on both latency- and
// NIC-bound messages.
func (r *Rank) groupExchangeAllreduce(tag int, n int64, group []int) {
	if len(group) < 2 || indexOf(group, r.id) < 0 {
		return
	}
	reqs := make([]*Request, 0, 2*(len(group)-1))
	for _, peer := range group {
		if peer != r.id {
			reqs = append(reqs, r.cirecv(peer, tag))
		}
	}
	for _, peer := range group {
		if peer != r.id {
			reqs = append(reqs, r.cisend(peer, tag, n))
		}
	}
	r.WaitAll(reqs...)
	r.combineCost(int64(len(group)-1) * n)
}

// mlBcast: the root broadcasts to the gateways over the WAN (one message
// per remote site), then each gateway broadcasts inside its site.
func (r *Rank) mlBcast(tag, root int, n int64, groups [][]int) {
	arranged, gws := mlArrange(groups, root)
	r.groupBinomialBcast(tag, n, gws)
	r.groupBinomialBcast(tag+1, n, groupOf(arranged, r.id))
}

// mlReduce: each site reduces onto its gateway, then the gateways reduce
// onto the root over the WAN.
func (r *Rank) mlReduce(tag, root int, n int64, groups [][]int) {
	arranged, gws := mlArrange(groups, root)
	r.groupBinomialReduce(tag, n, groupOf(arranged, r.id))
	r.groupBinomialReduce(tag+1, n, gws)
}

// mlAllreduce: intra-site reduce onto the gateway, direct exchange of
// the site sums between the gateways (the single WAN round), intra-site
// broadcast of the combined result.
func (r *Rank) mlAllreduce(tag int, n int64, groups [][]int) {
	gws := gatewaysOf(groups)
	g := groupOf(groups, r.id)
	r.groupBinomialReduce(tag, n, g)
	r.groupExchangeAllreduce(tag+20, n, gws)
	r.groupBinomialBcast(tag+40, n, g)
}

// mlGather: members hand their block to the site gateway, and each
// remote gateway ships its site's bundle to the root in one WAN message.
func (r *Rank) mlGather(tag, root int, n int64, groups [][]int) {
	arranged, gws := mlArrange(groups, root)
	g := groupOf(arranged, r.id)
	me := indexOf(g, r.id)
	if me == 0 {
		reqs := make([]*Request, 0, len(g)-1)
		for j := 1; j < len(g); j++ {
			reqs = append(reqs, r.cirecv(g[j], tag))
		}
		r.WaitAll(reqs...)
	} else {
		r.csend(g[0], tag, n)
	}
	if r.id == root {
		reqs := make([]*Request, 0, len(arranged)-1)
		for i := 1; i < len(arranged); i++ {
			reqs = append(reqs, r.cirecv(gws[i], tag+1))
		}
		r.WaitAll(reqs...)
	} else if me == 0 {
		r.csend(root, tag+1, int64(len(g))*n)
	}
}

// mlScatter: the root ships each remote site its whole bundle via the
// gateway in one WAN message, then gateways deal members their slices.
func (r *Rank) mlScatter(tag, root int, n int64, groups [][]int) {
	arranged, gws := mlArrange(groups, root)
	g := groupOf(arranged, r.id)
	me := indexOf(g, r.id)
	if r.id == root {
		reqs := make([]*Request, 0, len(arranged)-1)
		for i := 1; i < len(arranged); i++ {
			reqs = append(reqs, r.cisend(gws[i], tag, int64(len(arranged[i]))*n))
		}
		r.WaitAll(reqs...)
	} else if me == 0 {
		r.crecv(root, tag)
	}
	if me == 0 {
		reqs := make([]*Request, 0, len(g)-1)
		for j := 1; j < len(g); j++ {
			reqs = append(reqs, r.cisend(g[j], tag+1, n))
		}
		r.WaitAll(reqs...)
	} else {
		r.crecv(g[0], tag+1)
	}
}

// mlAllgather: gather each site's blocks at its gateway, exchange the
// site bundles pairwise between gateways, then broadcast the assembled
// P·n result inside each site.
func (r *Rank) mlAllgather(tag int, n int64, groups [][]int) {
	g := groupOf(groups, r.id)
	me := indexOf(g, r.id)
	var total int64
	for _, grp := range groups {
		total += int64(len(grp)) * n
	}
	if me == 0 {
		reqs := make([]*Request, 0, len(g)-1)
		for j := 1; j < len(g); j++ {
			reqs = append(reqs, r.cirecv(g[j], tag))
		}
		r.WaitAll(reqs...)

		reqs = reqs[:0]
		for _, grp := range groups {
			if grp[0] != r.id {
				reqs = append(reqs, r.cirecv(grp[0], tag+1))
			}
		}
		for _, grp := range groups {
			if grp[0] != r.id {
				reqs = append(reqs, r.cisend(grp[0], tag+1, int64(len(g))*n))
			}
		}
		r.WaitAll(reqs...)
	} else {
		r.csend(g[0], tag, n)
	}
	r.groupBinomialBcast(tag+2, total, g)
}

// mlAlltoall: members funnel all off-site payload through their gateway
// (phase 1), gateways exchange one aggregated bundle per site pair
// (phase 2, the only WAN phase: S·(S-1) messages instead of the flat
// algorithm's per-rank-pair storm), gateways deal the inbound bytes back
// out (phase 3), and the intra-site pairwise exchange runs directly
// (phase 4).
func (r *Rank) mlAlltoall(tag int, n int64, groups [][]int) {
	g := groupOf(groups, r.id)
	me := indexOf(g, r.id)
	P := r.Size()
	offsite := int64(P-len(g)) * n
	if me == 0 {
		if offsite > 0 {
			reqs := make([]*Request, 0, len(g)-1)
			for j := 1; j < len(g); j++ {
				reqs = append(reqs, r.cirecv(g[j], tag))
			}
			r.WaitAll(reqs...)
		}
		reqs := make([]*Request, 0, 2*(len(groups)-1))
		for _, grp := range groups {
			if grp[0] != r.id {
				reqs = append(reqs, r.cirecv(grp[0], tag+1))
			}
		}
		for _, grp := range groups {
			if grp[0] != r.id {
				reqs = append(reqs, r.cisend(grp[0], tag+1, int64(len(g))*int64(len(grp))*n))
			}
		}
		r.WaitAll(reqs...)
		if offsite > 0 {
			reqs = reqs[:0]
			for j := 1; j < len(g); j++ {
				reqs = append(reqs, r.cisend(g[j], tag+2, offsite))
			}
			r.WaitAll(reqs...)
		}
	} else if offsite > 0 {
		r.csend(g[0], tag, offsite)
		r.crecv(g[0], tag+2)
	}
	if len(g) > 1 {
		reqs := make([]*Request, 0, 2*(len(g)-1))
		for s := 1; s < len(g); s++ {
			reqs = append(reqs, r.cirecv(g[(me-s+len(g))%len(g)], tag+3))
		}
		for s := 1; s < len(g); s++ {
			reqs = append(reqs, r.cisend(g[(me+s)%len(g)], tag+3, n))
		}
		r.WaitAll(reqs...)
	}
}

// mlBarrier: site members check in at their gateway, the gateways run a
// dissemination barrier over the WAN, then each gateway releases its
// site.
func (r *Rank) mlBarrier(tag int, groups [][]int) {
	gws := gatewaysOf(groups)
	g := groupOf(groups, r.id)
	r.groupBinomialReduce(tag, 1, g)
	if me := indexOf(gws, r.id); me >= 0 {
		S := len(gws)
		t := tag + 1
		for mask := 1; mask < S; mask <<= 1 {
			dst := gws[(me+mask)%S]
			src := gws[(me-mask+S)%S]
			r.csendrecv(dst, t, 1, src, t)
			t++
		}
	}
	r.groupBinomialBcast(tag+40, 1, g)
}
