package mpi

import (
	"testing"
	"time"

	"repro/internal/tcpsim"
)

func TestGathervScatterv(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.Tuned4MB(), 2, true)
	defer k.Close()
	done := 0
	_, err := w.Run(func(r *Rank) {
		sizes := make([]int, r.Size())
		for i := range sizes {
			sizes[i] = 1024 * (i + 1)
		}
		sizes[2] = 0 // zero-size contributions must not deadlock
		r.Scatterv(0, sizes)
		r.Gatherv(0, sizes)
		r.Gatherv(1, sizes) // non-zero root
		done++
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	s := w.Stats()
	if s.CollCalls("gatherv") != 2 || s.CollCalls("scatterv") != 1 {
		t.Fatalf("census: gatherv=%d scatterv=%d", s.CollCalls("gatherv"), s.CollCalls("scatterv"))
	}
}

func TestReduceScatterAndScan(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.Tuned4MB(), 4, true)
	defer k.Close()
	exits := make([]time.Duration, 0, 8)
	_, err := w.Run(func(r *Rank) {
		r.ReduceScatter(256 << 10)
		r.Scan(8 << 10)
		exits = append(exits, time.Duration(r.Now()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exits) != 8 {
		t.Fatalf("ranks finished = %d", len(exits))
	}
}

// TestScanIsPrefixOrdered: the linear scan completes rank i only after
// rank i-1, so exit times increase along the chain.
func TestScanIsPrefixOrdered(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.Tuned4MB(), 2, true)
	defer k.Close()
	exits := make(map[int]time.Duration)
	_, err := w.Run(func(r *Rank) {
		r.Scan(4 << 10)
		exits[r.Rank()] = time.Duration(r.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every non-final rank must have received before the next one exits.
	for i := 1; i < 4; i++ {
		if exits[i] < exits[i-1] {
			t.Fatalf("scan exits out of prefix order: %v", exits)
		}
	}
}
