package mpi

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Wildcards for Recv/Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Message contexts keep user and collective traffic in separate matching
// spaces, as real MPI implementations do with communicator contexts.
const (
	ctxUser = 0
	ctxColl = 1
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Size   int64
	// Data is the payload value attached by SendPayload/IsendPayload, if
	// any. The simulation prices communication by Size; Data rides along
	// for application-level bookkeeping (work descriptors, results).
	Data any
}

// Request is a nonblocking operation handle.
type Request struct {
	rank   *Rank
	isRecv bool
	ctx    int
	src    int // recv matching source (AnySource allowed)
	tag    int // recv matching tag (AnyTag allowed)
	done   *sim.Signal
	Status Status
}

// inMsg is an arrived-but-unmatched message: either a full eager payload
// or a rendezvous RTS.
type inMsg struct {
	ctx   int
	src   int
	tag   int
	size  int64
	eager bool
	reqID int64 // rendezvous handshake id (RTS only)
	data  any
}

func (m *inMsg) status() Status {
	return Status{Source: m.src, Tag: m.tag, Size: m.size, Data: m.data}
}

// Send transmits size payload bytes to rank dst with the given tag,
// blocking per MPI semantics: eager sends return once the data is buffered
// by TCP; rendezvous sends return once the receiver has accepted the
// transfer and the data is on the wire.
func (r *Rank) Send(dst, tag int, size int) {
	r.sendProto(r.proc, dst, tag, int64(size), ctxUser, true, nil)
}

// SendPayload is Send with an application value attached; the receiver
// finds it in Status.Data. Size still governs all timing.
func (r *Rank) SendPayload(dst, tag, size int, data any) {
	r.sendProto(r.proc, dst, tag, int64(size), ctxUser, true, data)
}

// Isend starts a nonblocking send and returns its request. The transfer
// protocol runs in a background process; Wait returns once the send is
// locally complete.
func (r *Rank) Isend(dst, tag int, size int) *Request {
	return r.IsendPayload(dst, tag, size, nil)
}

// IsendPayload is Isend with an application value attached.
func (r *Rank) IsendPayload(dst, tag, size int, data any) *Request {
	req := r.w.getReq(r)
	r.recordUserSend(dst, int64(size))
	r.isendSeq++
	j := r.w.getJob()
	j.r, j.dst, j.tag, j.ctx, j.size, j.data, j.req = r, dst, tag, ctxUser, int64(size), data, req
	r.w.K.GoJob("isend", runSendJob, j)
	return req
}

func (r *Rank) recordUserSend(dst int, size int64) {
	wan := !netsim.SameSite(r.host, r.w.ranks[dst].host)
	r.w.stats.recordP2P(size, wan)
}

// sendProto runs the wire protocol for one message from process p.
func (r *Rank) sendProto(p *sim.Proc, dst, tag int, size int64, ctx int, record bool, data any) {
	if record {
		r.recordUserSend(dst, size)
	}
	dstRank := r.w.ranks[dst]
	wan := !netsim.SameSite(r.host, dstRank.host)
	if ctx == ctxColl {
		r.w.stats.recordCollMsg(r.id, dst, size, wan)
	}
	prof := r.w.Prof
	p.Sleep(prof.Overhead(wan))
	flow := r.flowTo(dst)

	// MPICH-Madeleine's fast-buffer collision: its pinned channel buffer
	// is shared between the two directions of a pair, and a message
	// larger than SlowPathThreshold monopolizes it. When both directions
	// move such messages at once over a long-RTT link (BT/SP's
	// simultaneous face exchanges), the loser falls back to a polled slow
	// path and stalls. One-directional traffic (pingpong) and messages
	// that fit (CG's 147 kB) are unaffected.
	big := wan && prof.SlowPathThreshold > 0 && size > int64(prof.SlowPathThreshold)
	if big {
		if dstRank.bigOut[r.id] > 0 {
			p.Sleep(prof.SlowPathStall)
		}
		r.bigOut[dst]++ // released when the payload's delivery lands
	}

	if !prof.UsesRendezvous(int(size)) {
		m := r.w.getMsg()
		m.ctx, m.src, m.tag, m.size, m.eager, m.data = ctx, r.id, tag, size, true, data
		d := r.w.getDelivery()
		d.src, d.dst, d.m, d.big, d.kind = r, dstRank, m, big, delivEager
		r.sendPayload(p, flow, dst, wan, EnvelopeBytes+size, d)
		return
	}

	// Rendezvous: RTS → (receiver matches) → CTS → payload.
	r.w.stats.Rendezvous++
	var lock *sim.Mutex
	if prof.SerialRendezvous {
		lock = r.rndvLock(dst)
		lock.Lock(p)
	}
	reqID := r.newReqID()
	cts := r.w.getSignal()
	r.pendingCTS[reqID] = cts
	m := r.w.getMsg()
	m.ctx, m.src, m.tag, m.size, m.reqID, m.data = ctx, r.id, tag, size, reqID, data
	rts := r.w.getDelivery()
	rts.src, rts.dst, rts.m, rts.kind = r, dstRank, m, delivRTS
	flow.SendArg(p, ControlBytes, runDelivery, rts)
	cts.Wait(p)
	delete(r.pendingCTS, reqID)
	r.w.putSignal(cts)
	d := r.w.getDelivery()
	d.src, d.dst, d.reqID, d.big, d.kind = r, dstRank, reqID, big, delivRndvData
	r.sendPayload(p, flow, dst, wan, EnvelopeBytes+size, d)
	if lock != nil {
		lock.Unlock()
	}
}

// sendPayload writes wireBytes to the flow, firing the pooled delivery d
// when the last byte lands. When the profile models a fragment pipeline
// (OpenMPI's BTL), each fragment costs CPU time at the sender; the cost is
// applied as one aggregate delay so the TCP stream itself stays
// contiguous. When the profile stripes large WAN messages over parallel
// streams (MPICH-G2), the payload is split across extra flows and
// delivered when the last stripe lands (the one closure the rare striped
// path still allocates).
func (r *Rank) sendPayload(p *sim.Proc, flow *tcpsim.Flow, dst int, wan bool, wireBytes int64, d *delivery) {
	if fs := int64(r.w.Prof.FragmentSize); fs > 0 && wireBytes > fs {
		frags := (wireBytes + fs - 1) / fs
		p.Sleep(time.Duration(frags) * r.w.Prof.FragmentOverhead)
	}
	streams := r.w.Prof.ParallelStreams
	if streams > 1 && wan && wireBytes >= int64(r.w.Prof.StreamMinSize) {
		r.sendStriped(p, dst, streams, wireBytes, func() { runDelivery(d) })
		return
	}
	flow.SendArg(p, wireBytes, runDelivery, d)
}

// sendStriped splits the payload across parallel TCP streams to dst. The
// call keeps eager semantics: it returns once every stripe is buffered,
// and delivered fires when the slowest stripe has fully arrived.
func (r *Rank) sendStriped(p *sim.Proc, dst, streams int, wireBytes int64, delivered func()) {
	stripe := wireBytes / int64(streams)
	remaining := streams
	lastLanded := func() {
		remaining--
		if remaining == 0 && delivered != nil {
			delivered()
		}
	}
	buffered := r.w.K.NewSignal()
	pendingWrites := streams
	for lane := 0; lane < streams; lane++ {
		n := stripe
		if lane == streams-1 {
			n = wireBytes - stripe*int64(streams-1)
		}
		laneFlow := r.laneFlow(dst, lane)
		r.w.K.Go("stripe", func(cp *sim.Proc) {
			laneFlow.Send(cp, n, lastLanded)
			pendingWrites--
			if pendingWrites == 0 {
				buffered.Fire()
			}
		})
	}
	buffered.Wait(p)
}

// laneFlow returns the lane-th parallel flow to dst (lane 0 is the main
// flow used for control traffic).
func (r *Rank) laneFlow(dst, lane int) *tcpsim.Flow {
	if lane == 0 {
		return r.flowTo(dst)
	}
	key := dst + lane<<20
	if f, ok := r.flows[key]; ok {
		return f
	}
	path := r.w.Net.Path(r.host, r.w.ranks[dst].host)
	f := tcpsim.NewFlow(r.w.K, path, r.w.TCP, r.w.Prof.Buffers)
	r.flows[key] = f
	return f
}

// Recv blocks until a message matching (src, tag) arrives and returns its
// status. src may be AnySource and tag AnyTag.
func (r *Rank) Recv(src, tag int) Status {
	return r.Wait(r.Irecv(src, tag))
}

// Irecv posts a nonblocking receive for (src, tag).
func (r *Rank) Irecv(src, tag int) *Request {
	return r.irecv(src, tag, ctxUser)
}

func (r *Rank) irecv(src, tag, ctx int) *Request {
	req := r.w.getReq(r)
	req.isRecv, req.ctx, req.src, req.tag = true, ctx, src, tag
	if m := r.takeUnexpected(src, tag, ctx); m != nil {
		if m.eager {
			// The message arrived before the receive was posted: it sat in
			// an MPI buffer and must now be copied out (Figure 4, arrow 2).
			req.Status = m.status()
			copyCost := time.Duration(float64(m.size) / r.w.Prof.CopyRate * float64(time.Second))
			req.done.FireAfter(copyCost)
			r.w.putMsg(m)
		} else {
			r.acceptRndv(req, m)
		}
		return req
	}
	r.posted = append(r.posted, req)
	return req
}

// Wait blocks until the request completes and returns its status. The
// request is recycled when Wait returns: wait on a request exactly once
// and do not touch it afterwards.
func (r *Rank) Wait(req *Request) Status {
	req.done.Wait(r.proc)
	st := req.Status
	r.w.putReq(req)
	return st
}

// WaitAll waits for every request.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		r.Wait(q)
	}
}

// Sendrecv performs a blocking exchange: it sends to dst and receives from
// src concurrently, the fundamental step of most collective algorithms.
func (r *Rank) Sendrecv(dst, sendTag, sendSize, src, recvTag int) Status {
	sreq := r.Isend(dst, sendTag, sendSize)
	st := r.Recv(src, recvTag)
	r.Wait(sreq)
	return st
}

// --- receiver-side engine (runs in kernel event context) ---

// deliverEager handles a fully-arrived eager message.
func (r *Rank) deliverEager(m *inMsg) {
	if req := r.matchPosted(m); req != nil {
		req.Status = m.status()
		req.done.Fire()
		r.w.putMsg(m)
		return
	}
	r.w.stats.Unexpected++
	r.unexpected = append(r.unexpected, m)
}

// deliverRTS handles a rendezvous request-to-send.
func (r *Rank) deliverRTS(m *inMsg) {
	if req := r.matchPosted(m); req != nil {
		r.acceptRndv(req, m)
		return
	}
	r.unexpected = append(r.unexpected, m)
}

// acceptRndv matches a posted/poster receive with an RTS: registers the
// data completion, returns a CTS to the sender and recycles the envelope.
func (r *Rank) acceptRndv(req *Request, m *inMsg) {
	req.Status = m.status()
	r.rndvRecv[m.reqID] = req
	src := r.w.ranks[m.src]
	d := r.w.getDelivery()
	d.src, d.dst, d.reqID, d.kind = r, src, m.reqID, delivCTS
	r.flowTo(m.src).SendAsyncArg(ControlBytes, runDelivery, d)
	r.w.putMsg(m)
}

// fireCTS wakes the sender blocked on the rendezvous handshake.
func (r *Rank) fireCTS(reqID int64) {
	if s, ok := r.pendingCTS[reqID]; ok {
		s.Fire()
	}
}

// deliverRndvData completes the receive once the payload has arrived.
func (r *Rank) deliverRndvData(reqID int64) {
	req, ok := r.rndvRecv[reqID]
	if !ok {
		panic("mpi: rendezvous data for unknown request")
	}
	delete(r.rndvRecv, reqID)
	req.done.Fire()
}

// matchPosted removes and returns the oldest posted receive matching the
// message, or nil.
func (r *Rank) matchPosted(m *inMsg) *Request {
	for i, req := range r.posted {
		if req.ctx == m.ctx &&
			(req.src == AnySource || req.src == m.src) &&
			(req.tag == AnyTag || req.tag == m.tag) {
			r.posted = popAt(r.posted, i)
			return req
		}
	}
	return nil
}

// takeUnexpected removes and returns the oldest unexpected message
// matching (src, tag), or nil.
func (r *Rank) takeUnexpected(src, tag, ctx int) *inMsg {
	for i, m := range r.unexpected {
		if m.ctx == ctx &&
			(src == AnySource || src == m.src) &&
			(tag == AnyTag || tag == m.tag) {
			r.unexpected = popAt(r.unexpected, i)
			return m
		}
	}
	return nil
}
