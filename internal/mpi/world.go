package mpi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// ErrTimeout is returned by RunTimeout when some rank has not finished by
// the deadline — the simulated analogue of the paper's "application
// timeout" on MPICH-Madeleine BT/SP runs.
var ErrTimeout = errors.New("mpi: run timed out")

// ErrDeadlock is returned by Run when the simulation quiesced with ranks
// still blocked (an actual communication deadlock in the program).
var ErrDeadlock = errors.New("mpi: ranks deadlocked")

// World is an MPI job: a set of ranks pinned to hosts, sharing one
// implementation profile and one TCP stack configuration.
type World struct {
	K     *sim.Kernel
	Net   *netsim.Network
	TCP   tcpsim.Config
	Prof  Profile
	hosts []*netsim.Host
	ranks []*Rank
	stats *Stats

	// Protocol arenas (see arena.go): free lists for the per-message
	// objects, shared by all ranks of the job. Single flow of control —
	// no locking.
	freeReqs  []*Request
	freeMsgs  []*inMsg
	freeJobs  []*sendJob
	freeDeliv []*delivery
	freeSigs  []*sim.Signal
}

// NewWorld creates a world with rank i running on hosts[i]. The profile's
// pacing flag is applied to the TCP stack of every connection.
func NewWorld(k *sim.Kernel, net *netsim.Network, tcp tcpsim.Config, prof Profile, hosts []*netsim.Host) *World {
	if len(hosts) == 0 {
		panic("mpi: world needs at least one host")
	}
	tcp.Pacing = prof.Pacing
	w := &World{K: k, Net: net, TCP: tcp, Prof: prof, hosts: hosts, stats: newStats()}
	w.ranks = make([]*Rank, len(hosts))
	for i, h := range hosts {
		w.ranks[i] = &Rank{
			w:          w,
			id:         i,
			host:       h,
			flows:      make(map[int]*tcpsim.Flow),
			rndvLocks:  make(map[int]*sim.Mutex),
			pendingCTS: make(map[int64]*sim.Signal),
			rndvRecv:   make(map[int64]*Request),
			bigOut:     make(map[int]int),
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Stats returns the world's communication census.
func (w *World) Stats() *Stats { return w.stats }

// RankAt returns rank i (for inspection in tests).
func (w *World) RankAt(i int) *Rank { return w.ranks[i] }

// FlowStats aggregates the transport counters of every flow the job opened.
// All fields are commutative sums (PeakCwnd a max), so the result does not
// depend on map iteration order — safe for deterministic metrics.
func (w *World) FlowStats() tcpsim.FlowStats {
	var agg tcpsim.FlowStats
	for _, r := range w.ranks {
		for _, f := range r.flows {
			agg.Add(f.Stats)
		}
	}
	return agg
}

// Run executes body concurrently on every rank (SPMD style) and returns
// the elapsed virtual time until the last rank finishes. It returns
// ErrDeadlock if the simulation quiesces with unfinished ranks.
func (w *World) Run(body func(r *Rank)) (time.Duration, error) {
	w.spawn(body)
	w.K.Run()
	return w.collect(0)
}

// RunTimeout is Run with a virtual-time deadline; past it, unfinished
// ranks make the job report ErrTimeout.
func (w *World) RunTimeout(body func(r *Rank), limit time.Duration) (time.Duration, error) {
	start := w.K.Now()
	w.spawn(body)
	w.K.RunUntil(start + limit)
	return w.collect(limit)
}

func (w *World) spawn(body func(r *Rank)) {
	start := w.K.Now()
	for _, r := range w.ranks {
		r := r
		r.start = start
		r.proc = w.K.Go(fmt.Sprintf("rank%d", r.id), func(p *sim.Proc) {
			body(r)
			r.finish = p.Now()
		})
	}
}

func (w *World) collect(limit time.Duration) (time.Duration, error) {
	var latest time.Duration
	stuck := 0
	for _, r := range w.ranks {
		if !r.proc.Done() {
			stuck++
			continue
		}
		if d := r.finish - r.start; d > latest {
			latest = d
		}
	}
	if stuck > 0 {
		if limit > 0 {
			return limit, fmt.Errorf("%w: %d/%d ranks unfinished after %v", ErrTimeout, stuck, len(w.ranks), limit)
		}
		return latest, fmt.Errorf("%w: %d/%d ranks blocked", ErrDeadlock, stuck, len(w.ranks))
	}
	return latest, nil
}

// Rank is one MPI process. All its communication methods must be called
// from within the body function passed to Run (they block the rank's own
// simulation process).
type Rank struct {
	w      *World
	id     int
	host   *netsim.Host
	proc   *sim.Proc
	start  sim.Time
	finish sim.Time

	flows      map[int]*tcpsim.Flow
	rndvLocks  map[int]*sim.Mutex
	posted     []*Request
	unexpected []*inMsg
	pendingCTS map[int64]*sim.Signal
	rndvRecv   map[int64]*Request
	// bigOut counts in-flight oversized messages per destination, for the
	// fast-buffer collision model (see sendProto).
	bigOut   map[int]int
	reqSeq   int64
	collSeq  int
	isendSeq int
}

// Rank returns this process's rank id.
func (r *Rank) Rank() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Host returns the host the rank runs on.
func (r *Rank) Host() *netsim.Host { return r.host }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Site returns the rank's site name.
func (r *Rank) Site() string { return r.host.Site }

// Compute blocks the rank for d of reference-machine CPU time, scaled by
// the host's relative speed (a 1.2× node finishes the same work in d/1.2).
func (r *Rank) Compute(d time.Duration) {
	r.proc.Sleep(time.Duration(float64(d) / r.host.CPUSpeed))
}

// Sleep blocks the rank for exactly d of virtual time.
func (r *Rank) Sleep(d time.Duration) { r.proc.Sleep(d) }

// flowTo returns (creating lazily) the outgoing TCP flow to rank dst.
func (r *Rank) flowTo(dst int) *tcpsim.Flow {
	if f, ok := r.flows[dst]; ok {
		return f
	}
	path := r.w.Net.Path(r.host, r.w.ranks[dst].host)
	f := tcpsim.NewFlow(r.w.K, path, r.w.TCP, r.w.Prof.Buffers)
	r.flows[dst] = f
	return f
}

// rndvLock returns the per-destination serialization lock used when the
// profile sets SerialRendezvous.
func (r *Rank) rndvLock(dst int) *sim.Mutex {
	if m, ok := r.rndvLocks[dst]; ok {
		return m
	}
	m := r.w.K.NewMutex()
	r.rndvLocks[dst] = m
	return m
}

func (r *Rank) newReqID() int64 {
	r.reqSeq++
	return int64(r.id)<<32 | r.reqSeq
}
