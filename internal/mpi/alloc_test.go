package mpi

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// skipIfRace skips allocation-count tests under the race detector, whose
// instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
}

// TestMpiHotPathAllocFree locks the whole message arena end to end: a
// steady-state eager ping-pong (Isend + Recv + Wait per rank per round)
// must run at zero allocations once the pools are warm — Requests, inMsg
// envelopes, send jobs and delivery records all recycle through the
// World's free lists, and the protocol processes recycle through the
// kernel's coroutine pool.
func TestMpiHotPathAllocFree(t *testing.T) {
	skipIfRace(t)
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	const tag, size = 7, 1024 // well under the eager threshold
	r0, r1 := w.ranks[0], w.ranks[1]
	r0.proc = k.Go("rank0", func(p *sim.Proc) {
		for {
			req := r0.Isend(1, tag, size)
			r0.Recv(1, tag)
			r0.Wait(req)
		}
	})
	r1.proc = k.Go("rank1", func(p *sim.Proc) {
		for {
			req := r1.Isend(0, tag, size)
			r1.Recv(0, tag)
			r1.Wait(req)
		}
	})
	for i := 0; i < 64; i++ { // warm the pools, flows and kernel slab
		k.RunUntil(k.Now() + time.Millisecond)
	}
	allocs := testing.AllocsPerRun(100, func() {
		k.RunUntil(k.Now() + time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Isend/Recv/Wait allocates %v per ms of traffic, want 0", allocs)
	}
}

// TestArenaRecycling checks the pools actually cycle: after a run with
// message traffic, the world holds recycled protocol objects, and reusing
// the world keeps the pool sizes stable instead of growing per message.
func TestArenaRecycling(t *testing.T) {
	k, w := newWorld(t, Reference(), tcpsim.DefaultLinux26(), 1, false)
	defer k.Close()
	body := func(r *Rank) {
		for i := 0; i < 10; i++ {
			if r.Rank() == 0 {
				r.Send(1, i, 2048)
			} else {
				r.Recv(0, i)
			}
		}
	}
	if _, err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	if len(w.freeMsgs) == 0 || len(w.freeDeliv) == 0 {
		t.Fatalf("pools empty after traffic: msgs=%d deliveries=%d", len(w.freeMsgs), len(w.freeDeliv))
	}
	msgs, deliv, reqs := len(w.freeMsgs), len(w.freeDeliv), len(w.freeReqs)
	if _, err := w.Run(body); err != nil {
		t.Fatal(err)
	}
	if len(w.freeMsgs) != msgs || len(w.freeDeliv) != deliv || len(w.freeReqs) != reqs {
		t.Fatalf("pool sizes changed on identical rerun: msgs %d→%d deliveries %d→%d reqs %d→%d",
			msgs, len(w.freeMsgs), deliv, len(w.freeDeliv), reqs, len(w.freeReqs))
	}
}
