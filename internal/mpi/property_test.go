package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tcpsim"
)

// TestPropertyFIFOPerTag checks MPI's non-overtaking guarantee: for any
// random schedule of messages, receives on a given (source, tag) match in
// send order.
func TestPropertyFIFOPerTag(t *testing.T) {
	prop := func(seed int64, nMsgsRaw uint8) bool {
		nMsgs := int(nMsgsRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		type msg struct {
			tag  int
			size int
		}
		msgs := make([]msg, nMsgs)
		perTag := make(map[int][]int) // tag -> sizes in send order
		for i := range msgs {
			m := msg{tag: rng.Intn(4), size: rng.Intn(100<<10) + 1}
			msgs[i] = m
			perTag[m.tag] = append(perTag[m.tag], m.size)
		}
		// Receive order: a random interleaving that respects nothing —
		// the engine must still match FIFO within each tag.
		recvOrder := make([]int, 0, nMsgs)
		remaining := make(map[int]int)
		for _, m := range msgs {
			remaining[m.tag]++
		}
		for len(recvOrder) < nMsgs {
			tag := rng.Intn(4)
			if remaining[tag] > 0 {
				remaining[tag]--
				recvOrder = append(recvOrder, tag)
			}
		}

		k, w := newWorld(t, Reference(), tcpsim.Tuned4MB(), 1, seed%2 == 0)
		defer k.Close()
		got := make(map[int][]int64)
		_, err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				for _, m := range msgs {
					r.Send(1, m.tag, m.size)
				}
				return
			}
			for _, tag := range recvOrder {
				st := r.Recv(0, tag)
				got[tag] = append(got[tag], st.Size)
			}
		})
		if err != nil {
			return false
		}
		for tag, sizes := range perTag {
			if len(got[tag]) != len(sizes) {
				return false
			}
			for i, sz := range sizes {
				if got[tag][i] != int64(sz) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyByteConservation checks that the census never loses bytes:
// total payload received equals total payload sent for arbitrary fan-in.
func TestPropertyByteConservation(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k, w := newWorld(t, Reference(), tcpsim.Tuned4MB(), 2, true)
		defer k.Close()
		counts := make([]int, 4)
		sizes := make([][]int, 4)
		var want int64
		for r := 1; r < 4; r++ {
			n := rng.Intn(6) + 1
			counts[r] = n
			for i := 0; i < n; i++ {
				sz := rng.Intn(200<<10) + 1
				sizes[r] = append(sizes[r], sz)
				want += int64(sz)
			}
		}
		var got int64
		_, err := w.Run(func(r *Rank) {
			if r.Rank() == 0 {
				total := counts[1] + counts[2] + counts[3]
				for i := 0; i < total; i++ {
					st := r.Recv(AnySource, AnyTag)
					got += st.Size
				}
				return
			}
			for _, sz := range sizes[r.Rank()] {
				r.Send(0, 0, sz)
			}
		})
		return err == nil && got == want && w.Stats().P2PBytes == want
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCollectivesComplete runs random collective sequences on
// random world shapes and checks they all terminate without deadlock.
func TestPropertyCollectivesComplete(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perSite := []int{1, 2, 4}[rng.Intn(3)]
		prof := Reference()
		prof.GridBcast = rng.Intn(2) == 0
		prof.GridAllreduce = rng.Intn(2) == 0
		k, w := newWorld(t, prof, tcpsim.Tuned4MB(), perSite, true)
		defer k.Close()
		nOps := rng.Intn(4) + 1
		ops := make([]int, nOps)
		argn := make([]int, nOps)
		roots := make([]int, nOps)
		for i := range ops {
			ops[i] = rng.Intn(5)
			argn[i] = rng.Intn(256<<10) + 1
			roots[i] = rng.Intn(2 * perSite)
		}
		_, err := w.Run(func(r *Rank) {
			for i, op := range ops {
				switch op {
				case 0:
					r.Bcast(roots[i], argn[i])
				case 1:
					r.Allreduce(argn[i])
				case 2:
					r.Reduce(roots[i], argn[i])
				case 3:
					r.Alltoall(argn[i] / (2 * perSite))
				case 4:
					r.Barrier()
				}
			}
		})
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
