package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := New(1)
	defer k.Close()
	var got []int
	k.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", k.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	k := New(1)
	defer k.Close()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events executed out of insertion order: %v", got)
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	k := New(1)
	defer k.Close()
	ranAt := Time(-1)
	k.Schedule(time.Second, func() {
		k.Schedule(0, func() { ranAt = k.Now() }) // in the "past"
	})
	k.Run()
	if ranAt != time.Second {
		t.Fatalf("past event ran at %v, want clamp to 1s", ranAt)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	defer k.Close()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	k.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("executed %d events, want 5", count)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", k.Now())
	}
	if k.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", k.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := New(1)
	defer k.Close()
	k.RunUntil(7 * time.Second)
	if k.Now() != 7*time.Second {
		t.Fatalf("clock = %v, want 7s", k.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		k := New(seed)
		defer k.Close()
		var trace []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 4 {
				return
			}
			d := time.Duration(k.Rand().Intn(1000)) * time.Microsecond
			k.After(d, func() {
				trace = append(trace, k.Now())
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		k.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	f := func(seed int64, delaysMs []uint16) bool {
		k := New(seed)
		defer k.Close()
		prev := Time(0)
		ok := true
		for _, d := range delaysMs {
			k.Schedule(time.Duration(d)*time.Millisecond, func() {
				if k.Now() < prev {
					ok = false
				}
				prev = k.Now()
			})
		}
		k.Run()
		return ok
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
