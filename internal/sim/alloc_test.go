package sim

import (
	"testing"
	"time"
)

// nop is a package-level event callback so scheduling it captures nothing.
var nop = func() {}

// skipIfRace skips allocation-count tests under the race detector, whose
// instrumentation allocates on its own.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
}

// TestScheduleNowAllocFree locks the same-instant fast path: once the
// slab, free list and ring are warm, Schedule(Now, fn)+Step recycles
// slots and allocates nothing.
func TestScheduleNowAllocFree(t *testing.T) {
	skipIfRace(t)
	k := New(1)
	defer k.Close()
	for i := 0; i < 64; i++ { // warm the slab and ring
		k.Schedule(k.Now(), nop)
	}
	k.Run()
	allocs := testing.AllocsPerRun(200, func() {
		k.Schedule(k.Now(), nop)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule(now)+Step allocates %v/op, want 0", allocs)
	}
}

// TestScheduleFutureAllocFree locks the heap path: future events reuse
// freed slab slots, and heap growth is amortized away once warm.
func TestScheduleFutureAllocFree(t *testing.T) {
	skipIfRace(t)
	k := New(1)
	defer k.Close()
	for i := 0; i < 64; i++ {
		k.After(time.Duration(i+1)*time.Microsecond, nop)
	}
	k.Run()
	allocs := testing.AllocsPerRun(200, func() {
		k.After(time.Microsecond, nop)
		k.Step()
	})
	if allocs != 0 {
		t.Fatalf("After+Step allocates %v/op, want 0", allocs)
	}
}

// TestSleepAllocFree locks the process wakeup path: a steady-state Sleep
// is one typed transfer event plus a coroutine switch each way — no
// closures, no per-iteration allocation.
func TestSleepAllocFree(t *testing.T) {
	skipIfRace(t)
	k := New(1)
	defer k.Close() // aborts the parked sleeper
	k.Go("sleeper", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	for i := 0; i < 64; i++ { // warm: first transfers grow stacks etc.
		k.RunUntil(k.Now() + time.Microsecond)
	}
	allocs := testing.AllocsPerRun(200, func() {
		k.RunUntil(k.Now() + time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Sleep cycle allocates %v/op, want 0", allocs)
	}
}

// TestQueuePutGetAllocFree locks the queue rendezvous: Put wakes the
// blocked getter through a typed event, Get pops by compaction — zero
// allocations per item once the item buffer is warm.
func TestQueuePutGetAllocFree(t *testing.T) {
	skipIfRace(t)
	k := New(1)
	defer k.Close() // aborts the blocked consumer
	q := NewQueue[int](k)
	k.Go("consumer", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	for i := 0; i < 64; i++ { // warm
		q.Put(i)
		k.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		q.Put(1)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("Put+Get cycle allocates %v/op, want 0", allocs)
	}
}

// TestSpawnAllocFree locks the process pool: once a finished coroutine is
// in the free list, GoJob with a package-level body and a recycled arg
// spawns, runs and retires processes without allocating.
func TestSpawnAllocFree(t *testing.T) {
	skipIfRace(t)
	k := New(1)
	defer k.Close()
	body := func(p *Proc, arg any) { p.Sleep(time.Microsecond) }
	arg := new(int)
	for i := 0; i < 64; i++ { // warm: create and retire the pooled coroutine
		k.GoJob("job", body, arg)
		k.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		k.GoJob("job", body, arg)
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("GoJob spawn cycle allocates %v/op, want 0", allocs)
	}
}

// TestSignalSingleWaiterAllocFree locks Signal's inline waiter slot:
// waiting on and firing a signal with one waiter must not allocate
// beyond the signal itself.
func TestSignalSingleWaiterAllocFree(t *testing.T) {
	skipIfRace(t)
	k := New(1)
	defer k.Close()
	s := k.NewSignal()
	k.Go("waiter", func(p *Proc) {
		for {
			s.Wait(p)
			s.Reset()
		}
	})
	for i := 0; i < 64; i++ { // warm
		s.Fire()
		k.Run()
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Fire()
		k.Run()
	})
	if allocs != 0 {
		t.Fatalf("Wait/Fire/Reset cycle allocates %v/op, want 0", allocs)
	}
}
