package sim

// Mutex is a mutual-exclusion lock for simulation processes. Waiters are
// queued and woken in FIFO order, keeping lock handoff deterministic.
type Mutex struct {
	k       *Kernel
	locked  bool
	waiters []*Proc
}

// NewMutex creates an unlocked mutex on this kernel.
func (k *Kernel) NewMutex() *Mutex { return &Mutex{k: k} }

// Lock blocks p until the mutex is acquired. p must be the calling process.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		m.waiters = append(m.waiters, p)
		p.park()
	}
	m.locked = true
}

// Unlock releases the mutex and wakes the oldest waiter, if any. It may be
// called from any process or from the kernel loop.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked Mutex")
	}
	m.locked = false
	if len(m.waiters) > 0 {
		w := m.waiters[0]
		popFront(&m.waiters)
		m.k.scheduleProc(m.k.now, w)
	}
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.locked }
