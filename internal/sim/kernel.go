// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a pending-event set ordered by
// (time, insertion sequence), so simulations are fully reproducible: two
// runs with the same inputs schedule and execute events in the same order.
//
// On top of the raw event loop, the package offers cooperative processes
// (Proc): coroutines that run one at a time under kernel control and block
// in virtual time via Sleep, Signal.Wait, or Queue.Get. This lets higher
// layers (TCP flows, MPI ranks, applications) be written in ordinary
// blocking style while remaining deterministic.
//
// # Hot-path design
//
// At sweep scale the kernel executes millions of events per simulated run,
// so the scheduling structures are built to allocate nothing in steady
// state:
//
//   - Events live by value in a slab ([]event) recycled through a free
//     list; the priority queue is an index-based min-heap over the slab,
//     so Schedule performs no per-event heap allocation and no
//     container/heap interface calls.
//   - Same-instant events — Schedule(Now(), …), process wakeups from
//     Signal.Fire / Queue.Put / Mutex.Unlock, TCP pump reschedules; the
//     dominant event class — bypass the heap entirely: they are appended
//     to a FIFO ring buffer that Step drains ahead of any later-time heap
//     event. The (time, seq) execution order is identical to a single
//     heap (see Step for the invariant), just cheaper.
//   - Waking a process is a typed event ({at, seq, proc}), not a closure,
//     so Sleep and the synchronization primitives capture nothing.
//   - Processes themselves are pooled continuations (see Proc): parking is
//     a same-thread coroutine switch, not a channel handoff through the Go
//     scheduler, and a finished process's coroutine is recycled by the next
//     Go/GoJob, so spawning is allocation-free in steady state too.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, measured as an offset from the start
// of the simulation. It reuses time.Duration for convenient arithmetic and
// formatting.
type Time = time.Duration

// event is a scheduled callback, stored by value in the kernel's slab.
// Exactly one of fn, proc or sig is set: fn is a generic callback, proc a
// typed process transfer (wake the process, no closure), sig a typed
// deferred Signal.Fire.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
	sig  *Signal
	// gen is the proc generation this wakeup targets; transfer drops the
	// event if the Proc has since finished and been recycled (see Proc.gen).
	gen uint32
}

// Kernel is a discrete-event simulator instance. A Kernel and everything
// scheduled on it must be used from a single OS-level flow of control: the
// kernel goroutine and its cooperative processes hand off execution
// explicitly, so no mutexes are needed.
type Kernel struct {
	now Time
	seq uint64

	// slab stores every pending event by value; free lists recycled slots.
	slab []event
	free []int32
	// heap is an index min-heap over slab, ordered by (at, seq), holding
	// the events scheduled for a future instant.
	heap []int32
	// ring is a power-of-two circular FIFO of slab indices holding the
	// events scheduled for the current instant.
	ring     []int32
	ringHead uint32
	ringTail uint32

	rng   *rand.Rand
	procs map[*Proc]struct{}
	// freeProcs pools finished processes whose coroutines idle at the
	// trampoline reuse point, ready for the next Go/GoJob.
	freeProcs []*Proc
	closed    bool
	tracer    Tracer

	// Executed counts events processed, for diagnostics and tests.
	Executed uint64
}

// Tracer observes every executed event as (time, seq) just before its
// callback runs. The (time, seq) stream fully determines execution order,
// so a recorded stream is a byte-exact determinism lock across kernel
// implementations.
type Tracer func(at Time, seq uint64)

// SetTracer installs (nil clears) the kernel's event observer.
func (k *Kernel) SetTracer(t Tracer) { k.tracer = t }

// NewHook, when non-nil, runs on every kernel New returns. It is a test
// seam: the event-order golden test uses it to attach Tracers to kernels
// constructed deep inside higher layers (exp.Run, ray2mesh.Run). Leave it
// nil outside tests.
var NewHook func(*Kernel)

// New creates a kernel with the given RNG seed. The RNG is the only source
// of randomness in the simulation; a fixed seed yields a fixed trajectory.
func New(seed int64) *Kernel {
	k := &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
	if NewHook != nil {
		NewHook(k)
	}
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// alloc takes a slab slot (recycling freed ones), assigns the next
// sequence number and fills the event in.
func (k *Kernel) alloc(at Time, fn func(), p *Proc, s *Signal) int32 {
	k.seq++
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slab = append(k.slab, event{})
		idx = int32(len(k.slab) - 1)
	}
	ev := &k.slab[idx]
	ev.at, ev.seq, ev.fn, ev.proc, ev.sig = at, k.seq, fn, p, s
	if p != nil {
		ev.gen = p.gen
	}
	return idx
}

// schedule routes one event to the ring (same-instant fast path) or the
// heap (future instants). Times in the past are clamped to the present.
func (k *Kernel) schedule(at Time, fn func(), p *Proc, s *Signal) {
	if k.closed {
		return
	}
	if at <= k.now {
		// Same-instant FIFO: runs at Now, after already-queued events for
		// Now, in insertion order — exactly the (time, seq) heap order,
		// without the heap churn.
		k.ringPush(k.alloc(k.now, fn, p, s))
		return
	}
	k.heapPush(k.alloc(at, fn, p, s))
}

// Schedule runs fn at virtual time at. Times in the past are clamped to the
// present: the event runs at Now, after already-queued events for Now.
func (k *Kernel) Schedule(at Time, fn func()) { k.schedule(at, fn, nil, nil) }

// After runs fn d from now. Negative delays are clamped to zero.
func (k *Kernel) After(d time.Duration, fn func()) { k.schedule(k.now+d, fn, nil, nil) }

// scheduleProc schedules a typed process-transfer event: at time at, hand
// control to p. It is the closure-free wakeup used by Sleep, Signal.Fire,
// Queue.Put and Mutex.Unlock.
func (k *Kernel) scheduleProc(at Time, p *Proc) { k.schedule(at, nil, p, nil) }

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
//
// Order invariant: ring events all carry at == now (they were enqueued
// while the clock stood at their instant, and the ring is fully drained
// before the clock moves). A heap event with at == now was necessarily
// pushed while the clock was still earlier, so its seq is smaller than
// every ring entry's; draining such heap events first, then the ring,
// then advancing to the heap's next instant reproduces exact (time, seq)
// order.
func (k *Kernel) Step() bool {
	var idx int32
	if k.ringHead != k.ringTail {
		if len(k.heap) > 0 && k.slab[k.heap[0]].at == k.now {
			idx = k.heapPop()
		} else {
			idx = k.ring[k.ringHead&uint32(len(k.ring)-1)]
			k.ringHead++
		}
	} else {
		if len(k.heap) == 0 {
			return false
		}
		idx = k.heapPop()
		k.now = k.slab[idx].at
	}
	ev := k.slab[idx]
	k.slab[idx] = event{}
	k.free = append(k.free, idx)
	k.Executed++
	if k.tracer != nil {
		k.tracer(ev.at, ev.seq)
	}
	switch {
	case ev.proc != nil:
		k.transfer(ev.proc, ev.gen)
	case ev.fn != nil:
		ev.fn()
	default:
		ev.sig.Fire()
	}
	return true
}

// Run executes events until none remain (the simulation has quiesced:
// every process is finished or blocked on a condition nothing will fire).
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) {
	for {
		if k.ringHead != k.ringTail && k.now <= t {
			k.Step()
			continue
		}
		if len(k.heap) == 0 || k.slab[k.heap[0]].at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) + int(k.ringTail-k.ringHead) }

// Close aborts every live process and retires the pooled coroutines. It
// must be called after Run returns (not from inside an event), typically
// deferred right after New in tests. Close is idempotent.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	for p := range k.procs {
		if !p.done && p.parked {
			// Parked mid-body: stop makes the pending yield report abort,
			// unwinding the body. Never started: stop retires the coroutine
			// before it runs, so the body never executes.
			p.stop()
		}
	}
	k.procs = nil
	for i, p := range k.freeProcs {
		p.stop() // idle at the reuse point: the trampoline returns
		k.freeProcs[i] = nil
	}
	k.freeProcs = nil
	k.slab, k.free, k.heap, k.ring = nil, nil, nil, nil
	k.ringHead, k.ringTail = 0, 0
}

func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{now=%v, pending=%d, executed=%d}", k.now, k.Pending(), k.Executed)
}

// --- pending-event containers ---

// less orders slab slots by (at, seq).
func (k *Kernel) less(a, b int32) bool {
	ea, eb := &k.slab[a], &k.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (k *Kernel) heapPush(idx int32) {
	k.heap = append(k.heap, idx)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (k *Kernel) heapPop() int32 {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	k.heap = h[:n]
	h = k.heap
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && k.less(h[r], h[l]) {
			small = r
		}
		if !k.less(h[small], h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// ringPush appends to the same-instant FIFO, growing the power-of-two
// buffer when full. Head/tail are free-running uint32 counters; masking
// maps them into the buffer.
func (k *Kernel) ringPush(idx int32) {
	if n := len(k.ring); n == 0 || int(k.ringTail-k.ringHead) == n {
		k.growRing()
	}
	k.ring[k.ringTail&uint32(len(k.ring)-1)] = idx
	k.ringTail++
}

func (k *Kernel) growRing() {
	n := len(k.ring) * 2
	if n == 0 {
		n = 16
	}
	grown := make([]int32, n)
	cnt := int(k.ringTail - k.ringHead)
	for i := 0; i < cnt; i++ {
		grown[i] = k.ring[(k.ringHead+uint32(i))&uint32(len(k.ring)-1)]
	}
	k.ring = grown
	k.ringHead, k.ringTail = 0, uint32(cnt)
}
