// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and an event heap ordered by
// (time, insertion sequence), so simulations are fully reproducible: two
// runs with the same inputs schedule and execute events in the same order.
//
// On top of the raw event loop, the package offers cooperative processes
// (Proc): goroutines that run one at a time under kernel control and block
// in virtual time via Sleep, Signal.Wait, or Queue.Get. This lets higher
// layers (TCP flows, MPI ranks, applications) be written in ordinary
// blocking style while remaining deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, measured as an offset from the start
// of the simulation. It reuses time.Duration for convenient arithmetic and
// formatting.
type Time = time.Duration

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by time, breaking ties by insertion sequence so
// execution order is deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulator instance. A Kernel and everything
// scheduled on it must be used from a single OS-level flow of control: the
// kernel goroutine and its cooperative processes hand off execution
// explicitly, so no mutexes are needed.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	procs  map[*Proc]struct{}
	closed bool

	// Executed counts events processed, for diagnostics and tests.
	Executed uint64
}

// New creates a kernel with the given RNG seed. The RNG is the only source
// of randomness in the simulation; a fixed seed yields a fixed trajectory.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Schedule runs fn at virtual time at. Times in the past are clamped to the
// present: the event runs at Now, after already-queued events for Now.
func (k *Kernel) Schedule(at Time, fn func()) {
	if k.closed {
		return
	}
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, fn: fn})
}

// After runs fn d from now. Negative delays are clamped to zero.
func (k *Kernel) After(d time.Duration, fn func()) { k.Schedule(k.now+d, fn) }

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	ev := heap.Pop(&k.events).(*event)
	k.now = ev.at
	k.Executed++
	ev.fn()
	return true
}

// Run executes events until none remain (the simulation has quiesced:
// every process is finished or blocked on a condition nothing will fire).
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with time ≤ t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Close aborts every live process so their goroutines exit. It must be
// called after Run returns (not from inside an event), typically deferred
// right after New in tests. Close is idempotent.
func (k *Kernel) Close() {
	if k.closed {
		return
	}
	k.closed = true
	for p := range k.procs {
		if !p.done && p.parked {
			p.abort()
		}
	}
	k.procs = nil
	k.events = nil
}

func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{now=%v, pending=%d, executed=%d}", k.now, len(k.events), k.Executed)
}
