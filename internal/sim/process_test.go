package sim

import (
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	k := New(1)
	defer k.Close()
	var wake Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		wake = p.Now()
	})
	k.Run()
	if wake != 5*time.Millisecond {
		t.Fatalf("woke at %v, want 5ms", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	k := New(1)
	defer k.Close()
	var order []string
	mk := func(name string, d time.Duration) {
		k.Go(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(d)
				order = append(order, name)
			}
		})
	}
	mk("a", 2*time.Millisecond)
	mk("b", 3*time.Millisecond)
	k.Run()
	// Wake times: a at 2,4,6ms; b at 3,6,9ms. At the t=6ms tie, b's wake
	// event was scheduled earlier (at t=3ms vs t=4ms), so b runs first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalReleasesWaitersInOrder(t *testing.T) {
	k := New(1)
	defer k.Close()
	s := k.NewSignal()
	var order []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Go(name, func(p *Proc) {
			s.Wait(p)
			order = append(order, name)
		})
	}
	k.Go("firer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Fire()
	})
	k.Run()
	if len(order) != 3 || order[0] != "w1" || order[1] != "w2" || order[2] != "w3" {
		t.Fatalf("wake order = %v", order)
	}
}

func TestSignalWaitAfterFireReturnsImmediately(t *testing.T) {
	k := New(1)
	defer k.Close()
	s := k.NewSignal()
	s.Fire()
	var at Time = -1
	k.Go("late", func(p *Proc) {
		s.Wait(p)
		at = p.Now()
	})
	k.Run()
	if at != 0 {
		t.Fatalf("late waiter resumed at %v, want 0", at)
	}
}

func TestSignalFireIdempotent(t *testing.T) {
	k := New(1)
	defer k.Close()
	s := k.NewSignal()
	n := 0
	k.Go("w", func(p *Proc) { s.Wait(p); n++ })
	k.Go("f", func(p *Proc) { s.Fire(); s.Fire(); s.Fire() })
	k.Run()
	if n != 1 {
		t.Fatalf("waiter ran %d times, want 1", n)
	}
}

func TestQueueFIFO(t *testing.T) {
	k := New(1)
	defer k.Close()
	q := NewQueue[int](k)
	var got []int
	k.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(i)
			p.Sleep(time.Millisecond)
		}
	})
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, q.Get(p))
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestQueueBlocksUntilPut(t *testing.T) {
	k := New(1)
	defer k.Close()
	var gotAt Time
	q := NewQueue[string](k)
	k.Go("consumer", func(p *Proc) {
		q.Get(p)
		gotAt = p.Now()
	})
	k.Go("producer", func(p *Proc) {
		p.Sleep(9 * time.Millisecond)
		q.Put("x")
	})
	k.Run()
	if gotAt != 9*time.Millisecond {
		t.Fatalf("consumer resumed at %v, want 9ms", gotAt)
	}
}

func TestQueueMultipleConsumersServedInOrder(t *testing.T) {
	k := New(1)
	defer k.Close()
	q := NewQueue[int](k)
	var served []string
	for _, name := range []string{"c1", "c2"} {
		name := name
		k.Go(name, func(p *Proc) {
			q.Get(p)
			served = append(served, name)
		})
	}
	k.Go("p", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Put(1)
		q.Put(2)
	})
	k.Run()
	if len(served) != 2 || served[0] != "c1" || served[1] != "c2" {
		t.Fatalf("served = %v", served)
	}
}

func TestTryGet(t *testing.T) {
	k := New(1)
	defer k.Close()
	q := NewQueue[int](k)
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue reported ok")
	}
	q.Put(7)
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = %d,%v want 7,true", v, ok)
	}
}

func TestCloseAbortsParkedProcs(t *testing.T) {
	k := New(1)
	s := k.NewSignal()
	started := false
	k.Go("stuck", func(p *Proc) {
		started = true
		s.Wait(p) // never fired
		t.Error("stuck process resumed unexpectedly")
	})
	k.Run()
	if !started {
		t.Fatal("process never started")
	}
	k.Close()
	k.Close() // idempotent
}

func TestCloseAbortsNeverStartedProc(t *testing.T) {
	k := New(1)
	k.Go("never", func(p *Proc) {
		t.Error("process body ran after Close without Run")
	})
	// Run never called; Close must still unwind the goroutine.
	k.Close()
}

func TestWaitAll(t *testing.T) {
	k := New(1)
	defer k.Close()
	s1, s2 := k.NewSignal(), k.NewSignal()
	var doneAt Time
	k.Go("w", func(p *Proc) {
		WaitAll(p, s1, s2)
		doneAt = p.Now()
	})
	k.Go("f", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s1.Fire()
		p.Sleep(time.Millisecond)
		s2.Fire()
	})
	k.Run()
	if doneAt != 2*time.Millisecond {
		t.Fatalf("WaitAll resumed at %v, want 2ms", doneAt)
	}
}

func TestYieldRunsPendingSameInstantEvents(t *testing.T) {
	k := New(1)
	defer k.Close()
	var order []string
	k.Go("a", func(p *Proc) {
		k.Schedule(k.Now(), func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "proc")
	})
	k.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v", order)
	}
}

// TestProcPanicPropagatesToRun pins the scheduler's panic contract: a
// genuine panic in a process body unwinds through the coroutine switch
// and surfaces at the Kernel.Run caller on the same goroutine, where it
// can be recovered (exp.Run converts it to Result.Err). Under the old
// goroutine-per-process model the panic killed the whole program.
func TestProcPanicPropagatesToRun(t *testing.T) {
	k := New(1)
	defer k.Close()
	k.Go("boom", func(p *Proc) {
		p.Sleep(time.Microsecond)
		panic("kaboom")
	})
	var got any
	func() {
		defer func() { got = recover() }()
		k.Run()
	}()
	if got != "kaboom" {
		t.Fatalf("recovered %v from Run, want the process body's panic value", got)
	}
}

// TestGoJobRunsWithArg covers the closure-free spawn variant.
func TestGoJobRunsWithArg(t *testing.T) {
	k := New(1)
	defer k.Close()
	got := 0
	k.GoJob("job", func(p *Proc, arg any) {
		p.Sleep(time.Microsecond)
		got = *arg.(*int)
	}, new(int))
	k.Run()
	if got != 0 {
		t.Fatalf("job arg = %d, want 0", got)
	}
	v := 41
	k.GoJob("job2", func(p *Proc, arg any) { got = *arg.(*int) + 1 }, &v)
	k.Run()
	if got != 42 {
		t.Fatalf("job2 result = %d, want 42", got)
	}
}

// TestProcReuseDropsStaleState checks coroutine recycling: a proc that
// finishes is reused by the next Go, runs the new body from a clean
// state, and events scheduled for the old incarnation never wake the new
// one (generation guard).
func TestProcReuseDropsStaleState(t *testing.T) {
	k := New(1)
	defer k.Close()
	first := k.Go("first", func(p *Proc) { p.Sleep(time.Microsecond) })
	k.Run()
	if !first.Done() {
		t.Fatal("first proc did not finish")
	}
	runs := 0
	second := k.Go("second", func(p *Proc) {
		runs++
		p.Sleep(time.Microsecond)
	})
	if second != first {
		t.Fatal("finished coroutine was not recycled by the next Go")
	}
	k.Run()
	if runs != 1 || !second.Done() {
		t.Fatalf("recycled proc ran %d times (done=%v), want exactly once", runs, second.Done())
	}
}
