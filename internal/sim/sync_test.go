package sim

import (
	"testing"
	"time"
)

func TestMutexExcludesAndHandsOffFIFO(t *testing.T) {
	k := New(1)
	defer k.Close()
	m := k.NewMutex()
	var order []string
	hold := func(name string, d time.Duration) {
		k.Go(name, func(p *Proc) {
			m.Lock(p)
			order = append(order, name+"+")
			p.Sleep(d)
			order = append(order, name+"-")
			m.Unlock()
		})
	}
	hold("a", 5*time.Millisecond)
	hold("b", time.Millisecond)
	hold("c", time.Millisecond)
	k.Run()
	want := []string{"a+", "a-", "b+", "b-", "c+", "c-"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO, no interleaving)", order, want)
		}
	}
}

func TestMutexUnlockWithoutLockPanics(t *testing.T) {
	k := New(1)
	defer k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("unlock of unlocked mutex did not panic")
		}
	}()
	k.NewMutex().Unlock()
}

func TestMutexLockedReports(t *testing.T) {
	k := New(1)
	defer k.Close()
	m := k.NewMutex()
	if m.Locked() {
		t.Fatal("fresh mutex locked")
	}
	k.Go("l", func(p *Proc) {
		m.Lock(p)
		if !m.Locked() {
			t.Error("Locked() false while held")
		}
		m.Unlock()
	})
	k.Run()
	if m.Locked() {
		t.Fatal("mutex left locked")
	}
}
