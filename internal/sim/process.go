package sim

import (
	"fmt"
	"time"
)

// token is passed from the kernel to a process to resume it; abort asks the
// process to unwind (used by Kernel.Close).
type token struct{ abort bool }

// errAborted is the sentinel panic value used to unwind aborted processes.
type abortError struct{}

func (abortError) Error() string { return "sim: process aborted" }

// Proc is a cooperative simulation process. Exactly one process (or the
// kernel) runs at a time; a process yields control back to the kernel by
// blocking in virtual time (Sleep, Signal.Wait, Queue.Get). All Proc methods
// must be called from the process's own goroutine.
type Proc struct {
	k      *Kernel
	name   string
	resume chan token
	yield  chan struct{}
	done   bool
	parked bool
}

// Go spawns fn as a new process. fn starts executing at the current virtual
// time, after already-scheduled events for this instant.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan token),
		yield:  make(chan struct{}),
		parked: true, // blocked awaiting its start event
	}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			p.done = true
			if r := recover(); r != nil {
				if _, ok := r.(abortError); ok {
					// Aborted by Kernel.Close: the closer is waiting on yield.
					p.yield <- struct{}{}
					return
				}
				// A real panic: surface it on the kernel goroutine by
				// re-panicking there, then release control.
				panic(r)
			}
			p.yield <- struct{}{}
		}()
		if t := <-p.resume; t.abort {
			panic(abortError{})
		}
		fn(p)
	}()
	k.Schedule(k.now, func() { k.transfer(p) })
	return p
}

// transfer hands control to p and waits for it to park or finish.
// Called only from the kernel event loop.
func (k *Kernel) transfer(p *Proc) {
	if p.done {
		return
	}
	p.parked = false
	p.resume <- token{}
	<-p.yield
	if p.done {
		delete(k.procs, p)
	}
}

// park blocks the process until the kernel resumes it.
func (p *Proc) park() {
	p.parked = true
	p.yield <- struct{}{}
	if t := <-p.resume; t.abort {
		panic(abortError{})
	}
	p.parked = false
}

// abort unwinds a parked process. Called only from Kernel.Close.
func (p *Proc) abort() {
	p.resume <- token{abort: true}
	<-p.yield
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep blocks the process for d of virtual time. Non-positive durations
// still yield, resuming after events already scheduled for this instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.Schedule(p.k.now+d, func() { p.k.transfer(p) })
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

func (p *Proc) String() string { return fmt.Sprintf("sim.Proc(%s)", p.name) }

// Signal is a one-shot broadcast condition: processes Wait on it and are all
// released (in Wait order) once Fire is called. Waiting on an already-fired
// signal returns immediately. The zero value is not usable; create signals
// with NewSignal.
type Signal struct {
	k       *Kernel
	fired   bool
	waiters []*Proc
}

// NewSignal creates an unfired Signal on this kernel.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. It may be called from the
// kernel loop or from a process; waiters resume via scheduled events at the
// current virtual time, in the order they began waiting. Fire is idempotent.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, w := range s.waiters {
		w := w
		s.k.Schedule(s.k.now, func() { s.k.transfer(w) })
	}
	s.waiters = nil
}

// Wait blocks p until the signal fires. p must be the calling process.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitAll blocks p until every signal in sigs has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// Queue is an unbounded FIFO channel between processes in virtual time.
// Put never blocks; Get blocks the caller until an item is available.
// Items are delivered in Put order; blocked getters are served in Get order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue creates an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the oldest waiting getter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.k.Schedule(q.k.now, func() { q.k.transfer(w) })
	}
}

// Get removes and returns the oldest item, blocking p while the queue is
// empty. p must be the calling process.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes and returns the oldest item without blocking; ok reports
// whether an item was available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}
