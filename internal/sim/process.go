package sim

import (
	"fmt"
	"iter"
	"time"
)

// unit is the (empty) value exchanged over a process's coroutine switch.
type unit = struct{}

// abortError is the sentinel panic value used to unwind aborted processes.
type abortError struct{}

func (abortError) Error() string { return "sim: process aborted" }

// Proc is a cooperative simulation process. Exactly one process (or the
// kernel) runs at a time; a process yields control back to the kernel by
// blocking in virtual time (Sleep, Signal.Wait, Queue.Get). All Proc methods
// must be called from the process itself while it is running.
//
// Processes are continuations, not goroutines: each Proc owns an iter.Pull
// coroutine, parking is a same-thread stack switch (yield), and the kernel
// resumes a runnable process with another (resume). No channel rendezvous,
// no scheduler round-trip through the Go runtime — the whole simulation is
// one OS-schedulable flow of control. Finished processes are recycled: the
// coroutine body is a trampoline loop that parks at a reuse point when its
// current function returns, and Kernel.Go hands the idle coroutine its next
// body, so steady-state spawning allocates nothing (see Kernel.spawn).
type Proc struct {
	k      *Kernel
	name   string
	fn     func(p *Proc)          // body when spawned via Go
	fn2    func(p *Proc, arg any) // body when spawned via GoJob …
	arg    any                    // … with its argument
	resume func() (unit, bool)    // kernel side: run until next park
	stop   func()                 // kernel side: unwind (Kernel.Close)
	yield  func(unit) bool        // process side: park, false = aborting
	done   bool
	parked bool
	// gen distinguishes incarnations of a recycled Proc: wakeup events
	// record the generation they were scheduled for, and the kernel drops
	// wakeups whose generation is stale (the body they targeted finished
	// and the coroutine now runs a different spawn).
	gen uint32
}

// main is the coroutine trampoline: it runs the current body, parks at the
// reuse point, and loops when the kernel hands it the next body. Aborts
// (Kernel.Close stopping a parked process) unwind the body via an
// abortError panic that is recovered here, ending the coroutine; genuine
// panics from a body are re-raised and propagate out of Kernel.Step to the
// caller of Kernel.Run.
func (p *Proc) main(yield func(unit) bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortError); !ok {
				panic(r)
			}
		}
	}()
	p.yield = yield
	for {
		if p.fn != nil {
			p.fn(p)
		} else {
			p.fn2(p, p.arg)
		}
		p.done = true
		p.fn, p.fn2, p.arg = nil, nil, nil
		if !yield(unit{}) {
			return // kernel closed while idle in the free pool
		}
	}
}

// spawn readies a Proc for a new body: recycled from the free pool when
// possible, otherwise a fresh coroutine. The caller assigns the body and
// schedules the start event.
func (k *Kernel) spawn(name string) *Proc {
	if k.closed {
		// The kernel is shut down: hand back an inert Proc (never
		// registered, never scheduled) so late spawners don't crash.
		return &Proc{k: k, name: name, parked: true}
	}
	var p *Proc
	if n := len(k.freeProcs); n > 0 {
		p = k.freeProcs[n-1]
		k.freeProcs[n-1] = nil
		k.freeProcs = k.freeProcs[:n-1]
		p.done = false
	} else {
		p = &Proc{k: k}
		p.resume, p.stop = iter.Pull(p.main)
	}
	p.name = name
	p.parked = true // blocked awaiting its start event
	k.procs[p] = struct{}{}
	return p
}

// Go spawns fn as a new process. fn starts executing at the current virtual
// time, after already-scheduled events for this instant.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := k.spawn(name)
	p.fn = fn
	k.scheduleProc(k.now, p)
	return p
}

// GoJob spawns fn(p, arg) as a new process. It is Go for hot paths: a
// package-level fn plus a recycled arg struct spawns without the closure
// allocation Go's fn would cost (the mpi layer's per-message protocol
// processes use it).
func (k *Kernel) GoJob(name string, fn func(p *Proc, arg any), arg any) *Proc {
	p := k.spawn(name)
	p.fn2, p.arg = fn, arg
	k.scheduleProc(k.now, p)
	return p
}

// transfer hands control to p until it parks or finishes. gen is the
// process generation the wakeup was scheduled for; a stale generation means
// the target body already finished and the Proc was recycled, so the wakeup
// is dropped. Called only from the kernel event loop.
func (k *Kernel) transfer(p *Proc, gen uint32) {
	if p.done || p.gen != gen {
		return
	}
	p.parked = false
	_, idle := p.resume()
	if p.done {
		delete(k.procs, p)
		p.gen++
		if idle {
			// The trampoline parked at its reuse point: pool the coroutine.
			k.freeProcs = append(k.freeProcs, p)
		}
	}
}

// park blocks the process until the kernel resumes it.
func (p *Proc) park() {
	p.parked = true
	if !p.yield(unit{}) {
		panic(abortError{})
	}
	p.parked = false
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep blocks the process for d of virtual time. Non-positive durations
// still yield, resuming after events already scheduled for this instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.scheduleProc(p.k.now+d, p)
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

func (p *Proc) String() string { return fmt.Sprintf("sim.Proc(%s)", p.name) }

// Signal is a one-shot broadcast condition: processes Wait on it and are all
// released (in Wait order) once Fire is called. Waiting on an already-fired
// signal returns immediately. The zero value is not usable; create signals
// with NewSignal.
//
// The overwhelmingly common case — a completion signal with exactly one
// waiter (MPI request done, rendezvous CTS, buffer-space wakeups) — is
// held in an inline slot, so Wait allocates nothing; additional waiters
// overflow into a slice.
type Signal struct {
	k     *Kernel
	fired bool
	w0    *Proc   // first waiter, inline
	more  []*Proc // further waiters, in Wait order
}

// NewSignal creates an unfired Signal on this kernel.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. It may be called from the
// kernel loop or from a process; waiters resume via scheduled events at the
// current virtual time, in the order they began waiting. Fire is idempotent.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	if s.w0 != nil {
		s.k.scheduleProc(s.k.now, s.w0)
		s.w0 = nil
	}
	for _, w := range s.more {
		s.k.scheduleProc(s.k.now, w)
	}
	s.more = nil
}

// Reset rearms a fired signal so it can gate the next occurrence of a
// recurring condition (tcpsim reuses one signal per flow for send-buffer
// space instead of allocating one per blocked write). It must only be
// called on a fired signal, which by construction has no waiters.
func (s *Signal) Reset() { s.fired = false }

// FireAfter schedules the signal to fire d from now as a typed event —
// equivalent to k.After(d, s.Fire) without the method-value allocation.
func (s *Signal) FireAfter(d time.Duration) {
	s.k.schedule(s.k.now+d, nil, nil, s)
}

// Wait blocks p until the signal fires. p must be the calling process.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	if s.w0 == nil {
		// w0 empty implies no waiters at all: Fire and Reset clear both
		// slots, and overflow only ever follows an occupied w0.
		s.w0 = p
	} else {
		s.more = append(s.more, p)
	}
	p.park()
}

// WaitAll blocks p until every signal in sigs has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// Queue is an unbounded FIFO channel between processes in virtual time.
// Put never blocks; Get blocks the caller until an item is available.
// Items are delivered in Put order; blocked getters are served in Get order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue creates an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the oldest waiting getter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		popFront(&q.waiters)
		q.k.scheduleProc(q.k.now, w)
	}
}

// Get removes and returns the oldest item, blocking p while the queue is
// empty. p must be the calling process.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	popFront(&q.items)
	return v
}

// TryGet removes and returns the oldest item without blocking; ok reports
// whether an item was available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	popFront(&q.items)
	return v, true
}

// popFront removes element 0 by compacting in place, keeping the slice's
// capacity for reuse and zeroing the vacated tail slot so the backing
// array never pins consumed values (a reslice would pin the whole prefix).
func popFront[T any](s *[]T) {
	v := *s
	n := copy(v, v[1:])
	var zero T
	v[n] = zero
	*s = v[:n]
}
