package sim

import (
	"fmt"
	"time"
)

// token is passed between the kernel and a process over the handoff
// channel; abort asks the process to unwind (used by Kernel.Close).
type token struct{ abort bool }

// abortError is the sentinel panic value used to unwind aborted processes.
type abortError struct{}

func (abortError) Error() string { return "sim: process aborted" }

// Proc is a cooperative simulation process. Exactly one process (or the
// kernel) runs at a time; a process yields control back to the kernel by
// blocking in virtual time (Sleep, Signal.Wait, Queue.Get). All Proc methods
// must be called from the process's own goroutine.
//
// Control transfers ride a single unbuffered channel: the kernel sends a
// resume token and then receives the yield; the process receives its
// resume and sends when parking or finishing. The two sides strictly
// alternate, so one channel serves both directions with one rendezvous
// per direction (the seed design used separate resume and yield channels,
// costing an extra allocation per process and a second channel's worth of
// synchronization per handoff).
type Proc struct {
	k      *Kernel
	name   string
	hand   chan token
	done   bool
	parked bool
}

// Go spawns fn as a new process. fn starts executing at the current virtual
// time, after already-scheduled events for this instant.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		hand:   make(chan token),
		parked: true, // blocked awaiting its start event
	}
	k.procs[p] = struct{}{}
	go func() {
		defer func() {
			p.done = true
			if r := recover(); r != nil {
				if _, ok := r.(abortError); ok {
					// Aborted by Kernel.Close: the closer awaits the yield.
					p.hand <- token{}
					return
				}
				// A real panic: surface it, then release control.
				panic(r)
			}
			p.hand <- token{}
		}()
		if t := <-p.hand; t.abort {
			panic(abortError{})
		}
		fn(p)
	}()
	k.scheduleProc(k.now, p)
	return p
}

// transfer hands control to p and waits for it to park or finish.
// Called only from the kernel event loop.
func (k *Kernel) transfer(p *Proc) {
	if p.done {
		return
	}
	p.parked = false
	p.hand <- token{}
	<-p.hand
	if p.done {
		delete(k.procs, p)
	}
}

// park blocks the process until the kernel resumes it.
func (p *Proc) park() {
	p.parked = true
	p.hand <- token{}
	if t := <-p.hand; t.abort {
		panic(abortError{})
	}
	p.parked = false
}

// abort unwinds a parked process. Called only from Kernel.Close.
func (p *Proc) abort() {
	p.hand <- token{abort: true}
	<-p.hand
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep blocks the process for d of virtual time. Non-positive durations
// still yield, resuming after events already scheduled for this instant.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.k.scheduleProc(p.k.now+d, p)
	p.park()
}

// Yield lets all other events scheduled for the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

func (p *Proc) String() string { return fmt.Sprintf("sim.Proc(%s)", p.name) }

// Signal is a one-shot broadcast condition: processes Wait on it and are all
// released (in Wait order) once Fire is called. Waiting on an already-fired
// signal returns immediately. The zero value is not usable; create signals
// with NewSignal.
//
// The overwhelmingly common case — a completion signal with exactly one
// waiter (MPI request done, rendezvous CTS, buffer-space wakeups) — is
// held in an inline slot, so Wait allocates nothing; additional waiters
// overflow into a slice.
type Signal struct {
	k     *Kernel
	fired bool
	w0    *Proc   // first waiter, inline
	more  []*Proc // further waiters, in Wait order
}

// NewSignal creates an unfired Signal on this kernel.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Fire releases all current and future waiters. It may be called from the
// kernel loop or from a process; waiters resume via scheduled events at the
// current virtual time, in the order they began waiting. Fire is idempotent.
func (s *Signal) Fire() {
	if s.fired {
		return
	}
	s.fired = true
	if s.w0 != nil {
		s.k.scheduleProc(s.k.now, s.w0)
		s.w0 = nil
	}
	for _, w := range s.more {
		s.k.scheduleProc(s.k.now, w)
	}
	s.more = nil
}

// Reset rearms a fired signal so it can gate the next occurrence of a
// recurring condition (tcpsim reuses one signal per flow for send-buffer
// space instead of allocating one per blocked write). It must only be
// called on a fired signal, which by construction has no waiters.
func (s *Signal) Reset() { s.fired = false }

// FireAfter schedules the signal to fire d from now as a typed event —
// equivalent to k.After(d, s.Fire) without the method-value allocation.
func (s *Signal) FireAfter(d time.Duration) {
	s.k.schedule(s.k.now+d, nil, nil, s)
}

// Wait blocks p until the signal fires. p must be the calling process.
func (s *Signal) Wait(p *Proc) {
	if s.fired {
		return
	}
	if s.w0 == nil {
		// w0 empty implies no waiters at all: Fire and Reset clear both
		// slots, and overflow only ever follows an occupied w0.
		s.w0 = p
	} else {
		s.more = append(s.more, p)
	}
	p.park()
}

// WaitAll blocks p until every signal in sigs has fired.
func WaitAll(p *Proc, sigs ...*Signal) {
	for _, s := range sigs {
		s.Wait(p)
	}
}

// Queue is an unbounded FIFO channel between processes in virtual time.
// Put never blocks; Get blocks the caller until an item is available.
// Items are delivered in Put order; blocked getters are served in Get order.
type Queue[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewQueue creates an empty queue on kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] { return &Queue[T]{k: k} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Put appends v and wakes the oldest waiting getter, if any.
func (q *Queue[T]) Put(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		popFront(&q.waiters)
		q.k.scheduleProc(q.k.now, w)
	}
}

// Get removes and returns the oldest item, blocking p while the queue is
// empty. p must be the calling process.
func (q *Queue[T]) Get(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park()
	}
	v := q.items[0]
	popFront(&q.items)
	return v
}

// TryGet removes and returns the oldest item without blocking; ok reports
// whether an item was available.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	popFront(&q.items)
	return v, true
}

// popFront removes element 0 by compacting in place, keeping the slice's
// capacity for reuse and zeroing the vacated tail slot so the backing
// array never pins consumed values (a reslice would pin the whole prefix).
func popFront[T any](s *[]T) {
	v := *s
	n := copy(v, v[1:])
	var zero T
	v[n] = zero
	*s = v[:n]
}
