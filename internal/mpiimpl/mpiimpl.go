// Package mpiimpl defines the four MPI implementation profiles the paper
// compares — MPICH2 1.0.5, GridMPI 1.1, MPICH-Madeleine (svn 2006-12-06)
// and OpenMPI 1.1.4 — plus a pseudo-implementation for the raw TCP
// pingpong, and the tuning rules of §4.2 (socket buffers and
// eager/rendezvous thresholds).
//
// Every number here is taken from the paper:
//   - latency overheads: Table 4 (cluster and grid deltas over TCP);
//   - default eager/rendezvous thresholds and tuned values: Table 5;
//   - socket-buffer behaviour: §4.2.1 (MPICH2 and MPICH-Madeleine ride
//     kernel autotuning; OpenMPI setsockopts 128 kB unless given mca
//     parameters; GridMPI is governed by the tcp_rmem middle value);
//   - GridMPI's pacing and collective optimizations: §2.1.4;
//   - OpenMPI's fragment pipeline: §2.1.3 (and its lower large-message
//     bandwidth in Figure 7);
//   - MPICH-Madeleine's serialized rendezvous: the BT/SP grid timeouts
//     reported in §4.3.
package mpiimpl

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/tcpsim"
)

// Implementation names, usable with Profile and Configure.
const (
	MPICH2    = "MPICH2"
	GridMPI   = "GridMPI"
	Madeleine = "MPICH-Madeleine"
	OpenMPI   = "OpenMPI"
	RawTCP    = "TCP"
	// MPICHG2 is the paper's future-work implementation (§2.1.5, §5):
	// Globus-based, topology-aware collectives, several parallel TCP
	// streams for large messages. Not part of the paper's measured
	// figures; provided for the extension experiments.
	MPICHG2 = "MPICH-G2"
)

// All lists the four MPI implementations in the paper's presentation order.
var All = []string{MPICH2, GridMPI, Madeleine, OpenMPI}

// WithTCP lists raw TCP followed by the four implementations, the line-up
// of the pingpong figures.
var WithTCP = []string{RawTCP, MPICH2, GridMPI, Madeleine, OpenMPI}

// Known lists every name Profile and Configure accept, in presentation
// order (for CLI validation; Profile panics on anything else).
var Known = []string{RawTCP, MPICH2, GridMPI, Madeleine, OpenMPI, MPICHG2}

const copyRate = 2.5e9 // bytes/s memcpy rate of the Opteron nodes

// Profile returns the default-configuration profile of one implementation.
func Profile(name string) mpi.Profile {
	switch name {
	case MPICH2:
		return mpi.Profile{
			Name:           MPICH2,
			OverheadLocal:  5 * time.Microsecond,
			OverheadWAN:    6 * time.Microsecond,
			EagerThreshold: 256 << 10,
			Buffers:        tcpsim.Autotune,
			CopyRate:       copyRate,
		}
	case GridMPI:
		return mpi.Profile{
			Name:           GridMPI,
			OverheadLocal:  5 * time.Microsecond,
			OverheadWAN:    7 * time.Microsecond,
			EagerThreshold: mpi.Infinite, // no rendezvous for MPI_Send by default
			Buffers:        tcpsim.BufferPolicy{KernelDefault: true},
			Pacing:         true,
			GridBcast:      true,
			GridAllreduce:  true,
			CopyRate:       copyRate,
		}
	case Madeleine:
		return mpi.Profile{
			Name:              Madeleine,
			OverheadLocal:     21 * time.Microsecond,
			OverheadWAN:       14 * time.Microsecond,
			EagerThreshold:    128 << 10,
			Buffers:           tcpsim.Autotune,
			SerialRendezvous:  true,
			SlowPathThreshold: 148 << 10,
			SlowPathStall:     40 * time.Millisecond,
			CopyRate:          copyRate,
		}
	case OpenMPI:
		return mpi.Profile{
			Name:             OpenMPI,
			OverheadLocal:    5 * time.Microsecond,
			OverheadWAN:      8 * time.Microsecond,
			EagerThreshold:   64 << 10,
			Buffers:          tcpsim.BufferPolicy{Explicit: 128 << 10},
			FragmentSize:     128 << 10,
			FragmentOverhead: 40 * time.Microsecond,
			CopyRate:         copyRate,
		}
	case RawTCP:
		// The reference pingpong written directly on TCP sockets: no MPI
		// software overhead, no protocol switch, autotuned buffers.
		return mpi.Profile{
			Name:           RawTCP,
			EagerThreshold: mpi.Infinite,
			Buffers:        tcpsim.Autotune,
			CopyRate:       copyRate,
		}
	case MPICHG2:
		// Latency overheads are estimates (the Globus layer is heavier
		// than a plain ch3 device); the paper does not measure MPICH-G2.
		return mpi.Profile{
			Name:            MPICHG2,
			OverheadLocal:   9 * time.Microsecond,
			OverheadWAN:     12 * time.Microsecond,
			EagerThreshold:  64 << 10,
			Buffers:         tcpsim.Autotune,
			GridBcast:       true, // "topology-aware" collectives
			GridAllreduce:   true,
			ParallelStreams: 4, // GridFTP-style large-message striping
			StreamMinSize:   1 << 20,
			CopyRate:        copyRate,
		}
	}
	panic(fmt.Sprintf("mpiimpl: unknown implementation %q", name))
}

// TunedThreshold returns the paper's Table 5 ideal eager/rendezvous
// threshold (same value on cluster and grid); ok is false for
// implementations whose default needs no change (GridMPI, raw TCP).
func TunedThreshold(name string) (int, bool) {
	switch name {
	case MPICH2, Madeleine:
		return 65 << 20, true
	case OpenMPI:
		return 32 << 20, true
	}
	return 0, false
}

// Configure assembles the (profile, TCP stack) pair for one implementation
// at a given tuning level, following §4.2:
//
//	tcpTuned=false: stock Linux 2.6.18 sysctls and implementation defaults
//	  (the Figure 3 configuration).
//	tcpTuned=true: 4 MB rmem_max/wmem_max and autotuning maxima, plus the
//	  per-implementation buffer fix — GridMPI needs the tcp_rmem middle
//	  value raised, OpenMPI needs btl_tcp_sndbuf/rcvbuf=4194304
//	  (the Figure 6 configuration).
//	mpiTuned=true additionally applies the Table 5 eager/rendezvous
//	  thresholds (the Figure 7 configuration).
func Configure(name string, tcpTuned, mpiTuned bool) (mpi.Profile, tcpsim.Config) {
	prof := Profile(name)
	cfg := tcpsim.DefaultLinux26()
	if tcpTuned {
		cfg = tcpsim.Tuned4MB()
		switch name {
		case GridMPI:
			// "In GridMPI, the middle value of TCP socket buffer has to
			// be increased."
			cfg.TCPRmem[1] = 4 << 20
			cfg.TCPWmem[1] = 4 << 20
		case OpenMPI:
			// "-mca btl_tcp_sndbuf 4194304 -mca btl_tcp_rcvbuf 4194304"
			prof = prof.WithBuffers(tcpsim.BufferPolicy{Explicit: 4 << 20})
		}
	}
	if mpiTuned {
		if thr, ok := TunedThreshold(name); ok {
			prof = prof.WithEagerThreshold(thr)
		}
		if name == MPICHG2 {
			prof = prof.WithEagerThreshold(32 << 20)
		}
	}
	return prof, cfg
}

// Feature summarises Table 1 for one implementation.
type Feature struct {
	Name            string
	LongDistance    string
	Heterogeneity   string
	FirstLastPublic string
}

// Features reproduces the paper's Table 1 feature matrix for the four
// implementations under study.
func Features() []Feature {
	return []Feature{
		{MPICH2, "None", "None", "2002 / 2006"},
		{GridMPI, "TCP optimizations (pacing); optimized Bcast and Allreduce", "IMPI above TCP; no low-latency network support", "2004 / 2006"},
		{Madeleine, "None", "Gateways between TCP, SCI, VIA, Myrinet MX/GM, Quadrics", "2003 / 2007"},
		{OpenMPI, "None", "Gateways between TCP, Myrinet MX/GM, Infiniband OpenIB/mVAPI", "2004 / 2007"},
	}
}
