package mpiimpl

import (
	"testing"
	"time"

	"repro/internal/mpi"
)

func TestProfilesMatchTable4Overheads(t *testing.T) {
	want := map[string][2]time.Duration{
		MPICH2:    {5 * time.Microsecond, 6 * time.Microsecond},
		GridMPI:   {5 * time.Microsecond, 7 * time.Microsecond},
		Madeleine: {21 * time.Microsecond, 14 * time.Microsecond},
		OpenMPI:   {5 * time.Microsecond, 8 * time.Microsecond},
	}
	for name, w := range want {
		p := Profile(name)
		if p.OverheadLocal != w[0] || p.OverheadWAN != w[1] {
			t.Errorf("%s overheads = %v/%v, want %v/%v", name, p.OverheadLocal, p.OverheadWAN, w[0], w[1])
		}
	}
}

func TestDefaultThresholdsMatchTable5(t *testing.T) {
	if Profile(MPICH2).EagerThreshold != 256<<10 {
		t.Error("MPICH2 default threshold")
	}
	if Profile(Madeleine).EagerThreshold != 128<<10 {
		t.Error("Madeleine default threshold")
	}
	if Profile(OpenMPI).EagerThreshold != 64<<10 {
		t.Error("OpenMPI default threshold")
	}
	if Profile(GridMPI).EagerThreshold != mpi.Infinite {
		t.Error("GridMPI must not use rendezvous by default")
	}
}

func TestGridMPIHasTheGridFeatures(t *testing.T) {
	p := Profile(GridMPI)
	if !p.Pacing || !p.GridBcast || !p.GridAllreduce {
		t.Fatalf("GridMPI profile misses its §2.1.4 features: %+v", p)
	}
	for _, other := range []string{MPICH2, Madeleine, OpenMPI} {
		q := Profile(other)
		if q.Pacing || q.GridBcast || q.GridAllreduce {
			t.Errorf("%s should not have grid optimizations", other)
		}
	}
}

func TestConfigureTuningLevels(t *testing.T) {
	// Default: stock sysctls.
	_, tcp := Configure(MPICH2, false, false)
	if tcp.RmemMax != 131072 {
		t.Fatalf("untuned rmem_max = %d", tcp.RmemMax)
	}
	// TCP tuned: 4 MB ceilings; GridMPI also needs the middle value.
	_, tcp = Configure(GridMPI, true, false)
	if tcp.TCPRmem[1] != 4<<20 {
		t.Fatalf("GridMPI tuned middle value = %d, want 4 MB", tcp.TCPRmem[1])
	}
	_, tcp2 := Configure(MPICH2, true, false)
	if tcp2.TCPRmem[1] != 87380 {
		t.Fatalf("MPICH2 middle value should stay at its default, got %d", tcp2.TCPRmem[1])
	}
	// OpenMPI tuned: explicit 4 MB via mca parameters.
	prof, _ := Configure(OpenMPI, true, false)
	if prof.Buffers.Explicit != 4<<20 {
		t.Fatalf("OpenMPI tuned buffers = %+v", prof.Buffers)
	}
	// MPI tuned: Table 5 thresholds.
	prof, _ = Configure(MPICH2, true, true)
	if prof.EagerThreshold != 65<<20 {
		t.Fatalf("MPICH2 tuned threshold = %d", prof.EagerThreshold)
	}
	prof, _ = Configure(OpenMPI, true, true)
	if prof.EagerThreshold != 32<<20 {
		t.Fatalf("OpenMPI tuned threshold = %d", prof.EagerThreshold)
	}
	prof, _ = Configure(GridMPI, true, true)
	if prof.EagerThreshold != mpi.Infinite {
		t.Fatalf("GridMPI threshold should stay infinite")
	}
}

func TestMadeleineFastBufferModel(t *testing.T) {
	p := Profile(Madeleine)
	if !p.SerialRendezvous {
		t.Error("Madeleine must serialize rendezvous")
	}
	if p.SlowPathThreshold <= 147456 || p.SlowPathThreshold >= 152<<10 {
		t.Errorf("fast-buffer limit %d must sit between CG's 147456 and BT/SP's 155648", p.SlowPathThreshold)
	}
}

func TestMPICHG2Extension(t *testing.T) {
	p := Profile(MPICHG2)
	if p.ParallelStreams < 2 {
		t.Error("MPICH-G2 must stripe large messages over several streams")
	}
	if !p.GridBcast || !p.GridAllreduce {
		t.Error("MPICH-G2 collectives are topology-aware")
	}
}

func TestUnknownImplementationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Profile(unknown) did not panic")
		}
	}()
	Profile("LAM/MPI")
}

func TestFeaturesCoverTheFourImplementations(t *testing.T) {
	f := Features()
	if len(f) != 4 {
		t.Fatalf("features = %d rows", len(f))
	}
	for i, name := range All {
		if f[i].Name != name {
			t.Errorf("row %d = %s, want %s", i, f[i].Name, name)
		}
	}
}
