package exp

import (
	"bytes"
	"testing"

	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
)

// multilevelSweep is a small all-collectives multilevel batch on the
// 3-site asymmetric layout (the shape gridBcast/gridAllreduce cannot
// handle).
func multilevelSweep() []Experiment {
	asym := Asym(Site(grid5000.Rennes, 3), Site(grid5000.Nancy, 2), Site(grid5000.Sophia, 2))
	var exps []Experiment
	for _, p := range []string{"bcast", "reduce", "allreduce", "gather", "scatter", "allgather", "alltoall", "barrier"} {
		exps = append(exps, Experiment{
			Impl:     mpiimpl.GridMPI,
			Tuning:   MultilevelTuning,
			Topology: asym,
			Workload: PatternWorkload(p, 64<<10, 2),
		})
	}
	return exps
}

// TestMultilevelDeterministicAcrossWorkers: the multilevel batch's
// canonical result bytes are identical whatever the pool size, and
// across reruns — collective staging must not leak scheduling
// nondeterminism into the results.
func TestMultilevelDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		results := NewRunner(workers).RunAll(multilevelSweep())
		for _, res := range results {
			if res.Err != "" {
				t.Fatalf("%s: %s", res.Exp.Name(), res.Err)
			}
		}
		return MarshalResults(results)
	}
	seq := marshal(1)
	for _, workers := range []int{4, 4} { // second 4 is the rerun
		if par := marshal(workers); !bytes.Equal(seq, par) {
			t.Fatalf("multilevel results diverged at %d workers (%d vs %d bytes)", workers, len(par), len(seq))
		}
	}
}

// TestMultilevelRejectsRay2Mesh: the application builds its own
// communication stack, so the tuning level must refuse rather than
// silently measure flat collectives under a multilevel label.
func TestMultilevelRejectsRay2Mesh(t *testing.T) {
	res := Run(Experiment{
		Impl:     mpiimpl.GridMPI,
		Tuning:   MultilevelTuning,
		Workload: Ray2MeshWorkload(grid5000.Rennes, 0.02),
	})
	if res.Err == "" {
		t.Fatal("ray2mesh under multilevel tuning did not error")
	}
}
