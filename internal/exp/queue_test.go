package exp

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mpiimpl"
)

// tinyMatrix is the 4-cell sweep the queue tests schedule.
func tinyMatrix() []Experiment {
	return Sweep{
		Impls:      []string{mpiimpl.GridMPI, mpiimpl.MPICH2},
		Tunings:    []Tuning{{}, {TCP: true}},
		Topologies: []Topology{Grid(1)},
		Workloads:  []Workload{PingPongWorkload(tinySizes, 3)},
	}.Experiments()
}

// newTestQueue builds a queue over a fresh store with a test-driven
// clock.
func newTestQueue(t *testing.T, ttl time.Duration, slices int) (*JobQueue, *DiskCache, *time.Time) {
	t.Helper()
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1_000_000, 0)
	q := NewJobQueue(store, QueueConfig{TTL: ttl, Slices: slices})
	q.now = func() time.Time { return clock }
	return q, store, &clock
}

// computeAndStore runs one cell the way an honest worker would: compute,
// publish to the store, then the caller reports.
func computeAndStore(t *testing.T, store *DiskCache, e Experiment) {
	t.Helper()
	res := Run(e)
	if res.Err != "" {
		t.Fatalf("run %s: %s", e.Name(), res.Err)
	}
	if err := store.Store(e.Fingerprint(), res); err != nil {
		t.Fatal(err)
	}
}

// TestJobQueueLifecycle: submit → lease → publish+report until done;
// counters and states track every transition, and a resubmission of the
// finished matrix is done on arrival with Computed == 0.
func TestJobQueueLifecycle(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 2)
	cells := tinyMatrix()

	st, err := q.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Total != 4 || st.Queued != 4 || st.Done != 0 {
		t.Fatalf("fresh job status = %+v", st)
	}

	seen := 0
	for {
		grant, ok := q.Lease("w1")
		if !ok {
			break
		}
		if grant.Job != st.ID || len(grant.Cells) == 0 {
			t.Fatalf("grant = %+v", grant)
		}
		for _, e := range grant.Cells {
			seen++
			computeAndStore(t, store, e)
			ack, err := q.Report(grant.Job, grant.Lease, "w1", e.Fingerprint(), false, "")
			if err != nil || !ack.Verified {
				t.Fatalf("report: %+v, %v", ack, err)
			}
		}
	}
	if seen != 4 {
		t.Fatalf("leased %d cells, want all 4", seen)
	}
	final, ok := q.Status(st.ID)
	if !ok || final.State != "done" || final.Computed != 4 || final.Cached != 0 || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}
	if len(final.Workers) != 1 || final.Workers[0].ID != "w1" || final.Workers[0].Done != 4 || !final.Workers[0].Live {
		t.Fatalf("worker liveness = %+v", final.Workers)
	}

	// Resubmission: every cell resolves from the store at submit time.
	resub, err := q.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resub.ID == st.ID {
		t.Fatal("resubmission returned the finished job instead of a fresh one")
	}
	if resub.State != "done" || resub.Computed != 0 || resub.Cached != 4 {
		t.Fatalf("resubmission = %+v, want done on arrival with 0 computed", resub)
	}
}

// TestJobQueueDuplicateSubmitJoinsActiveJob: submitting an identical
// matrix while the first job still runs returns the same job rather
// than queueing the work twice.
func TestJobQueueDuplicateSubmitJoinsActiveJob(t *testing.T) {
	q, _, _ := newTestQueue(t, time.Minute, 2)
	first, err := q.Submit(tinyMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := q.Submit(tinyMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("duplicate submit created job %s alongside running %s", again.ID, first.ID)
	}
	if _, err := q.Submit(nil, 0); err == nil {
		t.Error("empty submission accepted")
	}
}

// TestJobQueueRejectsLyingWorker: a done report without a loadable
// store entry is refused and the cell stays pending — the trust
// boundary between worker and store, exercised end to end.
func TestJobQueueRejectsLyingWorker(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	st, err := q.Submit(tinyMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	grant, ok := q.Lease("liar")
	if !ok {
		t.Fatal("no lease")
	}
	e := grant.Cells[0]
	fp := e.Fingerprint()

	// Claim done without publishing anything.
	ack, err := q.Report(grant.Job, grant.Lease, "liar", fp, false, "")
	if err != nil || ack.Verified {
		t.Fatalf("unpublished done claim accepted: %+v, %v", ack, err)
	}
	// Publish garbage under the fingerprint: the store's Load (the
	// decodeEntry gate) refuses it, so the claim still fails.
	wrong := Run(grant.Cells[1])
	if err := store.Store(fp, wrong); err != nil {
		t.Fatal(err)
	}
	ack, err = q.Report(grant.Job, grant.Lease, "liar", fp, false, "")
	if err != nil || ack.Verified {
		t.Fatalf("mismatched entry verified: %+v, %v", ack, err)
	}
	if mid, _ := q.Status(st.ID); mid.Done != 0 {
		t.Fatalf("lying reports made progress: %+v", mid)
	}
	// The honest path still works.
	computeAndStore(t, store, e)
	if ack, err = q.Report(grant.Job, grant.Lease, "liar", fp, false, ""); err != nil || !ack.Verified {
		t.Fatalf("honest report refused: %+v, %v", ack, err)
	}
}

// TestJobQueueLeaseExpiryRequeues is the kill -9 contract in miniature:
// a worker leases cells and vanishes; after the TTL the cells are
// re-leased to another worker and the job completes with zero lost
// cells. A late report from the zombie is still acknowledged without
// corrupting state.
func TestJobQueueLeaseExpiryRequeues(t *testing.T) {
	q, store, clock := newTestQueue(t, time.Minute, 1)
	st, err := q.Submit(tinyMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dead, ok := q.Lease("doomed")
	if !ok {
		t.Fatal("no lease")
	}
	if mid, _ := q.Status(st.ID); mid.Leased != 4 {
		t.Fatalf("leased = %d, want 4", mid.Leased)
	}
	// The worker dies; once the TTL passes, the whole slice requeues
	// and re-leases intact (no steal needed — the lease is simply gone).
	*clock = clock.Add(2 * time.Minute)
	rescue, ok := q.Lease("rescue")
	if !ok {
		t.Fatal("expired slice not re-leased")
	}
	if len(rescue.Cells) != 4 {
		t.Fatalf("re-lease carries %d cells, want all 4", len(rescue.Cells))
	}
	for _, e := range rescue.Cells {
		computeAndStore(t, store, e)
		if ack, err := q.Report(rescue.Job, rescue.Lease, "rescue", e.Fingerprint(), false, ""); err != nil || !ack.Verified {
			t.Fatalf("report: %+v, %v", ack, err)
		}
	}
	final, _ := q.Status(st.ID)
	if final.State != "done" || final.Done != 4 {
		t.Fatalf("job after rescue = %+v", final)
	}
	// The zombie's late report on its stale lease: idempotent ack.
	if ack, err := q.Report(dead.Job, dead.Lease, "doomed", rescue.Cells[0].Fingerprint(), false, ""); err != nil || !ack.Verified {
		t.Fatalf("zombie report = %+v, %v", ack, err)
	}
	if again, _ := q.Status(st.ID); again.Done != 4 || again.Computed != 4 {
		t.Fatalf("zombie report corrupted counters: %+v", again)
	}
}

// TestJobQueueWorkStealing: with every slice leased, a second worker's
// lease splits the straggler's pending cells; the donor learns of the
// theft via the drop list on its next report.
func TestJobQueueWorkStealing(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	if _, err := q.Submit(tinyMatrix(), 0); err != nil {
		t.Fatal(err)
	}
	straggler, ok := q.Lease("straggler")
	if !ok || len(straggler.Cells) != 4 {
		t.Fatalf("straggler grant = %+v", straggler)
	}
	thief, ok := q.Lease("thief")
	if !ok {
		t.Fatal("nothing stolen for the idle worker")
	}
	if len(thief.Cells) != 2 {
		t.Fatalf("thief got %d cells, want half (2)", len(thief.Cells))
	}
	// The straggler's next report returns the stolen fingerprints.
	e := straggler.Cells[0]
	computeAndStore(t, store, e)
	ack, err := q.Report(straggler.Job, straggler.Lease, "straggler", e.Fingerprint(), false, "")
	if err != nil || !ack.Verified {
		t.Fatalf("report: %+v, %v", ack, err)
	}
	if len(ack.Drop) != 2 {
		t.Fatalf("drop list = %v, want the 2 stolen cells", ack.Drop)
	}
	stolen := map[string]bool{}
	for _, fp := range ack.Drop {
		stolen[fp] = true
	}
	for _, c := range thief.Cells {
		if !stolen[c.Fingerprint()] {
			t.Errorf("thief cell %s missing from the donor's drop list", c.Fingerprint())
		}
	}
}

// TestJobQueueFailedCells: a failure report terminates the cell, the
// job finishes in the failed state, and the failure carries the
// worker's error text.
func TestJobQueueFailedCells(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	st, err := q.Submit(tinyMatrix(), 0)
	if err != nil {
		t.Fatal(err)
	}
	grant, _ := q.Lease("w")
	for i, e := range grant.Cells {
		if i == 0 {
			if _, err := q.Report(grant.Job, grant.Lease, "w", e.Fingerprint(), true, "synthetic defect"); err != nil {
				t.Fatal(err)
			}
			continue
		}
		computeAndStore(t, store, e)
		if _, err := q.Report(grant.Job, grant.Lease, "w", e.Fingerprint(), false, ""); err != nil {
			t.Fatal(err)
		}
	}
	final, _ := q.Status(st.ID)
	if final.State != "failed" || final.Failed != 1 || final.Done != 3 {
		t.Fatalf("final = %+v", final)
	}
	if len(final.Failures) != 1 || final.Failures[0].Err != "synthetic defect" {
		t.Fatalf("failures = %+v", final.Failures)
	}
}

// TestQueueFleetEndToEnd is the tentpole acceptance test in process: a
// sweepd handler over httptest, three Work-loop workers whose runners
// publish through RemoteStores, a submission that completes with
// results byte-identical to a direct local run, and a resubmission that
// computes nothing.
func TestQueueFleetEndToEnd(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewJobQueue(store, QueueConfig{TTL: 30 * time.Second, Slices: 3})
	srv := httptest.NewServer(NewQueueHandler(q, NewCacheServer(store)))
	defer srv.Close()

	cells := tinyMatrix()
	direct := NewRunner(2).RunAll(cells)

	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	reports := make([]WorkerReport, 3)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := NewRemoteStore(srv.URL, nil)
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = client.Work(WorkerConfig{
				ID:       []string{"w1", "w2", "w3"}[i],
				Runner:   NewRunnerStore(1, rs),
				Poll:     20 * time.Millisecond,
				IdleExit: 25,
			})
		}(i)
	}
	final, err := client.WaitJob(st.ID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if final.State != "done" || final.Computed != 4 || final.Failed != 0 {
		t.Fatalf("fleet job = %+v", final)
	}

	// Pull the results back through the verified read path, in
	// submission order, and compare to the direct run.
	pull, err := NewRemoteStore(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	fleet := make([]Result, len(cells))
	for i, e := range cells {
		res, ok := pull.Load(e.Fingerprint())
		if !ok {
			t.Fatalf("finished job missing cell %s", e.Fingerprint())
		}
		fleet[i] = res
	}
	if !bytes.Equal(MarshalResults(fleet), MarshalResults(direct)) {
		t.Error("fleet results differ from the direct local run")
	}

	// Resubmission computes nothing, with no workers even running.
	resub, err := client.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resub.Finished() || resub.Computed != 0 || resub.Cached != len(cells) {
		t.Fatalf("resubmission = %+v, want done on arrival", resub)
	}

	// The control-plane statusz lists both jobs next to the store stats.
	var status ServerStatus
	if err := (&QueueClient{base: client.base, client: client.client}).get("/statusz", &status); err != nil {
		t.Fatal(err)
	}
	if status.Entries != len(cells) || len(status.Jobs) != 2 {
		t.Fatalf("statusz = %+v, want %d entries and 2 jobs", status, len(cells))
	}
	if status.Served.Pushes != int64(len(cells)) {
		t.Errorf("statusz pushes = %d, want %d", status.Served.Pushes, len(cells))
	}
}

// TestQueueHandlerRejects: transport-layer validation — malformed
// bodies, unknown jobs, bad fingerprints and empty worker names are
// refused with 4xx, never reaching the state machine.
func TestQueueHandlerRejects(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewJobQueue(store, QueueConfig{TTL: time.Minute, Slices: 2})
	srv := httptest.NewServer(NewQueueHandler(q, NewCacheServer(store)))
	defer srv.Close()
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := client.Submit(nil, 0); err == nil || !strings.Contains(err.Error(), "empty job") {
		t.Errorf("empty submission: %v", err)
	}
	if _, err := client.Job("j9999"); err == nil {
		t.Error("unknown job served")
	}
	if _, err := client.Job("../etc"); err == nil {
		t.Error("malformed job ID accepted")
	}
	if _, err := client.Report("j0001", "l1", "w", "not-a-fingerprint", false, ""); err == nil {
		t.Error("bad fingerprint accepted")
	}
	if _, err := client.Lease(""); err == nil {
		t.Error("anonymous lease accepted")
	}
	if grant, err := client.Lease("w"); err != nil || grant != nil {
		t.Errorf("empty queue lease = %+v, %v, want nil grant", grant, err)
	}
	if _, err := NewQueueClient("not a url"); err == nil {
		t.Error("bad sweepd URL accepted")
	}
}
