package exp

// Store is a persistent backing layer for a Runner's in-memory result
// cache, keyed by experiment fingerprint (Experiment.Fingerprint — the
// stable content hash of the normalized experiment definition, frozen
// since the wire encoding was fixed in the Topology redesign).
//
// The contract every implementation must honor:
//
//   - Load returns a result only when it is trustworthy for exactly
//     that fingerprint: the entry parses, carries the current
//     DiskSchemaVersion generation, and its embedded experiment hashes
//     back to the requested key. Anything less is a miss (ok == false),
//     never an error — the Runner simply re-executes the experiment and
//     overwrites the entry.
//   - Store persists a result so a later Load of the same fingerprint
//     (from this or any other process) can serve it, and is idempotent:
//     concurrent or repeated stores of one fingerprint leave exactly
//     one valid entry. Because a Result is a pure function of its
//     Experiment, colliding writers always carry the same payload.
//   - Both methods are safe for concurrent use by many goroutines.
//
// DiskCache implements the interface over a local directory; RemoteStore
// implements it over HTTP against a cmd/cached server, with an optional
// DiskCache as a read-through/write-behind tier.
type Store interface {
	Load(fingerprint string) (Result, bool)
	Store(fingerprint string, res Result) error
}
