package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
)

// tinySizes keeps unit-test experiments fast.
var tinySizes = []int{1 << 10, 64 << 10}

func tinyPingPong(impl string, tun Tuning) Experiment {
	return Experiment{
		Impl:     impl,
		Tuning:   tun,
		Topology: Grid(1),
		Workload: PingPongWorkload(tinySizes, 3),
	}
}

func TestSweepExpansion(t *testing.T) {
	s := Sweep{
		Impls:      []string{mpiimpl.RawTCP, mpiimpl.GridMPI},
		Tunings:    TuningLevels,
		Topologies: []Topology{Grid(1), Cluster(2)},
		Workloads:  []Workload{PingPongWorkload(tinySizes, 3)},
	}
	exps := s.Experiments()
	if len(exps) != s.Size() || len(exps) != 2*3*2*1 {
		t.Fatalf("expanded %d experiments, Size()=%d, want 12", len(exps), s.Size())
	}
	// Implementation is the outermost axis; within one implementation the
	// tuning axis advances first.
	if exps[0].Impl != mpiimpl.RawTCP || exps[6].Impl != mpiimpl.GridMPI {
		t.Errorf("impl-major order broken: %s, %s", exps[0].Name(), exps[6].Name())
	}
	if exps[0].Tuning != TuningLevels[0] || exps[2].Tuning != TuningLevels[1] {
		t.Errorf("tuning order broken: %s, %s", exps[0].Name(), exps[2].Name())
	}
	// Threshold axis defaults to a single no-override pass.
	s.EagerThresholds = []int{1 << 20, 32 << 20}
	if got := len(s.Experiments()); got != 24 {
		t.Fatalf("threshold axis expansion = %d, want 24", got)
	}
}

func TestFingerprint(t *testing.T) {
	a := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	b := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical experiments fingerprint differently")
	}
	variants := []Experiment{
		tinyPingPong(mpiimpl.MPICH2, Tuning{TCP: true}),
		tinyPingPong(mpiimpl.GridMPI, Tuning{}),
		{Impl: mpiimpl.GridMPI, Tuning: Tuning{TCP: true}, Topology: Cluster(2), Workload: PingPongWorkload(tinySizes, 3)},
		{Impl: mpiimpl.GridMPI, Tuning: Tuning{TCP: true}, Topology: Grid(1), Workload: PingPongWorkload(tinySizes, 4)},
	}
	seen := map[string]string{a.Fingerprint(): a.Name()}
	for _, v := range variants {
		if prev, dup := seen[v.Fingerprint()]; dup {
			t.Errorf("fingerprint collision: %s vs %s", v.Name(), prev)
		}
		seen[v.Fingerprint()] = v.Name()
	}
	// Zero-value aliases normalize to one key: NPB at Scale 0 ≡ 1.0 and
	// Timeout 0 ≡ one hour.
	full := Experiment{Impl: mpiimpl.MPICH2, Topology: Grid(2), Workload: NPBWorkload("EP", 1)}
	zero := Experiment{Impl: mpiimpl.MPICH2, Topology: Grid(2), Workload: NPBWorkload("EP", 0)}
	hour := full
	hour.Workload.Timeout = time.Hour
	if full.Fingerprint() != zero.Fingerprint() || full.Fingerprint() != hour.Fingerprint() {
		t.Error("zero-value workload aliases fingerprint differently")
	}
}

// TestRunDeterminism: the same experiment run twice yields byte-identical
// serialized results (points, census, everything).
func TestRunDeterminism(t *testing.T) {
	e := tinyPingPong(mpiimpl.MPICH2, Tuning{TCP: true})
	a := MarshalResults([]Result{Run(e)})
	b := MarshalResults([]Result{Run(e)})
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of one experiment serialized differently")
	}
}

func TestTopologyBuildMatchesGrid5000(t *testing.T) {
	net, err := Grid(2).Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := grid5000.Build(2, grid5000.Rennes, grid5000.Nancy)
	if len(net.Hosts()) != len(ref.Hosts()) {
		t.Fatalf("hosts = %d, want %d", len(net.Hosts()), len(ref.Hosts()))
	}
	p := net.Path(net.Host("rennes-1"), net.Host("nancy-1"))
	rp := ref.Path(ref.Host("rennes-1"), ref.Host("nancy-1"))
	if p.OneWay != rp.OneWay {
		t.Errorf("WAN one-way = %v, want %v", p.OneWay, rp.OneWay)
	}
}

func TestTopologyWANOverrides(t *testing.T) {
	topo := Grid(1)
	topo.WANOneWay = 25 * time.Millisecond
	topo.WANRate = 1.25e8
	net, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := net.Path(net.Host("rennes-1"), net.Host("nancy-1"))
	if p.OneWay != 25*time.Millisecond {
		t.Errorf("override one-way = %v, want 25ms", p.OneWay)
	}
	if got := p.Bottleneck(); got != 1.25e8 {
		t.Errorf("bottleneck = %g, want the overridden 1 Gbps uplink", got)
	}
	// An unknown site must fail like grid5000.Build does, not default to
	// a silently wrong CPU speed.
	bad := Run(Experiment{Impl: mpiimpl.RawTCP,
		Topology: Topology{Layout: []SiteSpec{{"renne", 1}, {"nancy", 1}}, WANRate: 1e8},
		Workload: PingPongWorkload([]int{1 << 10}, 1)})
	if bad.Err == "" || !strings.Contains(bad.Err, "unknown site") {
		t.Errorf("unknown-site override err = %q", bad.Err)
	}
	// A longer WAN must slow the same pingpong down.
	slow := Experiment{Impl: mpiimpl.RawTCP, Topology: topo, Workload: PingPongWorkload([]int{1 << 10}, 3)}
	fast := Experiment{Impl: mpiimpl.RawTCP, Topology: Grid(1), Workload: PingPongWorkload([]int{1 << 10}, 3)}
	if s, f := Run(slow), Run(fast); s.Points[0].MinRTT <= f.Points[0].MinRTT {
		t.Errorf("25 ms WAN pingpong (%v) not slower than 5.8 ms (%v)", s.Points[0].MinRTT, f.Points[0].MinRTT)
	}
}

func TestPatternWorkloadCensus(t *testing.T) {
	res := Run(Experiment{
		Impl:     mpiimpl.GridMPI,
		Tuning:   Tuning{TCP: true},
		Topology: Grid(2),
		Workload: PatternWorkload("bcast", 4<<10, 3),
	})
	if res.Err != "" || res.DNF {
		t.Fatalf("bcast pattern failed: err=%q dnf=%v", res.Err, res.DNF)
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	var bcasts int64
	for _, c := range res.Census.Collectives {
		if c.Op == "bcast" {
			bcasts = c.Calls
		}
	}
	if bcasts != 3 {
		t.Errorf("bcast calls = %d, want 3", bcasts)
	}
	bad := Run(Experiment{Impl: mpiimpl.MPICH2, Topology: Grid(1), Workload: PatternWorkload("nope", 1, 1)})
	if bad.Err == "" || !strings.Contains(bad.Err, "unknown pattern") {
		t.Errorf("unknown pattern err = %q", bad.Err)
	}
	// A negative timeout means no budget: the run completes instead of
	// reporting DNF.
	unlimited := PatternWorkload("barrier", 1, 2)
	unlimited.Timeout = -1
	if res := Run(Experiment{Impl: mpiimpl.MPICH2, Topology: Grid(1), Workload: unlimited}); res.DNF || res.Err != "" {
		t.Errorf("unlimited pattern run: dnf=%v err=%q", res.DNF, res.Err)
	}
}

func TestNPBWorkloadAndDNF(t *testing.T) {
	e := Experiment{
		Impl:     mpiimpl.MPICH2,
		Tuning:   Tuning{TCP: true},
		Topology: Grid(2),
		Workload: NPBWorkload("EP", 0.02),
	}
	res := Run(e)
	if res.Err != "" || res.DNF {
		t.Fatalf("EP failed: err=%q dnf=%v", res.Err, res.DNF)
	}
	if res.Elapsed <= 0 || res.Census.P2PSends == 0 {
		t.Errorf("EP elapsed=%v p2p=%d, want both positive", res.Elapsed, res.Census.P2PSends)
	}
	// An absurd budget forces the paper's DNF classification.
	e.Workload.Timeout = time.Microsecond
	if res := Run(e); !res.DNF || res.Err != "" {
		t.Errorf("1µs budget: dnf=%v err=%q, want a clean DNF", res.DNF, res.Err)
	}
}

func TestRay2MeshWorkload(t *testing.T) {
	res := Run(Experiment{
		Impl:     mpiimpl.MPICH2,
		Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05),
	})
	if res.Err != "" {
		t.Fatalf("ray2mesh: %s", res.Err)
	}
	if res.Metrics["total_rays"] != 50000 {
		t.Errorf("total rays = %g, want 50000", res.Metrics["total_rays"])
	}
	if res.Census.P2PSends == 0 {
		t.Error("ray2mesh census not recorded")
	}
	// Tiny scales run exactly what they ask for — fewer chunks than
	// slaves no longer deadlocks (or clamps) the self-scheduler.
	tiny := Run(Experiment{Impl: mpiimpl.MPICH2, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.001)})
	if tiny.Err != "" {
		t.Fatalf("tiny ray2mesh: %s", tiny.Err)
	}
	if tiny.Metrics["total_rays"] != 1000 {
		t.Errorf("tiny-scale rays = %g, want exactly 1000 (no floor)", tiny.Metrics["total_rays"])
	}
	if res.Metrics["rays_per_node_"+grid5000.Sophia] <= 0 {
		t.Error("no per-site ray metrics recorded")
	}
	if res.Elapsed <= 0 {
		t.Error("no elapsed time")
	}
}

// TestBadExperimentsReportErr: malformed experiments come back as
// Result.Err, never as a panic that would kill a worker pool.
func TestBadExperimentsReportErr(t *testing.T) {
	bad := []Experiment{
		{Impl: mpiimpl.MPICH2, Topology: Grid(1), Workload: Workload{Kind: "bogus"}},
		{Impl: "LAM/MPI", Topology: Grid(1), Workload: PingPongWorkload(tinySizes, 1)},
		{Impl: mpiimpl.MPICH2, Topology: Grid(1), Workload: NPBWorkload("ZZ", 0.1)},
		{Impl: mpiimpl.MPICH2, Workload: Ray2MeshWorkload("paris", 0.05)},
		// ray2mesh owns its stack: a socket-buffer override cannot be
		// honored and must not mint a distinct-fingerprint duplicate of
		// the unmodified run.
		{Impl: mpiimpl.MPICH2, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05), SocketBuffer: 4096},
		// Topologies that cannot host the workload: empty, and a pingpong
		// with a single endpoint. Both must come back as Err, not a panic
		// that would kill a worker pool.
		{Impl: mpiimpl.MPICH2, Workload: PingPongWorkload(tinySizes, 1)},
		{Impl: mpiimpl.MPICH2, Topology: Cluster(1), Workload: PingPongWorkload(tinySizes, 1)},
		// ray2mesh owns its thresholds and WAN: a threshold override, a
		// topology without the master site, a WAN override, or a
		// placement policy must be rejected rather than silently ignored
		// and mislabeled (arbitrary per-site layouts are honored).
		{Impl: mpiimpl.MPICH2, EagerThreshold: 1 << 20, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)},
		{Impl: mpiimpl.MPICH2, Topology: Asym(Site(grid5000.Nancy, 2), Site(grid5000.Sophia, 2)), Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)},
		{Impl: mpiimpl.MPICH2, Topology: Topology{Layout: []SiteSpec{{grid5000.Rennes, 2}, {grid5000.Nancy, 2}}, WANRate: 1e8}, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)},
		{Impl: mpiimpl.MPICH2, Topology: Topology{Layout: []SiteSpec{{grid5000.Rennes, 2}, {grid5000.Nancy, 2}}, Placement: PlaceRoundRobin}, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)},
		{Impl: mpiimpl.MPICH2, Topology: Cluster(1), Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)},
	}
	for _, e := range bad {
		if res := Run(e); res.Err == "" {
			t.Errorf("%s accepted, want Err", e.Name())
		}
	}
}

// TestRay2MeshTuningApplies: the tuning axis reaches the application —
// untuned TCP slows the merge phase's big WAN transfers.
func TestRay2MeshTuningApplies(t *testing.T) {
	tuned := Run(Experiment{Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true}, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)})
	untuned := Run(Experiment{Impl: mpiimpl.MPICH2, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)})
	if untuned.Elapsed <= tuned.Elapsed {
		t.Errorf("untuned ray2mesh (%v) not slower than TCP-tuned (%v)", untuned.Elapsed, tuned.Elapsed)
	}
}

func TestParseSize(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"512", 512}, {"64k", 64 << 10}, {"1M", 1 << 20}, {"2G", 2 << 30}, {" 8K ", 8 << 10}} {
		got, err := ParseSize(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSize("12q"); err == nil {
		t.Error("ParseSize accepted garbage")
	}
}

// TestFabricWorkload: the §5 heterogeneity pingpong runs on its own
// two-node fabric testbed, and axes it cannot honor are rejected.
func TestFabricWorkload(t *testing.T) {
	e := Experiment{
		Impl:           mpiimpl.Madeleine,
		EagerThreshold: mpi.Infinite,
		Workload:       FabricWorkload(3*time.Microsecond, 250e6, time.Microsecond, 0, []int{1, 64 << 10}, 3),
	}
	res := Run(e)
	if res.Err != "" {
		t.Fatalf("fabric run: %s", res.Err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	if lat := res.Points[0].OneWay(); lat <= 0 || lat > 100*time.Microsecond {
		t.Errorf("1 B fabric latency = %v, want a few microseconds", lat)
	}
	// A gateway overhead strictly increases latency.
	gw := e
	gw.Workload.Gateway = 40 * time.Microsecond
	gwRes := Run(gw)
	if gwRes.Err != "" {
		t.Fatalf("gateway run: %s", gwRes.Err)
	}
	if gwRes.Points[0].OneWay() <= res.Points[0].OneWay() {
		t.Error("gateway overhead did not increase latency")
	}
	// Axes the fabric cannot honor are rejected, not ignored.
	for name, bad := range map[string]Experiment{
		"tuning":   {Impl: e.Impl, Tuning: Tuning{TCP: true}, Workload: e.Workload},
		"topology": {Impl: e.Impl, Topology: Grid(1), Workload: e.Workload},
		"buffer":   {Impl: e.Impl, SocketBuffer: 1 << 20, Workload: e.Workload},
	} {
		if res := Run(bad); res.Err == "" {
			t.Errorf("fabric experiment with a foreign %s axis was not rejected", name)
		}
	}
}
