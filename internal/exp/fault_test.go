package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
)

// tinyFaultPlan is a small seeded plan over the tinyPingPong topology: a
// 100ms rennes-uplink outage plus 2% background loss.
func tinyFaultPlan() *FaultPlan {
	return &FaultPlan{
		Seed: 7,
		Events: []FaultEvent{
			{At: 20 * time.Millisecond, Kind: FaultDown, Site: grid5000.Rennes},
			{At: 120 * time.Millisecond, Kind: FaultUp, Site: grid5000.Rennes},
			{At: 0, Kind: FaultLoss, Loss: 0.02},
		},
	}
}

// TestEmptyFaultPlanIsInvisible is the satellite property test: an absent,
// nil, or zero-value FaultPlan must leave the experiment's normalized JSON
// — the input of the fingerprint, and with it the DiskCache filename
// (<fingerprint>.json) and the cmd/cached wire address — byte-identical to
// a pre-fault build's encoding. The expected bytes are hand-written, not
// encoder output, so the test cannot rot into a tautology.
func TestEmptyFaultPlanIsInvisible(t *testing.T) {
	base := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	withZero := base
	withZero.Faults = &FaultPlan{}

	preFault := `{"impl":"GridMPI","tuning":{"tcp":true,"mpi":false},` +
		`"topology":{"sites":["rennes","nancy"],"nodes_per_site":1},` +
		`"workload":{"kind":"pingpong","sizes":[1024,65536],"reps":3}}`
	for _, e := range []Experiment{base, withZero} {
		blob, err := json.Marshal(e.normalized())
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != preFault {
			t.Errorf("normalized encoding = %s,\nwant pre-fault %s", blob, preFault)
		}
	}
	if base.Fingerprint() != withZero.Fingerprint() {
		t.Error("zero-value FaultPlan changes the fingerprint")
	}
}

// TestFaultPlanWireEncoding freezes the faulted encoding the same way the
// topology test freezes the legacy one: hand-written JSON, hashed by hand.
// If this fails, cached faulted results (and any sharded faulted sweep)
// silently miss — change the encoding only with a DiskSchemaVersion bump
// and a deliberate update here.
func TestFaultPlanWireEncoding(t *testing.T) {
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	e.Faults = tinyFaultPlan()
	want := `{"impl":"GridMPI","tuning":{"tcp":true,"mpi":false},` +
		`"topology":{"sites":["rennes","nancy"],"nodes_per_site":1},` +
		`"workload":{"kind":"pingpong","sizes":[1024,65536],"reps":3},` +
		`"faults":{"seed":7,"events":[` +
		`{"at":20000000,"kind":"down","site":"rennes"},` +
		`{"at":120000000,"kind":"up","site":"rennes"},` +
		`{"at":0,"kind":"loss","loss":0.02}]}}`
	blob, err := json.Marshal(e.normalized())
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != want {
		t.Fatalf("faulted encoding = %s,\nwant %s", blob, want)
	}
	sum := sha256.Sum256([]byte(want))
	if got, legacy := e.Fingerprint(), hex.EncodeToString(sum[:8]); got != legacy {
		t.Fatalf("faulted fingerprint = %s, want hash of frozen JSON %s", got, legacy)
	}
}

// TestFaultedRunDeterminism: the same seeded plan replays bit-for-bit,
// both run-to-run and across worker counts (the sweep-level determinism
// the fault-smoke CI job checks with cmp).
func TestFaultedRunDeterminism(t *testing.T) {
	plan := tinyFaultPlan()
	exps := make([]Experiment, 0, 4)
	for _, impl := range []string{mpiimpl.RawTCP, mpiimpl.MPICH2} {
		for _, tun := range []Tuning{{}, {TCP: true}} {
			e := tinyPingPong(impl, tun)
			e.Faults = plan
			exps = append(exps, e)
		}
	}
	seq := MarshalResults(NewRunner(1).RunAll(exps))
	par := MarshalResults(NewRunner(4).RunAll(exps))
	rerun := MarshalResults(NewRunner(4).RunAll(exps))
	if !bytes.Equal(seq, par) {
		t.Fatal("faulted sweep differs between 1 and 4 workers")
	}
	if !bytes.Equal(par, rerun) {
		t.Fatal("faulted sweep differs between two identical runs")
	}
}

// TestFaultMetricsAndSeedEffect: a faulted run reports the degraded-mode
// metrics, a healthy one does not, and changing only the plan seed changes
// the fingerprint (distinct replicas, distinct cache cells).
func TestFaultMetricsAndSeedEffect(t *testing.T) {
	healthy := tinyPingPong(mpiimpl.RawTCP, Tuning{TCP: true})
	faulted := healthy
	faulted.Faults = tinyFaultPlan()

	hres := Run(healthy)
	if hres.Err != "" {
		t.Fatal(hres.Err)
	}
	for k := range hres.Metrics {
		if strings.HasPrefix(k, "fault_") {
			t.Errorf("healthy run reports %s", k)
		}
	}
	fres := Run(faulted)
	if fres.Err != "" {
		t.Fatal(fres.Err)
	}
	for _, k := range []string{"fault_retransmits", "fault_retrans_bytes", "fault_link_stalls", "fault_stall_s", "fault_timeouts"} {
		if _, ok := fres.Metrics[k]; !ok {
			t.Errorf("faulted run missing metric %s (have %v)", k, fres.Metrics)
		}
	}
	if fres.Metrics["fault_link_stalls"] == 0 {
		t.Error("uplink outage caused no stall")
	}
	if fres.MaxMbps() >= hres.MaxMbps() {
		t.Errorf("faulted bandwidth %.1f not below healthy %.1f", fres.MaxMbps(), hres.MaxMbps())
	}

	reseeded := faulted
	plan := *faulted.Faults
	plan.Seed = 8
	reseeded.Faults = &plan
	if faulted.Fingerprint() == reseeded.Fingerprint() {
		t.Error("plan seed does not reach the fingerprint")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Events: []FaultEvent{{At: -time.Second, Kind: FaultDown, Site: "rennes"}}},
		{Events: []FaultEvent{{Kind: FaultDown}}},                                      // no target
		{Events: []FaultEvent{{Kind: FaultDown, Site: "rennes", Host: "rennes-1"}}},    // both targets
		{Events: []FaultEvent{{Kind: FaultDown, Site: "rennes", Loss: 0.1}}},           // loss on down
		{Events: []FaultEvent{{Kind: FaultLoss, Loss: 1.5}}},                           // p out of range
		{Events: []FaultEvent{{Kind: FaultLoss, Loss: 0.1, Jitter: time.Millisecond}}}, // jitter on loss
		{Events: []FaultEvent{{Kind: FaultJitter, Jitter: -time.Millisecond}}},
		{Events: []FaultEvent{{Kind: "reboot", Site: "rennes"}}},
		{Events: []FaultEvent{{Kind: FaultCrash}}},                              // no target
		{Events: []FaultEvent{{Kind: FaultCrash, Site: "rennes"}}},              // site crash
		{Events: []FaultEvent{{Kind: FaultCrash, Host: "rennes-1", Loss: 0.1}}}, // loss on crash
		{Events: []FaultEvent{ // a crashed host must stay dead
			{At: 10 * time.Millisecond, Kind: FaultCrash, Host: "rennes-1"},
			{At: 50 * time.Millisecond, Kind: FaultUp, Host: "rennes-1"},
		}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
	if err := tinyFaultPlan().Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	crash := FaultPlan{Events: []FaultEvent{
		{At: 10 * time.Millisecond, Kind: FaultCrash, Host: "rennes-1"},
		// An up for a *different* host, or one scheduled before the crash
		// hits, does not resurrect the crashed one.
		{At: 50 * time.Millisecond, Kind: FaultUp, Host: "nancy-1"},
		{At: 5 * time.Millisecond, Kind: FaultUp, Host: "rennes-1"},
	}}
	if err := crash.Validate(); err != nil {
		t.Errorf("good crash plan rejected: %v", err)
	}
	if err := (*FaultPlan)(nil).Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestFaultTargetResolution(t *testing.T) {
	for _, tc := range []struct {
		name string
		ev   FaultEvent
		want string // substring of the expected error, "" = ok
	}{
		{"unknown site", FaultEvent{Kind: FaultDown, Site: "toulouse"}, "no uplink"},
		{"unknown host", FaultEvent{Kind: FaultDown, Host: "rennes-99"}, "not in this topology"},
		{"host nic", FaultEvent{Kind: FaultDown, Host: "rennes-1"}, ""},
		{"untargeted loss", FaultEvent{Kind: FaultLoss, Loss: 0.01}, ""},
	} {
		e := tinyPingPong(mpiimpl.RawTCP, Tuning{})
		e.Faults = &FaultPlan{Events: []FaultEvent{tc.ev,
			// Recover so down events cannot stall the pingpong forever.
			{At: 50 * time.Millisecond, Kind: FaultUp, Site: tc.ev.Site, Host: tc.ev.Host}}}
		if tc.ev.Kind == FaultLoss {
			e.Faults.Events = e.Faults.Events[:1]
		}
		res := Run(e)
		if tc.want == "" {
			if res.Err != "" {
				t.Errorf("%s: unexpected error %q", tc.name, res.Err)
			}
			continue
		}
		if !strings.Contains(res.Err, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, res.Err, tc.want)
		}
	}
}

// TestCrashFaultCausesDNF is the node-crash satellite end to end: killing
// one host mid-ring strands the surviving rank on a receive that can
// never complete, so the run exhausts its time budget and reports DNF
// (not an error). The survivors' coroutines are still parked when
// exp.Run's deferred Kernel.Close fires — a hang or panic here means the
// single-threaded scheduler mishandled permanently-parked processes. The
// crashed run must also replay bit-for-bit like any other faulted run.
func TestCrashFaultCausesDNF(t *testing.T) {
	e := Experiment{
		Impl:     mpiimpl.MPICH2,
		Topology: Grid(1),
		Workload: PatternWorkload("ring", 1024, 50),
	}
	e.Workload.Timeout = 2 * time.Second
	e.Faults = &FaultPlan{Events: []FaultEvent{
		{At: 5 * time.Millisecond, Kind: FaultCrash, Host: "rennes-1"},
	}}
	res := Run(e)
	if res.Err != "" {
		t.Fatalf("crashed run errored instead of DNF: %s", res.Err)
	}
	if !res.DNF {
		t.Fatal("run with a crashed endpoint finished inside its budget")
	}
	if _, ok := res.Metrics["fault_link_stalls"]; !ok {
		t.Errorf("crashed run missing degraded-mode metrics (have %v)", res.Metrics)
	}
	a := MarshalResults([]Result{res})
	b := MarshalResults([]Result{Run(e)})
	if !bytes.Equal(a, b) {
		t.Fatal("crashed run is not deterministic across replays")
	}

	healthy := e
	healthy.Faults = nil
	if hres := Run(healthy); hres.DNF || hres.Err != "" {
		t.Fatalf("healthy control run under the same budget: DNF=%v err=%q", hres.DNF, hres.Err)
	}
}

// TestFaultsRejectedByOwnedStackWorkloads: ray2mesh and fabric build their
// own simulation stacks, so a fault plan cannot be honored — it must be
// rejected, never silently ignored.
func TestFaultsRejectedByOwnedStackWorkloads(t *testing.T) {
	ray := Experiment{Impl: mpiimpl.MPICH2, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.02)}
	ray.Faults = tinyFaultPlan()
	if res := Run(ray); !strings.Contains(res.Err, "fault") {
		t.Errorf("ray2mesh with faults: err = %q", res.Err)
	}
	fab := Experiment{
		Impl:     mpiimpl.MPICH2,
		Workload: FabricWorkload(5*time.Microsecond, 1.25e9, time.Microsecond, 10*time.Microsecond, tinySizes, 2),
	}
	fab.Faults = tinyFaultPlan()
	if res := Run(fab); !strings.Contains(res.Err, "fault") {
		t.Errorf("fabric with faults: err = %q", res.Err)
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed=7; 20ms down site=rennes; 120ms up site=rennes; 0s loss 0.02")
	if err != nil {
		t.Fatal(err)
	}
	if want := tinyFaultPlan(); plan.Seed != want.Seed || len(plan.Events) != len(want.Events) {
		t.Fatalf("parsed %+v, want %+v", plan, want)
	}
	for i, ev := range plan.Events {
		if ev != tinyFaultPlan().Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, tinyFaultPlan().Events[i])
		}
	}

	if p, err := ParseFaultPlan("  "); p != nil || err != nil {
		t.Errorf("blank spec = %v, %v; want nil, nil", p, err)
	}
	if p, err := ParseFaultPlan("1s jitter 2ms host=nancy-1"); err != nil {
		t.Errorf("jitter spec rejected: %v", err)
	} else if ev := p.Events[0]; ev.Jitter != 2*time.Millisecond || ev.Host != "nancy-1" {
		t.Errorf("jitter event = %+v", ev)
	}
	if p, err := ParseFaultPlan("50ms crash host=rennes-1"); err != nil {
		t.Errorf("crash spec rejected: %v", err)
	} else if ev := p.Events[0]; ev != (FaultEvent{At: 50 * time.Millisecond, Kind: FaultCrash, Host: "rennes-1"}) {
		t.Errorf("crash event = %+v", ev)
	}

	for _, bad := range []string{
		"down site=rennes",              // missing time
		"1s down",                       // missing target
		"1s loss",                       // missing probability
		"1s loss nope",                  // bad probability
		"1s jitter",                     // missing duration
		"1s frobnicate site=x",          // unknown kind
		"seed=x",                        // bad seed
		"1s down site=a extra=b",        // unknown field
		"1s down site=a host=b",         // both targets
		"1s loss 0.5 jitter",            // trailing junk
		"1s crash site=rennes",          // crash needs a host
		"1s crash host=a; 2s up host=a", // no resurrection
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}
