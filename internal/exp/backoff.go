package exp

import (
	"errors"
	"math/rand/v2"
	"time"
)

// transientError marks a failure worth retrying: the operation did not
// happen (or cannot be known to have happened) because of a condition
// expected to clear on its own — a connection refused while a server
// restarts, a timeout, a 5xx. Permanent failures (4xx rejections,
// protocol violations) are never wrapped, so retry loops fail fast on
// them.
type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }

// Transient marks err as retryable for Backoff.Do and IsTransient.
// A nil error stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientError{err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// retryable via Transient.
func IsTransient(err error) bool {
	var t transientError
	return errors.As(err, &t)
}

// Backoff retries transient failures with capped exponential delays and
// equal jitter (half the delay fixed, half random — spreading a fleet's
// reconnection stampede after a sweepd restart). The zero value retries
// nothing: Window is the opt-in.
type Backoff struct {
	// Base is the first retry delay (default 100ms).
	Base time.Duration
	// Cap bounds any single delay (default 5s).
	Cap time.Duration
	// Window is the total delay budget across all retries of one
	// operation; once the budget would be exceeded the last transient
	// error is returned. Zero disables retrying entirely.
	Window time.Duration

	// Sleep and Rand are test seams; nil means time.Sleep and the
	// shared math/rand source.
	Sleep func(time.Duration)
	Rand  func() float64
}

// DefaultRetryWindow is the fleet CLI's transient-failure budget: long
// enough to ride through a sweepd restart (process replacement plus
// journal replay), short enough that a genuinely dead control plane
// fails the caller in well under a minute.
const DefaultRetryWindow = 30 * time.Second

// Do runs op, retrying while it returns a Transient-marked error and
// the delay budget lasts. The first non-transient result (success or
// permanent failure) is returned as-is; an exhausted budget returns
// the last transient error.
func (b Backoff) Do(op func() error) error {
	err := op()
	if err == nil || !IsTransient(err) || b.Window <= 0 {
		return err
	}
	base, cap, sleep, rnd := b.Base, b.Cap, b.Sleep, b.Rand
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	// The budget is accounted in intended delay, not wall clock, so a
	// stubbed Sleep cannot turn an always-failing op into a spin loop.
	var spent time.Duration
	for delay := base; ; delay = min(2*delay, cap) {
		d := delay/2 + time.Duration(rnd()*float64(delay/2))
		if spent+d > b.Window {
			return err
		}
		sleep(d)
		spent += d
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
}
