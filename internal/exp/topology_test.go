package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
	"repro/internal/perf"
)

// TestTopologyFingerprintBackwardCompat pins the wire encoding to the
// one used before per-site layouts existed: a uniform topology must
// fingerprint exactly as the old {Sites, NodesPerSite} struct did, or
// every pre-PR DiskCache directory would silently turn into misses.
// The expected hashes are computed from hand-written legacy JSON, not
// from the current encoder, so this cannot rot into a tautology.
func TestTopologyFingerprintBackwardCompat(t *testing.T) {
	legacyFingerprint := func(raw string) string {
		sum := sha256.Sum256([]byte(raw))
		return hex.EncodeToString(sum[:8])
	}
	// The legacy marshaling of tinyPingPong(GridMPI, tcp-tuned): struct
	// field order impl, tuning, topology{sites, nodes_per_site}, workload.
	legacy := `{"impl":"GridMPI","tuning":{"tcp":true,"mpi":false},` +
		`"topology":{"sites":["rennes","nancy"],"nodes_per_site":1},` +
		`"workload":{"kind":"pingpong","sizes":[1024,65536],"reps":3}}`
	if got, want := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true}).Fingerprint(), legacyFingerprint(legacy); got != want {
		t.Errorf("uniform-topology fingerprint = %s, want legacy %s", got, want)
	}
	// A zero topology (ray2mesh/fabric-style experiments) marshaled as
	// {"sites":null,"nodes_per_site":0}.
	legacyRay := `{"impl":"MPICH2","tuning":{"tcp":false,"mpi":false},` +
		`"topology":{"sites":null,"nodes_per_site":0},` +
		`"workload":{"kind":"ray2mesh","scale":0.05,"master":"rennes"}}`
	rayExp := Experiment{Impl: mpiimpl.MPICH2, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)}
	if got, want := rayExp.Fingerprint(), legacyFingerprint(legacyRay); got != want {
		t.Errorf("zero-topology fingerprint = %s, want legacy %s", got, want)
	}
}

// TestTopologyEncodingEquivalences: the new spellings that mean the same
// testbed share a fingerprint, and the ones that do not, do not.
func TestTopologyEncodingEquivalences(t *testing.T) {
	base := tinyPingPong(mpiimpl.GridMPI, Tuning{})
	// A uniform Asym layout is the same topology as Grid.
	asUniform := base
	asUniform.Topology = Asym(Site(grid5000.Rennes, 1), Site(grid5000.Nancy, 1))
	if base.Fingerprint() != asUniform.Fingerprint() {
		t.Error("Asym(rennes×1, nancy×1) fingerprints differently from Grid(1)")
	}
	// Explicit block placement is the zero placement.
	blocked := base
	blocked.Topology.Placement = PlaceBlock
	if base.Fingerprint() != blocked.Fingerprint() {
		t.Error("explicit block placement fingerprints differently from the default")
	}
	// Round-robin is a different experiment.
	rr := base
	rr.Topology.Placement = PlaceRoundRobin
	if base.Fingerprint() == rr.Fingerprint() {
		t.Error("round-robin placement shares the block fingerprint")
	}
	// An asymmetric layout is a different experiment.
	asym := base
	asym.Topology = Asym(Site(grid5000.Rennes, 2), Site(grid5000.Nancy, 1))
	if base.Fingerprint() == asym.Fingerprint() {
		t.Error("asymmetric layout shares the uniform fingerprint")
	}
	// Round-trip: both encodings unmarshal to the same topology.
	for _, raw := range []string{
		`{"sites":["rennes","nancy"],"nodes_per_site":2}`,
		`{"layout":[{"name":"rennes","nodes":2},{"name":"nancy","nodes":2}]}`,
	} {
		var topo Topology
		if err := json.Unmarshal([]byte(raw), &topo); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if topo.String() != Grid(2).String() {
			t.Errorf("unmarshal %s = %s, want %s", raw, topo, Grid(2))
		}
		blob, err := json.Marshal(topo)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != `{"sites":["rennes","nancy"],"nodes_per_site":2}` {
			t.Errorf("canonical re-marshal of %s = %s", raw, blob)
		}
	}
}

// TestPrePRDiskCacheServesHits replays experiments against a DiskCache
// directory written by the pre-redesign code (testdata, generated before
// the Topology change): every one must be served from disk, proving old
// cache directories survive the API redesign.
func TestPrePRDiskCacheServesHits(t *testing.T) {
	src := filepath.Join("testdata", "prepr-cache")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	// Copy to a temp dir: a miss would re-run and overwrite testdata.
	dir := t.TempDir()
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(2, store)

	// The exact experiment set the pre-PR capture ran (see
	// testdata/prepr-cache): the pingpong matrix plus one experiment per
	// workload kind and override axis.
	sizes := perf.PowersOfTwoSizes(1<<10, 64<<10)
	var exps []Experiment
	for _, impl := range []string{mpiimpl.RawTCP, mpiimpl.GridMPI} {
		for _, tun := range []Tuning{{}, {TCP: true}} {
			exps = append(exps, Experiment{
				Impl: impl, Tuning: tun, Topology: Grid(1),
				Workload: PingPongWorkload(sizes, 3),
			})
		}
	}
	exps = append(exps,
		Experiment{Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true},
			Topology: Grid(2), Workload: NPBWorkload("EP", 0.02)},
		Experiment{Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true},
			Topology: Cluster(4), Workload: NPBWorkload("CG", 0)},
		Experiment{Impl: mpiimpl.GridMPI, Tuning: Tuning{TCP: true},
			Topology: Grid(2), Workload: PatternWorkload("bcast", 4<<10, 3)},
		Experiment{Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true},
			Topology: Ray2MeshTopology(), Workload: Ray2MeshWorkload(grid5000.Rennes, 0.01)},
		Experiment{Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true},
			Topology: Grid(1), Workload: PingPongWorkload([]int{512 << 10}, 3), EagerThreshold: 1 << 20},
		Experiment{Impl: mpiimpl.RawTCP, Tuning: Tuning{TCP: true},
			Topology: Grid(1), Workload: PingPongWorkload([]int{64 << 20}, 2), SocketBuffer: 1 << 20},
	)
	if len(exps) != len(entries) {
		t.Fatalf("test drift: %d experiments vs %d cached entries", len(exps), len(entries))
	}
	for _, res := range r.RunAll(exps) {
		if res.Err != "" {
			t.Fatalf("%s: %s", res.Exp.Name(), res.Err)
		}
	}
	stats := r.CacheStats()
	if stats.Computed != 0 || stats.Disk != int64(len(exps)) {
		t.Errorf("pre-PR cache served %d/%d from disk (%d recomputed), want 100%% hits",
			stats.Disk, len(exps), stats.Computed)
	}
}

// TestTopologyValidate: malformed layouts come back as errors from
// Build/Validate, never as a mid-run panic.
func TestTopologyValidate(t *testing.T) {
	cases := map[string]Topology{
		"empty":             {},
		"unknown site":      Asym(Site("paris", 2)),
		"zero nodes":        Asym(Site(grid5000.Rennes, 0)),
		"duplicate site":    Asym(Site(grid5000.Rennes, 2), Site(grid5000.Rennes, 2)),
		"bad placement":     {Layout: []SiteSpec{{grid5000.Rennes, 2}}, Placement: "scatter"},
		"master not in set": {Layout: []SiteSpec{{grid5000.Rennes, 2}}, Placement: PlaceMasterOn(grid5000.Nancy)},
		"zero stride":       {Layout: []SiteSpec{{grid5000.Rennes, 2}}, Placement: PlaceStrided(0)},
		"bad stride":        {Layout: []SiteSpec{{grid5000.Rennes, 2}}, Placement: "strided:two"},
		"negative stride":   {Layout: []SiteSpec{{grid5000.Rennes, 2}}, Placement: "strided:-3"},
	}
	for name, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %s", name, topo)
		}
		if _, err := topo.Build(); err == nil {
			t.Errorf("%s: Build accepted %s", name, topo)
		}
	}
	if _, err := Asym(Site(grid5000.Rennes, 8), Site(grid5000.Nancy, 4), Site(grid5000.Sophia, 4)).Build(); err != nil {
		t.Errorf("3-site asymmetric layout rejected: %v", err)
	}
}

// TestEvenSplit: the NP-vs-layout divisibility check that replaced
// npb.Run's ad-hoc odd-NP rejection.
func TestEvenSplit(t *testing.T) {
	topo, err := EvenSplit(16, grid5000.Rennes, grid5000.Nancy)
	if err != nil || topo.NP() != 16 || len(topo.Layout) != 2 || topo.Layout[1].Nodes != 8 {
		t.Fatalf("EvenSplit(16, 2 sites) = %s, %v", topo, err)
	}
	if _, err := EvenSplit(5, grid5000.Rennes, grid5000.Nancy); err == nil {
		t.Error("odd NP across two sites accepted")
	}
	if _, err := EvenSplit(0, grid5000.Rennes); err == nil {
		t.Error("NP=0 accepted")
	}
	if _, err := EvenSplit(4); err == nil {
		t.Error("no sites accepted")
	}
}

// TestParseLayout covers the CLI layout syntax.
func TestParseLayout(t *testing.T) {
	topo, err := ParseLayout("rennes:8+nancy:4+sophia:4")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NP() != 16 || topo.Layout[0] != Site("rennes", 8) || topo.Layout[2] != Site("sophia", 4) {
		t.Errorf("parsed layout = %s", topo)
	}
	if topo2, err := ParseLayout("rennes+nancy"); err != nil || topo2.NP() != 2 {
		t.Errorf("countless layout = %s, %v", topo2, err)
	}
	for _, bad := range []string{"", "rennes:x", "paris:4", "rennes:0"} {
		if _, err := ParseLayout(bad); err == nil {
			t.Errorf("ParseLayout(%q) accepted", bad)
		}
	}
}

// TestRankHostsPlacements: the placement policies produce the documented
// rank→host mappings.
func TestRankHostsPlacements(t *testing.T) {
	topo := Asym(Site(grid5000.Rennes, 2), Site(grid5000.Nancy, 1), Site(grid5000.Sophia, 2))
	net, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	names := func(p Placement) []string {
		topo.Placement = p
		hosts := topo.RankHosts(net)
		out := make([]string, len(hosts))
		for i, h := range hosts {
			out[i] = h.Name
		}
		return out
	}
	equal := func(got, want []string) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if got := names(""); !equal(got, []string{"rennes-1", "rennes-2", "nancy-1", "sophia-1", "sophia-2"}) {
		t.Errorf("block placement = %v", got)
	}
	if got := names(PlaceRoundRobin); !equal(got, []string{"rennes-1", "nancy-1", "sophia-1", "rennes-2", "sophia-2"}) {
		t.Errorf("round-robin placement = %v", got)
	}
	if got := names(PlaceMasterOn(grid5000.Sophia)); !equal(got, []string{"sophia-1", "sophia-2", "rennes-1", "rennes-2", "nancy-1"}) {
		t.Errorf("master-on-sophia placement = %v", got)
	}
	// strided:1 deals one host per site per rotation — round-robin.
	if got := names(PlaceStrided(1)); !equal(got, names(PlaceRoundRobin)) {
		t.Errorf("strided:1 placement = %v, want the round-robin order", got)
	}

	// On an asymmetric layout the stride is visible: two consecutive
	// ranks per site before rotating, remainders dealt in later passes.
	wide := Asym(Site(grid5000.Rennes, 4), Site(grid5000.Nancy, 2))
	wideNet, err := wide.Build()
	if err != nil {
		t.Fatal(err)
	}
	wide.Placement = PlaceStrided(2)
	hosts := wide.RankHosts(wideNet)
	got := make([]string, len(hosts))
	for i, h := range hosts {
		got[i] = h.Name
	}
	if want := []string{"rennes-1", "rennes-2", "nancy-1", "nancy-2", "rennes-3", "rennes-4"}; !equal(got, want) {
		t.Errorf("strided:2 placement = %v, want %v", got, want)
	}
}

// TestStridedPlacementFingerprints: the stride is an experiment axis —
// each k fingerprints separately, and the frozen block/round-robin
// fingerprints are untouched by the new grammar.
func TestStridedPlacementFingerprints(t *testing.T) {
	base := tinyPingPong(mpiimpl.MPICH2, Tuning{})
	base.Topology = Asym(Site(grid5000.Rennes, 4), Site(grid5000.Nancy, 2))
	fps := map[string]bool{}
	for _, p := range []Placement{PlaceBlock, PlaceRoundRobin, PlaceStrided(1), PlaceStrided(2), PlaceStrided(3)} {
		e := base
		e.Topology.Placement = p
		fps[e.Fingerprint()] = true
	}
	if len(fps) != 5 {
		t.Errorf("got %d distinct fingerprints across 5 placements, want 5", len(fps))
	}
}

// TestPlacementReachesSimulation: moving the broadcast root across the
// WAN via PlaceMasterOn changes the measured pattern time — placement is
// an experiment axis, not a label.
func TestPlacementReachesSimulation(t *testing.T) {
	base := Experiment{
		Impl:     mpiimpl.MPICH2,
		Tuning:   Tuning{TCP: true},
		Topology: Asym(Site(grid5000.Rennes, 4), Site(grid5000.Nancy, 1)),
		Workload: PatternWorkload("bcast", 256<<10, 3),
	}
	moved := base
	moved.Topology.Placement = PlaceMasterOn(grid5000.Nancy)
	a, b := Run(base), Run(moved)
	if a.Err != "" || b.Err != "" {
		t.Fatalf("errs: %q, %q", a.Err, b.Err)
	}
	// Rooting the bcast on the 1-node Nancy side forces 4 of 4 transfers
	// across the WAN instead of 1: strictly slower.
	if b.Elapsed <= a.Elapsed {
		t.Errorf("bcast rooted on nancy (%v) not slower than rennes root (%v)", b.Elapsed, a.Elapsed)
	}
	// Round-robin on a symmetric grid interleaves sites: the ring pattern
	// crosses the WAN at every hop instead of twice.
	ringBlock := Experiment{
		Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true},
		Topology: Grid(2), Workload: PatternWorkload("ring", 64<<10, 2),
	}
	ringRR := ringBlock
	ringRR.Topology.Placement = PlaceRoundRobin
	rb, rr := Run(ringBlock), Run(ringRR)
	if rb.Err != "" || rr.Err != "" {
		t.Fatalf("ring errs: %q, %q", rb.Err, rr.Err)
	}
	if rr.Census.WANSends <= rb.Census.WANSends {
		t.Errorf("round-robin ring WAN sends (%d) not above block (%d)", rr.Census.WANSends, rb.Census.WANSends)
	}
}

// TestAsymmetricWorkloadsEndToEnd is the acceptance scenario: a 3-site
// asymmetric topology (Rennes×8 + Nancy×4 + Sophia×4) runs NPB,
// pingpong and ray2mesh through exp.Run.
func TestAsymmetricWorkloadsEndToEnd(t *testing.T) {
	topo := Asym(Site(grid5000.Rennes, 8), Site(grid5000.Nancy, 4), Site(grid5000.Sophia, 4))

	npbRes := Run(Experiment{Impl: mpiimpl.GridMPI, Tuning: Tuning{TCP: true},
		Topology: topo, Workload: NPBWorkload("CG", 0.02)})
	if npbRes.Err != "" || npbRes.DNF || npbRes.Census.P2PSends == 0 {
		t.Errorf("asymmetric NPB: err=%q dnf=%v p2p=%d", npbRes.Err, npbRes.DNF, npbRes.Census.P2PSends)
	}

	ppRes := Run(Experiment{Impl: mpiimpl.GridMPI, Tuning: Tuning{TCP: true},
		Topology: topo, Workload: PingPongWorkload([]int{1 << 10, 64 << 10}, 3)})
	if ppRes.Err != "" || len(ppRes.Points) != 2 {
		t.Errorf("asymmetric pingpong: err=%q points=%d", ppRes.Err, len(ppRes.Points))
	}
	// The endpoints straddle the Rennes–Nancy WAN: the RTT must dwarf a
	// cluster-local pingpong's.
	local := Run(Experiment{Impl: mpiimpl.GridMPI, Tuning: Tuning{TCP: true},
		Topology: Cluster(2), Workload: PingPongWorkload([]int{1 << 10}, 3)})
	if ppRes.Points[0].MinRTT < 10*local.Points[0].MinRTT {
		t.Errorf("asymmetric pingpong RTT %v does not look like a WAN pair (local %v)",
			ppRes.Points[0].MinRTT, local.Points[0].MinRTT)
	}

	// 0.05 = 50 chunks: enough self-scheduling rounds that every one of
	// the 16 slaves gets fed and per-node speed differences show.
	rayRes := Run(Experiment{Impl: mpiimpl.MPICH2, Tuning: Tuning{TCP: true},
		Topology: topo, Workload: Ray2MeshWorkload(grid5000.Rennes, 0.05)})
	if rayRes.Err != "" {
		t.Fatalf("asymmetric ray2mesh: %s", rayRes.Err)
	}
	if rayRes.Metrics["total_rays"] != 50000 {
		t.Errorf("asymmetric ray2mesh rays = %g, want 50000", rayRes.Metrics["total_rays"])
	}
	for _, site := range []string{grid5000.Rennes, grid5000.Nancy, grid5000.Sophia} {
		if rayRes.Metrics["rays_per_node_"+site] <= 0 {
			t.Errorf("no rays on %s", site)
		}
	}
	// Sophia's faster nodes out-trace Nancy's per node, as in Table 6.
	if rayRes.Metrics["rays_per_node_"+grid5000.Sophia] <= rayRes.Metrics["rays_per_node_"+grid5000.Nancy] {
		t.Errorf("sophia rays/node (%g) not above nancy (%g)",
			rayRes.Metrics["rays_per_node_"+grid5000.Sophia], rayRes.Metrics["rays_per_node_"+grid5000.Nancy])
	}
	// The asymmetric layout's fingerprint is distinct and stable.
	if !strings.Contains(Experiment{Topology: topo}.Name(), "rennes:8+nancy:4+sophia:4") {
		t.Errorf("asymmetric topology label = %s", topo)
	}
}

// TestWANOverridesOnAsymmetricLayouts: the WAN override path builds
// per-site node counts too.
func TestWANOverridesOnAsymmetricLayouts(t *testing.T) {
	topo := Asym(Site(grid5000.Rennes, 2), Site(grid5000.Nancy, 1))
	topo.WANOneWay = 40 * time.Millisecond
	net, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(net.SiteHosts(grid5000.Rennes)); got != 2 {
		t.Errorf("rennes hosts = %d, want 2", got)
	}
	p := net.Path(net.Host("rennes-1"), net.Host("nancy-1"))
	if p.OneWay != 40*time.Millisecond {
		t.Errorf("override one-way = %v", p.OneWay)
	}
}
