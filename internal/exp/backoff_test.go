package exp

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestTransientMarking: the marker survives wrapping, ignores nil, and
// leaves unmarked errors alone.
func TestTransientMarking(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	base := errors.New("connection refused")
	if !IsTransient(Transient(base)) {
		t.Error("marked error not transient")
	}
	if !IsTransient(fmt.Errorf("lease: %w", Transient(base))) {
		t.Error("marker lost through wrapping")
	}
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	if got := Transient(base).Error(); got != base.Error() {
		t.Errorf("message changed: %q", got)
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Unwrap broken: errors.Is lost the cause")
	}
}

// stubBackoff returns a Backoff whose sleeps are recorded, not slept,
// and whose jitter is deterministic (always the full half-delay).
func stubBackoff(window time.Duration, slept *[]time.Duration) Backoff {
	return Backoff{
		Base:   100 * time.Millisecond,
		Cap:    time.Second,
		Window: window,
		Sleep:  func(d time.Duration) { *slept = append(*slept, d) },
		Rand:   func() float64 { return 1.0 },
	}
}

// TestBackoffRetriesUntilSuccess: transient failures retry with growing
// capped delays; the first success returns.
func TestBackoffRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := stubBackoff(time.Minute, &slept).Do(func() error {
		calls++
		if calls < 4 {
			return Transient(errors.New("refused"))
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want success on call 4", err, calls)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	// With Rand pinned to 1.0 the delays are the full exponential
	// sequence: 100ms, 200ms, 400ms.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	for i, d := range slept {
		if d != want[i] {
			t.Errorf("delay %d = %v, want %v", i, d, want[i])
		}
	}
}

// TestBackoffCapsDelay: the per-retry delay never exceeds Cap however
// long the outage lasts.
func TestBackoffCapsDelay(t *testing.T) {
	var slept []time.Duration
	stubBackoff(10*time.Second, &slept).Do(func() error {
		return Transient(errors.New("down"))
	})
	if len(slept) == 0 {
		t.Fatal("no retries")
	}
	for _, d := range slept {
		if d > time.Second {
			t.Errorf("delay %v exceeds the 1s cap", d)
		}
	}
}

// TestBackoffPermanentFailsFast: an unmarked error returns immediately,
// no sleeping.
func TestBackoffPermanentFailsFast(t *testing.T) {
	var slept []time.Duration
	calls := 0
	rejected := errors.New("422 rejected")
	err := stubBackoff(time.Minute, &slept).Do(func() error {
		calls++
		return rejected
	})
	if !errors.Is(err, rejected) || calls != 1 || len(slept) != 0 {
		t.Fatalf("err=%v calls=%d slept=%v, want one call, no sleep", err, calls, slept)
	}
}

// TestBackoffWindowBudget: an op that never recovers stops once the
// summed intended delays would exceed the window, returning the last
// transient error — even with a stub Sleep that takes no wall time.
func TestBackoffWindowBudget(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := stubBackoff(time.Second, &slept).Do(func() error {
		calls++
		return Transient(fmt.Errorf("down %d", calls))
	})
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want the last transient error", err)
	}
	var total time.Duration
	for _, d := range slept {
		total += d
	}
	if total > time.Second {
		t.Errorf("slept %v total, window was 1s", total)
	}
	if calls < 3 {
		t.Errorf("gave up after %d calls, expected several within the window", calls)
	}
}

// TestBackoffZeroWindowDisabled: the zero value retries nothing.
func TestBackoffZeroWindowDisabled(t *testing.T) {
	calls := 0
	err := Backoff{}.Do(func() error {
		calls++
		return Transient(errors.New("down"))
	})
	if calls != 1 || !IsTransient(err) {
		t.Fatalf("calls=%d err=%v, want exactly one attempt", calls, err)
	}
}
