// This file implements performance-guideline checking in the style of
// Träff et al.'s "Self-consistent MPI performance guidelines" and Hunold
// & Carpen-Amarie's "Tuning MPI Collectives by Verifying Performance
// Guidelines" (PAPERS.md): a specialized collective must not be slower
// than a composition of more general ones that moves the same data — if
// Allgather loses to Gather+Bcast, the Allgather algorithm (not the
// network) is the bottleneck, and the implementation leaves tuning
// headroom on the table. The sweep runs each pattern as an ordinary
// cached experiment, so guideline verdicts are as deterministic and
// replayable as any other cell.

package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Guideline is one self-consistency rule: the LHS collective should take
// at most as long as running the RHS patterns back to back, because the
// RHS composition implements (a superset of) the same data movement.
type Guideline struct {
	LHS string   // the specialized collective pattern...
	RHS []string // ...that must not lose to this composition's summed time
	// ScaleByP multiplies the RHS sum by the number of ranks P, for
	// rules whose naive composition runs one RHS instance per rank
	// (e.g. alltoall as P rooted scatters).
	ScaleByP bool
}

// String renders the rule the way the papers write it, e.g.
// "allgather <= gather+bcast" or "alltoall <= P*(scatter)".
func (g Guideline) String() string {
	if g.ScaleByP {
		return g.LHS + " <= P*(" + strings.Join(g.RHS, "+") + ")"
	}
	return g.LHS + " <= " + strings.Join(g.RHS, "+")
}

// DefaultGuidelines is the rule set -guidelines checks, mirroring the
// monotony and composition rules of the guideline papers that are
// expressible with this repo's collectives:
//
//   - Allgather(n) <= Gather(n)+Bcast(n): gathering to a root and
//     rebroadcasting is one (naive) allgather implementation.
//   - Allreduce(n) <= Reduce(n)+Bcast(n): same argument for reductions.
//   - Bcast(n) <= Scatter(n)+Allgather(n): the van-de-Geijn bcast.
//   - Gather(n) <= Allgather(n): delivering to one root cannot cost
//     more than delivering to everyone.
//   - Reduce(n) <= Allreduce(n): same specialization argument.
//   - Scatter(n) <= Bcast(n): sending each rank its slice cannot cost
//     more than sending every rank everything.
//   - Alltoall(n) <= P*(Scatter(n)): the personalized exchange is at
//     most P rooted scatters run back to back.
//   - Allreduce(n) <= Reduce(n)+Scatter(n)+Allgather(n): the
//     ReduceScatter-style (Rabenseifner) composition — reduce, split the
//     result, allgather the pieces.
//
// The last two rules became checkable once the multilevel tuning level
// gave the LHS and RHS collectives genuinely distinct algorithms at both
// levels (flat trees vs gateway staging).
var DefaultGuidelines = []Guideline{
	{LHS: "allgather", RHS: []string{"gather", "bcast"}},
	{LHS: "allreduce", RHS: []string{"reduce", "bcast"}},
	{LHS: "bcast", RHS: []string{"scatter", "allgather"}},
	{LHS: "gather", RHS: []string{"allgather"}},
	{LHS: "reduce", RHS: []string{"allreduce"}},
	{LHS: "scatter", RHS: []string{"bcast"}},
	{LHS: "alltoall", RHS: []string{"scatter"}, ScaleByP: true},
	{LHS: "allreduce", RHS: []string{"reduce", "scatter", "allgather"}},
}

// DefaultGuidelineTolerance is the slack factor violations must exceed:
// an LHS is only flagged when it is more than 5% slower than its RHS
// composition, absorbing constant-factor noise (startup barriers, tag
// bookkeeping) that the guideline papers also discount.
const DefaultGuidelineTolerance = 1.05

// GuidelinePatterns returns the deduplicated, order-preserving set of
// pattern names the rules reference — the workloads a guideline sweep
// has to run.
func GuidelinePatterns(rules []Guideline) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, g := range rules {
		add(g.LHS)
		for _, p := range g.RHS {
			add(p)
		}
	}
	return out
}

// GuidelineSuite crosses impls × tunings × topos with one pattern
// workload per pattern the rules need. The experiments are ordinary
// cached cells; faults are deliberately absent — a guideline compares an
// implementation against itself on a healthy network, and a lossy or
// partitioned one would indict the fault plan, not the algorithm.
func GuidelineSuite(impls []string, tunings []Tuning, topos []Topology, rules []Guideline, size, iters int) []Experiment {
	var exps []Experiment
	for _, impl := range impls {
		for _, tun := range tunings {
			for _, topo := range topos {
				for _, p := range GuidelinePatterns(rules) {
					exps = append(exps, Experiment{
						Impl:     impl,
						Tuning:   tun,
						Topology: topo,
						Workload: PatternWorkload(p, size, iters),
					})
				}
			}
		}
	}
	return exps
}

// GuidelineViolation is one broken rule in one configuration.
type GuidelineViolation struct {
	Config string // impl/tuning/topology label
	Rule   Guideline
	LHS    time.Duration // measured time of the specialized collective
	RHS    time.Duration // summed time of the composition
}

func (v GuidelineViolation) String() string {
	return fmt.Sprintf("%s: %s violated: %v > %v (x%.2f)",
		v.Config, v.Rule, v.LHS, v.RHS, float64(v.LHS)/float64(v.RHS))
}

// CheckGuidelines evaluates the rules for one configuration of np ranks.
// elapsed maps a pattern name to its measured time; rules whose patterns
// are missing (unmeasured or failed cells) are skipped, not flagged, as
// are ScaleByP rules when np is unknown (<= 0). A rule is violated when
// LHS > tol × sum(RHS), with the RHS sum scaled by np for ScaleByP rules.
func CheckGuidelines(rules []Guideline, tol float64, np int, elapsed func(pattern string) (time.Duration, bool)) []GuidelineViolation {
	var out []GuidelineViolation
rules:
	for _, g := range rules {
		lhs, ok := elapsed(g.LHS)
		if !ok {
			continue
		}
		var rhs time.Duration
		for _, p := range g.RHS {
			d, ok := elapsed(p)
			if !ok {
				continue rules
			}
			rhs += d
		}
		if g.ScaleByP {
			if np <= 0 {
				continue
			}
			rhs *= time.Duration(np)
		}
		if rhs > 0 && float64(lhs) > tol*float64(rhs) {
			out = append(out, GuidelineViolation{Rule: g, LHS: lhs, RHS: rhs})
		}
	}
	return out
}

// guidelineConfig is one impl/tuning/topology cell group of a guideline
// sweep's results.
type guidelineConfig struct {
	label   string
	np      int                      // rank count, for ScaleByP rules
	elapsed map[string]time.Duration // pattern -> virtual run time
	skipped []string                 // patterns whose cells failed or DNFed
}

// groupGuidelineResults buckets pattern results by configuration,
// preserving first-seen order so reports are deterministic.
func groupGuidelineResults(results []Result) []*guidelineConfig {
	var order []*guidelineConfig
	byLabel := make(map[string]*guidelineConfig)
	for _, res := range results {
		if res.Exp.Workload.Kind != KindPattern {
			continue
		}
		label := fmt.Sprintf("%s/%s/%s", res.Exp.Impl, res.Exp.Tuning, res.Exp.Topology)
		cfg := byLabel[label]
		if cfg == nil {
			cfg = &guidelineConfig{label: label, np: res.Exp.Topology.NP(), elapsed: make(map[string]time.Duration)}
			byLabel[label] = cfg
			order = append(order, cfg)
		}
		p := res.Exp.Workload.Pattern
		if res.Err != "" || res.DNF {
			cfg.skipped = append(cfg.skipped, p)
			continue
		}
		cfg.elapsed[p] = res.Elapsed
	}
	return order
}

// EvaluateGuidelines runs the rules over a guideline sweep's results,
// grouped per configuration. Failed or DNF cells drop the rules that
// reference them (reported via the skipped list) rather than producing
// fake verdicts.
func EvaluateGuidelines(results []Result, rules []Guideline, tol float64) (violations []GuidelineViolation, skipped []string) {
	for _, cfg := range groupGuidelineResults(results) {
		for _, p := range cfg.skipped {
			skipped = append(skipped, fmt.Sprintf("%s: %s cell unusable, rules referencing it skipped", cfg.label, p))
		}
		for _, v := range CheckGuidelines(rules, tol, cfg.np, func(p string) (time.Duration, bool) {
			d, ok := cfg.elapsed[p]
			return d, ok
		}) {
			v.Config = cfg.label
			violations = append(violations, v)
		}
	}
	return violations, skipped
}

// WriteGuidelineReport renders the verdict for humans and scripts: one
// line per violation (or a clean bill), plus any skipped-cell notes. It
// returns the violation count so callers can choose an exit status.
func WriteGuidelineReport(w io.Writer, results []Result, rules []Guideline, tol float64) int {
	violations, skipped := EvaluateGuidelines(results, rules, tol)
	configs := groupGuidelineResults(results)
	fmt.Fprintf(w, "Guidelines: %d rules x %d configurations (tolerance %.2f)\n",
		len(rules), len(configs), tol)
	for _, note := range skipped {
		fmt.Fprintf(w, "  note: %s\n", note)
	}
	if len(violations) == 0 {
		fmt.Fprintln(w, "  all configurations self-consistent")
		return 0
	}
	for _, v := range violations {
		fmt.Fprintf(w, "  VIOLATION %s\n", v)
	}
	return len(violations)
}
