package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/mpiimpl"
)

func entryPath(dir string, e Experiment) string {
	return filepath.Join(dir, e.Fingerprint()+".json")
}

// TestDiskCacheRoundTrip: a result computed by one runner is served,
// byte-identical and marked Cached, to a fresh runner sharing the cache
// directory — the cross-process persistence the in-memory cache lacks.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})

	first := NewRunnerStore(2, store).Run(e)
	if first.Cached {
		t.Error("first run reported a cache hit")
	}
	if _, err := os.Stat(entryPath(dir, e)); err != nil {
		t.Fatalf("no cache entry written: %v", err)
	}

	r2 := NewRunnerStore(2, store)
	second := r2.Run(e)
	if !second.Cached {
		t.Error("fresh runner did not hit the disk cache")
	}
	if got := r2.CacheStats(); got.Disk != 1 || got.Computed != 0 {
		t.Errorf("stats = %+v, want exactly one disk load and nothing computed", got)
	}
	a := MarshalResults([]Result{first})
	b := MarshalResults([]Result{second})
	if !bytes.Equal(a, b) {
		t.Errorf("disk round trip changed the result:\n%s\nvs\n%s", a, b)
	}
	// A repeat on the same runner is a memory serve, not a second load.
	r2.Run(e)
	if got := r2.CacheStats(); got.Memory != 1 || got.Disk != 1 {
		t.Errorf("stats after repeat = %+v, want one memory serve", got)
	}
}

// TestDiskCacheCorruptEntriesAreMisses: garbage, truncated JSON, and
// entries whose stored experiment does not hash back to the requested
// fingerprint are all re-run (and the entry repaired), never trusted.
func TestDiskCacheCorruptEntriesAreMisses(t *testing.T) {
	e := tinyPingPong(mpiimpl.MPICH2, Tuning{TCP: true})
	good := Run(e)
	blob := MarshalResults([]Result{good})

	cases := map[string][]byte{
		"garbage":     []byte("not json at all"),
		"truncated":   blob[:len(blob)/2],
		"empty":       {},
		"wrong-exp":   []byte(`{"experiment":{"impl":"MPICH2","tuning":{"tcp":false,"mpi":false},"topology":{"sites":["rennes"],"nodes_per_site":2},"workload":{"kind":"pingpong","sizes":[4],"reps":1}},"elapsed":1,"census":{}}`),
		"wrong-shape": []byte(`[1,2,3]`),
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := NewDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entryPath(dir, e), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := store.Load(e.Fingerprint()); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			r := NewRunnerStore(1, store)
			res := r.Run(e)
			if res.Cached {
				t.Error("corrupt entry was served from cache")
			}
			if got := r.CacheStats(); got.Computed != 1 || got.Disk != 0 {
				t.Errorf("stats = %+v, want a recompute", got)
			}
			// The recompute must repair the entry in place.
			if repaired, ok := store.Load(e.Fingerprint()); !ok {
				t.Error("entry not repaired after recompute")
			} else if !bytes.Equal(MarshalResults([]Result{repaired}), MarshalResults([]Result{good})) {
				t.Error("repaired entry differs from a direct run")
			}
		})
	}
}

// TestDiskCacheConcurrentSingleExecution hammers one fingerprint through
// a store-backed runner: the experiment runs once, one entry lands on
// disk, and every caller gets the same bytes.
func TestDiskCacheConcurrentSingleExecution(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(4, store)
	e := tinyPingPong(mpiimpl.OpenMPI, Tuning{TCP: true})
	results := make([]Result, 16)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(e)
		}(i)
	}
	wg.Wait()
	if got := r.CacheStats(); got.Computed != 1 {
		t.Errorf("experiment executed %d times, want exactly once", got.Computed)
	}
	ref := MarshalResults([]Result{results[0]})
	for i, res := range results {
		if got := MarshalResults([]Result{res}); !bytes.Equal(got, ref) {
			t.Fatalf("goroutine %d saw different result bytes", i)
		}
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Errorf("store holds %d entries (err=%v), want 1", n, err)
	}
}

// TestDiskCacheSkipsFailedRuns: an Err result describes this process,
// not a measurement; it must not be persisted (a later run may not share
// the defect), while still being served from the in-memory cache.
func TestDiskCacheSkipsFailedRuns(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(1, store)
	bad := Experiment{Impl: "LAM/MPI", Topology: Grid(1), Workload: PingPongWorkload(tinySizes, 1)}
	if res := r.Run(bad); res.Err == "" {
		t.Fatal("bogus implementation did not fail")
	}
	if n, _ := store.Len(); n != 0 {
		t.Errorf("failed run persisted: %d entries", n)
	}
	if res := r.Run(bad); !res.Cached {
		t.Error("failed run not served from the in-memory cache")
	}
}

// TestNewDiskCacheRejectsEmptyDir: an unset -cache flag must be handled
// by the caller, never turned into a cache rooted at "".
func TestNewDiskCacheRejectsEmptyDir(t *testing.T) {
	if _, err := NewDiskCache(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
