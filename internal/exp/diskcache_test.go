package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/mpiimpl"
)

func entryPath(dir string, e Experiment) string {
	return filepath.Join(dir, e.Fingerprint()+".json")
}

// TestDiskCacheRoundTrip: a result computed by one runner is served,
// byte-identical and marked Cached, to a fresh runner sharing the cache
// directory — the cross-process persistence the in-memory cache lacks.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})

	first := NewRunnerStore(2, store).Run(e)
	if first.Cached {
		t.Error("first run reported a cache hit")
	}
	if _, err := os.Stat(entryPath(dir, e)); err != nil {
		t.Fatalf("no cache entry written: %v", err)
	}

	r2 := NewRunnerStore(2, store)
	second := r2.Run(e)
	if !second.Cached {
		t.Error("fresh runner did not hit the disk cache")
	}
	if got := r2.CacheStats(); got.Disk != 1 || got.Computed != 0 {
		t.Errorf("stats = %+v, want exactly one disk load and nothing computed", got)
	}
	a := MarshalResults([]Result{first})
	b := MarshalResults([]Result{second})
	if !bytes.Equal(a, b) {
		t.Errorf("disk round trip changed the result:\n%s\nvs\n%s", a, b)
	}
	// A repeat on the same runner is a memory serve, not a second load.
	r2.Run(e)
	if got := r2.CacheStats(); got.Memory != 1 || got.Disk != 1 {
		t.Errorf("stats after repeat = %+v, want one memory serve", got)
	}
}

// TestDiskCacheCorruptEntriesAreMisses: garbage, truncated JSON, and
// entries whose stored experiment does not hash back to the requested
// fingerprint are all re-run (and the entry repaired), never trusted.
func TestDiskCacheCorruptEntriesAreMisses(t *testing.T) {
	e := tinyPingPong(mpiimpl.MPICH2, Tuning{TCP: true})
	good := Run(e)
	blob := MarshalResults([]Result{good})

	cases := map[string][]byte{
		"garbage":     []byte("not json at all"),
		"truncated":   blob[:len(blob)/2],
		"empty":       {},
		"wrong-exp":   []byte(`{"experiment":{"impl":"MPICH2","tuning":{"tcp":false,"mpi":false},"topology":{"sites":["rennes"],"nodes_per_site":2},"workload":{"kind":"pingpong","sizes":[4],"reps":1}},"elapsed":1,"census":{}}`),
		"wrong-shape": []byte(`[1,2,3]`),
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			store, err := NewDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entryPath(dir, e), corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := store.Load(e.Fingerprint()); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			r := NewRunnerStore(1, store)
			res := r.Run(e)
			if res.Cached {
				t.Error("corrupt entry was served from cache")
			}
			if got := r.CacheStats(); got.Computed != 1 || got.Disk != 0 {
				t.Errorf("stats = %+v, want a recompute", got)
			}
			// The recompute must repair the entry in place.
			if repaired, ok := store.Load(e.Fingerprint()); !ok {
				t.Error("entry not repaired after recompute")
			} else if !bytes.Equal(MarshalResults([]Result{repaired}), MarshalResults([]Result{good})) {
				t.Error("repaired entry differs from a direct run")
			}
		})
	}
}

// TestDiskCacheConcurrentSingleExecution hammers one fingerprint through
// a store-backed runner: the experiment runs once, one entry lands on
// disk, and every caller gets the same bytes.
func TestDiskCacheConcurrentSingleExecution(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(4, store)
	e := tinyPingPong(mpiimpl.OpenMPI, Tuning{TCP: true})
	results := make([]Result, 16)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(e)
		}(i)
	}
	wg.Wait()
	if got := r.CacheStats(); got.Computed != 1 {
		t.Errorf("experiment executed %d times, want exactly once", got.Computed)
	}
	ref := MarshalResults([]Result{results[0]})
	for i, res := range results {
		if got := MarshalResults([]Result{res}); !bytes.Equal(got, ref) {
			t.Fatalf("goroutine %d saw different result bytes", i)
		}
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Errorf("store holds %d entries (err=%v), want 1", n, err)
	}
}

// TestDiskCacheSkipsFailedRuns: an Err result describes this process,
// not a measurement; it must not be persisted (a later run may not share
// the defect), while still being served from the in-memory cache.
func TestDiskCacheSkipsFailedRuns(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(1, store)
	bad := Experiment{Impl: "LAM/MPI", Topology: Grid(1), Workload: PingPongWorkload(tinySizes, 1)}
	if res := r.Run(bad); res.Err == "" {
		t.Fatal("bogus implementation did not fail")
	}
	if n, _ := store.Len(); n != 0 {
		t.Errorf("failed run persisted: %d entries", n)
	}
	if res := r.Run(bad); !res.Cached {
		t.Error("failed run not served from the in-memory cache")
	}
}

// TestNewDiskCacheRejectsEmptyDir: an unset -cache flag must be handled
// by the caller, never turned into a cache rooted at "".
func TestNewDiskCacheRejectsEmptyDir(t *testing.T) {
	if _, err := NewDiskCache(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

// TestDiskCacheSchemaVersion: entries from a foreign schema generation
// miss cleanly (re-run and overwritten); entries written before
// versioning existed (no schema field) still hit.
func TestDiskCacheSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{})
	good := Run(e)

	// Current schema: round-trips.
	if err := store.Store(e.Fingerprint(), good); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(entryPath(dir, e))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(blob, []byte(`"schema": 1`)) {
		t.Error("stored entry carries no schema field")
	}
	if _, ok := store.Load(e.Fingerprint()); !ok {
		t.Fatal("current-schema entry missed")
	}

	// A future schema generation must be a miss, not a corrupt read.
	future := bytes.Replace(blob, []byte(`"schema": 1`), []byte(`"schema": 99`), 1)
	if err := os.WriteFile(entryPath(dir, e), future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(e.Fingerprint()); ok {
		t.Error("foreign-schema entry served as a hit")
	}
	r := NewRunnerStore(1, store)
	if res := r.Run(e); res.Cached {
		t.Error("foreign-schema entry not recomputed")
	}

	// A pre-versioning entry (a bare Result, no schema field) is
	// version 1 — exactly what the old code wrote.
	legacy, err := json.MarshalIndent(good, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryPath(dir, e), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Load(e.Fingerprint()); !ok {
		t.Error("pre-versioning entry missed")
	}
}

// TestDiskCacheEvict: the age bound removes stale entries, the size
// bound removes oldest-first, and fresh entries survive both.
func TestDiskCacheEvict(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	exps := []Experiment{
		tinyPingPong(mpiimpl.RawTCP, Tuning{}),
		tinyPingPong(mpiimpl.MPICH2, Tuning{}),
		tinyPingPong(mpiimpl.GridMPI, Tuning{}),
	}
	NewRunnerStore(2, store).RunAll(exps)
	if n, _ := store.Len(); n != 3 {
		t.Fatalf("store holds %d entries, want 3", n)
	}
	// Back-date the first two entries by a week.
	old := time.Now().Add(-7 * 24 * time.Hour)
	for _, e := range exps[:2] {
		if err := os.Chtimes(entryPath(dir, e), old, old); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := store.Evict(EvictPolicy{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 3 || rep.Removed != 2 {
		t.Errorf("age pass = %+v, want 2 of 3 removed", rep)
	}
	if _, ok := store.Load(exps[2].Fingerprint()); !ok {
		t.Error("fresh entry evicted by the age bound")
	}

	// Size bound: refill, then bound to roughly one entry's size —
	// oldest-first removal keeps the newest.
	NewRunnerStore(2, store).RunAll(exps)
	info, err := os.Stat(entryPath(dir, exps[0]))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range exps[:2] {
		ts := time.Now().Add(-time.Duration(i+1) * time.Hour)
		if err := os.Chtimes(entryPath(dir, e), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = store.Evict(EvictPolicy{MaxBytes: info.Size() + 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 2 || rep.RemainingBytes > info.Size()+16 {
		t.Errorf("size pass = %+v, want 2 removed within the bound", rep)
	}
	if _, ok := store.Load(exps[2].Fingerprint()); !ok {
		t.Error("newest entry evicted by the size bound")
	}
}

// TestParseEvictPolicy covers the CLI spec syntax.
func TestParseEvictPolicy(t *testing.T) {
	p, err := ParseEvictPolicy("720h,512M")
	if err != nil || p.MaxAge != 720*time.Hour || p.MaxBytes != 512<<20 {
		t.Errorf("ParseEvictPolicy(720h,512M) = %+v, %v", p, err)
	}
	if p, err := ParseEvictPolicy("96h"); err != nil || p.MaxAge != 96*time.Hour || p.MaxBytes != 0 {
		t.Errorf("age-only = %+v, %v", p, err)
	}
	if p, err := ParseEvictPolicy("1G"); err != nil || p.MaxBytes != 1<<30 || p.MaxAge != 0 {
		t.Errorf("size-only = %+v, %v", p, err)
	}
	// A lowercase size suffix is a size, as in every other size flag —
	// never a minutes age bound.
	if p, err := ParseEvictPolicy("512m"); err != nil || p.MaxBytes != 512<<20 || p.MaxAge != 0 {
		t.Errorf("lowercase size = %+v, %v", p, err)
	}
	for _, bad := range []string{"", ",", "-3h", "0", "x"} {
		if _, err := ParseEvictPolicy(bad); err == nil {
			t.Errorf("ParseEvictPolicy(%q) accepted", bad)
		}
	}
}
