package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner executes experiments across a bounded worker pool with a
// fingerprint-keyed result cache, optionally layered over a persistent
// Store (see DiskCache). Each experiment builds private simulation
// state, so workers never share anything mutable; results are identical
// whatever the worker count. An executing experiment is exactly one
// goroutine — its simulated ranks are coroutines inside the kernel, not
// goroutines of their own — so Workers() is the true OS-level
// parallelism of a sweep.
//
// The bound is global to the Runner, not per RunAll call: any number of
// goroutines may submit work concurrently (cmd/gridrepro generates every
// section of the paper at once) and at most Workers() experiments
// execute at any moment.
type Runner struct {
	workers int
	store   Store
	// sem bounds concurrently *executing* experiments across all
	// Run/RunAll callers; cache hits bypass it.
	sem chan struct{}

	computed int64 // executed fresh
	memory   int64 // served from the in-memory cache
	disk     int64 // loaded from the backing store
	badStore int64 // backing-store write failures (results stay usable)

	mu    sync.Mutex
	cache map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	res  Result
}

// NewRunner creates a runner with the given pool size; workers <= 0 uses
// one worker per available CPU.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   make(map[string]*cacheEntry),
	}
}

// NewRunnerStore creates a runner whose in-memory cache is backed by a
// persistent store: misses consult the store before executing, and fresh
// results are written through to it.
func NewRunnerStore(workers int, s Store) *Runner {
	r := NewRunner(workers)
	r.store = s
	return r
}

// NewRunnerDir is the CLI wiring of a -cache flag: a plain runner for
// an empty dir, a DiskCache-backed one otherwise.
func NewRunnerDir(workers int, dir string) (*Runner, error) {
	if dir == "" {
		return NewRunner(workers), nil
	}
	store, err := NewDiskCache(dir)
	if err != nil {
		return nil, err
	}
	return NewRunnerStore(workers, store), nil
}

// NewRunnerCache is the CLI wiring of the -cache/-cache-remote flag
// pair. With a remote URL, the runner's backing store is a RemoteStore
// (returned so the front-end can report its counters); a non-empty dir
// then becomes its local read-through/write-behind tier. Without one,
// this is exactly NewRunnerDir and the returned RemoteStore is nil.
func NewRunnerCache(workers int, dir, remote string) (*Runner, *RemoteStore, error) {
	if remote == "" {
		r, err := NewRunnerDir(workers, dir)
		return r, nil, err
	}
	var local *DiskCache
	if dir != "" {
		var err error
		if local, err = NewDiskCache(dir); err != nil {
			return nil, nil, err
		}
	}
	rs, err := NewRemoteStore(remote, local)
	if err != nil {
		return nil, nil, err
	}
	return NewRunnerStore(workers, rs), rs, nil
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// CacheLen reports how many distinct experiments the in-memory cache
// holds.
func (r *Runner) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

// CacheStats is the Runner's served-result accounting, split by source.
type CacheStats struct {
	// Computed experiments were executed by this Runner.
	Computed int64
	// Memory serves came from the in-memory fingerprint cache.
	Memory int64
	// Disk serves were loaded from the backing store.
	Disk int64
	// StoreErrors counts failed write-throughs to the backing store;
	// the corresponding results were still returned to callers.
	StoreErrors int64
}

// Served is the total number of results handed out.
func (s CacheStats) Served() int64 { return s.Computed + s.Memory + s.Disk }

// CacheStats snapshots the hit/miss/load counters.
func (r *Runner) CacheStats() CacheStats {
	return CacheStats{
		Computed:    atomic.LoadInt64(&r.computed),
		Memory:      atomic.LoadInt64(&r.memory),
		Disk:        atomic.LoadInt64(&r.disk),
		StoreErrors: atomic.LoadInt64(&r.badStore),
	}
}

func (r *Runner) entry(fp string) *cacheEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	en, ok := r.cache[fp]
	if !ok {
		en = &cacheEntry{}
		r.cache[fp] = en
	}
	return en
}

// Run executes one experiment, serving repeats from the in-memory cache
// and, when a backing store is configured, from disk. Concurrent calls
// with the same fingerprint run the experiment once; the others block
// until the result is ready and return it marked Cached.
func (r *Runner) Run(e Experiment) Result {
	fp := e.Fingerprint()
	en := r.entry(fp)
	executed, loaded := false, false
	en.once.Do(func() {
		if r.store != nil {
			if res, ok := r.store.Load(fp); ok {
				en.res = res
				loaded = true
				atomic.AddInt64(&r.disk, 1)
				return
			}
		}
		r.sem <- struct{}{}
		en.res = Run(e)
		<-r.sem
		executed = true
		atomic.AddInt64(&r.computed, 1)
		// Failed runs are not persisted: an Err describes this process
		// (a panic, a bad axis), not a measurement worth replaying.
		if r.store != nil && en.res.Err == "" {
			if err := r.store.Store(fp, en.res); err != nil {
				atomic.AddInt64(&r.badStore, 1)
			}
		}
	})
	if !executed && !loaded {
		// This call neither executed nor disk-loaded the entry: it was
		// served from the in-memory cache populated by an earlier call.
		atomic.AddInt64(&r.memory, 1)
	}
	// Deep-copy so a caller mutating its result (sorting points,
	// annotating metrics) cannot corrupt the cached entry.
	res := en.res.clone()
	res.Cached = !executed
	return res
}

// RunAll executes a work list across the pool and returns results in
// input order. Sequential (workers=1) and parallel runs of the same list
// produce identical results.
func (r *Runner) RunAll(exps []Experiment) []Result {
	results := make([]Result, len(exps))
	n := r.workers
	if n > len(exps) {
		n = len(exps)
	}
	if n <= 1 {
		for i, e := range exps {
			results[i] = r.Run(e)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = r.Run(exps[i])
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// RunSweep expands and executes a sweep.
func (r *Runner) RunSweep(s Sweep) []Result { return r.RunAll(s.Experiments()) }
