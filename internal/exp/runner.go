package exp

import (
	"runtime"
	"sync"
)

// Runner executes experiments across a bounded worker pool with a
// fingerprint-keyed result cache. Each experiment builds private
// simulation state, so workers never share anything mutable; results are
// identical whatever the worker count.
type Runner struct {
	workers int

	mu    sync.Mutex
	cache map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	res  Result
}

// NewRunner creates a runner with the given pool size; workers <= 0 uses
// one worker per available CPU.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, cache: make(map[string]*cacheEntry)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// CacheLen reports how many distinct experiments the cache holds.
func (r *Runner) CacheLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}

func (r *Runner) entry(fp string) *cacheEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	en, ok := r.cache[fp]
	if !ok {
		en = &cacheEntry{}
		r.cache[fp] = en
	}
	return en
}

// Run executes one experiment, serving repeats from the cache. Concurrent
// calls with the same fingerprint run the experiment once; the others
// block until the result is ready and return it marked Cached.
func (r *Runner) Run(e Experiment) Result {
	en := r.entry(e.Fingerprint())
	hit := true
	en.once.Do(func() {
		hit = false
		en.res = Run(e)
	})
	// Deep-copy so a caller mutating its result (sorting points,
	// annotating metrics) cannot corrupt the cached entry.
	res := en.res.clone()
	res.Cached = hit
	return res
}

// RunAll executes a work list across the pool and returns results in
// input order. Sequential (workers=1) and parallel runs of the same list
// produce identical results.
func (r *Runner) RunAll(exps []Experiment) []Result {
	results := make([]Result, len(exps))
	n := r.workers
	if n > len(exps) {
		n = len(exps)
	}
	if n <= 1 {
		for i, e := range exps {
			results[i] = r.Run(e)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = r.Run(exps[i])
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// RunSweep expands and executes a sweep.
func (r *Runner) RunSweep(s Sweep) []Result { return r.RunAll(s.Experiments()) }
