package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// resultsPath is the HTTP route under which cache entries live:
// GET/HEAD/PUT <base>/v1/results/<fingerprint>, and GET <base>/v1/results
// for the fingerprint index. Client and server are compiled from the
// same constant, so the protocol cannot drift between them.
const resultsPath = "/v1/results"

// schemaHeader carries the server's DiskSchemaVersion on entry
// responses, so peers can tell a foreign-generation store apart from a
// missing entry without parsing bodies.
const schemaHeader = "X-Exp-Schema"

// maxEntryBytes bounds a single serialized entry on the wire (and on
// ingest, where the body is buffered in memory before verification).
// Real entries are a few kB to a few hundred kB of JSON; the generous
// margin covers full-scale trace workloads while keeping a confused
// peer from streaming unbounded garbage into server memory.
const maxEntryBytes = 16 << 20

// fingerprintPat matches exactly the strings Experiment.Fingerprint
// produces (16 lowercase hex digits). The server rejects any other path
// element, so a request can never escape the cache directory or create
// entries a Load would not find.
var fingerprintPat = regexp.MustCompile(`^[0-9a-f]{16}$`)

// RemoteStore is a Store served by a remote cmd/cached server: loads
// GET the entry by fingerprint, stores PUT it back, and an optional
// local DiskCache acts as a read-through/write-behind tier (remote hits
// are copied down so the next run is warm; fresh results land in both).
//
// Every failure mode degrades to a miss — server down, timeout, foreign
// schema generation, corrupt or mismatched entry — so a sweep pointed at
// a dead or poisoned server still completes by local compute; the Stats
// counters record what happened. Entries fetched from the remote pass
// through the same verification gate as disk reads (schema generation +
// fingerprint re-hash), so a stale or foreign peer can never inject a
// result for the wrong experiment.
type RemoteStore struct {
	base   string // URL prefix up to but excluding resultsPath
	local  *DiskCache
	client *http.Client

	// Retry, when its Window is positive, retries transient failures
	// (connection refused, timeouts, 5xx) of fetches, pushes, and index
	// reads with capped exponential backoff, so a briefly-restarting
	// server looks like latency instead of a miss. The zero value keeps
	// the historic fail-to-miss-immediately behavior.
	Retry Backoff

	localHits   int64 // served by the local read-through tier
	remoteHits  int64 // fetched (and verified) from the server
	misses      int64 // the server had no entry (clean 404)
	pushes      int64 // results published to the server
	errors      int64 // failed fetches/pushes, rejected or corrupt entries
	localErrors int64 // failed write-behinds into the local tier
}

// NewRemoteStore connects to a cmd/cached server at baseURL
// (http[s]://host:port). local, when non-nil, becomes the
// read-through/write-behind tier; nil means remote-only (every load is
// a round trip, every store a publish).
func NewRemoteStore(baseURL string, local *DiskCache) (*RemoteStore, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("exp: bad remote cache URL %q (want http[s]://host:port)", baseURL)
	}
	return &RemoteStore{
		base:   strings.TrimSuffix(u.String(), "/"),
		local:  local,
		client: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// RemoteStats is the RemoteStore's served/published accounting. The
// same shape serves both sides of the wire: a client's view of one
// store, and — via CacheServer.Stats, where Hits/Misses/Pushes count
// requests answered rather than made — the /statusz document of a
// cached or sweepd server.
type RemoteStats struct {
	// LocalHits were served by the local read-through tier without a
	// round trip.
	LocalHits int64 `json:"local_hits"`
	// RemoteHits were fetched from the server and verified.
	RemoteHits int64 `json:"remote_hits"`
	// Misses are clean 404s: the server is healthy but has no entry.
	Misses int64 `json:"misses"`
	// Pushes counts results published to the server.
	Pushes int64 `json:"pushes"`
	// Errors counts degraded remote operations: unreachable server,
	// non-2xx responses, rejected pushes, and served entries that
	// failed verification. Each one turned into a miss or a skipped
	// publish; none affected the results handed to callers.
	Errors int64 `json:"errors"`
	// LocalErrors counts failed write-behinds into the local tier —
	// a local-disk problem, not a server one. The remote hits stood;
	// the affected entries are simply re-fetched next run.
	LocalErrors int64 `json:"local_errors"`
}

// String is the one-line "remote:" summary the CLI front-ends print on
// stderr. Served hits headline the line whichever tier answered them;
// local-tier write failures (a local-disk problem, not a server one)
// appear only when present.
func (s RemoteStats) String() string {
	line := fmt.Sprintf("remote: %d hits (%d from the local tier), %d misses, %d pushed, %d errors",
		s.RemoteHits+s.LocalHits, s.LocalHits, s.Misses, s.Pushes, s.Errors)
	if s.LocalErrors > 0 {
		line += fmt.Sprintf(", %d local-tier write failures", s.LocalErrors)
	}
	return line
}

// Stats snapshots the counters.
func (s *RemoteStore) Stats() RemoteStats {
	return RemoteStats{
		LocalHits:   atomic.LoadInt64(&s.localHits),
		RemoteHits:  atomic.LoadInt64(&s.remoteHits),
		Misses:      atomic.LoadInt64(&s.misses),
		Pushes:      atomic.LoadInt64(&s.pushes),
		Errors:      atomic.LoadInt64(&s.errors),
		LocalErrors: atomic.LoadInt64(&s.localErrors),
	}
}

// entryURL is the wire address of one fingerprint's entry.
func (s *RemoteStore) entryURL(fp string) string {
	return s.base + resultsPath + "/" + fp
}

// Load implements Store: local tier first, then the server. A remote
// hit is written behind into the local tier; any failure is a miss.
func (s *RemoteStore) Load(fp string) (Result, bool) {
	if s.local != nil {
		if res, ok := s.local.Load(fp); ok {
			atomic.AddInt64(&s.localHits, 1)
			return res, true
		}
	}
	res, ok, err := s.fetch(fp)
	if err != nil {
		atomic.AddInt64(&s.errors, 1)
		return Result{}, false
	}
	if !ok {
		atomic.AddInt64(&s.misses, 1)
		return Result{}, false
	}
	atomic.AddInt64(&s.remoteHits, 1)
	if s.local != nil {
		if err := s.local.Store(fp, res); err != nil {
			atomic.AddInt64(&s.localErrors, 1) // the hit itself still stands
		}
	}
	return res, true
}

// Store implements Store: write behind to the local tier, then publish
// to the server. A failed publish is counted but never fails the call —
// the local entry (when a tier exists) already preserves the result, and
// without one the result simply stays uncached, exactly like a DiskCache
// write failure.
func (s *RemoteStore) Store(fp string, res Result) error {
	var localErr error
	if s.local != nil {
		localErr = s.local.Store(fp, res)
	}
	if err := s.push(fp, res); err != nil {
		atomic.AddInt64(&s.errors, 1)
	} else {
		atomic.AddInt64(&s.pushes, 1)
	}
	return localErr
}

// fetch GETs one entry, retrying transient failures per s.Retry.
// ok == false with a nil error is a clean 404; any other defect
// (network, non-2xx, oversized or unverifiable body) is an error.
func (s *RemoteStore) fetch(fp string) (res Result, ok bool, err error) {
	err = s.Retry.Do(func() error {
		res, ok, err = s.fetchOnce(fp)
		return err
	})
	return res, ok, err
}

func (s *RemoteStore) fetchOnce(fp string) (Result, bool, error) {
	resp, err := s.client.Get(s.entryURL(fp))
	if err != nil {
		return Result{}, false, Transient(err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return Result{}, false, nil
	default:
		err := fmt.Errorf("exp: remote cache GET %s: %s", fp, resp.Status)
		if resp.StatusCode/100 == 5 {
			return Result{}, false, Transient(err)
		}
		return Result{}, false, err
	}
	// A foreign-generation store announces itself in the header: fail
	// before parsing the body (decodeEntry would catch it anyway, but
	// this names the real problem — the peer, not the entry).
	if h := resp.Header.Get(schemaHeader); h != "" && h != strconv.Itoa(DiskSchemaVersion) {
		return Result{}, false, fmt.Errorf("exp: remote store serves schema generation %s (this build reads %d)", h, DiskSchemaVersion)
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		return Result{}, false, err
	}
	if len(blob) > maxEntryBytes {
		return Result{}, false, fmt.Errorf("exp: remote cache entry %s exceeds %d bytes", fp, maxEntryBytes)
	}
	res, err := decodeEntry(blob, fp)
	if err != nil {
		return Result{}, false, err
	}
	return res, true, nil
}

// push PUTs one entry's schema-version envelope to the server,
// retrying transient failures per s.Retry.
func (s *RemoteStore) push(fp string, res Result) error {
	blob, err := json.Marshal(diskEntry{Schema: DiskSchemaVersion, Result: res})
	if err != nil {
		return fmt.Errorf("exp: marshal cache entry: %w", err)
	}
	return s.Retry.Do(func() error { return s.pushOnce(fp, blob) })
}

func (s *RemoteStore) pushOnce(fp string, blob []byte) error {
	// The body reader is built per attempt so a retry replays the full
	// entry from the start.
	req, err := http.NewRequest(http.MethodPut, s.entryURL(fp), bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return Transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("exp: remote cache PUT %s: %s: %s", fp, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode/100 == 5 {
			return Transient(err)
		}
		return err
	}
	return nil
}

// index GETs the server's sorted fingerprint list, retrying transient
// failures per s.Retry.
func (s *RemoteStore) index() (fps []string, err error) {
	err = s.Retry.Do(func() error {
		fps, err = s.indexOnce()
		return err
	})
	return fps, err
}

func (s *RemoteStore) indexOnce() ([]string, error) {
	resp, err := s.client.Get(s.base + resultsPath)
	if err != nil {
		return nil, Transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("exp: remote cache index: %s", resp.Status)
		if resp.StatusCode/100 == 5 {
			return nil, Transient(err)
		}
		return nil, err
	}
	var fps []string
	if err := json.NewDecoder(resp.Body).Decode(&fps); err != nil {
		return nil, fmt.Errorf("exp: remote cache index: %w", err)
	}
	return fps, nil
}

// SyncReport summarizes one explicit Push or Pull pass.
type SyncReport struct {
	// Scanned entries existed on the source side.
	Scanned int
	// Transferred entries were actually copied.
	Transferred int
	// Skipped entries were already present on the destination.
	Skipped int
	// Failed entries were unreadable at the source or failed to
	// transfer; rerunning the sync retries exactly these.
	Failed int
}

// String is the one-line pass summary the -push/-pull flags print.
func (r SyncReport) String() string {
	return fmt.Sprintf("%d entries scanned: %d transferred, %d already present, %d failed",
		r.Scanned, r.Transferred, r.Skipped, r.Failed)
}

// Push is the one-shot sync behind `sweep -push`: upload every local
// entry the server does not already hold. Presence is decided by one
// fetch of the server's fingerprint index, not a round trip per entry
// (content-addressed entries never differ, so presence is enough — a
// corrupt entry on the server is its own problem: its readers treat it
// as a miss and repair it on recompute). Local entries that fail to
// load are counted as failed, the same defect a local replay would
// re-run.
func (s *RemoteStore) Push() (SyncReport, error) {
	if s.local == nil {
		return SyncReport{}, fmt.Errorf("exp: push needs a local cache directory")
	}
	fps, err := s.local.Fingerprints()
	if err != nil {
		return SyncReport{}, err
	}
	remote, err := s.index()
	if err != nil {
		return SyncReport{}, err
	}
	present := make(map[string]bool, len(remote))
	for _, fp := range remote {
		present[fp] = true
	}
	var rep SyncReport
	for _, fp := range fps {
		rep.Scanned++
		if present[fp] {
			rep.Skipped++
			continue
		}
		res, ok := s.local.Load(fp)
		if !ok {
			rep.Failed++
			continue
		}
		if err := s.push(fp, res); err != nil {
			rep.Failed++
			continue
		}
		rep.Transferred++
	}
	return rep, nil
}

// Pull is the one-shot sync behind `sweep -pull`: download every entry
// in the server's index that the local tier cannot already serve
// (unreadable local entries are re-fetched, repairing them in place).
// Entries that fail verification on the way down are counted as failed,
// never written.
func (s *RemoteStore) Pull() (SyncReport, error) {
	if s.local == nil {
		return SyncReport{}, fmt.Errorf("exp: pull needs a local cache directory")
	}
	fps, err := s.index()
	if err != nil {
		return SyncReport{}, err
	}
	var rep SyncReport
	for _, fp := range fps {
		rep.Scanned++
		if _, ok := s.local.Load(fp); ok {
			rep.Skipped++
			continue
		}
		res, ok, err := s.fetch(fp)
		if err != nil || !ok {
			rep.Failed++
			continue
		}
		if err := s.local.Store(fp, res); err != nil {
			rep.Failed++
			continue
		}
		rep.Transferred++
	}
	return rep, nil
}
