package exp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// QueueJournal makes the sweepd control plane crash-safe: every queue
// transition (job submit with its cells, lease grant — steals included —
// per-cell done/failed report, lease expiry) appends one record to a
// write-ahead log, and the full queue state periodically compacts into a
// snapshot so the log never grows without bound. A restarted sweepd
// rebuilds its JobQueue from snapshot + log (see RecoverJobQueue), so a
// kill -9 of the control plane loses no submitted job: in-flight work
// resumes where the journal left it, and the result store remains the
// only authority on which cells are actually done.
//
// # On-disk format
//
// The journal directory holds two files:
//
//	queue.snap   one framed record: the full queue state (snapshotFile)
//	queue.wal    framed records appended since the snapshot
//
// Every framed record is
//
//	[4-byte little-endian payload length][4-byte IEEE CRC32 of payload][payload JSON]
//
// and every payload carries the journal schema version. Reading stops —
// without panicking — at the first defect: a torn tail from a crashed
// append (header or payload cut short), a checksum mismatch, unparsable
// JSON, or a foreign schema version. The valid prefix is kept; the tail
// is discarded at the next compaction. A defective snapshot discards
// snapshot and log together (the log's records build on the snapshot),
// which degrades to the pre-journal world: jobs are forgotten, but the
// store still serves every verified result, so resubmission recomputes
// nothing.
//
// The snapshot is written with the same temp-file+rename discipline as
// DiskCache entries, and the log is truncated only after the snapshot
// rename commits; a crash between the two replays the log on top of the
// snapshot, which is safe because every record applies idempotently.
//
// A journal is owned by one process at a time (sweepd's); there is no
// cross-process locking. Append failures (a full or broken disk) are
// counted, not fatal: the store remains the source of truth for results,
// so a lost journal costs recovery convenience, never correctness.
type QueueJournal struct {
	dir string

	// MaxWALBytes triggers a compaction request from Append once the
	// log outgrows it. Set before attaching the journal to a queue.
	MaxWALBytes int64

	mu       sync.Mutex
	wal      *os.File
	walBytes int64
	stats    JournalStats
}

// journalSchemaVersion is the record-format generation; bump it when a
// change makes old records untrustworthy. Foreign generations are
// dropped cleanly at recovery, never misread.
const journalSchemaVersion = 1

// DefaultJournalMaxBytes is the compaction threshold: with records a few
// hundred bytes each (submits excepted) this is tens of thousands of
// transitions between snapshots.
const DefaultJournalMaxBytes = 4 << 20

// maxJournalRecordBytes bounds one framed payload; a length header
// beyond it is treated as corruption, not an allocation request.
const maxJournalRecordBytes = maxJobBytes

const (
	walName  = "queue.wal"
	snapName = "queue.snap"
)

// JournalStats is the journal's /statusz accounting.
type JournalStats struct {
	// Appended counts records written since the journal was opened.
	Appended int64 `json:"appended"`
	// AppendErrors counts failed writes (the transition proceeded; only
	// its durability was lost).
	AppendErrors int64 `json:"append_errors,omitempty"`
	// Replayed counts WAL records applied during recovery.
	Replayed int64 `json:"replayed"`
	// TailTruncations counts recoveries that found and discarded a torn
	// or corrupt log tail.
	TailTruncations int64 `json:"tail_truncations"`
	// SnapshotsDiscarded counts defective snapshots dropped (with their
	// logs) at recovery.
	SnapshotsDiscarded int64 `json:"snapshots_discarded,omitempty"`
	// Compactions counts snapshot+truncate cycles since open.
	Compactions int64 `json:"compactions"`
	// LastCompaction is the wall-clock time of the newest compaction.
	LastCompaction string `json:"last_compaction,omitempty"`
	// WALBytes is the current log size.
	WALBytes int64 `json:"wal_bytes"`
	// SnapshotBytes is the size of the newest snapshot.
	SnapshotBytes int64 `json:"snapshot_bytes,omitempty"`
}

// journalRecord is one WAL payload. Kind selects which fields are
// meaningful:
//
//	submit  Job, Seq, T, Slices, Cells (deduped, submission order),
//	        Cached (fingerprints resolved done from the store at submit)
//	lease   Job, Lease, Seq, T, Worker, Deadline, FPs (granted cells);
//	        From names the donor lease when the grant was a steal
//	report  Job, Lease, T, Worker, FP, Failed, Err — appended only for
//	        reports that changed state (verified done, or failure)
//	expire  Job, Lease, T, FPs (pending cells returned to the queue)
type journalRecord struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`
	T    int64  `json:"t"` // queue-clock unixnano of the transition

	Job    string `json:"job,omitempty"`
	Lease  string `json:"lease,omitempty"`
	Seq    int    `json:"seq,omitempty"` // queue seq after the ID grant
	Worker string `json:"worker,omitempty"`

	Slices int          `json:"slices,omitempty"`
	Cells  []Experiment `json:"cells,omitempty"`
	Cached []string     `json:"cached,omitempty"`

	FPs      []string `json:"fps,omitempty"`
	From     string   `json:"from,omitempty"`
	Deadline int64    `json:"deadline,omitempty"` // lease deadline, unixnano

	FP     string `json:"fp,omitempty"`
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"err,omitempty"`
}

// snapshotFile is the compacted queue state: everything needed to
// rebuild the JobQueue's scheduling view. Results never live here —
// they live in the store, which recovery re-consults cell by cell.
type snapshotFile struct {
	V    int       `json:"v"`
	Seq  int       `json:"seq"`
	Jobs []snapJob `json:"jobs"`
}

type snapJob struct {
	ID      string                `json:"id"`
	Cells   []snapCell            `json:"cells"` // submission order
	Slices  []snapSlice           `json:"slices,omitempty"`
	Workers map[string]snapWorker `json:"workers,omitempty"`
}

type snapCell struct {
	Exp Experiment `json:"exp"`
	// State is queued, leased, cached (done at submit via the store),
	// computed (done via a verified worker report), or failed.
	State string `json:"state"`
	Err   string `json:"err,omitempty"`
}

type snapSlice struct {
	Index   int        `json:"index,omitempty"` // shard provenance
	Count   int        `json:"count,omitempty"`
	Pending []string   `json:"pending"`
	Lease   *snapLease `json:"lease,omitempty"`
}

type snapLease struct {
	ID       string `json:"id"`
	Worker   string `json:"worker"`
	Deadline int64  `json:"deadline"` // unixnano
}

type snapWorker struct {
	LastSeen int64 `json:"last_seen"` // unixnano
	Done     int   `json:"done"`
}

// OpenQueueJournal opens (creating if necessary) a journal directory
// and its write-ahead log. It does not read anything — recovery is
// RecoverJobQueue's job — so opening a journal for a fresh queue is
// just a directory and an empty file.
func OpenQueueJournal(dir string) (*QueueJournal, error) {
	if dir == "" {
		return nil, fmt.Errorf("exp: empty journal directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: journal dir: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: journal log: %w", err)
	}
	info, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("exp: journal log: %w", err)
	}
	j := &QueueJournal{dir: dir, MaxWALBytes: DefaultJournalMaxBytes, wal: wal, walBytes: info.Size()}
	j.stats.WALBytes = info.Size()
	return j, nil
}

// Dir returns the journal directory.
func (j *QueueJournal) Dir() string { return j.dir }

// Close releases the log file handle. The journal must not be used
// afterwards.
func (j *QueueJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return nil
	}
	err := j.wal.Close()
	j.wal = nil
	return err
}

// Stats snapshots the journal accounting.
func (j *QueueJournal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.WALBytes = j.walBytes
	return st
}

// frame wraps one payload in the length+CRC header.
func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// readFrames walks a framed byte stream, returning every intact payload
// and whether a torn or corrupt tail was discarded. It never panics and
// never returns a payload whose checksum does not verify.
func readFrames(blob []byte) (payloads [][]byte, truncated bool) {
	for off := 0; off < len(blob); {
		if len(blob)-off < 8 {
			return payloads, true // torn header
		}
		n := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		sum := binary.LittleEndian.Uint32(blob[off+4 : off+8])
		if n <= 0 || n > maxJournalRecordBytes || len(blob)-off-8 < n {
			return payloads, true // corrupt length or torn payload
		}
		payload := blob[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return payloads, true // checksum mismatch
		}
		payloads = append(payloads, payload)
		off += 8 + n
	}
	return payloads, false
}

// Append journals one record, best-effort: marshal, frame, write, sync.
// The returned bool asks the caller (who holds the queue lock and thus
// the consistent state) to compact: the log has outgrown MaxWALBytes.
func (j *QueueJournal) Append(rec journalRecord) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wal == nil {
		return false
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		j.stats.AppendErrors++
		return false
	}
	buf := frame(payload)
	if _, err := j.wal.Write(buf); err != nil {
		j.stats.AppendErrors++
		return false
	}
	if err := j.wal.Sync(); err != nil {
		j.stats.AppendErrors++
		return false
	}
	j.walBytes += int64(len(buf))
	j.stats.Appended++
	return j.MaxWALBytes > 0 && j.walBytes > j.MaxWALBytes
}

// load reads the snapshot (nil when absent or defective) and the WAL's
// intact record prefix, updating the recovery stats as it goes.
func (j *QueueJournal) load() (snap *snapshotFile, recs []journalRecord, tailTruncated bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if blob, err := os.ReadFile(filepath.Join(j.dir, snapName)); err == nil {
		payloads, torn := readFrames(blob)
		var s snapshotFile
		switch {
		case torn || len(payloads) != 1:
			j.stats.SnapshotsDiscarded++
		case json.Unmarshal(payloads[0], &s) != nil || s.V != journalSchemaVersion:
			j.stats.SnapshotsDiscarded++
		default:
			snap = &s
			j.stats.SnapshotBytes = int64(len(blob))
		}
		// A defective snapshot poisons the log built on top of it: drop
		// both rather than replay transitions against the wrong base.
		if snap == nil && j.stats.SnapshotsDiscarded > 0 {
			return nil, nil, false
		}
	}
	blob, err := os.ReadFile(filepath.Join(j.dir, walName))
	if err != nil {
		return snap, nil, false
	}
	payloads, torn := readFrames(blob)
	for _, p := range payloads {
		var rec journalRecord
		if json.Unmarshal(p, &rec) != nil || rec.V != journalSchemaVersion {
			// Unparsable or foreign-generation record: the clean prefix
			// stands, everything from here on is discarded.
			torn = true
			break
		}
		recs = append(recs, rec)
	}
	if torn {
		j.stats.TailTruncations++
	}
	j.stats.Replayed += int64(len(recs))
	return snap, recs, torn
}

// writeSnapshot commits one compacted state: framed snapshot to a temp
// file, fsync, rename over queue.snap, then truncate the log. A crash
// anywhere in between leaves either the old snapshot + full log or the
// new snapshot + a log whose records reapply idempotently.
func (j *QueueJournal) writeSnapshot(snap snapshotFile) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("exp: marshal journal snapshot: %w", err)
	}
	buf := frame(payload)
	tmp, err := os.CreateTemp(j.dir, snapName+".tmp-*")
	if err != nil {
		return fmt.Errorf("exp: journal snapshot temp file: %w", err)
	}
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: write journal snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: close journal snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(j.dir, snapName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: commit journal snapshot: %w", err)
	}
	if j.wal != nil {
		if err := j.wal.Truncate(0); err != nil {
			return fmt.Errorf("exp: truncate journal log: %w", err)
		}
	}
	j.walBytes = 0
	j.stats.Compactions++
	j.stats.LastCompaction = time.Now().UTC().Format(time.RFC3339)
	j.stats.SnapshotBytes = int64(len(buf))
	return nil
}

// RecoveryReport summarizes one RecoverJobQueue pass.
type RecoveryReport struct {
	// Jobs counts jobs restored (snapshot + log); Running counts those
	// still unfinished — the ones the fleet resumes.
	Jobs    int
	Running int
	// Records counts WAL records applied on top of the snapshot.
	Records int
	// Requeued counts done cells the result store could no longer
	// verify; they returned to pending and will be re-leased.
	Requeued int
	// TailTruncated reports that a torn or corrupt log tail (the
	// signature of a mid-append crash) was discarded.
	TailTruncated bool
}

// String is the one-line banner cmd/sweepd prints after recovery.
func (r RecoveryReport) String() string {
	line := fmt.Sprintf("recovered %d jobs (%d running) from %d journal records", r.Jobs, r.Running, r.Records)
	if r.Requeued > 0 {
		line += fmt.Sprintf(", %d unverified done cells re-queued", r.Requeued)
	}
	if r.TailTruncated {
		line += ", torn log tail truncated"
	}
	return line
}

// RecoverJobQueue builds a crash-safe queue: restore state from the
// journal directory (snapshot, then WAL replay, tolerating a torn
// tail), re-verify every done cell of every running job against the
// result store through the standard trust gate (a "done" that no longer
// loads returns to pending), re-arm surviving leases for one fresh TTL
// (the restart acts as a heartbeat, so in-flight workers keep their
// slices), compact the journal, and return the queue with the journal
// attached so every subsequent transition is logged.
func RecoverJobQueue(store *DiskCache, cfg QueueConfig, dir string) (*JobQueue, RecoveryReport, error) {
	journal, err := OpenQueueJournal(dir)
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	q := NewJobQueue(store, cfg)
	snap, recs, torn := journal.load()
	var rep RecoveryReport
	rep.Records = len(recs)
	rep.TailTruncated = torn
	if snap != nil {
		q.restoreSnapshot(snap)
	}
	for _, rec := range recs {
		q.applyRecord(rec)
	}
	rep.Requeued = q.reverifyDone()
	q.repairAfterRecovery()
	rep.Jobs = len(q.order)
	for _, id := range q.order {
		if q.stateLocked(q.jobs[id]) == "running" {
			rep.Running++
		}
	}
	// Compact immediately: the restored state becomes the new snapshot
	// and the replayed log (torn tail included) is discarded.
	if err := journal.writeSnapshot(q.snapshotLocked()); err != nil {
		journal.Close()
		return nil, rep, err
	}
	q.journal = journal
	return q, rep, nil
}

// restoreSnapshot loads a compacted state into an empty queue.
func (q *JobQueue) restoreSnapshot(snap *snapshotFile) {
	q.seq = snap.Seq
	for _, sj := range snap.Jobs {
		if q.jobs[sj.ID] != nil {
			continue
		}
		j := &queueJob{
			id:      sj.ID,
			cells:   make(map[string]*queueCell, len(sj.Cells)),
			workers: make(map[string]*queueWorker, len(sj.Workers)),
		}
		for _, sc := range sj.Cells {
			fp := sc.Exp.Fingerprint()
			if _, dup := j.cells[fp]; dup {
				continue
			}
			c := &queueCell{exp: sc.Exp, err: sc.Err}
			switch sc.State {
			case "leased":
				c.state = cellLeased
			case "cached":
				c.state, c.cached = cellDone, true
				j.cached++
			case "computed":
				c.state = cellDone
				j.computed++
			case "failed":
				c.state = cellFailed
				j.failed++
			}
			j.cells[fp] = c
			j.cellIDs = append(j.cellIDs, fp)
		}
		for _, ss := range sj.Slices {
			sl := &queueSlice{shard: Shard{Index: ss.Index, Count: ss.Count}, pending: ss.Pending}
			if ss.Lease != nil {
				sl.lease = &queueLease{
					id:       ss.Lease.ID,
					worker:   ss.Lease.Worker,
					deadline: time.Unix(0, ss.Lease.Deadline),
				}
			}
			j.slices = append(j.slices, sl)
		}
		for name, sw := range sj.Workers {
			j.workers[name] = &queueWorker{lastSeen: time.Unix(0, sw.LastSeen), done: sw.Done}
		}
		q.jobs[j.id] = j
		q.order = append(q.order, j.id)
	}
}

// snapshotLocked serializes the full queue state. Callers hold q.mu (or
// own the queue exclusively, as recovery does).
func (q *JobQueue) snapshotLocked() snapshotFile {
	snap := snapshotFile{V: journalSchemaVersion, Seq: q.seq}
	for _, id := range q.order {
		j := q.jobs[id]
		sj := snapJob{ID: j.id}
		for _, fp := range j.cellIDs {
			c := j.cells[fp]
			sc := snapCell{Exp: c.exp, Err: c.err, State: "queued"}
			switch c.state {
			case cellLeased:
				sc.State = "leased"
			case cellDone:
				if c.cached {
					sc.State = "cached"
				} else {
					sc.State = "computed"
				}
			case cellFailed:
				sc.State = "failed"
			}
			sj.Cells = append(sj.Cells, sc)
		}
		for _, sl := range j.slices {
			if len(sl.pending) == 0 {
				continue
			}
			ss := snapSlice{Index: sl.shard.Index, Count: sl.shard.Count, Pending: sl.pending}
			if sl.lease != nil {
				ss.Lease = &snapLease{
					ID:       sl.lease.id,
					Worker:   sl.lease.worker,
					Deadline: sl.lease.deadline.UnixNano(),
				}
			}
			sj.Slices = append(sj.Slices, ss)
		}
		if len(j.workers) > 0 {
			sj.Workers = make(map[string]snapWorker, len(j.workers))
			for name, w := range j.workers {
				sj.Workers[name] = snapWorker{LastSeen: w.lastSeen.UnixNano(), Done: w.done}
			}
		}
		snap.Jobs = append(snap.Jobs, sj)
	}
	return snap
}

// applyRecord replays one WAL record onto the recovering queue. Every
// application is idempotent (a record already reflected in the snapshot
// is a no-op), so a crash between snapshot rename and log truncation
// cannot double-apply anything.
func (q *JobQueue) applyRecord(rec journalRecord) {
	switch rec.Kind {
	case "submit":
		q.applySubmit(rec)
	case "lease":
		q.applyLease(rec)
	case "report":
		q.applyReport(rec)
	case "expire":
		q.applyExpire(rec)
	}
}

func (q *JobQueue) applySubmit(rec journalRecord) {
	if rec.Job == "" || q.jobs[rec.Job] != nil {
		return
	}
	q.seq = max(q.seq, rec.Seq)
	j := &queueJob{
		id:      rec.Job,
		cells:   make(map[string]*queueCell, len(rec.Cells)),
		workers: make(map[string]*queueWorker),
	}
	for _, e := range rec.Cells {
		fp := e.Fingerprint()
		if _, dup := j.cells[fp]; dup {
			continue
		}
		j.cells[fp] = &queueCell{exp: e}
		j.cellIDs = append(j.cellIDs, fp)
	}
	var queued []string
	cached := make(map[string]bool, len(rec.Cached))
	for _, fp := range rec.Cached {
		cached[fp] = true
	}
	for _, fp := range j.cellIDs {
		if cached[fp] {
			j.cells[fp].state = cellDone
			j.cells[fp].cached = true
			j.cached++
			continue
		}
		queued = append(queued, fp)
	}
	// The same deterministic fingerprint partition Submit used.
	for i := 1; i <= rec.Slices; i++ {
		sh := Shard{Index: i, Count: rec.Slices}
		var pending []string
		for _, fp := range queued {
			if sh.owns(fp) {
				pending = append(pending, fp)
			}
		}
		if len(pending) > 0 {
			j.slices = append(j.slices, &queueSlice{shard: sh, pending: pending})
		}
	}
	q.jobs[j.id] = j
	q.order = append(q.order, j.id)
}

func (q *JobQueue) applyLease(rec journalRecord) {
	j := q.jobs[rec.Job]
	if j == nil {
		return
	}
	q.seq = max(q.seq, rec.Seq)
	for _, sl := range j.slices {
		if sl.lease != nil && sl.lease.id == rec.Lease {
			return // already reflected (snapshot overlap)
		}
	}
	granted := make(map[string]bool, len(rec.FPs))
	var pending []string
	for _, fp := range rec.FPs {
		c := j.cells[fp]
		if c == nil || c.state == cellDone || c.state == cellFailed || granted[fp] {
			continue
		}
		granted[fp] = true
		pending = append(pending, fp)
		c.state = cellLeased
	}
	// The grant moved these cells out of whichever slice held them
	// (an unleased slice, an expired lease, or a steal's donor).
	for _, sl := range j.slices {
		kept := sl.pending[:0]
		for _, fp := range sl.pending {
			if !granted[fp] {
				kept = append(kept, fp)
			}
		}
		sl.pending = kept
	}
	if len(pending) == 0 {
		return
	}
	j.slices = append(j.slices, &queueSlice{
		pending: pending,
		lease:   &queueLease{id: rec.Lease, worker: rec.Worker, deadline: time.Unix(0, rec.Deadline)},
	})
	q.replayWorker(j, rec.Worker, rec.T)
}

func (q *JobQueue) applyReport(rec journalRecord) {
	j := q.jobs[rec.Job]
	if j == nil {
		return
	}
	c := j.cells[rec.FP]
	if c == nil || c.state == cellDone || c.state == cellFailed {
		return
	}
	if rec.Failed {
		c.state = cellFailed
		c.err = rec.Err
		j.failed++
	} else {
		c.state = cellDone
		c.cached = false
		j.computed++
		q.replayWorker(j, rec.Worker, rec.T).done++
		// Settled cells leave their slices in repairAfterRecovery.
	}
	q.replayWorker(j, rec.Worker, rec.T)
}

func (q *JobQueue) applyExpire(rec journalRecord) {
	j := q.jobs[rec.Job]
	if j == nil {
		return
	}
	for _, sl := range j.slices {
		if sl.lease != nil && sl.lease.id == rec.Lease {
			for _, fp := range sl.pending {
				if c := j.cells[fp]; c != nil && c.state == cellLeased {
					c.state = cellQueued
				}
			}
			sl.lease = nil
			return
		}
	}
}

// replayWorker records worker liveness observed in the journal.
func (q *JobQueue) replayWorker(j *queueJob, worker string, t int64) *queueWorker {
	if worker == "" {
		return &queueWorker{}
	}
	w := j.workers[worker]
	if w == nil {
		w = &queueWorker{}
		j.workers[worker] = w
	}
	if seen := time.Unix(0, t); seen.After(w.lastSeen) {
		w.lastSeen = seen
	}
	return w
}

// reverifyDone re-checks every done cell of every running job against
// the result store through the decodeEntry trust gate — the journal
// records claims, the store holds truth. Cells whose entry no longer
// loads (evicted, corrupted, or never durably written) return to
// pending. Finished jobs are left alone: reopening them would burn
// fleet compute on results nobody is waiting for.
func (q *JobQueue) reverifyDone() int {
	requeued := 0
	for _, id := range q.order {
		j := q.jobs[id]
		if q.stateLocked(j) != "running" {
			continue
		}
		for _, fp := range j.cellIDs {
			c := j.cells[fp]
			if c.state != cellDone {
				continue
			}
			if _, ok := q.store.Load(fp); ok {
				continue
			}
			if c.cached {
				j.cached--
			} else {
				j.computed--
			}
			c.state = cellQueued
			c.cached = false
			requeued++
			// Pull the cell out of whatever slice still holds it: the
			// worker who reported it believes it is done and will never
			// re-run it, so leaving it inside a surviving lease would
			// stall it until that lease expires. Orphaned here, it lands
			// in the recovered slice and is immediately re-leasable.
			for _, sl := range j.slices {
				for i, p := range sl.pending {
					if p == fp {
						sl.pending = append(sl.pending[:i], sl.pending[i+1:]...)
						break
					}
				}
			}
		}
	}
	return requeued
}

// repairAfterRecovery restores the queue invariants replay can bend:
// every unsettled cell sits in exactly one slice, slice membership
// decides cell state, drained slices are gone, worker leased counters
// match the slices, and surviving leases get one fresh TTL from the
// recovery clock (the restart itself is the heartbeat — in-flight
// workers keep their slices instead of losing them to a deadline that
// passed while sweepd was down).
func (q *JobQueue) repairAfterRecovery() {
	now := q.now()
	for _, id := range q.order {
		j := q.jobs[id]
		seen := make(map[string]bool, len(j.cellIDs))
		kept := j.slices[:0]
		for _, sl := range j.slices {
			pending := sl.pending[:0]
			for _, fp := range sl.pending {
				c := j.cells[fp]
				if c == nil || c.state == cellDone || c.state == cellFailed || seen[fp] {
					continue
				}
				seen[fp] = true
				pending = append(pending, fp)
			}
			sl.pending = pending
			if len(pending) == 0 {
				continue
			}
			kept = append(kept, sl)
		}
		j.slices = kept
		// Unsettled cells in no slice (e.g. requeued by re-verification)
		// gather into one recovered slice, first in line for a lease.
		var orphans []string
		for _, fp := range j.cellIDs {
			c := j.cells[fp]
			if (c.state == cellQueued || c.state == cellLeased) && !seen[fp] {
				c.state = cellQueued
				orphans = append(orphans, fp)
			}
		}
		if len(orphans) > 0 {
			j.slices = append(j.slices, &queueSlice{pending: orphans})
		}
		for _, w := range j.workers {
			w.leased = 0
		}
		for _, sl := range j.slices {
			state := cellQueued
			if sl.lease != nil {
				state = cellLeased
				sl.lease.deadline = now.Add(q.cfg.TTL)
				w := j.workers[sl.lease.worker]
				if w == nil {
					w = &queueWorker{lastSeen: now}
					j.workers[sl.lease.worker] = w
				}
				w.leased += len(sl.pending)
			}
			for _, fp := range sl.pending {
				j.cells[fp].state = state
			}
		}
	}
}
