package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// verifySeedCache populates a cache dir with a few cheap experiments and
// returns the cache and the experiments.
func verifySeedCache(t *testing.T) (*DiskCache, []Experiment) {
	t.Helper()
	dir := t.TempDir()
	store, err := NewDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	exps := []Experiment{
		{Impl: "TCP", Topology: Grid(1), Workload: PingPongWorkload([]int{1 << 10}, 2)},
		{Impl: "MPICH2", Topology: Grid(1), Workload: PingPongWorkload([]int{1 << 10}, 2)},
		{Impl: "GridMPI", Tuning: Tuning{TCP: true}, Topology: Grid(1), Workload: PingPongWorkload([]int{1 << 10, 4 << 10}, 2)},
	}
	r := NewRunnerStore(2, store)
	for _, res := range r.RunAll(exps) {
		if res.Err != "" {
			t.Fatal(res.Err)
		}
	}
	return store, exps
}

func TestVerifyCleanCache(t *testing.T) {
	store, exps := verifySeedCache(t)
	rep, err := store.Verify(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != len(exps) || rep.Sampled != len(exps) {
		t.Fatalf("entries/sampled = %d/%d, want %d/%d", rep.Entries, rep.Sampled, len(exps), len(exps))
	}
	if !rep.OK() || rep.Unreadable != 0 {
		t.Fatalf("clean cache did not verify: %s", rep)
	}
}

func TestVerifyDetectsStaleResult(t *testing.T) {
	store, exps := verifySeedCache(t)
	// Tamper with one entry's measurement, leaving its experiment (and so
	// its fingerprint check) intact — the signature of a cache written by
	// an older simulator whose results have since changed.
	fp := exps[0].Fingerprint()
	path := filepath.Join(store.Dir(), fp+".json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(blob), `"elapsed": `, `"elapsed": 9`, 1)
	if tampered == string(blob) {
		t.Fatal("tamper marker not found in entry")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := store.Verify(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 1 {
		t.Fatalf("mismatches = %d, want 1 (%s)", len(rep.Mismatches), rep)
	}
	if rep.Mismatches[0].Fingerprint != fp {
		t.Fatalf("mismatch fingerprint = %s, want %s", rep.Mismatches[0].Fingerprint, fp)
	}
	if !strings.Contains(rep.String(), "MISMATCH") {
		t.Fatalf("report does not surface the mismatch: %s", rep)
	}
}

func TestVerifyAllUnreadableIsNotOK(t *testing.T) {
	store, _ := verifySeedCache(t)
	// Garble every entry: a verify pass that could re-execute nothing
	// (e.g. after a schema bump) must not read as a clean bill of health.
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(store.Dir(), e.Name()), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := store.Verify(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreadable != rep.Sampled || rep.Sampled == 0 {
		t.Fatalf("expected every sampled entry unreadable: %s", rep)
	}
	if rep.OK() {
		t.Fatalf("all-unreadable pass reported OK: %s", rep)
	}
}

func TestVerifySampleFractionDeterministic(t *testing.T) {
	store, _ := verifySeedCache(t)
	zero, err := store.Verify(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Sampled != 0 {
		t.Fatalf("p=0 sampled %d entries", zero.Sampled)
	}
	a, err := store.Verify(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.Verify(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sampled != b.Sampled {
		t.Fatalf("same fraction sampled differently across passes: %d vs %d", a.Sampled, b.Sampled)
	}
	// The p=0.5 sample must be a subset of the p=1.0 sample by key, not
	// by chance: keying is per fingerprint, so growing p only adds.
	full, err := store.Verify(1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sampled > full.Sampled {
		t.Fatalf("fraction sample larger than full sample: %d > %d", a.Sampled, full.Sampled)
	}
}

// prePRCacheCopy copies the committed pre-PR cache testdata into a temp
// dir (verification never writes, but testdata stays read-only on
// principle) and returns the copy's path.
func prePRCacheCopy(t *testing.T) string {
	t.Helper()
	src := filepath.Join("testdata", "prepr-cache")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestPrePRCacheVerifies re-executes every entry of the committed pre-PR
// cache directory on the current simulator. This is the strongest
// cross-version determinism check in the suite: results computed before
// the kernel fast-path rearchitecture must be reproduced byte-for-byte
// by the rebuilt kernel.
func TestPrePRCacheVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the committed cache entries")
	}
	t.Parallel()
	store, err := NewDiskCache(prePRCacheCopy(t))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := store.Verify(1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sampled == 0 || rep.Unreadable != 0 {
		t.Fatalf("pre-PR cache not fully sampled: %s", rep)
	}
	if !rep.OK() {
		t.Fatalf("current simulator no longer reproduces pre-PR results:\n%s", rep)
	}
}
