package exp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mpi"
)

// Patterns lists the SPMD pattern names PatternBody accepts.
var Patterns = []string{
	"pingpong", "ring", "alltoall", "bcast", "allreduce", "barrier",
	"gather", "scatter", "allgather", "reduce",
}

// CheckPattern validates a pattern name (CLI front-ends use it to reject
// typos at parse time instead of emitting all-ERR result sets).
func CheckPattern(name string) error {
	for _, p := range Patterns {
		if p == name {
			return nil
		}
	}
	return fmt.Errorf("unknown pattern %q (have %s)", name, strings.Join(Patterns, ", "))
}

// PatternBody builds the SPMD body for a named communication pattern
// (shared by cmd/gridsim, cmd/sweep and the pattern workload).
func PatternBody(pattern string, size, iters int) (func(*mpi.Rank), error) {
	switch pattern {
	case "pingpong":
		return func(r *mpi.Rank) {
			peer := r.Size() - 1
			for i := 0; i < iters; i++ {
				switch r.Rank() {
				case 0:
					r.Send(peer, i, size)
					r.Recv(peer, i)
				case peer:
					r.Recv(0, i)
					r.Send(0, i, size)
				}
			}
		}, nil
	case "ring":
		return func(r *mpi.Rank) {
			right := (r.Rank() + 1) % r.Size()
			left := (r.Rank() - 1 + r.Size()) % r.Size()
			for i := 0; i < iters; i++ {
				req := r.Isend(right, i, size)
				r.Recv(left, i)
				r.Wait(req)
			}
		}, nil
	case "alltoall":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Alltoall(size)
			}
		}, nil
	case "bcast":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Bcast(0, size)
			}
		}, nil
	case "allreduce":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Allreduce(size)
			}
		}, nil
	case "barrier":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Barrier()
			}
		}, nil
	case "gather":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Gather(0, size)
			}
		}, nil
	case "scatter":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Scatter(0, size)
			}
		}, nil
	case "allgather":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Allgather(size)
			}
		}, nil
	case "reduce":
		return func(r *mpi.Rank) {
			for i := 0; i < iters; i++ {
				r.Reduce(0, size)
			}
		}, nil
	}
	return nil, CheckPattern(pattern)
}

// ParseSize parses a byte count with optional k/M/G suffixes (powers of
// two), e.g. "64k", "1M".
func ParseSize(s string) (int, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, strings.TrimSuffix(s, "g")
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	n, err := strconv.Atoi(s)
	return n * mult, err
}
