package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// VerifyMismatch is one cache entry whose stored result the current
// simulator no longer reproduces.
type VerifyMismatch struct {
	Fingerprint string
	Name        string
	Detail      string
}

// VerifyReport summarizes one cache-verification pass.
type VerifyReport struct {
	// Entries is the number of committed entries in the directory.
	Entries int
	// Sampled is how many the fraction selected for re-execution.
	Sampled int
	// Unreadable entries failed to load (corrupt, foreign schema); a
	// normal cache lookup would treat them as misses and overwrite them.
	Unreadable int
	// Mismatches lists re-run entries whose results diverged.
	Mismatches []VerifyMismatch
}

// OK reports whether the pass produced evidence of reproduction: no
// sampled entry mismatched, and — when anything was sampled — at least
// one entry was actually re-executed. A pass whose every sampled entry
// was unreadable (e.g. after a DiskSchemaVersion bump) verified nothing
// and must not read as a clean bill of health.
func (r VerifyReport) OK() bool {
	if len(r.Mismatches) > 0 {
		return false
	}
	return r.Sampled == 0 || r.Unreadable < r.Sampled
}

// String is the multi-line report -cache-verify prints: the pass
// summary plus one line per mismatched entry.
func (r VerifyReport) String() string {
	s := fmt.Sprintf("cache verify: %d of %d entries sampled, %d mismatched, %d unreadable",
		r.Sampled, r.Entries, len(r.Mismatches), r.Unreadable)
	for _, m := range r.Mismatches {
		s += fmt.Sprintf("\n  MISMATCH %s %s: %s", m.Fingerprint, m.Name, m.Detail)
	}
	return s
}

// sampledBy reports whether a fingerprint falls into the deterministic
// sample of fraction p. Like Shard.owns, it keys on the fingerprint's own
// hash bits, so repeated or distributed verification passes select the
// same subset for the same p, and growing p only adds entries.
func sampledBy(fp string, p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	v, err := strconv.ParseUint(fp, 16, 64)
	if err != nil {
		return true // fail open: never silently exempt a strange entry
	}
	return float64(v>>11)/(1<<53) < p
}

// Verify re-executes a deterministic fingerprint-keyed sample fraction p
// of the cache's entries across a worker pool and compares the fresh
// results byte-for-byte (canonical JSON) with the stored ones. It is the
// stale-simulator detector: after a change to the simulation kernel or
// the models above it, a non-empty mismatch list means the code now
// computes different results and DiskSchemaVersion must be bumped (with
// goldens regenerated); an empty one is direct evidence the change
// preserved every sampled trajectory.
func (c *DiskCache) Verify(p float64, workers int) (VerifyReport, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return VerifyReport{}, err
	}
	var rep VerifyReport
	var sample []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" || strings.Contains(name, ".tmp-") {
			continue
		}
		rep.Entries++
		if fp := strings.TrimSuffix(name, ".json"); sampledBy(fp, p) {
			sample = append(sample, fp)
		}
	}
	sort.Strings(sample) // deterministic work order and report order
	rep.Sampled = len(sample)
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0) // match NewRunner's "-workers 0" default
	}
	if workers > len(sample) {
		workers = len(sample)
	}

	type outcome struct {
		unreadable bool
		mismatch   *VerifyMismatch
	}
	outcomes := make([]outcome, len(sample))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fp := sample[i]
				stored, ok := c.Load(fp)
				if !ok {
					outcomes[i] = outcome{unreadable: true}
					continue
				}
				fresh := Run(stored.Exp)
				if d := diffResults(stored, fresh); d != "" {
					outcomes[i] = outcome{mismatch: &VerifyMismatch{
						Fingerprint: fp,
						Name:        stored.Exp.Name(),
						Detail:      d,
					}}
				}
			}
		}()
	}
	for i := range sample {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, o := range outcomes {
		if o.unreadable {
			rep.Unreadable++
		}
		if o.mismatch != nil {
			rep.Mismatches = append(rep.Mismatches, *o.mismatch)
		}
	}
	return rep, nil
}

// diffResults compares two results by canonical JSON and describes the
// first difference ("" when identical).
func diffResults(stored, fresh Result) string {
	if fresh.Err != "" {
		return "re-run failed: " + fresh.Err
	}
	a, err1 := json.Marshal(stored)
	b, err2 := json.Marshal(fresh)
	if err1 != nil || err2 != nil {
		return fmt.Sprintf("unmarshalable result (%v, %v)", err1, err2)
	}
	if bytes.Equal(a, b) {
		return ""
	}
	// Locate the first byte divergence for a actionable message.
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 30
	if lo < 0 {
		lo = 0
	}
	hiA, hiB := i+30, i+30
	if hiA > len(a) {
		hiA = len(a)
	}
	if hiB > len(b) {
		hiB = len(b)
	}
	return fmt.Sprintf("results diverge at byte %d: stored …%s… vs fresh …%s…", i, a[lo:hiA], b[lo:hiB])
}

// VerifyDir is the CLI wiring of a -cache-verify flag: open the
// directory and run one verification pass.
func VerifyDir(dir string, p float64, workers int) (VerifyReport, error) {
	store, err := NewDiskCache(dir)
	if err != nil {
		return VerifyReport{}, err
	}
	return store.Verify(p, workers)
}
