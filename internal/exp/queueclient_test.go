package exp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// noSleep is a Backoff for tests: real transient classification and
// budget arithmetic, zero wall-clock cost.
func noSleep(window time.Duration) Backoff {
	return Backoff{Base: 10 * time.Millisecond, Cap: 20 * time.Millisecond, Window: window, Sleep: func(time.Duration) {}}
}

// TestClientRetriesTransient: a 503 is the server restarting, not an
// answer — the client retries through it and the caller never notices.
func TestClientRetriesTransient(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("[]"))
	}))
	defer srv.Close()
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.Retry = noSleep(time.Minute)
	jobs, err := client.Jobs()
	if err != nil || len(jobs) != 0 {
		t.Fatalf("Jobs = %v, %v", jobs, err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 2 failures + 1 success", got)
	}
}

// TestClientPermanentFailsFast: a 4xx means the request itself is
// wrong; retrying is pointless and the client must not.
func TestClientPermanentFailsFast(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer srv.Close()
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.Retry = noSleep(time.Minute)
	if _, err := client.Job("j0001"); err == nil || IsTransient(err) {
		t.Fatalf("err = %v, want a permanent rejection", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want exactly 1", got)
	}
}

// TestWaitJobRidesOutage: the submitter's wait loop treats an
// unreachable sweepd as weather — logged once, polled through, and
// resolved the moment the server answers again.
func TestWaitJobRidesOutage(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	st, err := q.Submit(tinyMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Finish the job server-side so the first successful poll returns.
	grant, _ := q.Lease("w1")
	for _, e := range grant.Cells {
		computeAndStore(t, store, e)
		if _, err := q.Report(grant.Job, grant.Lease, "w1", e.Fingerprint(), false, ""); err != nil {
			t.Fatal(err)
		}
	}

	// The first batch of requests hits a dead server.
	var hits atomic.Int32
	inner := NewQueueHandler(q, NewCacheServer(store))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 20 {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var log strings.Builder
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.Retry = noSleep(30 * time.Millisecond)
	client.Log = &log
	final, err := client.WaitJob(st.ID, time.Millisecond, nil)
	if err != nil {
		t.Fatalf("WaitJob: %v\nlog: %s", err, log.String())
	}
	if final.State != "done" {
		t.Fatalf("final = %+v", final)
	}
	if got := strings.Count(log.String(), "sweepd unreachable"); got != 1 {
		t.Errorf("outage logged %d times, want once:\n%s", got, log.String())
	}
	if got := strings.Count(log.String(), "reachable again"); got != 1 {
		t.Errorf("recovery logged %d times, want once:\n%s", got, log.String())
	}
}

// TestWaitJobUnknownJobFailsFast: retry opt-in must not turn a rejected
// job ID into an endless poll.
func TestWaitJobUnknownJobFailsFast(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	srv := httptest.NewServer(NewQueueHandler(q, NewCacheServer(store)))
	defer srv.Close()
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	client.Retry = noSleep(time.Minute)
	start := time.Now()
	if _, err := client.WaitJob("j9999", time.Millisecond, nil); err == nil || IsTransient(err) {
		t.Fatalf("err = %v, want a fast permanent rejection", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestClientPollHint: the server's -poll flag reaches every worker via
// the lease-response header, even on empty 204 answers.
func TestClientPollHint(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewJobQueue(store, QueueConfig{Poll: 123 * time.Millisecond})
	srv := httptest.NewServer(NewQueueHandler(q, NewCacheServer(store)))
	defer srv.Close()
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := client.PollHint(); got != 0 {
		t.Fatalf("hint before any lease = %v", got)
	}
	if grant, err := client.Lease("w1"); err != nil || grant != nil {
		t.Fatalf("lease on empty queue = %+v, %v", grant, err)
	}
	if got := client.PollHint(); got != 123*time.Millisecond {
		t.Fatalf("hint = %v, want the server's 123ms", got)
	}
}

// TestWorkerStopFinishesCurrentCell: a graceful stop lands between
// cells — the one in flight completes and reports, the rest of the
// lease is abandoned for the queue to re-lease.
func TestWorkerStopFinishesCurrentCell(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	st, err := q.Submit(tinyMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	stopCh := make(chan struct{})
	var stopOnce atomic.Bool
	inner := NewQueueHandler(q, NewCacheServer(store))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The stop request arrives while the first report is in flight:
		// closed before the response, so the worker's next between-cells
		// check deterministically sees it.
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/report") && stopOnce.CompareAndSwap(false, true) {
			close(stopCh)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRemoteStore(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	rep := client.Work(WorkerConfig{ID: "w1", Runner: NewRunnerStore(1, rs), Poll: time.Millisecond, Stop: stopCh, Log: &log})
	if rep.Leases != 1 || rep.Cells != 1 || rep.Errors != 0 || rep.Rejected != 0 {
		t.Fatalf("report = %+v, want exactly the in-flight cell finished\nlog: %s", rep, log.String())
	}
	if !strings.Contains(log.String(), "abandoning the rest of lease") {
		t.Errorf("no abandon notice in log:\n%s", log.String())
	}
	got, _ := q.Status(st.ID)
	if got.Computed != 1 {
		t.Fatalf("queue shows %d computed, want the reported cell counted", got.Computed)
	}
}

// TestWorkerOutageIsNotAnError: with no retry window a dead server
// surfaces immediately, but the worker still treats it as an outage to
// poll through — Outages counts it, Errors stays zero, and IdleExit
// eventually ends the loop.
func TestWorkerOutageIsNotAnError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	client, err := NewQueueClient(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	rep := client.Work(WorkerConfig{ID: "w1", Runner: NewRunner(1), Poll: time.Millisecond, IdleExit: 3, Log: &log})
	if rep.Outages != 1 || rep.Errors != 0 {
		t.Fatalf("report = %+v, want one outage and zero errors\nlog: %s", rep, log.String())
	}
	if got := strings.Count(log.String(), "sweepd unreachable"); got != 1 {
		t.Errorf("outage logged %d times, want once:\n%s", got, log.String())
	}
}
