package exp

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Fault event kinds.
const (
	FaultDown   = "down"   // take a site uplink or host NIC down
	FaultUp     = "up"     // bring it back
	FaultLoss   = "loss"   // set an injected per-round loss probability
	FaultJitter = "jitter" // set a one-way latency jitter amplitude
	FaultCrash  = "crash"  // kill a host: its NIC goes down and never comes back
)

// FaultEvent is one timed fault: at virtual time At, apply Kind to the
// named target. Site targets the site's WAN uplink (both directions), Host
// the host's NIC (both directions); loss and jitter events may omit the
// target to hit every site uplink; crash events require a host and take it
// down for the rest of the run. Like the Experiment that embeds it, the
// JSON encoding is frozen (fingerprint input): new fields must be omitempty
// with byte-identical zero values.
type FaultEvent struct {
	At   time.Duration `json:"at"`
	Kind string        `json:"kind"`
	Site string        `json:"site,omitempty"`
	Host string        `json:"host,omitempty"`
	// Loss is the injected per-round loss probability (loss events); 0
	// clears a previous injection.
	Loss float64 `json:"loss,omitempty"`
	// Jitter is the injected one-way latency jitter amplitude (jitter
	// events); each affected round adds uniform [0, Jitter) drawn from the
	// kernel RNG. 0 clears.
	Jitter time.Duration `json:"jitter,omitempty"`
}

// FaultPlan is a seeded, replayable schedule of network faults. Events are
// injected as ordinary kernel events before the workload spawns, and every
// random draw they cause comes from the kernel RNG seeded with Seed — so a
// faulted run is exactly as deterministic (and fingerprint-cacheable) as a
// healthy one. The zero value (and nil) means no faults and the stock seed,
// and marshals to bytes identical to the pre-fault encoding.
type FaultPlan struct {
	// Seed replaces the kernel's stock seed (1) when non-zero, giving
	// distinct replicas of the same fault schedule distinct loss draws.
	Seed   int64        `json:"seed,omitempty"`
	Events []FaultEvent `json:"events,omitempty"`
}

// IsZero reports whether the plan (possibly nil) injects nothing and keeps
// the stock seed.
func (p *FaultPlan) IsZero() bool {
	return p == nil || (p.Seed == 0 && len(p.Events) == 0)
}

// kernelSeed returns the sim.New seed the plan asks for: the stock seed 1
// unless the plan sets its own.
func (p *FaultPlan) kernelSeed() int64 {
	if p == nil || p.Seed == 0 {
		return 1
	}
	return p.Seed
}

// clone deep-copies the plan (nil-safe), so cached results can hand it out
// without sharing mutable state.
func (p *FaultPlan) clone() *FaultPlan {
	if p == nil {
		return nil
	}
	out := *p
	out.Events = append([]FaultEvent(nil), p.Events...)
	return &out
}

// String is the plan's label fragment in experiment names (presentation
// only — the cache key hashes the JSON, never this).
func (p *FaultPlan) String() string {
	if p.IsZero() {
		return "none"
	}
	if p.Seed != 0 {
		return fmt.Sprintf("%dev,seed=%d", len(p.Events), p.Seed)
	}
	return fmt.Sprintf("%dev", len(p.Events))
}

// Validate checks the plan's internal consistency without a network: event
// times, kinds, target exclusivity and parameter ranges. Target existence
// is checked against the topology at injection time.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		prefix := fmt.Sprintf("exp: fault event %d (%s at %v)", i, ev.Kind, ev.At)
		if ev.At < 0 {
			return fmt.Errorf("%s: negative time", prefix)
		}
		if ev.Site != "" && ev.Host != "" {
			return fmt.Errorf("%s: site %q and host %q are mutually exclusive", prefix, ev.Site, ev.Host)
		}
		switch ev.Kind {
		case FaultDown, FaultUp:
			if ev.Site == "" && ev.Host == "" {
				return fmt.Errorf("%s: needs a site or host target", prefix)
			}
			if ev.Loss != 0 || ev.Jitter != 0 {
				return fmt.Errorf("%s: loss/jitter parameters belong on loss/jitter events", prefix)
			}
		case FaultLoss:
			if ev.Loss < 0 || ev.Loss >= 1 {
				return fmt.Errorf("%s: loss probability %v outside [0,1)", prefix, ev.Loss)
			}
			if ev.Jitter != 0 {
				return fmt.Errorf("%s: jitter parameter on a loss event", prefix)
			}
		case FaultJitter:
			if ev.Jitter < 0 {
				return fmt.Errorf("%s: negative jitter", prefix)
			}
			if ev.Loss != 0 {
				return fmt.Errorf("%s: loss parameter on a jitter event", prefix)
			}
		case FaultCrash:
			// A crash is a node failure, so it only makes sense against a
			// host; a site-wide outage is a down event.
			if ev.Host == "" {
				return fmt.Errorf("%s: needs a host target (site outages are down events)", prefix)
			}
			if ev.Loss != 0 || ev.Jitter != 0 {
				return fmt.Errorf("%s: loss/jitter parameters belong on loss/jitter events", prefix)
			}
			for _, other := range p.Events {
				if other.Kind == FaultUp && other.Host == ev.Host && other.At >= ev.At {
					return fmt.Errorf("%s: host %q comes back up at %v, but a crashed host never recovers (use down/up for transient outages)",
						prefix, ev.Host, other.At)
				}
			}
		default:
			return fmt.Errorf("%s: unknown kind (have down, up, loss, jitter, crash)", prefix)
		}
	}
	return nil
}

// inject resolves every event's target links against the built network and
// schedules the fault actions as ordinary kernel events. Called after
// Topology.Build and before the workload spawns, so fault events carry the
// earliest sequence numbers of their instant and replay identically on
// every run. Nil-safe: an absent plan schedules nothing.
func (p *FaultPlan) inject(k *sim.Kernel, net *netsim.Network) error {
	if p == nil {
		return nil
	}
	for i, ev := range p.Events {
		links, err := p.resolve(net, ev)
		if err != nil {
			return fmt.Errorf("exp: fault event %d: %w", i, err)
		}
		switch ev.Kind {
		case FaultDown, FaultCrash:
			// A crash is a down with no matching up (Validate rejects one):
			// the host's ranks park on sends and receives that can never
			// complete, the run DNFs at its time budget, and Kernel.Close
			// aborts the permanently-parked processes.
			k.Schedule(ev.At, func() {
				for _, l := range links {
					l.SetDown(true)
				}
			})
		case FaultUp:
			k.Schedule(ev.At, func() {
				for _, l := range links {
					l.SetDown(false)
				}
			})
		case FaultLoss:
			loss := ev.Loss
			k.Schedule(ev.At, func() {
				for _, l := range links {
					l.SetExtraLoss(loss)
				}
			})
		case FaultJitter:
			jit := ev.Jitter
			k.Schedule(ev.At, func() {
				for _, l := range links {
					l.SetJitter(jit)
				}
			})
		}
	}
	return nil
}

// resolve maps one event's target spec to concrete links: a site's uplink
// pair, a host's NIC pair, or (untargeted loss/jitter) every site uplink.
func (p *FaultPlan) resolve(net *netsim.Network, ev FaultEvent) ([]*netsim.Link, error) {
	switch {
	case ev.Site != "":
		out, in, ok := net.Uplink(ev.Site)
		if !ok {
			return nil, fmt.Errorf("site %q has no uplink in this topology (sites: %s)",
				ev.Site, strings.Join(net.Sites(), ", "))
		}
		return []*netsim.Link{out, in}, nil
	case ev.Host != "":
		h := net.Host(ev.Host)
		if h == nil {
			return nil, fmt.Errorf("host %q is not in this topology", ev.Host)
		}
		return []*netsim.Link{h.NIC, h.NICIn}, nil
	default:
		var links []*netsim.Link
		for _, site := range net.Sites() {
			if out, in, ok := net.Uplink(site); ok {
				links = append(links, out, in)
			}
		}
		if len(links) == 0 {
			return nil, fmt.Errorf("untargeted %s event, but the topology has no site uplinks", ev.Kind)
		}
		return links, nil
	}
}

// ParseFaultPlan parses the -faults command-line syntax: semicolon-
// separated clauses, each either "seed=N" or "<time> <kind> <args>":
//
//	seed=7; 100ms down site=rennes; 300ms up site=rennes
//	0s loss 0.05; 2s loss 0; 0s jitter 2ms site=nancy
//	50ms crash host=rennes-1
//
// down/up need site=NAME or host=NAME; crash needs host=NAME (the host
// never comes back); loss takes a probability and jitter a duration, each
// with an optional site=/host= target (default: every site uplink). An
// empty string returns a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	for _, clause := range strings.Split(s, ";") {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		if v, ok := strings.CutPrefix(fields[0], "seed="); ok && len(fields) == 1 {
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("exp: bad fault seed %q: %v", v, err)
			}
			plan.Seed = seed
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("exp: bad fault clause %q (want \"<time> <kind> ...\")", strings.TrimSpace(clause))
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("exp: bad fault time %q: %v", fields[0], err)
		}
		ev := FaultEvent{At: at, Kind: fields[1]}
		rest := fields[2:]
		switch ev.Kind {
		case FaultLoss:
			if len(rest) == 0 {
				return nil, fmt.Errorf("exp: loss clause %q needs a probability", strings.TrimSpace(clause))
			}
			ev.Loss, err = strconv.ParseFloat(rest[0], 64)
			if err != nil {
				return nil, fmt.Errorf("exp: bad loss probability %q: %v", rest[0], err)
			}
			rest = rest[1:]
		case FaultJitter:
			if len(rest) == 0 {
				return nil, fmt.Errorf("exp: jitter clause %q needs a duration", strings.TrimSpace(clause))
			}
			ev.Jitter, err = time.ParseDuration(rest[0])
			if err != nil {
				return nil, fmt.Errorf("exp: bad jitter duration %q: %v", rest[0], err)
			}
			rest = rest[1:]
		}
		for _, f := range rest {
			switch {
			case strings.HasPrefix(f, "site="):
				ev.Site = strings.TrimPrefix(f, "site=")
			case strings.HasPrefix(f, "host="):
				ev.Host = strings.TrimPrefix(f, "host=")
			default:
				return nil, fmt.Errorf("exp: unexpected fault field %q in clause %q", f, strings.TrimSpace(clause))
			}
		}
		plan.Events = append(plan.Events, ev)
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}
