package exp

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/mpiimpl"
)

// mixedSweep crosses several axes and workload kinds, so the parallel
// runner is exercised over heterogeneous experiments (run under -race in
// CI).
func mixedSweep() Sweep {
	return Sweep{
		Impls:      []string{mpiimpl.RawTCP, mpiimpl.MPICH2, mpiimpl.GridMPI, mpiimpl.OpenMPI},
		Tunings:    []Tuning{{}, {TCP: true}},
		Topologies: []Topology{Grid(1)},
		Workloads:  []Workload{PingPongWorkload(tinySizes, 3)},
	}
}

// TestRunnerSequentialVsParallel is the engine's core guarantee: a
// multi-worker sweep serializes byte-for-byte identically to a
// single-worker run of the same work list, and to a second parallel run.
func TestRunnerSequentialVsParallel(t *testing.T) {
	exps := mixedSweep().Experiments()
	seq := MarshalResults(NewRunner(1).RunAll(exps))
	par := MarshalResults(NewRunner(8).RunAll(exps))
	par2 := MarshalResults(NewRunner(8).RunAll(exps))
	if !bytes.Equal(seq, par) {
		t.Fatal("parallel sweep results differ from sequential")
	}
	if !bytes.Equal(par, par2) {
		t.Fatal("two parallel sweeps differ")
	}
}

// TestRunnerParallelMixedWorkloads runs pattern + NPB workloads through a
// multi-worker pool, twice, comparing results — a determinism check that
// doubles as the -race pass over every workload path.
func TestRunnerParallelMixedWorkloads(t *testing.T) {
	s := Sweep{
		Impls:      []string{mpiimpl.MPICH2, mpiimpl.GridMPI},
		Tunings:    []Tuning{{TCP: true}},
		Topologies: []Topology{Grid(2)},
		Workloads: []Workload{
			PatternWorkload("alltoall", 32<<10, 2),
			PatternWorkload("ring", 16<<10, 2),
			NPBWorkload("EP", 0.02),
			NPBWorkload("IS", 0.2),
		},
	}
	a := MarshalResults(NewRunner(8).RunSweep(s))
	b := MarshalResults(NewRunner(3).RunSweep(s))
	if !bytes.Equal(a, b) {
		t.Fatal("mixed-workload sweep is not deterministic across pool sizes")
	}
}

// TestRunnerCache: rerunning an experiment through one runner serves the
// cached result, marked Cached, with identical content.
func TestRunnerCache(t *testing.T) {
	r := NewRunner(4)
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	first := r.Run(e)
	if first.Cached {
		t.Error("first run reported a cache hit")
	}
	second := r.Run(e)
	if !second.Cached {
		t.Error("second run missed the cache")
	}
	a := MarshalResults([]Result{first})
	b := MarshalResults([]Result{second})
	if !bytes.Equal(a, b) {
		t.Error("cached result differs from the original")
	}
	if r.CacheLen() != 1 {
		t.Errorf("cache holds %d entries, want 1", r.CacheLen())
	}
	// A batch containing duplicates runs each distinct experiment once.
	dup := []Experiment{e, e, e, tinyPingPong(mpiimpl.MPICH2, Tuning{})}
	results := r.RunAll(dup)
	if r.CacheLen() != 2 {
		t.Errorf("cache holds %d entries after duplicate batch, want 2", r.CacheLen())
	}
	if !results[1].Cached || !results[2].Cached {
		t.Error("duplicate batch entries were not served from cache")
	}
}

// TestRunnerConcurrentSameExperiment hammers one fingerprint from many
// goroutines: exactly one execution, everyone gets the same bytes.
func TestRunnerConcurrentSameExperiment(t *testing.T) {
	r := NewRunner(8)
	e := tinyPingPong(mpiimpl.OpenMPI, Tuning{TCP: true})
	var wg sync.WaitGroup
	results := make([]Result, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(e)
		}(i)
	}
	wg.Wait()
	misses := 0
	ref := MarshalResults([]Result{results[0]})
	for i, res := range results {
		if !res.Cached {
			misses++
		}
		if got := MarshalResults([]Result{res}); !bytes.Equal(got, ref) {
			t.Fatalf("goroutine %d saw different result bytes", i)
		}
	}
	if misses != 1 {
		t.Errorf("experiment executed %d times, want exactly once", misses)
	}
}

// TestRunnerDefaults: worker clamping.
func TestRunnerDefaults(t *testing.T) {
	if NewRunner(0).Workers() < 1 {
		t.Error("NewRunner(0) has no workers")
	}
	if got := NewRunner(3).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}
