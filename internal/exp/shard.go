package exp

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard is one slice of a sweep matrix for cross-machine execution:
// shard Index of Count (1-based, as the CLI spells it: "-shard 2/4").
//
// The partition is keyed by experiment fingerprint, so it is
// deterministic, independent of sweep expansion order, and stable across
// processes and machines: every shard selects a disjoint subset and the
// union over all shards is exactly the full matrix. Because DiskCache
// entries are content-addressed by the same fingerprints, the shard
// cache directories merge by plain file copy (`cp shard*/cache/*.json
// merged/`), after which the full matrix replays entirely from the
// merged store.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the CLI form "i/n" with 1 ≤ i ≤ n.
func ParseShard(s string) (Shard, error) {
	iStr, nStr, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("exp: bad shard %q (want i/n, e.g. 2/4)", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(iStr))
	n, err2 := strconv.Atoi(strings.TrimSpace(nStr))
	if err1 != nil || err2 != nil || n < 1 || i < 1 || i > n {
		return Shard{}, fmt.Errorf("exp: bad shard %q (want i/n with 1 ≤ i ≤ n)", s)
	}
	return Shard{Index: i, Count: n}, nil
}

// String renders the CLI spelling, "i/n".
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// IsAll reports the degenerate whole-matrix shard (zero value or 1/1).
func (s Shard) IsAll() bool { return s.Count <= 1 }

// owns reports whether this shard is responsible for a fingerprint.
func (s Shard) owns(fp string) bool {
	if s.IsAll() {
		return true
	}
	// The fingerprint is 16 hex characters of SHA-256: parse it as the
	// partition key instead of re-hashing.
	v, err := strconv.ParseUint(fp, 16, 64)
	if err != nil {
		// Unreachable for Fingerprint output; fail closed to shard 1 so
		// no experiment is ever silently dropped from every shard.
		return s.Index == 1
	}
	return v%uint64(s.Count) == uint64(s.Index-1)
}

// Select returns the experiments this shard owns, preserving order.
func (s Shard) Select(exps []Experiment) []Experiment {
	if s.IsAll() {
		return exps
	}
	var out []Experiment
	for _, e := range exps {
		if s.owns(e.Fingerprint()) {
			out = append(out, e)
		}
	}
	return out
}
