package exp

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// JobQueue is the scheduling state machine behind cmd/sweepd: jobs are
// submitted sweep matrices, partitioned into shard slices by experiment
// fingerprint (the same Shard.owns grammar that powers `sweep -shard`),
// and leased slice-by-slice to pull-based workers. The queue never
// executes anything itself — workers compute cells through their own
// Runner and publish results into the server's DiskCache over the
// verified ingest path; a cell is marked done only when that store can
// serve a loadable entry for its fingerprint (the same decodeEntry
// trust gate every cache read passes), so a lying or stale worker's
// claim is rejected exactly like a corrupt cache file.
//
// The state machine is deterministic where it matters for the repo's
// contracts: cells keep submission order, the slice partition is a pure
// function of the fingerprints, a resubmitted matrix resolves entirely
// from the store at submission time (recomputing nothing), and a
// worker that dies mid-lease loses zero cells — its lease expires and
// the unfinished cells return to the queue for the next Lease call.
//
// A queue may carry a QueueJournal (see RecoverJobQueue): every
// transition then appends one write-ahead record, so a queue killed at
// any instant rebuilds the same scheduling state on restart.
//
// All methods are safe for concurrent use.
type JobQueue struct {
	mu    sync.Mutex
	store *DiskCache
	cfg   QueueConfig
	// now is the queue's clock; tests replace it to drive lease expiry.
	now func() time.Time

	jobs  map[string]*queueJob
	order []string // job IDs in submission order
	seq   int      // job and lease ID counter

	// journal, when set, receives one record per transition and the
	// periodic compaction snapshots. nil means an in-memory-only queue.
	journal *QueueJournal
	// draining refuses new leases (Lease returns ok == false) while
	// in-flight reports keep landing — the SIGTERM grace window.
	draining bool
}

// Default queue tuning: leases outlive any reasonable cell (renewal
// rides on every report), and a matrix splits into enough slices that a
// small fleet load-balances without stealing.
const (
	DefaultLeaseTTL  = 60 * time.Second
	DefaultJobSlices = 8
	// DefaultStealMin is the smallest pending count a leased slice must
	// hold before an idle worker may steal its back half.
	DefaultStealMin = 2
	// DefaultWorkerPoll is the idle-poll interval sweepd advertises to
	// workers that did not pin one with -worker-poll.
	DefaultWorkerPoll = 250 * time.Millisecond
	// maxJobCells bounds one submission, keeping a confused client from
	// growing server memory without limit.
	maxJobCells = 1 << 20
)

// QueueConfig is the queue tuning, settable per sweepd process (PR 8
// hardcoded these at package level). The zero value means defaults.
type QueueConfig struct {
	// TTL is the lease lifetime; reports renew it.
	TTL time.Duration
	// Slices is the default partition width for submissions that do not
	// choose their own.
	Slices int
	// StealMin is the minimum pending cells a leased slice needs before
	// it can be split for work stealing.
	StealMin int
	// Poll is the idle-poll interval advertised to workers.
	Poll time.Duration
}

func (c QueueConfig) withDefaults() QueueConfig {
	if c.TTL <= 0 {
		c.TTL = DefaultLeaseTTL
	}
	if c.Slices <= 0 {
		c.Slices = DefaultJobSlices
	}
	if c.StealMin < 2 {
		c.StealMin = DefaultStealMin
	}
	if c.Poll <= 0 {
		c.Poll = DefaultWorkerPoll
	}
	return c
}

// QueueConfigStatus is the tuning block served in /statusz.
type QueueConfigStatus struct {
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	Slices     int   `json:"slices"`
	StealMin   int   `json:"steal_min"`
	PollMS     int64 `json:"poll_ms"`
	Draining   bool  `json:"draining,omitempty"`
}

type cellState int

const (
	cellQueued cellState = iota
	cellLeased
	cellDone
	cellFailed
)

type queueCell struct {
	exp   Experiment
	state cellState
	// cached marks a done cell resolved from the store at submission
	// (as opposed to computed through a verified worker report); the
	// distinction must survive the journal so recovered progress
	// counters match.
	cached bool
	err    string // failure report, when state == cellFailed
}

// queueSlice is the lease unit: one shard's pending fingerprints, in
// submission order. Stolen slices are appended with the Shard of their
// donor (provenance only; ownership is the pending list).
type queueSlice struct {
	shard   Shard
	pending []string // fingerprints not yet done/failed
	lease   *queueLease
}

type queueLease struct {
	id       string
	worker   string
	deadline time.Time
	// stolen accumulates fingerprints moved to another worker since this
	// lease's last report; the next report returns them as a drop list
	// so the donor stops computing work it no longer owns.
	stolen []string
}

type queueWorker struct {
	lastSeen time.Time
	leased   int // cells currently under one of this worker's leases
	done     int // verified completions reported by this worker
}

type queueJob struct {
	id       string
	cells    map[string]*queueCell
	cellIDs  []string // fingerprints in submission order
	slices   []*queueSlice
	workers  map[string]*queueWorker
	cached   int // done at submission, served by the store
	computed int // done via verified worker reports
	failed   int
}

// NewJobQueue creates an in-memory queue over the given result store.
// Zero fields of cfg take the package defaults. For a crash-safe queue
// use RecoverJobQueue, which attaches a journal.
func NewJobQueue(store *DiskCache, cfg QueueConfig) *JobQueue {
	return &JobQueue{
		store: store,
		cfg:   cfg.withDefaults(),
		now:   time.Now,
		jobs:  make(map[string]*queueJob),
	}
}

// Config returns the queue tuning in /statusz form.
func (q *JobQueue) Config() QueueConfigStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueConfigStatus{
		LeaseTTLMS: q.cfg.TTL.Milliseconds(),
		Slices:     q.cfg.Slices,
		StealMin:   q.cfg.StealMin,
		PollMS:     q.cfg.Poll.Milliseconds(),
		Draining:   q.draining,
	}
}

// PollHint is the idle-poll interval the server advertises to workers.
func (q *JobQueue) PollHint() time.Duration { return q.cfg.Poll }

// JournalStats snapshots the attached journal's accounting; nil when
// the queue runs without one.
func (q *JobQueue) JournalStats() *JournalStats {
	q.mu.Lock()
	j := q.journal
	q.mu.Unlock()
	if j == nil {
		return nil
	}
	st := j.Stats()
	return &st
}

// SetDraining toggles drain mode: a draining queue grants no new leases
// (workers' Lease calls return "nothing available") while reports from
// in-flight leases keep landing. cmd/sweepd drains on SIGTERM so the
// fleet's current cells finish before the process exits.
func (q *JobQueue) SetDraining(v bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.draining = v
}

// ActiveLeases counts unexpired leases across all jobs — the drain
// loop's exit condition.
func (q *JobQueue) ActiveLeases() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	n := 0
	for _, id := range q.order {
		for _, sl := range q.jobs[id].slices {
			if sl.lease != nil {
				n++
			}
		}
	}
	return n
}

// Checkpoint compacts the journal: current state to the snapshot file,
// write-ahead log truncated. A no-op without a journal. Called by the
// drain path so a clean shutdown restarts from one snapshot read.
func (q *JobQueue) Checkpoint() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.journal == nil {
		return nil
	}
	return q.journal.writeSnapshot(q.snapshotLocked())
}

// Close detaches and closes the journal, if any.
func (q *JobQueue) Close() error {
	q.mu.Lock()
	j := q.journal
	q.journal = nil
	q.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// logLocked journals one transition (no-op for journal-less queues) and
// compacts when the log has outgrown its threshold. Called with q.mu
// held, so the snapshot is consistent with the record just appended.
func (q *JobQueue) logLocked(rec journalRecord) {
	if q.journal == nil {
		return
	}
	rec.V = journalSchemaVersion
	rec.T = q.now().UnixNano()
	if q.journal.Append(rec) {
		// Best-effort: a failed compaction leaves the oversized log in
		// place and the next append retries. Append errors are counted
		// in the journal stats either way.
		_ = q.journal.writeSnapshot(q.snapshotLocked())
	}
}

// WorkerStatus is one worker's liveness line in a job status.
type WorkerStatus struct {
	ID string `json:"id"`
	// LastSeenMS is how long ago the worker last leased or reported,
	// in milliseconds (an age, so no absolute clocks cross the wire).
	LastSeenMS int64 `json:"last_seen_ms"`
	// Live reports a worker seen within one lease TTL.
	Live   bool `json:"live"`
	Leased int  `json:"leased"`
	Done   int  `json:"done"`
}

// CellFailure names one failed cell of a job.
type CellFailure struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name"`
	Err         string `json:"err"`
}

// JobStatus is the progress snapshot served at /v1/jobs/<id>.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"` // running, done, failed
	Total int    `json:"total"`

	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Done   int `json:"done"`
	Failed int `json:"failed"`

	// Cached cells were resolved from the result store at submission;
	// Computed cells became done through verified worker reports.
	// Cached + Computed == Done.
	Cached   int `json:"cached"`
	Computed int `json:"computed"`

	Workers  []WorkerStatus `json:"workers,omitempty"`
	Failures []CellFailure  `json:"failures,omitempty"`
}

// Finished reports a job with no outstanding cells.
func (s JobStatus) Finished() bool { return s.State != "running" }

// LeaseGrant hands one slice's pending cells to a worker. The worker
// owns them until Deadline passes without a report; results publish
// through the store and each cell is closed out by a Report call.
type LeaseGrant struct {
	Job   string `json:"job"`
	Lease string `json:"lease"`
	TTLMS int64  `json:"ttl_ms"`
	// Cells lists the leased experiments in submission order.
	Cells []Experiment `json:"cells"`
}

// ReportAck answers one cell report.
type ReportAck struct {
	// Verified is true when a done report was accepted: the server's
	// store served a loadable entry for the fingerprint. A false ack
	// means the claim was rejected — the cell stays pending and the
	// worker should push the result before reporting again.
	Verified bool `json:"verified"`
	// Drop lists fingerprints stolen from this lease since its last
	// report; the worker must stop computing them.
	Drop []string `json:"drop,omitempty"`
	// JobState echoes the job's state after the report.
	JobState string `json:"job_state"`
}

// Submit registers a sweep matrix as a job. Cells already served by the
// result store resolve to done immediately — resubmitting a completed
// sweep yields a job that is done on arrival with Computed == 0. A
// submission whose cell set matches a still-running job returns that
// job instead of queueing duplicate work (workers publish to one
// content-addressed store, so the first job's results serve both
// callers). Duplicate fingerprints within one submission collapse to
// the first occurrence.
func (q *JobQueue) Submit(cells []Experiment, slices int) (JobStatus, error) {
	if len(cells) == 0 {
		return JobStatus{}, fmt.Errorf("exp: empty job submission")
	}
	if len(cells) > maxJobCells {
		return JobStatus{}, fmt.Errorf("exp: job of %d cells exceeds the %d-cell limit", len(cells), maxJobCells)
	}

	fps := make([]string, 0, len(cells))
	byFP := make(map[string]Experiment, len(cells))
	for _, e := range cells {
		fp := e.Fingerprint()
		if _, dup := byFP[fp]; dup {
			continue
		}
		byFP[fp] = e
		fps = append(fps, fp)
	}

	q.mu.Lock()
	defer q.mu.Unlock()
	if slices <= 0 {
		slices = q.cfg.Slices
	}
	q.expireLocked()
	if j := q.findActiveLocked(fps); j != nil {
		return q.statusLocked(j), nil
	}

	q.seq++
	j := &queueJob{
		id:      fmt.Sprintf("j%04d", q.seq),
		cells:   make(map[string]*queueCell, len(fps)),
		cellIDs: fps,
		workers: make(map[string]*queueWorker),
	}
	var queued, cached []string
	ordered := make([]Experiment, 0, len(fps))
	for _, fp := range fps {
		c := &queueCell{exp: byFP[fp]}
		ordered = append(ordered, c.exp)
		j.cells[fp] = c
		// The trust gate decides "already done": only a loadable,
		// verified entry spares the cell, never mere file presence.
		if _, ok := q.store.Load(fp); ok {
			c.state = cellDone
			c.cached = true
			j.cached++
			cached = append(cached, fp)
			continue
		}
		queued = append(queued, fp)
	}
	// Partition pending cells into shard slices. Shards that own no
	// cell are dropped; each surviving slice is one lease unit.
	for i := 1; i <= slices; i++ {
		sh := Shard{Index: i, Count: slices}
		var pending []string
		for _, fp := range queued {
			if sh.owns(fp) {
				pending = append(pending, fp)
			}
		}
		if len(pending) > 0 {
			j.slices = append(j.slices, &queueSlice{shard: sh, pending: pending})
		}
	}
	q.jobs[j.id] = j
	q.order = append(q.order, j.id)
	q.logLocked(journalRecord{
		Kind:   "submit",
		Job:    j.id,
		Seq:    q.seq,
		Slices: slices,
		Cells:  ordered,
		Cached: cached,
	})
	return q.statusLocked(j), nil
}

// findActiveLocked returns a running job whose cell set is exactly fps.
func (q *JobQueue) findActiveLocked(fps []string) *queueJob {
	want := append([]string(nil), fps...)
	sort.Strings(want)
	for _, id := range q.order {
		j := q.jobs[id]
		if q.stateLocked(j) != "running" || len(j.cellIDs) != len(want) {
			continue
		}
		have := append([]string(nil), j.cellIDs...)
		sort.Strings(have)
		match := true
		for i := range have {
			if have[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return j
		}
	}
	return nil
}

// Lease grants the named worker one slice of pending work, scanning
// jobs in submission order. When every slice of every running job is
// already leased and alive, the largest in-flight slice with at least
// StealMin pending cells is split and its back half re-leased to the
// caller (work stealing for stragglers; the donor learns of the theft
// as a drop list on its next report). ok == false means there is
// nothing to hand out right now — the worker should poll again. A
// draining queue hands out nothing.
func (q *JobQueue) Lease(worker string) (LeaseGrant, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	if q.draining {
		return LeaseGrant{}, false
	}
	now := q.now()

	for _, id := range q.order {
		j := q.jobs[id]
		// Unleased (or expired, cleaned by expireLocked) slice first.
		for _, sl := range j.slices {
			if sl.lease == nil && len(sl.pending) > 0 {
				return q.grantLocked(j, sl, worker, "", now), true
			}
		}
	}
	// Nothing free: steal from the biggest straggler slice.
	for _, id := range q.order {
		j := q.jobs[id]
		var donor *queueSlice
		for _, sl := range j.slices {
			if sl.lease == nil || sl.lease.worker == worker || len(sl.pending) < q.cfg.StealMin {
				continue
			}
			if donor == nil || len(sl.pending) > len(donor.pending) {
				donor = sl
			}
		}
		if donor == nil {
			continue
		}
		half := len(donor.pending) / 2
		stolen := append([]string(nil), donor.pending[len(donor.pending)-half:]...)
		donor.pending = donor.pending[:len(donor.pending)-half]
		donor.lease.stolen = append(donor.lease.stolen, stolen...)
		if w := j.workers[donor.lease.worker]; w != nil {
			w.leased -= len(stolen)
		}
		sl := &queueSlice{shard: donor.shard, pending: stolen}
		j.slices = append(j.slices, sl)
		return q.grantLocked(j, sl, worker, donor.lease.id, now), true
	}
	return LeaseGrant{}, false
}

// grantLocked leases sl to worker. from names the donor lease when the
// grant is a steal (journal provenance only).
func (q *JobQueue) grantLocked(j *queueJob, sl *queueSlice, worker, from string, now time.Time) LeaseGrant {
	q.seq++
	sl.lease = &queueLease{
		id:       fmt.Sprintf("l%04d", q.seq),
		worker:   worker,
		deadline: now.Add(q.cfg.TTL),
	}
	w := q.workerLocked(j, worker, now)
	w.leased += len(sl.pending)
	grant := LeaseGrant{
		Job:   j.id,
		Lease: sl.lease.id,
		TTLMS: q.cfg.TTL.Milliseconds(),
		Cells: make([]Experiment, 0, len(sl.pending)),
	}
	for _, fp := range sl.pending {
		j.cells[fp].state = cellLeased
		grant.Cells = append(grant.Cells, j.cells[fp].exp)
	}
	q.logLocked(journalRecord{
		Kind:     "lease",
		Job:      j.id,
		Lease:    sl.lease.id,
		Seq:      q.seq,
		Worker:   worker,
		Deadline: sl.lease.deadline.UnixNano(),
		FPs:      append([]string(nil), sl.pending...),
		From:     from,
	})
	return grant
}

func (q *JobQueue) workerLocked(j *queueJob, worker string, now time.Time) *queueWorker {
	w := j.workers[worker]
	if w == nil {
		w = &queueWorker{}
		j.workers[worker] = w
	}
	w.lastSeen = now
	return w
}

// Report closes out one cell of a lease. A done claim is verified
// against the result store — no loadable entry, no progress — while a
// failure report records the worker's error and terminates the cell.
// Reports renew the lease deadline (they are the worker's heartbeat)
// and return any fingerprints stolen from the lease since the last
// report. Reports for cells that are already settled, or from leases
// that have expired, are acknowledged idempotently: verified progress
// is never discarded, whoever delivers it.
func (q *JobQueue) Report(jobID, leaseID, worker, fp string, failed bool, errMsg string) (ReportAck, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	now := q.now()

	j, ok := q.jobs[jobID]
	if !ok {
		return ReportAck{}, fmt.Errorf("exp: unknown job %q", jobID)
	}
	c, ok := j.cells[fp]
	if !ok {
		return ReportAck{}, fmt.Errorf("exp: job %s has no cell %s", jobID, fp)
	}
	w := q.workerLocked(j, worker, now)

	// Find the lease (it may have expired or been superseded; the report
	// is still processed, just without a deadline to renew).
	var lease *queueLease
	for _, sl := range j.slices {
		if sl.lease != nil && sl.lease.id == leaseID {
			lease = sl.lease
			break
		}
	}
	ack := ReportAck{Verified: true}
	if lease != nil {
		lease.deadline = now.Add(q.cfg.TTL)
		ack.Drop = lease.stolen
		lease.stolen = nil
	}

	if c.state == cellDone || c.state == cellFailed {
		ack.JobState = q.stateLocked(j)
		return ack, nil // already settled; idempotent ack
	}
	switch {
	case failed:
		c.state = cellFailed
		c.err = errMsg
		j.failed++
	default:
		if _, ok := q.store.Load(fp); !ok {
			// The trust boundary: the worker claims done but the store
			// cannot serve a verified entry. Rejected — the cell stays
			// pending and will be re-leased if this worker gives up.
			ack.Verified = false
			ack.JobState = q.stateLocked(j)
			return ack, nil
		}
		c.state = cellDone
		j.computed++
		w.done++
	}
	// Only state changes reach the journal: idempotent acks and
	// unverified claims left nothing to recover.
	q.logLocked(journalRecord{
		Kind:   "report",
		Job:    jobID,
		Lease:  leaseID,
		Worker: worker,
		FP:     fp,
		Failed: failed,
		Err:    errMsg,
	})
	q.settleLocked(j, fp)
	ack.JobState = q.stateLocked(j)
	return ack, nil
}

// settleLocked removes a settled fingerprint from whichever slice still
// carries it and releases drained leases.
func (q *JobQueue) settleLocked(j *queueJob, fp string) {
	for _, sl := range j.slices {
		for i, p := range sl.pending {
			if p != fp {
				continue
			}
			sl.pending = append(sl.pending[:i], sl.pending[i+1:]...)
			if sl.lease != nil {
				if w := j.workers[sl.lease.worker]; w != nil {
					w.leased--
				}
				if len(sl.pending) == 0 {
					sl.lease = nil
				}
			}
			return
		}
	}
}

// expireLocked returns the cells of overdue leases to the queue. Called
// at the top of every public operation, so expiry needs no timer: dead
// workers are discovered the next time anyone talks to the queue.
func (q *JobQueue) expireLocked() {
	now := q.now()
	for _, id := range q.order {
		j := q.jobs[id]
		for _, sl := range j.slices {
			if sl.lease == nil || !now.After(sl.lease.deadline) {
				continue
			}
			if w := j.workers[sl.lease.worker]; w != nil {
				w.leased -= len(sl.pending)
			}
			for _, fp := range sl.pending {
				j.cells[fp].state = cellQueued
			}
			q.logLocked(journalRecord{
				Kind:  "expire",
				Job:   j.id,
				Lease: sl.lease.id,
				FPs:   append([]string(nil), sl.pending...),
			})
			sl.lease = nil
		}
	}
}

func (q *JobQueue) stateLocked(j *queueJob) string {
	done := j.cached + j.computed
	if done+j.failed < len(j.cellIDs) {
		return "running"
	}
	if j.failed > 0 {
		return "failed"
	}
	return "done"
}

func (q *JobQueue) statusLocked(j *queueJob) JobStatus {
	now := q.now()
	st := JobStatus{
		ID:       j.id,
		State:    q.stateLocked(j),
		Total:    len(j.cellIDs),
		Done:     j.cached + j.computed,
		Failed:   j.failed,
		Cached:   j.cached,
		Computed: j.computed,
	}
	for _, fp := range j.cellIDs {
		switch j.cells[fp].state {
		case cellQueued:
			st.Queued++
		case cellLeased:
			st.Leased++
		case cellFailed:
			c := j.cells[fp]
			st.Failures = append(st.Failures, CellFailure{
				Fingerprint: fp,
				Name:        c.exp.Name(),
				Err:         c.err,
			})
		}
	}
	names := make([]string, 0, len(j.workers))
	for name := range j.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := j.workers[name]
		st.Workers = append(st.Workers, WorkerStatus{
			ID:         name,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
			Live:       now.Sub(w.lastSeen) <= q.cfg.TTL,
			Leased:     w.leased,
			Done:       w.done,
		})
	}
	return st
}

// Status snapshots one job.
func (q *JobQueue) Status(jobID string) (JobStatus, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	j, ok := q.jobs[jobID]
	if !ok {
		return JobStatus{}, false
	}
	return q.statusLocked(j), true
}

// Jobs snapshots every job in submission order.
func (q *JobQueue) Jobs() []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	out := make([]JobStatus, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.statusLocked(q.jobs[id]))
	}
	return out
}
