package exp

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/grid5000"
	"repro/internal/netsim"
	"repro/internal/tcpsim"
)

// SiteSpec is one site's contribution to a topology: a Grid'5000 cluster
// name and how many nodes it provides.
type SiteSpec struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
}

// Site builds one SiteSpec (sugar for Asym call sites).
func Site(name string, nodes int) SiteSpec { return SiteSpec{Name: name, Nodes: nodes} }

// Placement is the policy mapping ranks onto a topology's hosts. The
// zero value means PlaceBlock; the rank→host mapping used to be
// improvised per workload, now every all-hosts workload asks the
// topology for it.
type Placement string

const (
	// PlaceBlock fills sites one after another in layout order: ranks
	// 0..n₀-1 on the first site, the next n₁ on the second, and so on
	// (the historical site-major order).
	PlaceBlock Placement = "block"
	// PlaceRoundRobin deals ranks across the sites one node at a time:
	// rank 0 on the first site's first node, rank 1 on the second
	// site's, wrapping until every node is used (sites that run out of
	// nodes drop out of the rotation).
	PlaceRoundRobin Placement = "round-robin"
)

// placeMasterPrefix tags master-on-site placements: "master:<site>".
const placeMasterPrefix = "master:"

// placeStridedPrefix tags strided placements: "strided:<k>".
const placeStridedPrefix = "strided:"

// PlaceStrided deals ranks across the sites k nodes at a time: the
// first site's first k nodes, then the second site's first k, wrapping
// until every node is used (sites that run out drop out of the
// rotation). strided:1 deals like round-robin; larger strides keep
// k-rank neighborhoods intra-site while still interleaving sites —
// the block-cyclic shape process-grid workloads ask for.
func PlaceStrided(stride int) Placement {
	return Placement(fmt.Sprintf("%s%d", placeStridedPrefix, stride))
}

// strideOf extracts the stride of a strided placement (0 otherwise).
func (p Placement) strideOf() int {
	s, ok := strings.CutPrefix(string(p), placeStridedPrefix)
	if !ok {
		return 0
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 1 {
		return 0
	}
	return k
}

// PlaceMasterOn puts rank 0 on the named site by rotating the layout so
// that site leads; the remaining sites keep block order. Useful when a
// workload's root rank (broadcast source, NPB rank 0) must live on a
// specific cluster.
func PlaceMasterOn(site string) Placement { return Placement(placeMasterPrefix + site) }

// masterSite extracts the site of a master-on placement ("" otherwise).
func (p Placement) masterSite() string {
	if strings.HasPrefix(string(p), placeMasterPrefix) {
		return strings.TrimPrefix(string(p), placeMasterPrefix)
	}
	return ""
}

// normalized resolves the zero-value alias: "" means PlaceBlock, and
// PlaceBlock marshals back to "" so both spellings share a fingerprint.
func (p Placement) normalized() Placement {
	if p == PlaceBlock {
		return ""
	}
	return p
}

func (p Placement) valid(layout []SiteSpec) error {
	switch p.normalized() {
	case "", PlaceRoundRobin:
		return nil
	}
	if site := p.masterSite(); site != "" {
		for _, s := range layout {
			if s.Name == site {
				return nil
			}
		}
		return fmt.Errorf("exp: placement %q names a site outside the layout", p)
	}
	if strings.HasPrefix(string(p), placeStridedPrefix) {
		if p.strideOf() < 1 {
			return fmt.Errorf("exp: bad placement %q (want strided:<k> with k ≥ 1)", p)
		}
		return nil
	}
	return fmt.Errorf("exp: unknown placement %q (have block, round-robin, strided:<k>, master:<site>)", p)
}

// Topology describes the simulated testbed: which sites participate and
// how many nodes each contributes (the Layout), how ranks map onto those
// nodes (the Placement), and optional overrides of the WAN
// characteristics (zero values keep the published Grid'5000 numbers).
type Topology struct {
	// Layout lists the participating sites in order. Uniform layouts
	// (every site the same node count) keep the historical wire encoding
	// {"sites":[...],"nodes_per_site":n}, so fingerprints — and therefore
	// DiskCache entries — written before per-site layouts existed stay
	// valid.
	Layout []SiteSpec
	// Placement maps ranks to hosts; zero means PlaceBlock.
	Placement Placement
	// WANOneWay overrides the inter-site one-way delay for every site pair
	// (0 = the published per-pair Grid'5000 delays).
	WANOneWay time.Duration
	// WANRate overrides the site uplink rate in bytes/second (0 = 10 GbE).
	WANRate float64
}

// Cluster is a single-site topology with n nodes in Rennes.
func Cluster(nodes int) Topology {
	return Topology{Layout: []SiteSpec{{grid5000.Rennes, nodes}}}
}

// Grid is the paper's two-site Rennes–Nancy topology with n nodes per
// site across the 11.6 ms RTT WAN.
func Grid(nodesPerSite int) Topology {
	return Topology{Layout: []SiteSpec{
		{grid5000.Rennes, nodesPerSite},
		{grid5000.Nancy, nodesPerSite},
	}}
}

// Asym assembles a topology from explicit per-site node counts, e.g.
// Asym(Site("rennes", 8), Site("nancy", 4), Site("sophia", 4)).
func Asym(sites ...SiteSpec) Topology {
	return Topology{Layout: append([]SiteSpec(nil), sites...)}
}

// EvenSplit distributes np ranks evenly across the named sites,
// validating divisibility up front — the check that used to live ad hoc
// in npb.Run (an odd NP across two clusters would otherwise silently
// drop a rank and simulate a malformed world).
func EvenSplit(np int, sites ...string) (Topology, error) {
	if len(sites) == 0 {
		return Topology{}, fmt.Errorf("exp: EvenSplit needs at least one site")
	}
	if np < 1 {
		return Topology{}, fmt.Errorf("exp: NP = %d, need at least one rank", np)
	}
	if np%len(sites) != 0 {
		return Topology{}, fmt.Errorf("exp: NP = %d cannot split evenly across %d sites", np, len(sites))
	}
	layout := make([]SiteSpec, len(sites))
	for i, name := range sites {
		layout[i] = SiteSpec{Name: name, Nodes: np / len(sites)}
	}
	return Topology{Layout: layout}, nil
}

// ParseLayout parses a topology description of the form
// "rennes:8+nancy:4+sophia:4" (site:nodes pairs joined by '+'); a pair
// without an explicit count contributes one node.
func ParseLayout(s string) (Topology, error) {
	var layout []SiteSpec
	for _, tok := range strings.Split(s, "+") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, countStr, hasCount := strings.Cut(tok, ":")
		nodes := 1
		if hasCount {
			n, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil {
				return Topology{}, fmt.Errorf("exp: bad node count in layout %q: %w", tok, err)
			}
			nodes = n
		}
		layout = append(layout, SiteSpec{Name: strings.TrimSpace(name), Nodes: nodes})
	}
	if len(layout) == 0 {
		return Topology{}, fmt.Errorf("exp: empty layout %q", s)
	}
	t := Topology{Layout: layout}
	return t, t.Validate()
}

// IsZero reports a completely unset topology (workloads that own their
// testbed — ray2mesh's canonical run, fabric — expect it).
func (t Topology) IsZero() bool {
	return len(t.Layout) == 0 && t.Placement.normalized() == "" && t.WANOneWay == 0 && t.WANRate == 0
}

// NP is the total rank count of an all-hosts workload on this topology.
func (t Topology) NP() int {
	np := 0
	for _, s := range t.Layout {
		np += s.Nodes
	}
	return np
}

// Sites lists the layout's site names in order.
func (t Topology) Sites() []string {
	names := make([]string, len(t.Layout))
	for i, s := range t.Layout {
		names[i] = s.Name
	}
	return names
}

// uniformNodes reports whether every site contributes the same node
// count (vacuously 0 for an empty layout), the shape the historical
// encoding can express.
func (t Topology) uniformNodes() (int, bool) {
	if len(t.Layout) == 0 {
		return 0, true
	}
	n := t.Layout[0].Nodes
	for _, s := range t.Layout[1:] {
		if s.Nodes != n {
			return 0, false
		}
	}
	return n, true
}

// String is the topology's one-line label ("rennes+nancy x8", or
// per-site counts for asymmetric layouts, plus any placement and WAN
// overrides). Presentation only; the cache key is the JSON fingerprint.
func (t Topology) String() string {
	var s string
	if n, ok := t.uniformNodes(); ok {
		s = fmt.Sprintf("%s x%d", strings.Join(t.Sites(), "+"), n)
	} else {
		parts := make([]string, len(t.Layout))
		for i, site := range t.Layout {
			parts[i] = fmt.Sprintf("%s:%d", site.Name, site.Nodes)
		}
		s = strings.Join(parts, "+")
	}
	if p := t.Placement.normalized(); p != "" {
		s += " place=" + string(p)
	}
	if t.WANOneWay != 0 {
		s += fmt.Sprintf(" owd=%v", t.WANOneWay)
	}
	if t.WANRate != 0 {
		s += fmt.Sprintf(" uplink=%.0fMB/s", t.WANRate/1e6)
	}
	return s
}

// topologyWire is the JSON schema of a Topology. Uniform layouts are
// encoded through Sites/NodesPerSite — byte-identical to the encoding
// used before per-site layouts existed, which is what keeps old
// fingerprints (and DiskCache directories) valid — and asymmetric
// layouts through Layout. Placement is omitted when default.
type topologyWire struct {
	Sites        []string      `json:"sites,omitempty"`
	NodesPerSite *int          `json:"nodes_per_site,omitempty"`
	Layout       []SiteSpec    `json:"layout,omitempty"`
	Placement    Placement     `json:"placement,omitempty"`
	WANOneWay    time.Duration `json:"wan_one_way,omitempty"`
	WANRate      float64       `json:"wan_rate,omitempty"`
}

// MarshalJSON emits the canonical encoding (see topologyWire).
func (t Topology) MarshalJSON() ([]byte, error) {
	w := topologyWire{
		Placement: t.Placement.normalized(),
		WANOneWay: t.WANOneWay,
		WANRate:   t.WANRate,
	}
	if n, ok := t.uniformNodes(); ok {
		// The legacy encoding spells both fields out even when zero:
		// {"sites":null,"nodes_per_site":0} is the historical empty
		// topology, and changing its bytes would orphan every cached
		// ray2mesh/fabric experiment (hence nil, not [], for no sites).
		if len(t.Layout) > 0 {
			w.Sites = t.Sites()
		}
		w.NodesPerSite = &n
		type legacy struct {
			Sites        []string      `json:"sites"`
			NodesPerSite int           `json:"nodes_per_site"`
			Placement    Placement     `json:"placement,omitempty"`
			WANOneWay    time.Duration `json:"wan_one_way,omitempty"`
			WANRate      float64       `json:"wan_rate,omitempty"`
		}
		return json.Marshal(legacy{
			Sites:        w.Sites,
			NodesPerSite: n,
			Placement:    w.Placement,
			WANOneWay:    w.WANOneWay,
			WANRate:      w.WANRate,
		})
	}
	w.Layout = t.Layout
	return json.Marshal(w)
}

// UnmarshalJSON accepts both encodings: the legacy uniform
// Sites/NodesPerSite pair and the per-site Layout list.
func (t *Topology) UnmarshalJSON(blob []byte) error {
	var w topologyWire
	if err := json.Unmarshal(blob, &w); err != nil {
		return err
	}
	*t = Topology{
		Layout:    w.Layout,
		Placement: w.Placement,
		WANOneWay: w.WANOneWay,
		WANRate:   w.WANRate,
	}
	if len(w.Layout) == 0 && len(w.Sites) > 0 {
		n := 0
		if w.NodesPerSite != nil {
			n = *w.NodesPerSite
		}
		t.Layout = make([]SiteSpec, len(w.Sites))
		for i, name := range w.Sites {
			t.Layout[i] = SiteSpec{Name: name, Nodes: n}
		}
	}
	return nil
}

// Validate checks that the topology can be built: a non-empty layout of
// distinct, known sites with positive node counts, and a recognized
// placement. It returns an error instead of panicking mid-run, so a
// worker pool surfaces a bad topology as Result.Err without relying on
// Run's recover.
func (t Topology) Validate() error {
	if len(t.Layout) == 0 {
		return fmt.Errorf("exp: empty topology")
	}
	seen := make(map[string]bool, len(t.Layout))
	for _, s := range t.Layout {
		if _, ok := grid5000.Lookup(s.Name); !ok {
			return fmt.Errorf("exp: unknown site %q", s.Name)
		}
		if s.Nodes < 1 {
			return fmt.Errorf("exp: site %s contributes %d nodes, need at least 1", s.Name, s.Nodes)
		}
		if seen[s.Name] {
			return fmt.Errorf("exp: site %s appears twice in the layout", s.Name)
		}
		seen[s.Name] = true
	}
	return t.Placement.valid(t.Layout)
}

// Build constructs the network, validating first: unknown sites and
// malformed layouts come back as errors, never as a mid-run panic.
// Standard topologies match grid5000.BuildLayout exactly; WAN overrides
// assemble the same layout with the requested delay/uplink.
func (t Topology) Build() (*netsim.Network, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.WANOneWay == 0 && t.WANRate == 0 {
		layout := make([]grid5000.SiteCount, len(t.Layout))
		for i, s := range t.Layout {
			layout[i] = grid5000.SiteCount{Name: s.Name, Nodes: s.Nodes}
		}
		return grid5000.BuildLayout(layout), nil
	}
	net := netsim.New()
	uplink := t.WANRate
	if uplink == 0 {
		uplink = tcpsim.TenGigabitEthernet
	}
	for _, s := range t.Layout {
		site, _ := grid5000.Lookup(s.Name) // Validate vouched for it
		net.AddSite(s.Name, s.Nodes, site.CPUSpeed, tcpsim.GigabitEthernet, grid5000.IntraClusterOneWay)
		net.SetUplink(s.Name, uplink)
	}
	for i := 0; i < len(t.Layout); i++ {
		for j := i + 1; j < len(t.Layout); j++ {
			owd := t.WANOneWay
			if owd == 0 {
				owd = grid5000.OneWay(t.Layout[i].Name, t.Layout[j].Name)
			}
			net.ConnectSites(t.Layout[i].Name, t.Layout[j].Name, owd)
		}
	}
	return net, nil
}

// RankHosts maps ranks onto the built network's hosts according to the
// Placement policy: RankHosts(net)[i] runs rank i. The network must come
// from Build on the same topology.
func (t Topology) RankHosts(net *netsim.Network) []*netsim.Host {
	perSite := make([][]*netsim.Host, len(t.Layout))
	order := t.Layout
	if master := t.Placement.masterSite(); master != "" {
		// Rotate the layout so the master site leads; each site's hosts
		// stay contiguous in block order after rank 0's site.
		rotated := make([]SiteSpec, 0, len(t.Layout))
		for _, s := range t.Layout {
			if s.Name == master {
				rotated = append(rotated, s)
			}
		}
		for _, s := range t.Layout {
			if s.Name != master {
				rotated = append(rotated, s)
			}
		}
		order = rotated
	}
	for i, s := range order {
		perSite[i] = net.SiteHosts(s.Name)
	}
	var hosts []*netsim.Host
	stride := 0
	if t.Placement.normalized() == PlaceRoundRobin {
		stride = 1
	} else if k := t.Placement.strideOf(); k > 0 {
		stride = k
	}
	if stride > 0 {
		// Deal stride hosts per site per rotation; sites that run out of
		// hosts drop out (round-robin is the stride-1 case).
		next := make([]int, len(perSite))
		for {
			added := false
			for i, siteHosts := range perSite {
				for k := 0; k < stride && next[i] < len(siteHosts); k++ {
					hosts = append(hosts, siteHosts[next[i]])
					next[i]++
					added = true
				}
			}
			if !added {
				return hosts
			}
		}
	}
	for _, siteHosts := range perSite {
		hosts = append(hosts, siteHosts...)
	}
	return hosts
}

// endpointHosts picks the two processes of a two-ended workload
// (pingpong, trace): rank 0's host, and the first host in rank order on
// a different site — the cross-WAN pair on a grid — falling back to the
// second host of a single-site topology.
func (t Topology) endpointHosts(net *netsim.Network) []*netsim.Host {
	hosts := t.RankHosts(net)
	for _, h := range hosts[1:] {
		if h.Site != hosts[0].Site {
			return []*netsim.Host{hosts[0], h}
		}
	}
	return []*netsim.Host{hosts[0], hosts[1]}
}
