package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// QueueClient speaks the sweepd control-plane protocol: submitting
// jobs, polling their progress, and — for workers — pulling leases and
// reporting cells. Results never travel through this client: workers
// publish them via a RemoteStore pointed at the same server, and
// submitters pull them back through the identical verified read path.
type QueueClient struct {
	base   string
	client *http.Client
}

// NewQueueClient connects to a cmd/sweepd server at baseURL
// (http[s]://host:port).
func NewQueueClient(baseURL string) (*QueueClient, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("exp: bad sweepd URL %q (want http[s]://host:port)", baseURL)
	}
	return &QueueClient{
		base:   strings.TrimSuffix(u.String(), "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

// post sends one JSON request and decodes the JSON response into out.
// A 204 returns ok == false with no error (the "nothing for you" lease
// answer); any non-2xx status is an error carrying the server's text.
func (c *QueueClient) post(path string, in, out any) (bool, error) {
	blob, err := json.Marshal(in)
	if err != nil {
		return false, fmt.Errorf("exp: marshal %s request: %w", path, err)
	}
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("exp: sweepd POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("exp: sweepd POST %s: bad response: %w", path, err)
		}
	}
	return true, nil
}

func (c *QueueClient) get(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("exp: sweepd GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("exp: sweepd GET %s: bad response: %w", path, err)
	}
	return nil
}

// Submit registers a sweep matrix and returns the job's status —
// possibly already done, when every cell resolved from the server's
// store. slices <= 0 uses the server default.
func (c *QueueClient) Submit(cells []Experiment, slices int) (JobStatus, error) {
	var st JobStatus
	if _, err := c.post(jobsPath, submitRequest{Cells: cells, Slices: slices}, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Job fetches one job's progress snapshot.
func (c *QueueClient) Job(id string) (JobStatus, error) {
	var st JobStatus
	if err := c.get(jobsPath+"/"+url.PathEscape(id), &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Jobs fetches every job in submission order.
func (c *QueueClient) Jobs() ([]JobStatus, error) {
	var all []JobStatus
	if err := c.get(jobsPath, &all); err != nil {
		return nil, err
	}
	return all, nil
}

// Lease pulls one slice of pending work for the named worker. A nil
// grant with a nil error means the queue has nothing right now.
func (c *QueueClient) Lease(worker string) (*LeaseGrant, error) {
	var grant LeaseGrant
	ok, err := c.post(leasePath, leaseRequest{Worker: worker}, &grant)
	if err != nil || !ok {
		return nil, err
	}
	return &grant, nil
}

// Report closes out one cell of a lease (see JobQueue.Report).
func (c *QueueClient) Report(job, lease, worker, fp string, failed bool, errMsg string) (ReportAck, error) {
	var ack ReportAck
	req := reportRequest{Lease: lease, Worker: worker, Fingerprint: fp, Failed: failed, Err: errMsg}
	if _, err := c.post(jobsPath+"/"+url.PathEscape(job)+"/report", req, &ack); err != nil {
		return ReportAck{}, err
	}
	return ack, nil
}

// WaitJob polls a job until it leaves the running state, invoking
// progress (when non-nil) on every snapshot.
func (c *QueueClient) WaitJob(id string, poll time.Duration, progress func(JobStatus)) (JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		st, err := c.Job(id)
		if err != nil {
			return JobStatus{}, err
		}
		if progress != nil {
			progress(st)
		}
		if st.Finished() {
			return st, nil
		}
		time.Sleep(poll)
	}
}

// WorkerConfig drives one Work loop.
type WorkerConfig struct {
	// ID names the worker in leases and liveness reporting.
	ID string
	// Runner executes leased cells. Its backing store must be a
	// RemoteStore pointed at the same sweepd server, so every computed
	// result publishes through the verified ingest path before the
	// worker reports the cell done — that publish is what Report's
	// server-side verification checks.
	Runner *Runner
	// Poll is the idle wait between empty lease responses (default
	// 250ms).
	Poll time.Duration
	// IdleExit, when positive, ends the loop after this many
	// consecutive empty polls (a server that stays unreachable counts
	// too); zero polls forever.
	IdleExit int
	// Log, when non-nil, receives one line per lease and per defect.
	Log io.Writer
}

// WorkerReport summarizes one Work loop.
type WorkerReport struct {
	// Leases counts grants processed.
	Leases int
	// Cells counts cells run and reported (computed or served from a
	// cache tier; failures included).
	Cells int
	// Failed counts cells whose run ended in Result.Err.
	Failed int
	// Dropped counts cells skipped because the queue reassigned them
	// to another worker mid-lease.
	Dropped int
	// Rejected counts done reports the server refused to verify.
	Rejected int
	// Errors counts transport defects (failed lease or report calls).
	Errors int
}

// String is the worker's one-line exit summary.
func (r WorkerReport) String() string {
	return fmt.Sprintf("worker: %d leases, %d cells (%d failed, %d dropped), %d rejected reports, %d transport errors",
		r.Leases, r.Cells, r.Failed, r.Dropped, r.Rejected, r.Errors)
}

// Work runs the pull-based worker loop: lease a slice, run its cells
// through the Runner (each result publishing to the server via the
// Runner's RemoteStore), report each cell, repeat. Cells the queue
// reassigns to another worker (work stealing) arrive as drop lists on
// report acks and are skipped. The loop is crash-safe by construction:
// no state lives in the worker, so killing it anywhere loses nothing —
// its lease expires and the cells are re-leased.
func (c *QueueClient) Work(cfg WorkerConfig) WorkerReport {
	if cfg.Poll <= 0 {
		cfg.Poll = 250 * time.Millisecond
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "worker %s: "+format+"\n", append([]any{cfg.ID}, args...)...)
		}
	}
	var rep WorkerReport
	idle := 0
	for {
		grant, err := c.Lease(cfg.ID)
		if err != nil {
			rep.Errors++
			logf("lease: %v", err)
		}
		if grant == nil {
			idle++
			if cfg.IdleExit > 0 && idle >= cfg.IdleExit {
				return rep
			}
			time.Sleep(cfg.Poll)
			continue
		}
		idle = 0
		rep.Leases++
		logf("lease %s: %d cells of job %s", grant.Lease, len(grant.Cells), grant.Job)
		dropped := make(map[string]bool)
		for _, e := range grant.Cells {
			fp := e.Fingerprint()
			if dropped[fp] {
				rep.Dropped++
				continue
			}
			res := cfg.Runner.Run(e)
			rep.Cells++
			failed := res.Err != ""
			if failed {
				rep.Failed++
				logf("cell %s failed: %s", fp, res.Err)
			}
			ack, err := c.Report(grant.Job, grant.Lease, cfg.ID, fp, failed, res.Err)
			if err != nil {
				rep.Errors++
				logf("report %s: %v", fp, err)
				continue
			}
			if !failed && !ack.Verified {
				// The server could not verify our publish — most likely
				// the push behind Runner.Run degraded. Count it and move
				// on; the cell stays pending and will be re-leased.
				rep.Rejected++
				logf("report %s rejected: server has no verified entry", fp)
			}
			for _, d := range ack.Drop {
				dropped[d] = true
			}
		}
	}
}
