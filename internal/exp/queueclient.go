package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// pollHeader carries the server's idle-poll hint (milliseconds) on
// lease responses, so a fleet tunes its polling cadence from one
// sweepd flag instead of per-worker configuration.
const pollHeader = "X-Sweepd-Poll-MS"

// QueueClient speaks the sweepd control-plane protocol: submitting
// jobs, polling their progress, and — for workers — pulling leases and
// reporting cells. Results never travel through this client: workers
// publish them via a RemoteStore pointed at the same server, and
// submitters pull them back through the identical verified read path.
type QueueClient struct {
	base   string
	client *http.Client

	// Retry, when its Window is positive, retries transient failures
	// (connection refused, timeouts, 5xx) of every call with capped
	// exponential backoff — how a fleet rides through a sweepd restart.
	// The zero value fails on the first error, PR 8 behavior.
	Retry Backoff
	// Log, when non-nil, receives one line per outage transition
	// (unreachable / reachable again) from WaitJob.
	Log io.Writer

	pollHintMS atomic.Int64 // server-advertised idle poll, from pollHeader
}

// NewQueueClient connects to a cmd/sweepd server at baseURL
// (http[s]://host:port).
func NewQueueClient(baseURL string) (*QueueClient, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("exp: bad sweepd URL %q (want http[s]://host:port)", baseURL)
	}
	return &QueueClient{
		base:   strings.TrimSuffix(u.String(), "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}, nil
}

func (c *QueueClient) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// PollHint returns the server-advertised idle-poll interval, zero until
// a lease response has carried one.
func (c *QueueClient) PollHint() time.Duration {
	return time.Duration(c.pollHintMS.Load()) * time.Millisecond
}

// post sends one JSON request and decodes the JSON response into out,
// retrying transient failures per c.Retry. A 204 returns ok == false
// with no error (the "nothing for you" lease answer); any non-2xx
// status is an error carrying the server's text — IsTransient on 5xx
// (the server may be restarting), permanent on 4xx (the request itself
// was rejected; retrying cannot help).
func (c *QueueClient) post(path string, in, out any) (bool, error) {
	blob, err := json.Marshal(in)
	if err != nil {
		return false, fmt.Errorf("exp: marshal %s request: %w", path, err)
	}
	var ok bool
	err = c.Retry.Do(func() error {
		var attemptErr error
		ok, attemptErr = c.postOnce(path, blob, out)
		return attemptErr
	})
	return ok, err
}

func (c *QueueClient) postOnce(path string, blob []byte, out any) (bool, error) {
	// The body reader is built per attempt: a retry must replay the
	// request from the start, not from wherever the last one died.
	resp, err := c.client.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return false, Transient(err)
	}
	defer resp.Body.Close()
	if h := resp.Header.Get(pollHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			c.pollHintMS.Store(ms)
		}
	}
	if resp.StatusCode == http.StatusNoContent {
		return false, nil
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("exp: sweepd POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode/100 == 5 {
			return false, Transient(err)
		}
		return false, err
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return false, fmt.Errorf("exp: sweepd POST %s: bad response: %w", path, err)
		}
	}
	return true, nil
}

func (c *QueueClient) get(path string, out any) error {
	return c.Retry.Do(func() error { return c.getOnce(path, out) })
}

func (c *QueueClient) getOnce(path string, out any) error {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		return Transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("exp: sweepd GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
		if resp.StatusCode/100 == 5 {
			return Transient(err)
		}
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("exp: sweepd GET %s: bad response: %w", path, err)
	}
	return nil
}

// Submit registers a sweep matrix and returns the job's status —
// possibly already done, when every cell resolved from the server's
// store. slices <= 0 uses the server default.
func (c *QueueClient) Submit(cells []Experiment, slices int) (JobStatus, error) {
	var st JobStatus
	if _, err := c.post(jobsPath, submitRequest{Cells: cells, Slices: slices}, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Job fetches one job's progress snapshot.
func (c *QueueClient) Job(id string) (JobStatus, error) {
	var st JobStatus
	if err := c.get(jobsPath+"/"+url.PathEscape(id), &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Jobs fetches every job in submission order.
func (c *QueueClient) Jobs() ([]JobStatus, error) {
	var all []JobStatus
	if err := c.get(jobsPath, &all); err != nil {
		return nil, err
	}
	return all, nil
}

// Lease pulls one slice of pending work for the named worker. A nil
// grant with a nil error means the queue has nothing right now.
func (c *QueueClient) Lease(worker string) (*LeaseGrant, error) {
	var grant LeaseGrant
	ok, err := c.post(leasePath, leaseRequest{Worker: worker}, &grant)
	if err != nil || !ok {
		return nil, err
	}
	return &grant, nil
}

// Report closes out one cell of a lease (see JobQueue.Report).
func (c *QueueClient) Report(job, lease, worker, fp string, failed bool, errMsg string) (ReportAck, error) {
	var ack ReportAck
	req := reportRequest{Lease: lease, Worker: worker, Fingerprint: fp, Failed: failed, Err: errMsg}
	if _, err := c.post(jobsPath+"/"+url.PathEscape(job)+"/report", req, &ack); err != nil {
		return ReportAck{}, err
	}
	return ack, nil
}

// WaitJob polls a job until it leaves the running state, invoking
// progress (when non-nil) on every snapshot. The two failure modes get
// different treatment: a rejected request (unknown job, bad response)
// fails fast with the server's text, while an unreachable sweepd — when
// c.Retry opts in — is an outage to ride out: logged once, polled
// through, and only fatal after four consecutive retry windows without
// an answer (a restarting sweepd with a journal comes back holding the
// job, so patience is the correct default).
func (c *QueueClient) WaitJob(id string, poll time.Duration, progress func(JobStatus)) (JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	var down time.Time // start of the current outage; zero when healthy
	for {
		st, err := c.Job(id)
		if err != nil {
			if !IsTransient(err) || c.Retry.Window <= 0 {
				return JobStatus{}, err
			}
			now := time.Now()
			if down.IsZero() {
				down = now
				c.logf("sweepd unreachable, waiting for it to return: %v", err)
			}
			if outage := now.Sub(down); outage > 4*c.Retry.Window {
				return JobStatus{}, fmt.Errorf("exp: sweepd unreachable for %v: %w", outage.Round(time.Second), err)
			}
			time.Sleep(poll)
			continue
		}
		if !down.IsZero() {
			c.logf("sweepd reachable again after %v", time.Since(down).Round(time.Second))
			down = time.Time{}
		}
		if progress != nil {
			progress(st)
		}
		if st.Finished() {
			return st, nil
		}
		time.Sleep(poll)
	}
}

// WorkerConfig drives one Work loop.
type WorkerConfig struct {
	// ID names the worker in leases and liveness reporting.
	ID string
	// Runner executes leased cells. Its backing store must be a
	// RemoteStore pointed at the same sweepd server, so every computed
	// result publishes through the verified ingest path before the
	// worker reports the cell done — that publish is what Report's
	// server-side verification checks.
	Runner *Runner
	// Poll is the idle wait between empty lease responses. Zero or
	// negative defers to the server's advertised hint (the sweepd
	// -poll flag), falling back to DefaultWorkerPoll before the first
	// response arrives.
	Poll time.Duration
	// IdleExit, when positive, ends the loop after this many
	// consecutive empty polls (a server that stays unreachable counts
	// too); zero polls forever.
	IdleExit int
	// Stop, when non-nil, requests a graceful exit: the loop checks it
	// before each lease and between cells, so the cell in flight when
	// the channel closes still completes and reports before the loop
	// returns.
	Stop <-chan struct{}
	// Log, when non-nil, receives one line per lease and per defect.
	Log io.Writer
}

// WorkerReport summarizes one Work loop.
type WorkerReport struct {
	// Leases counts grants processed.
	Leases int
	// Cells counts cells run and reported (computed or served from a
	// cache tier; failures included).
	Cells int
	// Failed counts cells whose run ended in Result.Err.
	Failed int
	// Dropped counts cells skipped because the queue reassigned them
	// to another worker mid-lease.
	Dropped int
	// Rejected counts done reports the server refused to verify.
	Rejected int
	// Errors counts permanent transport defects (rejected lease or
	// report calls). Transient unreachability is not an error — it is
	// counted in Outages and ridden out; the queue re-leases anything
	// a lost report left pending.
	Errors int
	// Outages counts transitions into "sweepd unreachable" the loop
	// survived.
	Outages int
}

// String is the worker's one-line exit summary.
func (r WorkerReport) String() string {
	line := fmt.Sprintf("worker: %d leases, %d cells (%d failed, %d dropped), %d rejected reports, %d transport errors",
		r.Leases, r.Cells, r.Failed, r.Dropped, r.Rejected, r.Errors)
	if r.Outages > 0 {
		line += fmt.Sprintf(", %d outages survived", r.Outages)
	}
	return line
}

// Work runs the pull-based worker loop: lease a slice, run its cells
// through the Runner (each result publishing to the server via the
// Runner's RemoteStore), report each cell, repeat. Cells the queue
// reassigns to another worker (work stealing) arrive as drop lists on
// report acks and are skipped. The loop is crash-safe by construction:
// no state lives in the worker, so killing it anywhere loses nothing —
// its lease expires and the cells are re-leased. With cfg.Stop wired
// and c.Retry opted in, the loop is also restart-safe: a sweepd outage
// is logged once and polled through rather than failing the worker.
func (c *QueueClient) Work(cfg WorkerConfig) WorkerReport {
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "worker %s: "+format+"\n", append([]any{cfg.ID}, args...)...)
		}
	}
	stopped := func() bool {
		if cfg.Stop == nil {
			return false
		}
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}
	poll := func() time.Duration {
		if cfg.Poll > 0 {
			return cfg.Poll
		}
		if hint := c.PollHint(); hint > 0 {
			return hint
		}
		return DefaultWorkerPoll
	}
	var rep WorkerReport
	idle := 0
	down := false
	for {
		if stopped() {
			logf("stop requested; exiting")
			return rep
		}
		grant, err := c.Lease(cfg.ID)
		switch {
		case err != nil && IsTransient(err):
			// The control plane is away (restarting, most likely). Not a
			// worker error: keep polling and let the journaled queue come
			// back with our lease intact.
			if !down {
				down = true
				rep.Outages++
				logf("sweepd unreachable, polling until it returns: %v", err)
			}
		case err != nil:
			rep.Errors++
			logf("lease: %v", err)
		case down:
			down = false
			logf("sweepd reachable again")
		}
		if grant == nil {
			idle++
			if cfg.IdleExit > 0 && idle >= cfg.IdleExit {
				return rep
			}
			time.Sleep(poll())
			continue
		}
		if down {
			down = false
			logf("sweepd reachable again")
		}
		idle = 0
		rep.Leases++
		logf("lease %s: %d cells of job %s", grant.Lease, len(grant.Cells), grant.Job)
		dropped := make(map[string]bool)
		for _, e := range grant.Cells {
			if stopped() {
				logf("stop requested; abandoning the rest of lease %s", grant.Lease)
				return rep
			}
			fp := e.Fingerprint()
			if dropped[fp] {
				rep.Dropped++
				continue
			}
			res := cfg.Runner.Run(e)
			rep.Cells++
			failed := res.Err != ""
			if failed {
				rep.Failed++
				logf("cell %s failed: %s", fp, res.Err)
			}
			ack, err := c.Report(grant.Job, grant.Lease, cfg.ID, fp, failed, res.Err)
			if err != nil {
				if IsTransient(err) {
					// The result is already published (Runner.Run stores
					// before returning); only the report was lost. The
					// lease expires, the cell re-leases, and the store
					// serves the entry — nothing is recomputed.
					if !down {
						down = true
						rep.Outages++
						logf("sweepd unreachable mid-lease, report %s not delivered: %v", fp, err)
					}
				} else {
					rep.Errors++
					logf("report %s: %v", fp, err)
				}
				continue
			}
			if down {
				down = false
				logf("sweepd reachable again")
			}
			if !failed && !ack.Verified {
				// The server could not verify our publish — most likely
				// the push behind Runner.Run degraded. Count it and move
				// on; the cell stays pending and will be re-leased.
				rep.Rejected++
				logf("report %s rejected: server has no verified entry", fp)
			}
			for _, d := range ack.Drop {
				dropped[d] = true
			}
		}
	}
}
