package exp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
)

// Control-plane routes, compiled into client and server from the same
// constants so the protocol cannot drift (the pattern resultsPath set).
const (
	jobsPath  = "/v1/jobs"
	leasePath = "/v1/lease"
)

// jobIDPat matches the job IDs JobQueue issues; anything else cannot
// name a job and is rejected before it reaches the state machine.
var jobIDPat = regexp.MustCompile(`^j[0-9]{4,}$`)

// maxJobBytes bounds one submission body. A full-paper matrix is a few
// hundred kB of experiment JSON; the margin covers very large sweeps
// while keeping a confused client from buffering gigabytes server-side.
const maxJobBytes = 64 << 20

// submitRequest is the POST /v1/jobs body: the sweep's cells in the
// frozen experiment wire encoding, plus an optional slice count
// overriding the server default.
type submitRequest struct {
	Cells  []Experiment `json:"cells"`
	Slices int          `json:"slices,omitempty"`
}

// leaseRequest is the POST /v1/lease body.
type leaseRequest struct {
	Worker string `json:"worker"`
}

// reportRequest is the POST /v1/jobs/<id>/report body.
type reportRequest struct {
	Lease       string `json:"lease"`
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	Failed      bool   `json:"failed,omitempty"`
	Err         string `json:"err,omitempty"`
}

// NewQueueHandler assembles the sweepd control plane: the full cached
// results protocol (workers' RemoteStores push verified entries through
// it, clients pull finished cells from it) plus the job-queue routes:
//
//	POST /v1/jobs               submit a sweep matrix -> JobStatus
//	GET  /v1/jobs               all jobs, submission order
//	GET  /v1/jobs/{id}          one job's progress snapshot
//	POST /v1/jobs/{id}/report   close out one leased cell
//	POST /v1/lease              pull one slice of pending work
//	GET  /statusz               store counters + job list
//
// The queue must be backed by the same DiskCache the CacheServer
// serves: done-verification reads the store that workers publish into.
func NewQueueHandler(q *JobQueue, cs *CacheServer) http.Handler {
	mux := http.NewServeMux()
	cs.register(mux)
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		cs.writeStatus(w, func(st *ServerStatus) {
			st.Jobs = q.Jobs()
			cfg := q.Config()
			st.Queue = &cfg
			st.Journal = q.JournalStats()
		})
	})
	mux.HandleFunc("POST "+jobsPath, func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBytes)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("parse submission: %v", err), http.StatusBadRequest)
			return
		}
		st, err := q.Submit(req.Cells, req.Slices)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET "+jobsPath, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, q.Jobs())
	})
	mux.HandleFunc("GET "+jobsPath+"/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobKey(w, r)
		if !ok {
			return
		}
		st, ok := q.Status(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST "+jobsPath+"/{id}/report", func(w http.ResponseWriter, r *http.Request) {
		id, ok := jobKey(w, r)
		if !ok {
			return
		}
		var req reportRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("parse report: %v", err), http.StatusBadRequest)
			return
		}
		if !fingerprintPat.MatchString(req.Fingerprint) {
			http.Error(w, fmt.Sprintf("bad fingerprint %q", req.Fingerprint), http.StatusBadRequest)
			return
		}
		ack, err := q.Report(id, req.Lease, req.Worker, req.Fingerprint, req.Failed, req.Err)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		writeJSON(w, ack)
	})
	mux.HandleFunc("POST "+leasePath, func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("parse lease request: %v", err), http.StatusBadRequest)
			return
		}
		if req.Worker == "" {
			http.Error(w, "lease request names no worker", http.StatusBadRequest)
			return
		}
		// Every lease response advertises the idle-poll hint, so one
		// sweepd flag paces the whole fleet.
		w.Header().Set(pollHeader, strconv.FormatInt(q.PollHint().Milliseconds(), 10))
		grant, ok := q.Lease(req.Worker)
		if !ok {
			// Nothing to hand out right now; the worker polls again.
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, grant)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// jobKey extracts and validates the {id} path element.
func jobKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if !jobIDPat.MatchString(id) {
		http.NotFound(w, r)
		return "", false
	}
	return id, true
}
