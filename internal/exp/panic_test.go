package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mpiimpl"
	"repro/internal/sim"
)

// TestRankBodyPanicSurfacesAsErr pins the end-to-end panic contract on
// the single-scheduler kernel: a panic inside a simulation process body
// unwinds through the coroutine resume into Kernel.Run — the same
// goroutine exp.Run runs on — where the worker-safety recover converts
// it to Result.Err instead of killing the process or hanging the run.
// The panicking process is injected through the sim.NewHook test seam,
// so it rides inside the very kernel exp.Run builds.
func TestRankBodyPanicSurfacesAsErr(t *testing.T) {
	// Not t.Parallel: NewHook is a package-global test seam.
	sim.NewHook = func(k *sim.Kernel) {
		k.Go("saboteur", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			panic("injected rank panic")
		})
	}
	defer func() { sim.NewHook = nil }()
	res := Run(tinyPingPong(mpiimpl.MPICH2, Tuning{}))
	if res.Err == "" {
		t.Fatal("panicking process body produced no Result.Err")
	}
	if !strings.Contains(res.Err, "injected rank panic") {
		t.Fatalf("Result.Err = %q, want the panic value surfaced", res.Err)
	}
}
