// Package exp is the declarative experiment engine of the reproduction.
//
// An Experiment names everything one run of the paper's methodology needs:
// an implementation profile (MPICH2, GridMPI, MPICH-Madeleine, OpenMPI, or
// the raw-TCP reference), a tuning level (§4.2's TCP and MPI knobs), a
// topology (which Grid'5000 sites, how many nodes each, optionally
// overridden WAN latency and bandwidth), and a workload (pingpong,
// bandwidth trace, a collective/point-to-point pattern, an NPB kernel, or
// the ray2mesh application). A Sweep expands cross-products of those axes
// into a work list, and a Runner executes the list across a bounded worker
// pool with result caching keyed by experiment fingerprint. Results
// persist through the Store tier: a DiskCache directory on the local
// machine, or a RemoteStore speaking to a shared cmd/cached server with
// the DiskCache as its read-through tier — which is how one sweep matrix
// is sharded across machines (Shard) without ever recomputing a cell.
//
// Every experiment builds its own sim.Kernel, netsim.Network and tcpsim
// state, so individual runs stay byte-for-byte deterministic while a batch
// saturates all cores: running a sweep sequentially or with many workers
// yields identical results.
package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/npb"
	"repro/internal/perf"
	"repro/internal/ray2mesh"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

// Tuning is one of the paper's §4.2 configuration levels.
type Tuning struct {
	// TCP applies the §4.2.1 system tuning: 4 MB socket-buffer maxima plus
	// the per-implementation buffer fixes (the Figure 6 configuration).
	TCP bool `json:"tcp"`
	// MPI additionally applies the Table 5 eager/rendezvous thresholds
	// (the Figure 7 configuration).
	MPI bool `json:"mpi"`
	// Multilevel additionally switches every collective to the
	// topology-aware multilevel algorithms (intra-site phase, inter-site
	// phase over per-site gateways, intra-site redistribution) — the
	// tuning level beyond the paper's three, answering the question §4.3
	// stops short of. Encoded omitempty so the zero value reproduces the
	// pre-multilevel wire bytes: every legacy fingerprint, golden, and
	// DiskCache entry stays valid.
	Multilevel bool `json:"multilevel,omitempty"`
}

// TuningLevels lists the paper's three configurations in presentation
// order: defaults (Figure 3/5), TCP-tuned (Figure 6), fully tuned
// (Figure 7).
var TuningLevels = []Tuning{{}, {TCP: true}, {TCP: true, MPI: true}}

// MultilevelTuning is the fully tuned configuration plus topology-aware
// multilevel collectives — the fourth tuning level this repo adds.
var MultilevelTuning = Tuning{TCP: true, MPI: true, Multilevel: true}

// String names the level as the figures do: "default", "tcp-tuned",
// "fully-tuned" (or "mpi-tuned" for the off-matrix MPI-only combination);
// the multilevel axis reads "multilevel" on top of full tuning and
// "<base>+multilevel" for the off-matrix combinations.
func (t Tuning) String() string {
	base := "default"
	switch {
	case t.TCP && t.MPI:
		base = "fully-tuned"
	case t.TCP:
		base = "tcp-tuned"
	case t.MPI:
		base = "mpi-tuned"
	}
	if t.Multilevel {
		if t.TCP && t.MPI {
			return "multilevel"
		}
		return base + "+multilevel"
	}
	return base
}

// Workload kinds.
const (
	KindPingPong = "pingpong" // perf.PingPong between two hosts
	KindTrace    = "trace"    // perf.BandwidthTrace (Figure 9 protocol)
	KindPattern  = "pattern"  // an SPMD communication pattern on all hosts
	KindNPB      = "npb"      // one NAS Parallel Benchmark skeleton
	KindRay2Mesh = "ray2mesh" // the §4.4 seismic ray-tracing application
	KindFabric   = "fabric"   // §5 heterogeneity: pingpong on a custom local fabric
)

// Workload is a tagged union selected by Kind; unrelated fields are left
// zero and omitted from the fingerprint.
type Workload struct {
	Kind string `json:"kind"`
	// Sizes is the pingpong message-size grid.
	Sizes []int `json:"sizes,omitempty"`
	// Reps is round trips per size (pingpong), message count (trace).
	Reps int `json:"reps,omitempty"`
	// Pattern names the SPMD pattern: pingpong, ring, alltoall, bcast,
	// allreduce, barrier.
	Pattern string `json:"pattern,omitempty"`
	// Size is the message size for pattern and trace workloads.
	Size int `json:"size,omitempty"`
	// Iters is the pattern repetition count.
	Iters int `json:"iters,omitempty"`
	// Bench is the NPB kernel name (EP, CG, MG, LU, SP, BT, IS, FT).
	Bench string `json:"bench,omitempty"`
	// Scale shrinks NPB iteration counts / ray2mesh workloads (1.0 = the
	// paper's full class B / one million rays; 0 = 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Timeout is the virtual-time budget for NPB and pattern runs; past it
	// the result reports DNF (0 = one simulated hour; negative = no
	// limit, the run continues until it finishes or deadlocks).
	Timeout time.Duration `json:"timeout,omitempty"`
	// Master is the ray2mesh master site.
	Master string `json:"master,omitempty"`
	// FabricOneWay, FabricRate and FabricStack describe the custom
	// intra-cluster interconnect of a fabric workload: switch+wire
	// one-way delay, link rate in bytes/second, and per-endpoint
	// software overhead (OS-bypass fabrics are far cheaper than the
	// kernel TCP stack).
	FabricOneWay time.Duration `json:"fabric_one_way,omitempty"`
	FabricRate   float64       `json:"fabric_rate,omitempty"`
	FabricStack  time.Duration `json:"fabric_stack,omitempty"`
	// Gateway is the per-message MPICH-Madeleine-style gateway overhead
	// charged at the sender of a fabric workload.
	Gateway time.Duration `json:"gateway,omitempty"`
}

// PingPongWorkload is the §3.1 measurement: reps round trips per size,
// minimum RTT kept.
func PingPongWorkload(sizes []int, reps int) Workload {
	return Workload{Kind: KindPingPong, Sizes: sizes, Reps: reps}
}

// TraceWorkload is the Figure 9 protocol: count messages of the given
// size, per-message bandwidth against time.
func TraceWorkload(size, count int) Workload {
	return Workload{Kind: KindTrace, Size: size, Reps: count}
}

// PatternWorkload runs a named SPMD pattern on every host of the topology.
func PatternWorkload(pattern string, size, iters int) Workload {
	return Workload{Kind: KindPattern, Pattern: pattern, Size: size, Iters: iters}
}

// NPBWorkload runs one NAS kernel on every host of the topology.
func NPBWorkload(bench string, scale float64) Workload {
	return Workload{Kind: KindNPB, Bench: bench, Scale: scale}
}

// Ray2MeshWorkload runs the seismic application with the master on the
// given site. A zero Topology (or Ray2MeshTopology()) selects the paper's
// fixed four-site testbed; any other per-site layout containing the
// master site is honored, so asymmetric and 3-site scenarios run through
// the same front door. Impl and Tuning apply; EagerThreshold,
// SocketBuffer, WAN overrides and placement policies are the
// application's own and are rejected rather than silently ignored.
func Ray2MeshWorkload(master string, scale float64) Workload {
	return Workload{Kind: KindRay2Mesh, Master: master, Scale: scale}
}

// FabricWorkload is the §5 heterogeneity experiment: a two-node pingpong
// over a custom local interconnect reached through a gateway with the
// given per-message overhead. The workload owns its stack — a 4 MB-tuned
// TCP configuration with the fabric's host overhead and the
// implementation's stock profile — so the Tuning and Topology axes must
// be zero (anything else is rejected rather than silently ignored);
// EagerThreshold applies as usual.
func FabricWorkload(oneWay time.Duration, rate float64, stack, gateway time.Duration, sizes []int, reps int) Workload {
	return Workload{
		Kind:         KindFabric,
		Sizes:        sizes,
		Reps:         reps,
		FabricOneWay: oneWay,
		FabricRate:   rate,
		FabricStack:  stack,
		Gateway:      gateway,
	}
}

// String is the workload's one-line label in names, matrix columns and
// CSV rows. It is presentation only — the cache key is the fingerprint
// of the normalized JSON, never this string.
func (w Workload) String() string {
	switch w.Kind {
	case KindPingPong:
		switch len(w.Sizes) {
		case 0:
			return fmt.Sprintf("pingpong[no sizes x%d]", w.Reps)
		case 1:
			return fmt.Sprintf("pingpong[%dB x%d]", w.Sizes[0], w.Reps)
		}
		return fmt.Sprintf("pingpong[%dB..%dB/%d x%d]",
			w.Sizes[0], w.Sizes[len(w.Sizes)-1], len(w.Sizes), w.Reps)
	case KindTrace:
		return fmt.Sprintf("trace[%dB x%d]", w.Size, w.Reps)
	case KindPattern:
		return fmt.Sprintf("%s[%dB x%d]", w.Pattern, w.Size, w.Iters)
	case KindNPB:
		return fmt.Sprintf("npb:%s@%g", w.Bench, w.scale())
	case KindRay2Mesh:
		return fmt.Sprintf("ray2mesh@%s x%g", w.Master, w.scale())
	case KindFabric:
		return fmt.Sprintf("fabric[owd=%v rate=%.0fMB/s gw=%v x%d]",
			w.FabricOneWay, w.FabricRate/1e6, w.Gateway, w.Reps)
	}
	return w.Kind
}

func (w Workload) scale() float64 {
	if w.Scale == 0 {
		return 1
	}
	return w.Scale
}

func (w Workload) timeout() time.Duration {
	if w.Timeout == 0 {
		return time.Hour
	}
	return w.Timeout
}

// Experiment is one fully specified run. Its JSON encoding is frozen —
// the fingerprint (and therefore every persistent cache entry, local or
// remote) is a hash of these bytes, so tags, field order and the
// zero-value omissions must not change; a new axis must be added as an
// omitempty field whose zero value reproduces the old bytes. When a
// change to the simulation makes old cached results untrustworthy
// without changing this encoding, bump DiskSchemaVersion instead.
type Experiment struct {
	Impl     string   `json:"impl"`
	Tuning   Tuning   `json:"tuning"`
	Topology Topology `json:"topology"`
	Workload Workload `json:"workload"`
	// EagerThreshold overrides the profile's eager/rendezvous switch when
	// positive (threshold sweeps, Table 5).
	EagerThreshold int `json:"eager_threshold,omitempty"`
	// SocketBuffer, when positive, pins both the kernel socket-buffer
	// maxima and the implementation's buffer policy to an explicit size
	// (the §4.2.1 buffer ablation). Applied on top of the Tuning level.
	SocketBuffer int `json:"socket_buffer,omitempty"`
	// Faults is the seeded fault schedule injected into the run's kernel
	// (nil or zero = the healthy grid, encoding byte-identical to pre-fault
	// experiments, so every legacy fingerprint and cache entry survives).
	Faults *FaultPlan `json:"faults,omitempty"`
}

// normalized resolves the workload's zero-value aliases (Scale 0 means
// 1.0, Timeout 0 means one hour) so semantically identical experiments
// share one fingerprint.
func (e Experiment) normalized() Experiment {
	switch e.Workload.Kind {
	case KindNPB, KindRay2Mesh:
		e.Workload.Scale = e.Workload.scale()
	}
	switch e.Workload.Kind {
	case KindNPB, KindPattern:
		if e.Workload.Timeout == 0 {
			e.Workload.Timeout = e.Workload.timeout()
		}
	}
	// A zero fault plan is the healthy grid: drop it so {} and nil share
	// one fingerprint — the pre-fault one.
	if e.Faults.IsZero() {
		e.Faults = nil
	}
	return e
}

// Fingerprint is a stable content hash of the experiment definition
// (SHA-256 of the normalized JSON, truncated to 16 hex digits): the
// Runner's cache key, the DiskCache file name, the cmd/cached wire
// address, and the shard/verify partition key. Zero-value workload
// aliases are normalized first, so e.g. NPB at Scale 0 and Scale 1.0
// share a key. Stable across processes, machines and releases — a
// cache directory written by an old build keeps serving the new one.
func (e Experiment) Fingerprint() string {
	blob, err := json.Marshal(e.normalized())
	if err != nil {
		panic("exp: unfingerprintable experiment: " + err.Error())
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

// Name is a human-readable one-line identity.
func (e Experiment) Name() string {
	s := fmt.Sprintf("%s/%s/%s/%s", e.Impl, e.Tuning, e.Topology, e.Workload)
	if e.EagerThreshold > 0 {
		s += fmt.Sprintf("/eager=%d", e.EagerThreshold)
	}
	if !e.Faults.IsZero() {
		s += "/faults[" + e.Faults.String() + "]"
	}
	return s
}

// CollCount is one collective operation's call count.
type CollCount struct {
	Op    string `json:"op"`
	Calls int64  `json:"calls"`
}

// Census is a deterministic, serializable snapshot of a world's
// communication statistics.
type Census struct {
	P2PSends    int64           `json:"p2p_sends"`
	P2PBytes    int64           `json:"p2p_bytes"`
	WANSends    int64           `json:"wan_sends"`
	WANBytes    int64           `json:"wan_bytes"`
	Rendezvous  int64           `json:"rendezvous"`
	Unexpected  int64           `json:"unexpected"`
	Sizes       []mpi.SizeCount `json:"sizes,omitempty"`
	Collectives []CollCount     `json:"collectives,omitempty"`
}

// CensusOf snapshots stats into sorted, comparable form.
func CensusOf(s *mpi.Stats) Census {
	c := Census{
		P2PSends:   s.P2PSends,
		P2PBytes:   s.P2PBytes,
		WANSends:   s.WANSends,
		WANBytes:   s.WANBytes,
		Rendezvous: s.Rendezvous,
		Unexpected: s.Unexpected,
		Sizes:      s.SizeCensus(),
	}
	for _, op := range s.CollOps() {
		c.Collectives = append(c.Collectives, CollCount{Op: op, Calls: s.CollCalls(op)})
	}
	return c
}

// Result of one experiment. Everything serialized is a pure function of
// the Experiment, so two runs of the same experiment marshal to identical
// bytes (the determinism tests enforce this).
type Result struct {
	Exp     Experiment    `json:"experiment"`
	Elapsed time.Duration `json:"elapsed"`
	DNF     bool          `json:"dnf,omitempty"`
	Err     string        `json:"err,omitempty"`
	// Points holds pingpong measurements (one per size).
	Points []perf.Point `json:"points,omitempty"`
	// Trace holds the per-message bandwidth trace.
	Trace []perf.TracePoint `json:"trace,omitempty"`
	// Metrics carries workload-specific scalars (max_mbps, min_rtt_us,
	// rays per node, phase times...). JSON marshals map keys sorted, so
	// output stays canonical.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Census  Census             `json:"census"`
	// Cached reports that the Runner served this result from its
	// fingerprint cache. Excluded from serialization: it describes the
	// batch, not the experiment.
	Cached bool `json:"-"`
}

// clone deep-copies the result's reference fields, so cache consumers
// can mutate what they receive without corrupting the shared entry.
func (r Result) clone() Result {
	out := r
	out.Points = append([]perf.Point(nil), r.Points...)
	out.Trace = append([]perf.TracePoint(nil), r.Trace...)
	out.Census.Sizes = append([]mpi.SizeCount(nil), r.Census.Sizes...)
	out.Census.Collectives = append([]CollCount(nil), r.Census.Collectives...)
	if r.Metrics != nil {
		out.Metrics = make(map[string]float64, len(r.Metrics))
		for k, v := range r.Metrics {
			out.Metrics[k] = v
		}
	}
	out.Exp.Faults = r.Exp.Faults.clone()
	return out
}

// MaxMbps is the best bandwidth over the result's points, or 0.
func (r Result) MaxMbps() float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.Mbps > best {
			best = p.Mbps
		}
	}
	return best
}

// CheckImpl validates an implementation name against the profiles
// Configure accepts (CLI front-ends use it to reject typos before a
// worker panics on them).
func CheckImpl(name string) error {
	for _, k := range mpiimpl.Known {
		if k == name {
			return nil
		}
	}
	return fmt.Errorf("unknown implementation %q (have %s)", name, strings.Join(mpiimpl.Known, ", "))
}

// CheckBench validates an NPB kernel name.
func CheckBench(name string) error {
	for _, n := range npb.Names {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown NPB bench %q (have %s)", name, strings.Join(npb.Names, ", "))
}

// CheckSite validates a ray2mesh master site.
func CheckSite(name string) error {
	for _, s := range ray2mesh.Sites {
		if s == name {
			return nil
		}
	}
	return fmt.Errorf("unknown ray2mesh master site %q (have %s)", name, strings.Join(ray2mesh.Sites, ", "))
}

// Run executes one experiment on freshly built simulation state. It never
// shares mutable state with other runs, so any number of Run calls may
// proceed concurrently. Invalid experiments come back as Result.Err, and
// a panic anywhere below is converted to one too — a worker pool must
// never die (or poison its cache) on one bad experiment.
func Run(e Experiment) (res Result) {
	res = Result{Exp: e}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("exp: panic: %v", r)
		}
	}()
	if err := CheckImpl(e.Impl); err != nil {
		res.Err = "exp: " + err.Error()
		return res
	}
	if err := e.Faults.Validate(); err != nil {
		res.Err = err.Error()
		return res
	}
	if e.Workload.Kind == KindRay2Mesh {
		runRay2Mesh(&res)
		return res
	}
	if e.Workload.Kind == KindFabric {
		runFabric(&res)
		return res
	}
	twoEnded := e.Workload.Kind == KindPingPong || e.Workload.Kind == KindTrace
	if twoEnded && e.Topology.NP() < 2 {
		res.Err = fmt.Sprintf("exp: %s needs at least 2 nodes in the topology", e.Workload.Kind)
		return res
	}

	prof, tcp := mpiimpl.Configure(e.Impl, e.Tuning.TCP, e.Tuning.MPI)
	prof.Multilevel = e.Tuning.Multilevel
	if e.EagerThreshold > 0 {
		prof = prof.WithEagerThreshold(e.EagerThreshold)
	}
	if e.SocketBuffer > 0 {
		tcp.RmemMax = e.SocketBuffer
		tcp.WmemMax = e.SocketBuffer
		prof = prof.WithBuffers(tcpsim.BufferPolicy{Explicit: e.SocketBuffer})
	}
	// The fault plan's seed is the kernel seed: healthy runs (nil plan)
	// keep the historic seed 1 and replay the pre-fault event stream
	// byte-for-byte; a seeded plan gives each replica its own loss draws.
	k := sim.New(e.Faults.kernelSeed())
	defer k.Close()
	net, err := e.Topology.Build()
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if err := e.Faults.inject(k, net); err != nil {
		res.Err = err.Error()
		return res
	}

	switch e.Workload.Kind {
	case KindPingPong:
		w := mpi.NewWorld(k, net, tcp, prof, e.Topology.endpointHosts(net))
		pts, err := perf.PingPong(w, e.Workload.Sizes, e.Workload.Reps)
		res.Points = pts
		res.Elapsed = k.Now()
		res.fill(w, err)
		if len(pts) > 0 {
			res.addMetric("max_mbps", res.MaxMbps())
			res.addMetric("min_rtt_us", float64(pts[0].MinRTT)/float64(time.Microsecond))
		}
	case KindTrace:
		w := mpi.NewWorld(k, net, tcp, prof, e.Topology.endpointHosts(net))
		trace, err := perf.BandwidthTrace(w, e.Workload.Size, e.Workload.Reps)
		res.Trace = trace
		res.Elapsed = k.Now()
		res.fill(w, err)
	case KindPattern:
		w := mpi.NewWorld(k, net, tcp, prof, e.Topology.RankHosts(net))
		body, err := PatternBody(e.Workload.Pattern, e.Workload.Size, e.Workload.Iters)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		elapsed, err := runBody(w, body, e.Workload)
		res.Elapsed = elapsed
		res.fill(w, err)
	case KindNPB:
		if err := CheckBench(e.Workload.Bench); err != nil {
			res.Err = "exp: " + err.Error()
			return res
		}
		w := mpi.NewWorld(k, net, tcp, prof, e.Topology.RankHosts(net))
		spec := npb.Get(e.Workload.Bench)
		params := npb.Params{NP: e.Topology.NP(), Scale: e.Workload.scale()}
		elapsed, err := runBody(w, func(r *mpi.Rank) { spec.Run(r, params) }, e.Workload)
		res.Elapsed = elapsed
		res.fill(w, err)
	default:
		res.Err = fmt.Sprintf("exp: unknown workload kind %q", e.Workload.Kind)
	}
	return res
}

// runBody executes an SPMD body under the workload's time budget
// (negative = unlimited).
func runBody(w *mpi.World, body func(*mpi.Rank), wl Workload) (time.Duration, error) {
	if wl.Timeout < 0 {
		return w.Run(body)
	}
	return w.RunTimeout(body, wl.timeout())
}

// addMetric merges one scalar into the result's metrics map.
func (r *Result) addMetric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[key] = v
}

// fill records the census, the degraded-mode transport metrics of a
// faulted run, and classifies the run error.
func (r *Result) fill(w *mpi.World, err error) {
	r.Census = CensusOf(w.Stats())
	if !r.Exp.Faults.IsZero() {
		// Degraded-mode metrics only exist under a fault plan: a healthy
		// run's serialization must stay byte-identical to pre-fault builds.
		fs := w.FlowStats()
		r.addMetric("fault_retransmits", float64(fs.InjectedLosses))
		r.addMetric("fault_retrans_bytes", float64(fs.RetransBytes))
		r.addMetric("fault_link_stalls", float64(fs.LinkStalls))
		r.addMetric("fault_stall_s", fs.StallTime.Seconds())
		r.addMetric("fault_timeouts", float64(fs.Timeouts))
	}
	if err == nil {
		return
	}
	if errors.Is(err, mpi.ErrTimeout) {
		r.DNF = true
		return
	}
	r.Err = err.Error()
}

func runRay2Mesh(res *Result) {
	e := res.Exp
	// The application owns its thresholds: reject axis values that could
	// not be honored, so no result is ever labeled with a configuration
	// that did not actually run.
	if e.EagerThreshold > 0 {
		res.Err = "exp: ray2mesh does not support an eager-threshold override"
		return
	}
	if e.SocketBuffer > 0 {
		res.Err = "exp: ray2mesh does not support a socket-buffer override"
		return
	}
	if !e.Faults.IsZero() {
		res.Err = "exp: ray2mesh does not support fault injection (it builds its own stack)"
		return
	}
	if e.Tuning.Multilevel {
		res.Err = "exp: ray2mesh does not support multilevel collectives (it builds its own stack)"
		return
	}
	cfg := ray2mesh.Default(e.Workload.Master).Scaled(e.Workload.scale())
	cfg.Impl = e.Impl
	cfg.TCPTuned = e.Tuning.TCP
	cfg.MPITuned = e.Tuning.MPI
	switch {
	case e.Topology.IsZero(), e.Topology.String() == Ray2MeshTopology().String():
		// The canonical Figure 8 testbed: the master site must be one of
		// its four clusters.
		if err := CheckSite(e.Workload.Master); err != nil {
			res.Err = "exp: " + err.Error()
			return
		}
	default:
		// A custom per-site layout: ray2mesh builds its own stack, so WAN
		// overrides and placement policies cannot be honored (the master
		// location is the workload's Master field).
		if e.Topology.WANOneWay != 0 || e.Topology.WANRate != 0 {
			res.Err = "exp: ray2mesh does not support WAN overrides"
			return
		}
		if e.Topology.Placement.normalized() != "" {
			res.Err = "exp: ray2mesh places its own master; use the workload's Master field, not a topology placement"
			return
		}
		if err := e.Topology.Validate(); err != nil {
			res.Err = err.Error()
			return
		}
		if e.Topology.NP() < 2 {
			res.Err = fmt.Sprintf("exp: ray2mesh needs at least 2 nodes, topology %s has %d", e.Topology, e.Topology.NP())
			return
		}
		layout := make([]grid5000.SiteCount, len(e.Topology.Layout))
		masterInLayout := false
		for i, s := range e.Topology.Layout {
			layout[i] = grid5000.SiteCount{Name: s.Name, Nodes: s.Nodes}
			if s.Name == e.Workload.Master {
				masterInLayout = true
			}
		}
		if !masterInLayout {
			res.Err = fmt.Sprintf("exp: ray2mesh master site %q is not in topology %s", e.Workload.Master, e.Topology)
			return
		}
		cfg.Layout = layout
	}
	out := ray2mesh.Run(cfg)
	res.Elapsed = out.TotalTime
	res.Census = CensusOf(out.Stats)
	res.Metrics = map[string]float64{
		"comp_s":     out.CompTime.Seconds(),
		"merge_s":    out.MergeTime.Seconds(),
		"total_s":    out.TotalTime.Seconds(),
		"total_rays": float64(out.TotalRays),
	}
	for site, rays := range out.RaysPerNode {
		res.Metrics["rays_per_node_"+site] = rays
	}
}

// runFabric executes the §5 heterogeneity pingpong: two nodes on a
// custom local interconnect, the implementation's stock profile plus a
// per-message gateway overhead, over a 4 MB-tuned TCP stack with the
// fabric's host overhead.
func runFabric(res *Result) {
	e := res.Exp
	w := e.Workload
	// The fabric workload owns its testbed and stack: reject axis values
	// that could not be honored.
	if !e.Topology.IsZero() {
		res.Err = fmt.Sprintf("exp: fabric workloads build their own two-node testbed; topology %s cannot be honored — leave it zero", e.Topology)
		return
	}
	if e.Tuning != (Tuning{}) {
		res.Err = "exp: fabric workloads always run the 4 MB-tuned stack with the stock profile; leave Tuning zero"
		return
	}
	if e.SocketBuffer > 0 {
		res.Err = "exp: fabric workloads do not support a socket-buffer override"
		return
	}
	if !e.Faults.IsZero() {
		res.Err = "exp: fabric workloads do not support fault injection (their two-node fabric has no uplink to fault)"
		return
	}
	if w.FabricRate <= 0 || len(w.Sizes) == 0 || w.Reps < 1 {
		res.Err = fmt.Sprintf("exp: underspecified fabric workload %s", w)
		return
	}

	k := sim.New(1)
	defer k.Close()
	net := netsim.New()
	net.AddSite("local", 2, 1.0, w.FabricRate, w.FabricOneWay)

	cfg := tcpsim.Tuned4MB()
	cfg.HostOverhead = w.FabricStack
	prof := mpiimpl.Profile(e.Impl)
	if e.EagerThreshold > 0 {
		prof = prof.WithEagerThreshold(e.EagerThreshold)
	}
	prof.OverheadLocal += w.Gateway

	world := mpi.NewWorld(k, net, cfg, prof, net.SiteHosts("local"))
	pts, err := perf.PingPong(world, w.Sizes, w.Reps)
	res.Points = pts
	res.Elapsed = k.Now()
	res.fill(world, err)
}
