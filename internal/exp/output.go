package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/tables"
)

// WriteJSON emits results as an indented JSON array. Serialization is
// canonical: identical result sets marshal to identical bytes.
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// MarshalResults returns the canonical JSON of a result set (the byte
// string the determinism tests compare).
func MarshalResults(results []Result) []byte {
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		panic("exp: unmarshalable results: " + err.Error())
	}
	return blob
}

// csvHeaders is the flat per-experiment schema of WriteCSV.
var csvHeaders = []string{
	"fingerprint", "impl", "tuning", "topology", "workload", "eager_threshold",
	"elapsed_us", "dnf", "max_mbps", "p2p_sends", "p2p_bytes",
	"wan_sends", "wan_bytes", "rendezvous", "unexpected", "err",
}

// WriteCSV emits one row per result with the headline metrics.
func WriteCSV(w io.Writer, results []Result) error {
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Exp.Fingerprint(),
			r.Exp.Impl,
			r.Exp.Tuning.String(),
			r.Exp.Topology.String(),
			r.Exp.Workload.String(),
			fmt.Sprintf("%d", r.Exp.EagerThreshold),
			fmt.Sprintf("%.1f", float64(r.Elapsed)/float64(time.Microsecond)),
			fmt.Sprintf("%v", r.DNF),
			fmt.Sprintf("%.2f", r.MaxMbps()),
			fmt.Sprintf("%d", r.Census.P2PSends),
			fmt.Sprintf("%d", r.Census.P2PBytes),
			fmt.Sprintf("%d", r.Census.WANSends),
			fmt.Sprintf("%d", r.Census.WANBytes),
			fmt.Sprintf("%d", r.Census.Rendezvous),
			fmt.Sprintf("%d", r.Census.Unexpected),
			r.Err,
		})
	}
	out, err := tables.CSV(csvHeaders, rows)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, out)
	return err
}

// headline is the one-cell summary of a result in matrix renderings.
func headline(r Result) string {
	switch {
	case r.Err != "":
		return "ERR"
	case r.DNF:
		return "DNF"
	case r.Exp.Workload.Kind == KindPingPong:
		return fmt.Sprintf("%.1f", r.MaxMbps())
	case r.Exp.Workload.Kind == KindTrace:
		best := 0.0
		for _, p := range r.Trace {
			if p.Mbps > best {
				best = p.Mbps
			}
		}
		return fmt.Sprintf("%.1f", best)
	default:
		return fmt.Sprintf("%.2fs", r.Elapsed.Seconds())
	}
}

// MatrixTable pivots a result set into an implementation × configuration
// table: one row per implementation, one column per distinct
// (tuning, topology, workload, threshold) combination, in order of first
// appearance. Pingpong cells show max bandwidth in Mbps; other workloads
// show elapsed virtual time (DNF when timed out).
func MatrixTable(title string, results []Result) string {
	if len(results) == 0 {
		return title + "\n" + tables.Render([]string{"impl"}, nil)
	}
	// Column labels keep only the axes that actually vary across the set.
	sameTopo, sameWl, sameThr := true, true, true
	for _, r := range results {
		if r.Exp.Topology.String() != results[0].Exp.Topology.String() {
			sameTopo = false
		}
		if r.Exp.Workload.String() != results[0].Exp.Workload.String() {
			sameWl = false
		}
		if r.Exp.EagerThreshold != results[0].Exp.EagerThreshold {
			sameThr = false
		}
	}
	colKey := func(r Result) string {
		k := r.Exp.Tuning.String()
		if !sameTopo {
			k += " " + r.Exp.Topology.String()
		}
		if !sameWl {
			k += " " + r.Exp.Workload.String()
		}
		if !sameThr {
			k += fmt.Sprintf(" eager=%s", tables.Size(int64(r.Exp.EagerThreshold)))
		}
		return k
	}

	var impls, cols []string
	seenImpl := map[string]bool{}
	seenCol := map[string]bool{}
	cells := map[string]map[string]string{}
	for _, r := range results {
		ck := colKey(r)
		if !seenImpl[r.Exp.Impl] {
			seenImpl[r.Exp.Impl] = true
			impls = append(impls, r.Exp.Impl)
		}
		if !seenCol[ck] {
			seenCol[ck] = true
			cols = append(cols, ck)
		}
		if cells[r.Exp.Impl] == nil {
			cells[r.Exp.Impl] = map[string]string{}
		}
		cells[r.Exp.Impl][ck] = headline(r)
	}
	headers := append([]string{"impl"}, cols...)
	rows := make([][]string, 0, len(impls))
	for _, impl := range impls {
		row := []string{impl}
		for _, c := range cols {
			cell, ok := cells[impl][c]
			if !ok {
				cell = "-"
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	return title + "\n" + tables.Render(headers, rows)
}
