package exp

import (
	"repro/internal/mpiimpl"
	"repro/internal/perf"
	"repro/internal/ray2mesh"
)

// Ray2MeshTopology is the application's fixed testbed — four sites, eight
// nodes each (Figure 8). Ray2mesh experiments always run on it; sweeps
// over that workload should use this as their single topology so labels
// and fingerprints describe the run that actually happens.
func Ray2MeshTopology() Topology {
	layout := make([]SiteSpec, len(ray2mesh.Sites))
	for i, name := range ray2mesh.Sites {
		layout[i] = SiteSpec{Name: name, Nodes: ray2mesh.NodesPerSite}
	}
	return Topology{Layout: layout}
}

// Sweep is a cross-product of experiment axes. Empty EagerThresholds means
// "no override" (a single pass with each profile's own threshold).
type Sweep struct {
	Impls           []string
	Tunings         []Tuning
	Topologies      []Topology
	Workloads       []Workload
	EagerThresholds []int
}

// Size is the number of experiments the sweep expands to.
func (s Sweep) Size() int {
	thr := len(s.EagerThresholds)
	if thr == 0 {
		thr = 1
	}
	return len(s.Impls) * len(s.Tunings) * len(s.Topologies) * len(s.Workloads) * thr
}

// Experiments expands the cross-product in a fixed order (implementation
// outermost, threshold innermost), so sweep expansion is deterministic and
// result slices line up with nested iteration over the axes.
func (s Sweep) Experiments() []Experiment {
	thrs := s.EagerThresholds
	if len(thrs) == 0 {
		thrs = []int{0}
	}
	exps := make([]Experiment, 0, s.Size())
	for _, impl := range s.Impls {
		for _, tun := range s.Tunings {
			for _, topo := range s.Topologies {
				for _, wl := range s.Workloads {
					for _, thr := range thrs {
						exps = append(exps, Experiment{
							Impl:           impl,
							Tuning:         tun,
							Topology:       topo,
							Workload:       wl,
							EagerThreshold: thr,
						})
					}
				}
			}
		}
	}
	return exps
}

// PaperSizes is the figures' pingpong size grid: 1 kB to 64 MB in powers
// of two.
func PaperSizes() []int { return perf.PowersOfTwoSizes(1<<10, 64<<20) }

// PaperMatrix is the paper's full implementation × tuning pingpong matrix
// on the Rennes–Nancy grid: raw TCP plus the four MPI implementations,
// each at the default, TCP-tuned and fully tuned levels (Figures 3, 6
// and 7 in one sweep).
func PaperMatrix(reps int) Sweep {
	return Sweep{
		Impls:      mpiimpl.WithTCP,
		Tunings:    TuningLevels,
		Topologies: []Topology{Grid(1)},
		Workloads:  []Workload{PingPongWorkload(PaperSizes(), reps)},
	}
}

// NPBMatrix is the implementation × kernel matrix of Figure 10: every MPI
// implementation on every NAS kernel, on the given topology.
func NPBMatrix(topo Topology, scale float64, benches []string) Sweep {
	wls := make([]Workload, 0, len(benches))
	for _, b := range benches {
		wls = append(wls, NPBWorkload(b, scale))
	}
	return Sweep{
		Impls:      mpiimpl.All,
		Tunings:    []Tuning{{TCP: true}},
		Topologies: []Topology{topo},
		Workloads:  wls,
	}
}
