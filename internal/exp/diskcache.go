package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"
)

// DiskCache is a content-addressed, persistent experiment-result store:
// one JSON file per experiment fingerprint under a single directory.
// Because every Result is a pure function of its Experiment and the
// fingerprint is a stable content hash of the experiment definition, a
// cache directory can be reused across processes — and shared between
// cmd/gridrepro, cmd/sweep and cmd/gridsim invocations, or sharded
// across machines — without ever serving a result for the wrong
// configuration.
//
// Writes go to a temporary file in the same directory followed by an
// atomic rename, so a crashed or concurrent writer can never leave a
// half-written entry behind under the final name. Corrupt, truncated or
// mismatched entries (e.g. from an older experiment schema whose
// fingerprints collide textually) are treated as misses and silently
// re-run, then overwritten with a fresh entry.
type DiskCache struct {
	dir string
}

// DiskSchemaVersion is the entry-format generation. Entries written
// before versioning existed carry no schema field and are read as
// version 1. When a future change makes old entries untrustworthy
// despite textually matching fingerprints, bump this: mismatched entries
// become clean misses (re-run and overwritten) instead of corrupt reads.
const DiskSchemaVersion = 1

// diskEntry is the stored envelope: the result plus the schema
// generation that wrote it.
type diskEntry struct {
	Schema int `json:"schema,omitempty"`
	Result
}

// NewDiskCache opens (creating if necessary) a cache directory.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("exp: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// path is the entry file for one fingerprint.
func (c *DiskCache) path(fp string) string {
	return filepath.Join(c.dir, fp+".json")
}

// decodeEntry parses and verifies one schema-version envelope against
// the fingerprint it claims to be: the blob must parse, carry the
// current DiskSchemaVersion generation (entries written before
// versioning read as 1), and the embedded experiment must hash back to
// fp. It is the single trust gate shared by DiskCache.Load, the
// RemoteStore client, and the cmd/cached ingest path — wherever an
// entry crosses a process boundary, it passes through here first.
func decodeEntry(blob []byte, fp string) (Result, error) {
	var entry diskEntry
	if err := json.Unmarshal(blob, &entry); err != nil {
		return Result{}, fmt.Errorf("exp: unparsable cache entry: %v", err)
	}
	schema := entry.Schema
	if schema == 0 {
		schema = 1 // pre-versioning entries
	}
	if schema != DiskSchemaVersion {
		return Result{}, fmt.Errorf("exp: foreign schema generation %d (this build writes %d)", schema, DiskSchemaVersion)
	}
	if got := entry.Exp.Fingerprint(); got != fp {
		return Result{}, fmt.Errorf("exp: entry experiment hashes to %s, not %s", got, fp)
	}
	return entry.Result, nil
}

// Load reads one entry. Any defect — missing file, unparsable JSON, a
// foreign schema generation, or an entry whose stored experiment does
// not hash back to the requested fingerprint — is a miss.
func (c *DiskCache) Load(fp string) (Result, bool) {
	blob, err := os.ReadFile(c.path(fp))
	if err != nil {
		return Result{}, false
	}
	res, err := decodeEntry(blob, fp)
	if err != nil {
		return Result{}, false
	}
	return res, true
}

// Store writes one entry atomically: marshal, write to a temp file in
// the cache directory, rename over the final name.
func (c *DiskCache) Store(fp string, res Result) error {
	blob, err := json.MarshalIndent(diskEntry{Schema: DiskSchemaVersion, Result: res}, "", " ")
	if err != nil {
		return fmt.Errorf("exp: marshal cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, fp+".tmp-*")
	if err != nil {
		return fmt.Errorf("exp: cache temp file: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: close cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: commit cache entry: %w", err)
	}
	return nil
}

// EvictPolicy bounds a cache directory's age and size. Zero fields mean
// no bound on that dimension.
type EvictPolicy struct {
	// MaxAge removes entries whose file has not been (re)written for
	// longer than this.
	MaxAge time.Duration
	// MaxBytes removes oldest-first entries until the directory's
	// committed entries total at most this many bytes.
	MaxBytes int64
}

// sizeToken matches the byte-size spellings ParseSize accepts (digits
// with an optional k/M/G suffix). Checked before time.ParseDuration so
// "512m" means 512 MiB, consistent with every other size flag — not a
// 512-minute age bound.
var sizeToken = regexp.MustCompile(`^[0-9]+[kKmMgG]?$`)

// ParseEvictPolicy parses a CLI eviction spec: comma-separated bounds,
// each either a byte size with k/M/G suffixes (size bound, e.g. "512M")
// or a Go duration (age bound, e.g. "720h").
func ParseEvictPolicy(s string) (EvictPolicy, error) {
	var p EvictPolicy
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if sizeToken.MatchString(tok) {
			n, err := ParseSize(tok)
			if err != nil || n <= 0 {
				return p, fmt.Errorf("exp: bad size bound %q", tok)
			}
			p.MaxBytes = int64(n)
			continue
		}
		d, err := time.ParseDuration(tok)
		if err != nil {
			return p, fmt.Errorf("exp: bad eviction bound %q (want a size like 512M or a duration like 720h)", tok)
		}
		if d <= 0 {
			return p, fmt.Errorf("exp: non-positive age bound %q", tok)
		}
		p.MaxAge = d
	}
	if p == (EvictPolicy{}) {
		return p, fmt.Errorf("exp: empty eviction spec %q", s)
	}
	return p, nil
}

// EvictDir is the CLI wiring of a -cache-evict flag: open the cache
// directory and run one eviction pass.
func EvictDir(dir string, p EvictPolicy) (EvictReport, error) {
	store, err := NewDiskCache(dir)
	if err != nil {
		return EvictReport{}, err
	}
	return store.Evict(p)
}

// EvictReport summarises one eviction pass.
type EvictReport struct {
	Scanned        int
	Removed        int
	RemovedBytes   int64
	RemainingBytes int64
}

// String is the one-line pass summary the -cache-evict flag prints.
func (r EvictReport) String() string {
	return fmt.Sprintf("cache evict: removed %d of %d entries (%d bytes), %d bytes remain",
		r.Removed, r.Scanned, r.RemovedBytes, r.RemainingBytes)
}

// Evict applies an age/size bound to the cache directory: entries older
// than MaxAge go first, then oldest-first entries until the total is
// within MaxBytes. Stale temp files from crashed writers (older than an
// hour) are cleaned up as a side effect. Eviction is maintenance, not
// correctness: a concurrently re-written entry simply survives as a
// fresh file.
func (c *DiskCache) Evict(p EvictPolicy) (EvictReport, error) {
	dirEntries, err := os.ReadDir(c.dir)
	if err != nil {
		return EvictReport{}, err
	}
	type file struct {
		name string
		size int64
		mod  time.Time
	}
	var files []file
	var rep EvictReport
	now := time.Now()
	for _, e := range dirEntries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent rename/remove
		}
		if strings.Contains(e.Name(), ".tmp-") {
			if now.Sub(info.ModTime()) > time.Hour {
				os.Remove(filepath.Join(c.dir, e.Name()))
			}
			continue
		}
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		files = append(files, file{e.Name(), info.Size(), info.ModTime()})
	}
	rep.Scanned = len(files)
	// Oldest first; names break mtime ties so the pass is deterministic.
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	var total int64
	for _, f := range files {
		total += f.size
	}
	remove := func(f file) {
		if os.Remove(filepath.Join(c.dir, f.name)) == nil {
			rep.Removed++
			rep.RemovedBytes += f.size
			total -= f.size
		}
	}
	kept := files[:0]
	for _, f := range files {
		if p.MaxAge > 0 && now.Sub(f.mod) > p.MaxAge {
			remove(f)
		} else {
			kept = append(kept, f)
		}
	}
	if p.MaxBytes > 0 {
		for _, f := range kept {
			if total <= p.MaxBytes {
				break
			}
			remove(f)
		}
	}
	rep.RemainingBytes = total
	return rep, nil
}

// Len counts the committed entries in the cache directory.
func (c *DiskCache) Len() (int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

// Fingerprints lists the committed entry keys, sorted. Only file names
// that are actually fingerprints count — in-flight temp files and stray
// foreign .json files in the directory are excluded, so the sync and
// index paths built on this enumeration never chase keys no Load could
// serve. Entries are not verified (Load does that when they are read).
func (c *DiskCache) Fingerprints() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var fps []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" {
			continue
		}
		fp := strings.TrimSuffix(name, ".json")
		if !fingerprintPat.MatchString(fp) {
			continue
		}
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	return fps, nil
}
