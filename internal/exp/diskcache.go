package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is a persistent backing layer for a Runner's in-memory result
// cache, keyed by experiment fingerprint. Implementations must be safe
// for concurrent use; a Load that cannot produce a trustworthy result
// reports a miss rather than an error (the Runner simply re-runs).
type Store interface {
	Load(fingerprint string) (Result, bool)
	Store(fingerprint string, res Result) error
}

// DiskCache is a content-addressed, persistent experiment-result store:
// one JSON file per experiment fingerprint under a single directory.
// Because every Result is a pure function of its Experiment and the
// fingerprint is a stable content hash of the experiment definition, a
// cache directory can be reused across processes — and shared between
// cmd/gridrepro, cmd/sweep and cmd/gridsim invocations, or sharded
// across machines — without ever serving a result for the wrong
// configuration.
//
// Writes go to a temporary file in the same directory followed by an
// atomic rename, so a crashed or concurrent writer can never leave a
// half-written entry behind under the final name. Corrupt, truncated or
// mismatched entries (e.g. from an older experiment schema whose
// fingerprints collide textually) are treated as misses and silently
// re-run, then overwritten with a fresh entry.
type DiskCache struct {
	dir string
}

// NewDiskCache opens (creating if necessary) a cache directory.
func NewDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("exp: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// path is the entry file for one fingerprint.
func (c *DiskCache) path(fp string) string {
	return filepath.Join(c.dir, fp+".json")
}

// Load reads one entry. Any defect — missing file, unparsable JSON, or
// an entry whose stored experiment does not hash back to the requested
// fingerprint — is a miss.
func (c *DiskCache) Load(fp string) (Result, bool) {
	blob, err := os.ReadFile(c.path(fp))
	if err != nil {
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(blob, &res); err != nil {
		return Result{}, false
	}
	if res.Exp.Fingerprint() != fp {
		return Result{}, false
	}
	return res, true
}

// Store writes one entry atomically: marshal, write to a temp file in
// the cache directory, rename over the final name.
func (c *DiskCache) Store(fp string, res Result) error {
	blob, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		return fmt.Errorf("exp: marshal cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, fp+".tmp-*")
	if err != nil {
		return fmt.Errorf("exp: cache temp file: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: write cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: close cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: commit cache entry: %w", err)
	}
	return nil
}

// Len counts the committed entries in the cache directory.
func (c *DiskCache) Len() (int, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
