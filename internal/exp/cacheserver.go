package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// NewCacheHandler exposes a DiskCache directory over HTTP — the handler
// cmd/cached serves and RemoteStore speaks to.
//
// Routes:
//
//	GET  /healthz               liveness probe ("ok")
//	GET  /v1/results            sorted JSON array of committed fingerprints
//	HEAD /v1/results/<fp>       200 when a loadable entry exists, else 404
//	GET  /v1/results/<fp>       the entry's schema-version envelope
//	PUT  /v1/results/<fp>       ingest one envelope
//
// Serving re-verifies: GET/HEAD answer 200 only for entries that pass
// the full trust gate (parse + current DiskSchemaVersion + fingerprint
// re-hash), so a corrupt file on the server never propagates. Ingest
// re-verifies harder: a PUT whose body fails the same gate — a stale
// peer from a foreign schema generation, an entry whose experiment does
// not hash back to the URL's fingerprint, plain garbage — is rejected
// with 422 before it touches the directory, so no peer can poison the
// shared store. Accepted entries go through DiskCache.Store's atomic
// temp-file+rename, which makes concurrent PUTs of one fingerprint
// idempotent (content-addressed writers always carry identical
// payloads).
func NewCacheHandler(c *DiskCache) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET "+resultsPath, func(w http.ResponseWriter, r *http.Request) {
		fps, err := c.Fingerprints()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if fps == nil {
			fps = []string{} // an empty store is "[]", not "null"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(schemaHeader, strconv.Itoa(DiskSchemaVersion))
		json.NewEncoder(w).Encode(fps)
	})
	mux.HandleFunc("GET "+resultsPath+"/{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp, ok := entryKey(w, r)
		if !ok {
			return
		}
		res, ok := c.Load(fp)
		if !ok {
			http.NotFound(w, r)
			return
		}
		blob, err := json.Marshal(diskEntry{Schema: DiskSchemaVersion, Result: res})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(schemaHeader, strconv.Itoa(DiskSchemaVersion))
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.Write(blob)
	})
	mux.HandleFunc("PUT "+resultsPath+"/{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp, ok := entryKey(w, r)
		if !ok {
			return
		}
		blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("entry exceeds %d bytes", maxEntryBytes), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("read entry: %v", err), http.StatusBadRequest)
			return
		}
		res, err := decodeEntry(blob, fp)
		if err != nil {
			// The one status RemoteStore surfaces loudly: the peer's
			// entry is untrustworthy and was refused, not stored.
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if err := c.Store(fp, res); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// entryKey extracts and validates the {fp} path element. Anything that
// is not exactly a fingerprint (16 lowercase hex digits) is 404 — it
// cannot name an entry, and rejecting it up front keeps path data out
// of filesystem operations entirely.
func entryKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	fp := r.PathValue("fp")
	if !fingerprintPat.MatchString(fp) {
		http.NotFound(w, r)
		return "", false
	}
	return fp, true
}
