package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
)

// CacheServer exposes a DiskCache directory over HTTP — the handler
// cmd/cached serves and RemoteStore speaks to — and counts what it
// serves, so a fleet can be debugged from /statusz instead of server
// logs.
//
// Routes (see Handler):
//
//	GET  /healthz               liveness probe ("ok")
//	GET  /statusz               JSON status: entry count + served counters
//	GET  /v1/results            sorted JSON array of committed fingerprints
//	HEAD /v1/results/<fp>       200 when a loadable entry exists, else 404
//	GET  /v1/results/<fp>       the entry's schema-version envelope
//	PUT  /v1/results/<fp>       ingest one envelope
//
// Serving re-verifies: GET/HEAD answer 200 only for entries that pass
// the full trust gate (parse + current DiskSchemaVersion + fingerprint
// re-hash), so a corrupt file on the server never propagates. Ingest
// re-verifies harder: a PUT whose body fails the same gate — a stale
// peer from a foreign schema generation, an entry whose experiment does
// not hash back to the URL's fingerprint, plain garbage — is rejected
// with 422 before it touches the directory, so no peer can poison the
// shared store. Accepted entries go through DiskCache.Store's atomic
// temp-file+rename, which makes concurrent PUTs of one fingerprint
// idempotent (content-addressed writers always carry identical
// payloads).
type CacheServer struct {
	cache *DiskCache

	hits   int64 // entries served (GET/HEAD 200)
	misses int64 // clean 404s on the entry routes
	puts   int64 // accepted ingests
	errors int64 // rejected or failed requests (422, 413, 400, 500)
}

// NewCacheServer wraps a DiskCache in the HTTP serving layer.
func NewCacheServer(c *DiskCache) *CacheServer { return &CacheServer{cache: c} }

// NewCacheHandler is the one-call wiring used when the counters are not
// needed separately: NewCacheServer(c).Handler().
func NewCacheHandler(c *DiskCache) http.Handler { return NewCacheServer(c).Handler() }

// Stats reports the served/ingested accounting in RemoteStats form —
// the same shape the client side prints, seen from the server: Hits
// are entries served, Misses clean 404s, Pushes accepted PUTs, Errors
// rejected or failed requests.
func (s *CacheServer) Stats() RemoteStats {
	return RemoteStats{
		RemoteHits: atomic.LoadInt64(&s.hits),
		Misses:     atomic.LoadInt64(&s.misses),
		Pushes:     atomic.LoadInt64(&s.puts),
		Errors:     atomic.LoadInt64(&s.errors),
	}
}

// ServerStatus is the /statusz document: how many verified entries the
// directory holds and what the server has served since boot.
type ServerStatus struct {
	// Entries counts committed fingerprints in the cache directory.
	Entries int `json:"entries"`
	// Served is the request accounting (see CacheServer.Stats).
	Served RemoteStats `json:"served"`
	// Jobs is the control-plane section, present only on a sweepd
	// server (nil on a plain cached instance).
	Jobs []JobStatus `json:"jobs,omitempty"`
	// Queue is the control plane's tuning (lease TTL, slices, steal
	// threshold, poll hint), present only on a sweepd server.
	Queue *QueueConfigStatus `json:"queue,omitempty"`
	// Journal is the write-ahead journal accounting, present only on a
	// sweepd server running with -journal.
	Journal *JournalStats `json:"journal,omitempty"`
}

// Handler builds the full route set, statusz included.
func (s *CacheServer) Handler() http.Handler {
	mux := http.NewServeMux()
	s.register(mux)
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		s.writeStatus(w, nil)
	})
	return mux
}

// writeStatus renders the /statusz document, optionally decorated with
// control-plane sections (jobs, queue tuning, journal accounting).
func (s *CacheServer) writeStatus(w http.ResponseWriter, decorate func(*ServerStatus)) {
	n, err := s.cache.Len()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st := ServerStatus{Entries: n, Served: s.Stats()}
	if decorate != nil {
		decorate(&st)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// register installs the health and results routes on a mux — shared by
// the plain cached handler and the sweepd control plane, so both speak
// the identical results protocol and a worker's RemoteStore cannot tell
// them apart.
func (s *CacheServer) register(mux *http.ServeMux) {
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET "+resultsPath, func(w http.ResponseWriter, r *http.Request) {
		fps, err := s.cache.Fingerprints()
		if err != nil {
			atomic.AddInt64(&s.errors, 1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if fps == nil {
			fps = []string{} // an empty store is "[]", not "null"
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(schemaHeader, strconv.Itoa(DiskSchemaVersion))
		json.NewEncoder(w).Encode(fps)
	})
	mux.HandleFunc("GET "+resultsPath+"/{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp, ok := entryKey(w, r)
		if !ok {
			return
		}
		res, ok := s.cache.Load(fp)
		if !ok {
			atomic.AddInt64(&s.misses, 1)
			http.NotFound(w, r)
			return
		}
		blob, err := json.Marshal(diskEntry{Schema: DiskSchemaVersion, Result: res})
		if err != nil {
			atomic.AddInt64(&s.errors, 1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		atomic.AddInt64(&s.hits, 1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(schemaHeader, strconv.Itoa(DiskSchemaVersion))
		w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
		w.Write(blob)
	})
	mux.HandleFunc("PUT "+resultsPath+"/{fp}", func(w http.ResponseWriter, r *http.Request) {
		fp, ok := entryKey(w, r)
		if !ok {
			return
		}
		blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntryBytes))
		if err != nil {
			atomic.AddInt64(&s.errors, 1)
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("entry exceeds %d bytes", maxEntryBytes), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("read entry: %v", err), http.StatusBadRequest)
			return
		}
		res, err := decodeEntry(blob, fp)
		if err != nil {
			// The one status RemoteStore surfaces loudly: the peer's
			// entry is untrustworthy and was refused, not stored.
			atomic.AddInt64(&s.errors, 1)
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		if err := s.cache.Store(fp, res); err != nil {
			atomic.AddInt64(&s.errors, 1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		atomic.AddInt64(&s.puts, 1)
		w.WriteHeader(http.StatusNoContent)
	})
}

// entryKey extracts and validates the {fp} path element. Anything that
// is not exactly a fingerprint (16 lowercase hex digits) is 404 — it
// cannot name an entry, and rejecting it up front keeps path data out
// of filesystem operations entirely.
func entryKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	fp := r.PathValue("fp")
	if !fingerprintPat.MatchString(fp) {
		http.NotFound(w, r)
		return "", false
	}
	return fp, true
}
