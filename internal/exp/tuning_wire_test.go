package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"repro/internal/mpiimpl"
)

// TestTuningWireBackwardCompat pins the Tuning wire encoding with
// hand-written JSON, not the current encoder, so it cannot rot into a
// tautology: a Tuning with Multilevel false must marshal to exactly the
// pre-multilevel bytes (no "multilevel" key at all), keeping every
// legacy fingerprint, golden and DiskCache entry valid; switching the
// axis on must surface on the wire and move the fingerprint.
func TestTuningWireBackwardCompat(t *testing.T) {
	handFingerprint := func(raw string) string {
		sum := sha256.Sum256([]byte(raw))
		return hex.EncodeToString(sum[:8])
	}
	// The pre-multilevel marshaling of tinyPingPong(GridMPI, fully
	// tuned): the tuning object has exactly two keys.
	legacy := `{"impl":"GridMPI","tuning":{"tcp":true,"mpi":true},` +
		`"topology":{"sites":["rennes","nancy"],"nodes_per_site":1},` +
		`"workload":{"kind":"pingpong","sizes":[1024,65536],"reps":3}}`
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true, MPI: true})
	if got, want := e.Fingerprint(), handFingerprint(legacy); got != want {
		t.Errorf("Multilevel=false fingerprint = %s, want pre-multilevel %s", got, want)
	}

	// With the axis on, the key appears — after tcp and mpi — and the
	// experiment becomes a distinct cache entry.
	multilevel := strings.Replace(legacy, `"mpi":true}`, `"mpi":true,"multilevel":true}`, 1)
	ml := tinyPingPong(mpiimpl.GridMPI, MultilevelTuning)
	if got, want := ml.Fingerprint(), handFingerprint(multilevel); got != want {
		t.Errorf("Multilevel=true fingerprint = %s, want hand-written %s", got, want)
	}
	if e.Fingerprint() == ml.Fingerprint() {
		t.Error("multilevel tuning fingerprints identically to fully-tuned: the axis is invisible to the cache")
	}
}
