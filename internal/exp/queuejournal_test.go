package exp

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recoverTestQueue recovers (or freshly creates) a journaled queue and
// pins its clock so lease arithmetic is deterministic.
func recoverTestQueue(t *testing.T, store *DiskCache, dir string, cfg QueueConfig) (*JobQueue, RecoveryReport) {
	t.Helper()
	q, rep, err := RecoverJobQueue(store, cfg, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	clock := time.Unix(1_000_000, 0)
	q.now = func() time.Time { return clock }
	return q, rep
}

// TestJournalCrashRecoveryResumesJob is the tentpole test: a journaled
// queue dies mid-sweep — after a submit, a live lease, and one verified
// report — and a recovery from the same directory resumes the job
// exactly: the cached cell stays cached, the reported cell stays done
// (the store verifies it), the lease survives for its worker, and the
// fleet finishes without recomputing anything already verified.
func TestJournalCrashRecoveryResumesJob(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	cfg := QueueConfig{TTL: time.Minute, Slices: 2}
	cells := tinyMatrix()
	// One cell is already in the store at submit time.
	computeAndStore(t, store, cells[0])

	q1, rep := recoverTestQueue(t, store, jdir, cfg)
	if rep.Jobs != 0 || rep.Records != 0 {
		t.Fatalf("fresh dir recovery = %+v", rep)
	}
	st, err := q1.Submit(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cached != 1 || st.Queued != 3 {
		t.Fatalf("submit = %+v", st)
	}
	grant, ok := q1.Lease("w1")
	if !ok || len(grant.Cells) == 0 {
		t.Fatalf("lease = %+v, %v", grant, ok)
	}
	reported := grant.Cells[0]
	computeAndStore(t, store, reported)
	if ack, err := q1.Report(grant.Job, grant.Lease, "w1", reported.Fingerprint(), false, ""); err != nil || !ack.Verified {
		t.Fatalf("report: %+v, %v", ack, err)
	}
	// Crash: no drain, no checkpoint — just the WAL on disk.
	q1.Close()

	q2, rep2 := recoverTestQueue(t, store, jdir, cfg)
	defer q2.Close()
	if rep2.Jobs != 1 || rep2.Running != 1 || rep2.Requeued != 0 || rep2.TailTruncated {
		t.Fatalf("crash recovery = %+v", rep2)
	}
	got, ok := q2.Status(st.ID)
	if !ok {
		t.Fatalf("job %s lost in recovery", st.ID)
	}
	if got.Cached != 1 || got.Computed != 1 || got.Done != 2 {
		t.Fatalf("recovered progress = %+v, want cached 1 + computed 1", got)
	}
	if got.Leased != len(grant.Cells)-1 {
		t.Fatalf("recovered leased = %d, want the %d unreported cells of the surviving lease", got.Leased, len(grant.Cells)-1)
	}

	// The surviving lease keeps working: its remaining cells report
	// under the original lease ID.
	for _, e := range grant.Cells[1:] {
		computeAndStore(t, store, e)
		if ack, err := q2.Report(grant.Job, grant.Lease, "w1", e.Fingerprint(), false, ""); err != nil || !ack.Verified {
			t.Fatalf("post-recovery report: %+v, %v", ack, err)
		}
	}
	// A second worker drains whatever is still queued.
	for {
		g, ok := q2.Lease("w2")
		if !ok {
			break
		}
		for _, e := range g.Cells {
			computeAndStore(t, store, e)
			if ack, err := q2.Report(g.Job, g.Lease, "w2", e.Fingerprint(), false, ""); err != nil || !ack.Verified {
				t.Fatalf("drain report: %+v, %v", ack, err)
			}
		}
	}
	final, _ := q2.Status(st.ID)
	if final.State != "done" || final.Cached != 1 || final.Computed != 3 {
		t.Fatalf("final = %+v, want done with 1 cached + 3 computed (nothing recomputed)", final)
	}

	// Deterministic IDs: the seq counter round-tripped, so a new job
	// does not collide with recovered IDs.
	st2, err := q2.Submit(Sweep{
		Impls:      []string{"GridMPI"},
		Tunings:    []Tuning{{}},
		Topologies: []Topology{Grid(1)},
		Workloads:  []Workload{PingPongWorkload(tinySizes, 7)},
	}.Experiments(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("recovered seq reissued job ID %s", st2.ID)
	}
}

// TestJournalRecoveryReverifiesDoneAgainstStore: a journaled "done"
// claim is only as good as the store entry behind it. When the entry
// vanishes between crash and recovery, the cell returns to pending.
func TestJournalRecoveryReverifiesDoneAgainstStore(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	cfg := QueueConfig{TTL: time.Minute, Slices: 1}
	cells := tinyMatrix()

	q1, _ := recoverTestQueue(t, store, jdir, cfg)
	st, err := q1.Submit(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	grant, _ := q1.Lease("w1")
	victim := grant.Cells[0]
	computeAndStore(t, store, victim)
	if ack, _ := q1.Report(grant.Job, grant.Lease, "w1", victim.Fingerprint(), false, ""); !ack.Verified {
		t.Fatal("report rejected")
	}
	q1.Close()

	// The verified entry disappears (eviction, disk loss) before the
	// restart.
	if err := os.Remove(filepath.Join(store.Dir(), victim.Fingerprint()+".json")); err != nil {
		t.Fatal(err)
	}

	q2, rep := recoverTestQueue(t, store, jdir, cfg)
	defer q2.Close()
	if rep.Requeued != 1 {
		t.Fatalf("recovery = %+v, want exactly the evicted cell requeued", rep)
	}
	got, _ := q2.Status(st.ID)
	if got.Computed != 0 || got.Done != 0 || got.State != "running" {
		t.Fatalf("recovered status = %+v, want the done claim rescinded", got)
	}
	// The requeued cell is leasable again.
	fresh, ok := q2.Lease("w2")
	if !ok {
		t.Fatal("requeued cell not leasable")
	}
	found := false
	for _, e := range fresh.Cells {
		if e.Fingerprint() == victim.Fingerprint() {
			found = true
		}
	}
	if !found {
		t.Fatalf("requeued cell missing from the next lease: %+v", fresh.Cells)
	}
}

// buildJournalFixture produces a journal directory holding a snapshot
// plus a WAL with one submit, one lease, and one verified report, and
// returns the WAL bytes and the job ID.
func buildJournalFixture(t *testing.T, store *DiskCache) (dir string, wal []byte, jobID string) {
	t.Helper()
	dir = t.TempDir()
	q, _ := recoverTestQueue(t, store, dir, QueueConfig{TTL: time.Minute, Slices: 1})
	st, err := q.Submit(tinyMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	grant, ok := q.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}
	computeAndStore(t, store, grant.Cells[0])
	if ack, _ := q.Report(grant.Job, grant.Lease, "w1", grant.Cells[0].Fingerprint(), false, ""); !ack.Verified {
		t.Fatal("report rejected")
	}
	q.Close()
	wal, err = os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if payloads, torn := readFrames(wal); len(payloads) != 3 || torn {
		t.Fatalf("fixture WAL has %d records (torn=%v), want submit+lease+report", len(payloads), torn)
	}
	return dir, wal, st.ID
}

// cloneJournalDir copies the fixture snapshot next to an arbitrary WAL.
func cloneJournalDir(t *testing.T, src string, wal []byte) string {
	t.Helper()
	dst := t.TempDir()
	snap, err := os.ReadFile(filepath.Join(src, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, snapName), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestJournalTornTailEveryPrefix is the torn-write property test: a
// crash can cut the WAL at any byte. Recovery from every sampled prefix
// must succeed without panicking, apply only intact records, and the
// full log must reproduce the exact pre-crash progress.
func TestJournalTornTailEveryPrefix(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, wal, jobID := buildJournalFixture(t, store)
	cfg := QueueConfig{TTL: time.Minute, Slices: 1}

	// Sample the cut points: every byte near frame boundaries would be
	// ideal but slow; a coarse stride plus the exact boundaries covers
	// the interesting offsets (torn headers, torn payloads, clean cuts).
	cuts := map[int]bool{0: true, len(wal): true}
	for off := 0; off < len(wal); off += max(1, len(wal)/64) {
		cuts[off] = true
	}
	boundary := map[int]bool{0: true} // cuts here are clean reads, not torn tails
	off := 0
	for off < len(wal) { // exact frame boundaries ± 1
		n := int(uint32(wal[off]) | uint32(wal[off+1])<<8 | uint32(wal[off+2])<<16 | uint32(wal[off+3])<<24)
		for _, o := range []int{off - 1, off, off + 1, off + 7, off + 8, off + 8 + n - 1, off + 8 + n} {
			if o >= 0 && o <= len(wal) {
				cuts[o] = true
			}
		}
		off += 8 + n
		boundary[off] = true
	}

	for cut := range cuts {
		q, rep, err := RecoverJobQueue(store, cfg, cloneJournalDir(t, src, wal[:cut]))
		if err != nil {
			t.Fatalf("cut %d: recover failed: %v", cut, err)
		}
		if rep.TailTruncated != !boundary[cut] {
			t.Errorf("cut %d: TailTruncated = %v (boundary=%v)", cut, rep.TailTruncated, boundary[cut])
		}
		if cut == len(wal) {
			st, ok := q.Status(jobID)
			if !ok || st.Computed != 1 || st.Leased != len(tinyMatrix())-1 {
				t.Fatalf("full log: status = %+v, %v", st, ok)
			}
		}
		q.Close()
	}
}

// TestJournalCorruptRecordTruncates: a bit flip inside a record fails
// its checksum; the clean prefix survives, the rest is discarded, and
// the stats say so.
func TestJournalCorruptRecordTruncates(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, wal, jobID := buildJournalFixture(t, store)
	corrupt := append([]byte(nil), wal...)
	corrupt[len(corrupt)-3] ^= 0x40 // inside the last record's payload

	q, rep, err := RecoverJobQueue(store, QueueConfig{TTL: time.Minute, Slices: 1}, cloneJournalDir(t, src, corrupt))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer q.Close()
	if !rep.TailTruncated || rep.Records != 2 {
		t.Fatalf("recovery = %+v, want 2 clean records and a truncated tail", rep)
	}
	st, ok := q.Status(jobID)
	if !ok || st.Computed != 0 || st.Leased != len(tinyMatrix()) {
		// The corrupted report is gone; the submit and lease stand.
		t.Fatalf("status = %+v, %v", st, ok)
	}
	if stats := q.JournalStats(); stats == nil || stats.TailTruncations != 1 {
		t.Fatalf("journal stats = %+v, want one tail truncation", stats)
	}
}

// TestJournalForeignSchemaRecord: a structurally valid record from a
// future generation stops replay cleanly at that point — never a panic,
// never a misread.
func TestJournalForeignSchemaRecord(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, wal, jobID := buildJournalFixture(t, store)
	foreign, err := json.Marshal(journalRecord{V: journalSchemaVersion + 1, Kind: "submit", Job: "j9999"})
	if err != nil {
		t.Fatal(err)
	}
	q, rep, err := RecoverJobQueue(store, QueueConfig{TTL: time.Minute, Slices: 1},
		cloneJournalDir(t, src, append(append([]byte(nil), wal...), frame(foreign)...)))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer q.Close()
	if !rep.TailTruncated || rep.Records != 3 {
		t.Fatalf("recovery = %+v, want the 3 native records and a truncated tail", rep)
	}
	if _, ok := q.Status("j9999"); ok {
		t.Fatal("foreign-generation record was applied")
	}
	if _, ok := q.Status(jobID); !ok {
		t.Fatal("native records lost")
	}
}

// TestJournalForeignSnapshotIsCleanMiss: a snapshot from a future
// generation discards snapshot and log together — the queue starts
// empty (the store still prevents recomputation) instead of guessing.
func TestJournalForeignSnapshotIsCleanMiss(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src, wal, _ := buildJournalFixture(t, store)
	dir := cloneJournalDir(t, src, wal)
	blob, err := json.Marshal(snapshotFile{V: journalSchemaVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapName), frame(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	q, rep, err := RecoverJobQueue(store, QueueConfig{TTL: time.Minute, Slices: 1}, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer q.Close()
	if rep.Jobs != 0 || rep.Records != 0 {
		t.Fatalf("recovery = %+v, want a clean empty start", rep)
	}
	if stats := q.JournalStats(); stats == nil || stats.SnapshotsDiscarded != 1 {
		t.Fatalf("journal stats = %+v, want one discarded snapshot", stats)
	}
	// The queue still works: a resubmission resolves from the store.
	if _, err := q.Submit(tinyMatrix(), 1); err != nil {
		t.Fatal(err)
	}
}

// TestJournalGarbageWALNeverPanics: arbitrary bytes in the log are a
// truncate-at-zero, not a crash.
func TestJournalGarbageWALNeverPanics(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, garbage := range [][]byte{
		[]byte("not a journal at all"),
		{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, // absurd length header
		{0, 0, 0, 0, 0, 0, 0, 0},             // zero-length frame
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		q, rep, err := RecoverJobQueue(store, QueueConfig{}, dir)
		if err != nil {
			t.Fatalf("recover over %q: %v", garbage, err)
		}
		if rep.Records != 0 || !rep.TailTruncated {
			t.Errorf("recovery over %q = %+v", garbage, rep)
		}
		q.Close()
	}
}

// TestJournalCheckpointCompacts: a drain-time checkpoint folds the WAL
// into the snapshot; the next recovery reads zero records and the same
// state.
func TestJournalCheckpointCompacts(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	cfg := QueueConfig{TTL: time.Minute, Slices: 1}
	q1, _ := recoverTestQueue(t, store, jdir, cfg)
	st, err := q1.Submit(tinyMatrix(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q1.Lease("w1"); !ok {
		t.Fatal("no lease")
	}
	if err := q1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(filepath.Join(jdir, walName)); err != nil || info.Size() != 0 {
		t.Fatalf("WAL after checkpoint: %v, %v — want empty", info, err)
	}
	stats := q1.JournalStats()
	if stats.Compactions < 1 || stats.LastCompaction == "" {
		t.Fatalf("journal stats = %+v, want a recorded compaction", stats)
	}
	q1.Close()

	q2, rep := recoverTestQueue(t, store, jdir, cfg)
	defer q2.Close()
	if rep.Records != 0 || rep.Jobs != 1 {
		t.Fatalf("post-checkpoint recovery = %+v, want snapshot-only", rep)
	}
	got, _ := q2.Status(st.ID)
	if got.Leased != len(tinyMatrix()) || got.State != "running" {
		t.Fatalf("recovered from snapshot = %+v", got)
	}
}

// TestJournalSizeThresholdCompacts: once the WAL outgrows MaxWALBytes
// the queue compacts on its own, without a drain.
func TestJournalSizeThresholdCompacts(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	q, _ := recoverTestQueue(t, store, jdir, QueueConfig{TTL: time.Minute, Slices: 1})
	defer q.Close()
	q.journal.MaxWALBytes = 256 // tiny threshold: the first submit overflows it
	if _, err := q.Submit(tinyMatrix(), 1); err != nil {
		t.Fatal(err)
	}
	stats := q.JournalStats()
	if stats.Compactions < 1 {
		t.Fatalf("journal stats = %+v, want an automatic compaction", stats)
	}
	if stats.WALBytes != 0 {
		t.Fatalf("WAL holds %d bytes after compaction", stats.WALBytes)
	}
}

// TestQueueDrainStopsLeasesKeepsReports: a draining queue grants
// nothing new while in-flight reports (and their verification) land
// normally, and ActiveLeases tracks the drain to zero.
func TestQueueDrainStopsLeasesKeepsReports(t *testing.T) {
	q, store, _ := newTestQueue(t, time.Minute, 1)
	if _, err := q.Submit(tinyMatrix(), 1); err != nil {
		t.Fatal(err)
	}
	grant, ok := q.Lease("w1")
	if !ok {
		t.Fatal("no lease")
	}
	q.SetDraining(true)
	if got := q.ActiveLeases(); got != 1 {
		t.Fatalf("ActiveLeases = %d, want 1", got)
	}
	if _, ok := q.Lease("w2"); ok {
		t.Fatal("draining queue granted a lease")
	}
	for _, e := range grant.Cells {
		computeAndStore(t, store, e)
		ack, err := q.Report(grant.Job, grant.Lease, "w1", e.Fingerprint(), false, "")
		if err != nil || !ack.Verified {
			t.Fatalf("report during drain: %+v, %v", ack, err)
		}
	}
	if got := q.ActiveLeases(); got != 0 {
		t.Fatalf("ActiveLeases after drain = %d, want 0", got)
	}
	q.SetDraining(false)
	if _, ok := q.Lease("w2"); ok {
		t.Fatal("finished job still leasable") // everything reported; nothing pending
	}
}

// TestQueueFleetSurvivesSweepdRestart is the acceptance test in
// process: a journaled control plane dies mid-sweep (its HTTP server
// starts refusing everything after the second report, exactly like a
// kill -9), a new one recovers from the same journal directory on the
// same address, and the retrying worker plus the waiting submitter ride
// through the outage: the job completes with every cell computed
// exactly once and output byte-identical to a direct local run.
func TestQueueFleetSurvivesSweepdRestart(t *testing.T) {
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()
	cfg := QueueConfig{TTL: 30 * time.Second, Slices: 1}
	cells := tinyMatrix()
	direct := NewRunner(2).RunAll(cells)

	q1, _, err := RecoverJobQueue(store, cfg, jdir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// After the second report arrives the plane "dies": every request —
	// that one included — is refused from then on, so the journal holds
	// exactly one verified report when recovery runs.
	var reports, dead atomic.Int32
	died := make(chan struct{})
	deadening := func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && len(r.URL.Path) > len(jobsPath) && r.URL.Path[len(r.URL.Path)-7:] == "/report" {
				if reports.Add(1) == 2 && dead.CompareAndSwap(0, 1) {
					close(died)
				}
			}
			if dead.Load() != 0 {
				http.Error(w, "sweepd is down", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	srv1 := &http.Server{Handler: deadening(NewQueueHandler(q1, NewCacheServer(store)))}
	go srv1.Serve(ln)

	retry := Backoff{Window: 20 * time.Second, Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond}
	client, err := NewQueueClient("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	client.Retry = retry
	st, err := client.Submit(cells, 1)
	if err != nil {
		t.Fatal(err)
	}

	rs, err := NewRemoteStore("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rs.Retry = retry
	runner := NewRunnerStore(1, rs)
	stopW := make(chan struct{})
	var wg sync.WaitGroup
	var rep WorkerReport
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep = client.Work(WorkerConfig{ID: "w1", Runner: runner, Poll: 5 * time.Millisecond, Stop: stopW})
	}()

	<-died
	srv1.Close()
	q1.Close()

	// Restart: recover from the journal and serve on the same address.
	q2, rec, err := RecoverJobQueue(store, cfg, jdir)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	if rec.Jobs != 1 || rec.Running != 1 || rec.Records != 3 {
		t.Fatalf("restart recovery = %+v, want submit+lease+report replayed", rec)
	}
	var ln2 net.Listener
	for range 100 { // the old listener's port frees asynchronously
		if ln2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: NewQueueHandler(q2, NewCacheServer(store))}
	defer srv2.Close()
	go srv2.Serve(ln2)

	final, err := client.WaitJob(st.ID, 10*time.Millisecond, nil)
	close(stopW)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Computed != len(cells) || final.Failed != 0 {
		t.Fatalf("final = %+v", final)
	}
	// Every cell was computed exactly once: the restart recomputed
	// nothing the store had already verified.
	if got := runner.CacheStats().Computed; got != int64(len(cells)) {
		t.Fatalf("worker computed %d cells, want %d exactly once each", got, len(cells))
	}
	if rep.Errors != 0 || rep.Rejected != 0 || rep.Failed != 0 {
		t.Fatalf("worker report = %+v", rep)
	}

	// Byte-identical output against the uninterrupted local run.
	fleet := make([]Result, len(cells))
	for i, e := range cells {
		res, ok := store.Load(e.Fingerprint())
		if !ok {
			t.Fatalf("missing cell %s", e.Fingerprint())
		}
		fleet[i] = res
	}
	if string(MarshalResults(fleet)) != string(MarshalResults(direct)) {
		t.Error("fleet output differs from the direct local run after the restart")
	}
}
