package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/mpiimpl"
)

// newCacheServer starts an in-process cached server over a fresh
// directory and returns it with its backing store.
func newCacheServer(t *testing.T) (*httptest.Server, *DiskCache) {
	t.Helper()
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewCacheHandler(store))
	t.Cleanup(srv.Close)
	return srv, store
}

// envelope serializes one result as the wire/disk schema-version
// envelope, optionally overriding the schema generation.
func envelope(t *testing.T, res Result, schema int) []byte {
	t.Helper()
	blob, err := json.Marshal(diskEntry{Schema: schema, Result: res})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func doPut(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestCacheHandlerServesAndIngests: the full GET/HEAD/PUT protocol,
// including the ingest re-verification that keeps a poisoned or
// foreign-generation peer out of the store.
func TestCacheHandlerServesAndIngests(t *testing.T) {
	srv, store := newCacheServer(t)
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	fp := e.Fingerprint()
	res := Run(e)
	entryURL := srv.URL + resultsPath + "/" + fp

	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v, %v", resp, err)
	}
	// Empty store: index is [], the entry is absent.
	if resp, err := http.Get(srv.URL + resultsPath); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("index = %v, %v", resp, err)
	} else {
		var fps []string
		if err := json.NewDecoder(resp.Body).Decode(&fps); err != nil || len(fps) != 0 {
			t.Errorf("empty-store index = %v, %v", fps, err)
		}
		resp.Body.Close()
	}
	for _, method := range []string{http.MethodGet, http.MethodHead} {
		req, _ := http.NewRequest(method, entryURL, nil)
		if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s of a missing entry = %v, %v", method, resp.Status, err)
		}
	}

	// Ingest, then read back.
	if resp := doPut(t, entryURL, envelope(t, res, DiskSchemaVersion)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %s", resp.Status)
	}
	stored, ok := store.Load(fp)
	if !ok {
		t.Fatal("ingested entry not loadable from the server's directory")
	}
	if !bytes.Equal(MarshalResults([]Result{stored}), MarshalResults([]Result{res})) {
		t.Error("ingested entry differs from the pushed result")
	}
	resp, err := http.Get(entryURL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT = %v, %v", resp, err)
	}
	if got := resp.Header.Get(schemaHeader); got != fmt.Sprint(DiskSchemaVersion) {
		t.Errorf("schema header = %q", got)
	}
	var entry diskEntry
	if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
		t.Fatalf("served entry unparsable: %v", err)
	}
	resp.Body.Close()
	if got := entry.Exp.Fingerprint(); got != fp {
		t.Errorf("served entry hashes to %s, want %s", got, fp)
	}
	if resp, err := http.Head(entryURL); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD after PUT = %v, %v", resp, err)
	}
	if resp, err := http.Get(srv.URL + resultsPath); err != nil {
		t.Fatal(err)
	} else {
		var fps []string
		if err := json.NewDecoder(resp.Body).Decode(&fps); err != nil || len(fps) != 1 || fps[0] != fp {
			t.Errorf("index = %v, %v, want [%s]", fps, err, fp)
		}
		resp.Body.Close()
	}

	// Ingest rejections: everything answers 422 and stores nothing.
	other := tinyPingPong(mpiimpl.MPICH2, Tuning{})
	rejects := map[string][]byte{
		"garbage":           []byte("not json"),
		"foreign-schema":    envelope(t, res, DiskSchemaVersion+1),
		"wrong-fingerprint": envelope(t, Run(other), DiskSchemaVersion),
		"wrong-shape":       []byte(`[1,2,3]`),
	}
	victim := srv.URL + resultsPath + "/" + strings.Repeat("0", 16)
	for name, body := range rejects {
		if resp := doPut(t, victim, body); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("PUT %s = %s, want 422", name, resp.Status)
		}
	}
	// An oversized body is refused before it is parsed.
	if resp := doPut(t, victim, make([]byte, maxEntryBytes+1)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized PUT = %s, want 413", resp.Status)
	}
	if _, ok := store.Load(strings.Repeat("0", 16)); ok {
		t.Error("a rejected PUT reached the store")
	}

	// Path hygiene: anything that is not a fingerprint cannot name an
	// entry, whatever the method.
	for _, bad := range []string{"UPPERCASE0000000", "short", "..%2f..%2fetc", strings.Repeat("a", 17)} {
		if resp, err := http.Get(srv.URL + resultsPath + "/" + bad); err != nil || resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %q = %v, %v, want 404", bad, resp.Status, err)
		}
	}
	// A corrupt file on the server's own disk is served to nobody.
	if err := os.WriteFile(filepath.Join(store.Dir(), fp+".json"), []byte("rotted"), 0o644); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(entryURL); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET of a corrupt server entry = %v, %v, want 404", resp.Status, err)
	}
}

// TestCacheHandlerConcurrentPutIdempotent: many writers racing on one
// fingerprint (shard overlap, retries) all succeed and leave exactly one
// committed, loadable entry.
func TestCacheHandlerConcurrentPutIdempotent(t *testing.T) {
	srv, store := newCacheServer(t)
	e := tinyPingPong(mpiimpl.OpenMPI, Tuning{})
	fp := e.Fingerprint()
	body := envelope(t, Run(e), DiskSchemaVersion)
	url := srv.URL + resultsPath + "/" + fp

	var wg sync.WaitGroup
	codes := make([]int, 16)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusNoContent {
			t.Errorf("writer %d got %d, want 204", i, code)
		}
	}
	if _, ok := store.Load(fp); !ok {
		t.Fatal("entry not loadable after the race")
	}
	if n, err := store.Len(); err != nil || n != 1 {
		t.Errorf("store holds %d entries (err=%v), want exactly 1", n, err)
	}
}

// TestRemoteStoreReadThroughWriteBehind: a store computes through one
// machine, a second machine with an empty local tier replays everything
// from the server — and its tier is warm afterwards, so a third pass
// makes no round trips at all.
func TestRemoteStoreReadThroughWriteBehind(t *testing.T) {
	srv, _ := newCacheServer(t)
	exps := []Experiment{
		tinyPingPong(mpiimpl.GridMPI, Tuning{}),
		tinyPingPong(mpiimpl.MPICH2, Tuning{TCP: true}),
	}

	// Machine A: compute and publish (write-behind into its own tier too).
	tierA, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeA, err := NewRemoteStore(srv.URL, tierA)
	if err != nil {
		t.Fatal(err)
	}
	first := NewRunnerStore(2, storeA).RunAll(exps)
	if got := storeA.Stats(); got.Pushes != int64(len(exps)) || got.Errors != 0 {
		t.Errorf("publish stats = %+v, want %d pushes", got, len(exps))
	}
	if n, _ := tierA.Len(); n != len(exps) {
		t.Errorf("local tier holds %d entries, want %d", n, len(exps))
	}

	// Machine B: empty tier, everything arrives from the server.
	tierB, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeB, err := NewRemoteStore(srv.URL, tierB)
	if err != nil {
		t.Fatal(err)
	}
	rB := NewRunnerStore(2, storeB)
	second := rB.RunAll(exps)
	if got := rB.CacheStats(); got.Computed != 0 {
		t.Errorf("machine B computed %d cells, want 0", got.Computed)
	}
	if got := storeB.Stats(); got.RemoteHits != int64(len(exps)) || got.Errors != 0 {
		t.Errorf("machine B stats = %+v, want %d remote hits", got, len(exps))
	}
	if !bytes.Equal(MarshalResults(first), MarshalResults(second)) {
		t.Error("remote replay changed the results")
	}

	// Machine B again, fresh runner on the same tier: pure local serves.
	storeB2, err := NewRemoteStore(srv.URL, tierB)
	if err != nil {
		t.Fatal(err)
	}
	NewRunnerStore(2, storeB2).RunAll(exps)
	if got := storeB2.Stats(); got.LocalHits != int64(len(exps)) || got.RemoteHits != 0 {
		t.Errorf("warm-tier stats = %+v, want %d local hits and no round trips", got, len(exps))
	}
}

// TestRemoteStoreServerDownDegradesToCompute: a dead server never fails
// a sweep — every cell is computed locally, results match a storeless
// run, and the degradation is visible in the error counter.
func TestRemoteStoreServerDownDegradesToCompute(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens here any more

	store, err := NewRemoteStore(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	exps := []Experiment{
		tinyPingPong(mpiimpl.GridMPI, Tuning{}),
		tinyPingPong(mpiimpl.RawTCP, Tuning{TCP: true}),
	}
	r := NewRunnerStore(2, store)
	got := r.RunAll(exps)
	want := NewRunner(2).RunAll(exps)
	if !bytes.Equal(MarshalResults(got), MarshalResults(want)) {
		t.Error("degraded run produced different results")
	}
	if stats := r.CacheStats(); stats.Computed != int64(len(exps)) {
		t.Errorf("computed %d cells, want all %d", stats.Computed, len(exps))
	}
	// One failed fetch and one failed publish per experiment.
	if stats := store.Stats(); stats.Errors != 2*int64(len(exps)) || stats.RemoteHits != 0 || stats.Pushes != 0 {
		t.Errorf("degradation not counted: %+v", stats)
	}
}

// TestRemoteStoreBadEntriesMissCleanly: a server responding with
// garbage, a foreign schema generation, a mismatched experiment, or a
// 500 produces clean misses — the runner recomputes, results are
// unaffected, and each defect is counted.
func TestRemoteStoreBadEntriesMissCleanly(t *testing.T) {
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{TCP: true})
	good := Run(e)
	other := tinyPingPong(mpiimpl.MPICH2, Tuning{})
	cases := map[string]http.HandlerFunc{
		"garbage": func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte("not json at all"))
		},
		"foreign-schema": func(w http.ResponseWriter, r *http.Request) {
			w.Write(envelope(t, good, DiskSchemaVersion+7))
		},
		"foreign-schema-header": func(w http.ResponseWriter, r *http.Request) {
			// The body would verify; the header announces a foreign
			// store and must be believed without parsing it.
			w.Header().Set(schemaHeader, "99")
			w.Write(envelope(t, good, DiskSchemaVersion))
		},
		"wrong-experiment": func(w http.ResponseWriter, r *http.Request) {
			w.Write(envelope(t, Run(other), DiskSchemaVersion))
		},
		"server-error": func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		},
	}
	for name, handler := range cases {
		t.Run(name, func(t *testing.T) {
			srv := httptest.NewServer(handler)
			defer srv.Close()
			store, err := NewRemoteStore(srv.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := store.Load(e.Fingerprint()); ok {
				t.Fatal("defective entry served as a hit")
			}
			if stats := store.Stats(); stats.Errors != 1 {
				t.Errorf("defect not counted: %+v", stats)
			}
			res := NewRunnerStore(1, store).Run(e)
			if res.Cached {
				t.Error("defective entry reached the runner as a cache hit")
			}
			if !bytes.Equal(MarshalResults([]Result{res}), MarshalResults([]Result{good})) {
				t.Error("recomputed result differs from a direct run")
			}
		})
	}
}

// TestRemoteStatsString: the headline hit count includes both tiers (a
// warm local tier must not read as "0 hits"), and local write failures
// are reported apart from server errors.
func TestRemoteStatsString(t *testing.T) {
	warm := RemoteStats{LocalHits: 4, Misses: 1, Pushes: 2}
	if got, want := warm.String(), "remote: 4 hits (4 from the local tier), 1 misses, 2 pushed, 0 errors"; got != want {
		t.Errorf("warm tier: %q, want %q", got, want)
	}
	sick := RemoteStats{RemoteHits: 3, LocalErrors: 2}
	if got := sick.String(); !strings.Contains(got, "3 hits (0 from the local tier)") ||
		!strings.Contains(got, "2 local-tier write failures") {
		t.Errorf("local failures not reported: %q", got)
	}
}

// TestRemoteStoreCleanMissIsNotAnError: a healthy server without the
// entry counts as a miss, not a degradation.
func TestRemoteStoreCleanMissIsNotAnError(t *testing.T) {
	srv, _ := newCacheServer(t)
	store, err := NewRemoteStore(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{})
	if _, ok := store.Load(e.Fingerprint()); ok {
		t.Fatal("empty server served a hit")
	}
	if stats := store.Stats(); stats.Misses != 1 || stats.Errors != 0 {
		t.Errorf("stats = %+v, want one clean miss", stats)
	}
}

// TestNewRemoteStoreRejectsBadURLs: misconfiguration fails at wiring
// time, not as a silent all-miss sweep.
func TestNewRemoteStoreRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "stately:8077", "ftp://host", "http://", ":://nope"} {
		if _, err := NewRemoteStore(bad, nil); err == nil {
			t.Errorf("NewRemoteStore(%q) accepted", bad)
		}
	}
}

// TestShardedSweepThroughRemoteMatchesLocal is the acceptance check in
// miniature: two shard workers sharing one cached server cover the full
// matrix between them, and a replay through the same server recomputes
// nothing while serving 100% from the remote tier, byte-identical to a
// direct local run.
func TestShardedSweepThroughRemoteMatchesLocal(t *testing.T) {
	srv, serverStore := newCacheServer(t)
	sweep := Sweep{
		Impls:      []string{mpiimpl.GridMPI, mpiimpl.MPICH2},
		Tunings:    []Tuning{{}, {TCP: true}},
		Topologies: []Topology{Grid(1)},
		Workloads:  []Workload{PingPongWorkload(tinySizes, 3)},
	}
	exps := sweep.Experiments()
	direct := NewRunner(2).RunAll(exps)

	covered := 0
	for _, shard := range []Shard{{Index: 1, Count: 2}, {Index: 2, Count: 2}} {
		store, err := NewRemoteStore(srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		part := shard.Select(exps)
		covered += len(part)
		NewRunnerStore(2, store).RunAll(part)
		if got := store.Stats(); got.Pushes != int64(len(part)) {
			t.Errorf("shard %s pushed %d of %d results", shard, got.Pushes, len(part))
		}
	}
	if covered != len(exps) {
		t.Fatalf("shards covered %d of %d experiments", covered, len(exps))
	}
	if n, _ := serverStore.Len(); n != len(exps) {
		t.Fatalf("server holds %d entries, want %d", n, len(exps))
	}

	store, err := NewRemoteStore(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(2, store)
	replay := r.RunAll(exps)
	if stats := r.CacheStats(); stats.Computed != 0 {
		t.Errorf("replay computed %d cells, want 0", stats.Computed)
	}
	if stats := store.Stats(); stats.RemoteHits != int64(len(exps)) || stats.Errors != 0 {
		t.Errorf("replay stats = %+v, want all %d served remotely", stats, len(exps))
	}
	if !bytes.Equal(MarshalResults(replay), MarshalResults(direct)) {
		t.Error("sharded-through-server replay differs from the direct local run")
	}
}

// TestPushPullRoundTrip: the explicit one-shot syncs move exactly the
// missing entries in each direction, are idempotent, and require a
// local tier.
func TestPushPullRoundTrip(t *testing.T) {
	srv, serverStore := newCacheServer(t)
	exps := []Experiment{
		tinyPingPong(mpiimpl.GridMPI, Tuning{}),
		tinyPingPong(mpiimpl.MPICH2, Tuning{TCP: true}),
		tinyPingPong(mpiimpl.RawTCP, Tuning{}),
	}

	// A warmed local directory, never connected to the server. A stray
	// non-entry .json file must not enter the sync (it would fail every
	// pass forever, since no transfer can ever make it converge).
	srcDir := t.TempDir()
	src, err := NewDiskCache(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	NewRunnerStore(2, src).RunAll(exps)
	if err := os.WriteFile(filepath.Join(srcDir, "notes.json"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fps, err := src.Fingerprints(); err != nil || len(fps) != len(exps) {
		t.Fatalf("Fingerprints = %v, %v, want the %d real entries only", fps, err, len(exps))
	}

	up, err := NewRemoteStore(srv.URL, src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := up.Push()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != len(exps) || rep.Transferred != len(exps) || rep.Skipped != 0 || rep.Failed != 0 {
		t.Errorf("first push = %+v", rep)
	}
	if n, _ := serverStore.Len(); n != len(exps) {
		t.Errorf("server holds %d entries after push, want %d", n, len(exps))
	}
	if rep, err = up.Push(); err != nil || rep.Transferred != 0 || rep.Skipped != len(exps) {
		t.Errorf("repeated push = %+v, %v, want all skipped", rep, err)
	}

	// Pull into a fresh directory on another machine.
	dst, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	down, err := NewRemoteStore(srv.URL, dst)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = down.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != len(exps) || rep.Transferred != len(exps) || rep.Failed != 0 {
		t.Errorf("pull = %+v", rep)
	}
	if rep, err = down.Pull(); err != nil || rep.Transferred != 0 || rep.Skipped != len(exps) {
		t.Errorf("repeated pull = %+v, %v, want all skipped", rep, err)
	}
	for _, e := range exps {
		fp := e.Fingerprint()
		got, ok := dst.Load(fp)
		if !ok {
			t.Fatalf("pulled directory missing %s", fp)
		}
		want, _ := src.Load(fp)
		if !bytes.Equal(MarshalResults([]Result{got}), MarshalResults([]Result{want})) {
			t.Errorf("pulled entry %s differs from the source", fp)
		}
	}

	// A remote-only store has nowhere to sync to or from.
	bare, err := NewRemoteStore(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Push(); err == nil {
		t.Error("push without a local tier accepted")
	}
	if _, err := bare.Pull(); err == nil {
		t.Error("pull without a local tier accepted")
	}
}

// flakyCacheServer wraps a real cache handler so tests can break the
// transfer of chosen fingerprints: PUTs are 422ed, GETs answer garbage.
func flakyCacheServer(t *testing.T) (*httptest.Server, *DiskCache, map[string]bool) {
	t.Helper()
	store, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	broken := make(map[string]bool)
	inner := NewCacheHandler(store)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fp := strings.TrimPrefix(r.URL.Path, resultsPath+"/"); broken[fp] {
			switch r.Method {
			case http.MethodPut:
				http.Error(w, "synthetic ingest refusal", http.StatusUnprocessableEntity)
				return
			case http.MethodGet:
				w.Header().Set("Content-Type", "application/json")
				io.WriteString(w, `{"schema":9999,"result":{}}`) // fails decodeEntry
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, store, broken
}

// TestRemotePushPartialFailure: a server that refuses some entries
// mid-sync yields a SyncReport with the failures counted, and a retry
// after the server heals transfers exactly the failed remainder.
func TestRemotePushPartialFailure(t *testing.T) {
	local, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var fps []string
	for _, impl := range []string{mpiimpl.GridMPI, mpiimpl.MPICH2} {
		for _, tun := range []Tuning{{}, {TCP: true}} {
			e := tinyPingPong(impl, tun)
			if err := local.Store(e.Fingerprint(), Run(e)); err != nil {
				t.Fatal(err)
			}
			fps = append(fps, e.Fingerprint())
		}
	}
	srv, _, broken := flakyCacheServer(t)
	broken[fps[0]] = true
	broken[fps[2]] = true

	remote, err := NewRemoteStore(srv.URL, local)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := remote.Push()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 4 || rep.Transferred != 2 || rep.Failed != 2 {
		t.Fatalf("partial push = %+v, want 2 transferred + 2 failed of 4", rep)
	}
	if got := rep.String(); !strings.Contains(got, "2 failed") {
		t.Errorf("report line hides the failures: %q", got)
	}

	// Healed server: the retry moves exactly the failed remainder.
	for fp := range broken {
		delete(broken, fp)
	}
	rep, err = remote.Push()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transferred != 2 || rep.Skipped != 2 || rep.Failed != 0 {
		t.Fatalf("retry push = %+v, want the 2 failed entries transferred", rep)
	}
}

// TestRemotePullPartialFailure: entries that fail verification on the
// way down are counted failed and never written locally; the healed
// retry repairs exactly those.
func TestRemotePullPartialFailure(t *testing.T) {
	srv, serverStore, broken := flakyCacheServer(t)
	var fps []string
	for _, impl := range []string{mpiimpl.GridMPI, mpiimpl.MPICH2} {
		for _, tun := range []Tuning{{}, {TCP: true}} {
			e := tinyPingPong(impl, tun)
			if err := serverStore.Store(e.Fingerprint(), Run(e)); err != nil {
				t.Fatal(err)
			}
			fps = append(fps, e.Fingerprint())
		}
	}
	broken[fps[1]] = true
	broken[fps[3]] = true

	local, err := NewDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewRemoteStore(srv.URL, local)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := remote.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 4 || rep.Transferred != 2 || rep.Failed != 2 {
		t.Fatalf("partial pull = %+v, want 2 transferred + 2 failed of 4", rep)
	}
	for _, fp := range []string{fps[1], fps[3]} {
		if _, ok := local.Load(fp); ok {
			t.Errorf("unverifiable entry %s was written locally", fp)
		}
	}
	for fp := range broken {
		delete(broken, fp)
	}
	rep, err = remote.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transferred != 2 || rep.Skipped != 2 || rep.Failed != 0 {
		t.Fatalf("retry pull = %+v", rep)
	}
	if n, _ := local.Len(); n != 4 {
		t.Errorf("local store holds %d entries after healed pull, want 4", n)
	}
}

// TestCacheServerStatusz: the counters behind /statusz track hits,
// misses, accepted PUTs and rejections, next to the entry count.
func TestCacheServerStatusz(t *testing.T) {
	srv, _ := newCacheServer(t)
	e := tinyPingPong(mpiimpl.GridMPI, Tuning{})
	fp := e.Fingerprint()
	entry := srv.URL + resultsPath + "/" + fp

	// One accepted PUT, one rejected (wrong schema generation), one GET
	// hit, one miss.
	doPut(t, entry, envelope(t, Run(e), DiskSchemaVersion)).Body.Close()
	doPut(t, entry, envelope(t, Run(e), DiskSchemaVersion+1)).Body.Close()
	resp, err := http.Get(entry)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("get = %v, %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + resultsPath + "/" + strings.Repeat("0", 16))
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss = %v, %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/statusz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz = %v, %v", resp, err)
	}
	defer resp.Body.Close()
	var status ServerStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	want := ServerStatus{Entries: 1, Served: RemoteStats{RemoteHits: 1, Misses: 1, Pushes: 1, Errors: 1}}
	if status.Entries != want.Entries || status.Served != want.Served || status.Jobs != nil {
		t.Fatalf("statusz = %+v, want %+v", status, want)
	}
}
