package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/mpiimpl"
)

// fakeElapsed builds a CheckGuidelines lookup from a literal table.
func fakeElapsed(table map[string]time.Duration) func(string) (time.Duration, bool) {
	return func(p string) (time.Duration, bool) {
		d, ok := table[p]
		return d, ok
	}
}

func TestCheckGuidelines(t *testing.T) {
	rules := []Guideline{
		{LHS: "allgather", RHS: []string{"gather", "bcast"}},
		{LHS: "gather", RHS: []string{"allgather"}},
	}
	// allgather (30ms) beats gather+bcast (10+15ms): violation. gather
	// (10ms) <= allgather (30ms): fine.
	got := CheckGuidelines(rules, 1.05, 4, fakeElapsed(map[string]time.Duration{
		"allgather": 30 * time.Millisecond,
		"gather":    10 * time.Millisecond,
		"bcast":     15 * time.Millisecond,
	}))
	if len(got) != 1 || got[0].Rule.LHS != "allgather" {
		t.Fatalf("violations = %+v, want exactly the allgather rule", got)
	}
	if got[0].LHS != 30*time.Millisecond || got[0].RHS != 25*time.Millisecond {
		t.Fatalf("violation times = %v > %v, want 30ms > 25ms", got[0].LHS, got[0].RHS)
	}

	// Within the tolerance band (26ms <= 1.05 * 25ms): no violation.
	got = CheckGuidelines(rules, 1.05, 4, fakeElapsed(map[string]time.Duration{
		"allgather": 26 * time.Millisecond,
		"gather":    10 * time.Millisecond,
		"bcast":     15 * time.Millisecond,
	}))
	if len(got) != 0 {
		t.Fatalf("in-tolerance ratio flagged: %+v", got)
	}

	// A missing pattern silently drops the rules referencing it instead
	// of producing a fake verdict.
	got = CheckGuidelines(rules, 1.05, 4, fakeElapsed(map[string]time.Duration{
		"allgather": 30 * time.Millisecond,
		"gather":    10 * time.Millisecond,
	}))
	if len(got) != 0 {
		t.Fatalf("rule with a missing pattern flagged: %+v", got)
	}
}

// TestCheckGuidelinesScaleByP pins the P-scaled RHS arithmetic of rules
// like alltoall <= P*(scatter).
func TestCheckGuidelinesScaleByP(t *testing.T) {
	rules := []Guideline{{LHS: "alltoall", RHS: []string{"scatter"}, ScaleByP: true}}
	table := fakeElapsed(map[string]time.Duration{
		"alltoall": 40 * time.Millisecond,
		"scatter":  10 * time.Millisecond,
	})
	// 40ms <= 1.05 * 4*10ms: consistent at P=4.
	if got := CheckGuidelines(rules, 1.05, 4, table); len(got) != 0 {
		t.Fatalf("in-bound P-scaled rule flagged: %+v", got)
	}
	// At P=2 the bound is 21ms: violated, and the report shows the
	// scaled RHS.
	got := CheckGuidelines(rules, 1.05, 2, table)
	if len(got) != 1 || got[0].RHS != 20*time.Millisecond {
		t.Fatalf("violations = %+v, want one with RHS 20ms", got)
	}
	if s := got[0].Rule.String(); s != "alltoall <= P*(scatter)" {
		t.Fatalf("rule renders as %q", s)
	}
	// Unknown rank count: the ScaleByP rule is skipped, not guessed.
	if got := CheckGuidelines(rules, 1.05, 0, table); len(got) != 0 {
		t.Fatalf("ScaleByP rule with unknown P flagged: %+v", got)
	}
}

func TestGuidelinePatternsAndSuite(t *testing.T) {
	pats := GuidelinePatterns(DefaultGuidelines)
	want := []string{"allgather", "gather", "bcast", "allreduce", "reduce", "scatter", "alltoall"}
	if len(pats) != len(want) {
		t.Fatalf("patterns = %v, want %v", pats, want)
	}
	for i, p := range want {
		if pats[i] != p {
			t.Fatalf("patterns = %v, want %v (dedup must preserve order)", pats, want)
		}
		if err := CheckPattern(p); err != nil {
			t.Errorf("guideline pattern %q is not runnable: %v", p, err)
		}
	}
	suite := GuidelineSuite(
		[]string{mpiimpl.RawTCP, mpiimpl.MPICH2},
		[]Tuning{{}, {TCP: true}},
		[]Topology{Grid(1)},
		DefaultGuidelines, 1024, 3)
	if len(suite) != 2*2*1*len(want) {
		t.Fatalf("suite size = %d, want %d", len(suite), 2*2*1*len(want))
	}
	for _, e := range suite {
		if !e.Faults.IsZero() {
			t.Fatalf("guideline cell %s carries a fault plan", e.Name())
		}
	}
}

// TestEvaluateGuidelines checks the grouping layer on synthesized
// results: per-configuration verdicts, deterministic order, failed cells
// reported as skips instead of verdicts.
func TestEvaluateGuidelines(t *testing.T) {
	rules := []Guideline{{LHS: "gather", RHS: []string{"allgather"}}}
	cell := func(impl, pattern string, elapsed time.Duration, errMsg string) Result {
		return Result{
			Exp: Experiment{
				Impl:     impl,
				Topology: Grid(1),
				Workload: PatternWorkload(pattern, 1024, 3),
			},
			Elapsed: elapsed,
			Err:     errMsg,
		}
	}
	results := []Result{
		// TCP: gather slower than allgather — a violation.
		cell(mpiimpl.RawTCP, "gather", 40*time.Millisecond, ""),
		cell(mpiimpl.RawTCP, "allgather", 20*time.Millisecond, ""),
		// MPICH2: consistent.
		cell(mpiimpl.MPICH2, "gather", 10*time.Millisecond, ""),
		cell(mpiimpl.MPICH2, "allgather", 20*time.Millisecond, ""),
		// GridMPI: the allgather cell failed, so its rule is skipped.
		cell(mpiimpl.GridMPI, "gather", 10*time.Millisecond, ""),
		cell(mpiimpl.GridMPI, "allgather", 0, "boom"),
	}
	violations, skipped := EvaluateGuidelines(results, rules, 1.05)
	if len(violations) != 1 {
		t.Fatalf("violations = %+v, want exactly the TCP one", violations)
	}
	if v := violations[0]; !strings.HasPrefix(v.Config, mpiimpl.RawTCP+"/") {
		t.Fatalf("violation config = %q, want the TCP configuration", v.Config)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "allgather") {
		t.Fatalf("skipped = %v, want one allgather note", skipped)
	}
}

// TestGuidelineSweepEndToEnd runs a real (tiny) guideline suite through
// the Runner twice and checks the report is stable — guideline verdicts
// are as deterministic as any other cell.
func TestGuidelineSweepEndToEnd(t *testing.T) {
	suite := GuidelineSuite(
		[]string{mpiimpl.MPICH2}, []Tuning{{}}, []Topology{Grid(1)},
		DefaultGuidelines, 4096, 2)
	render := func() (string, int) {
		var buf bytes.Buffer
		n := WriteGuidelineReport(&buf, NewRunner(4).RunAll(suite), DefaultGuidelines, DefaultGuidelineTolerance)
		return buf.String(), n
	}
	first, n1 := render()
	second, n2 := render()
	if first != second || n1 != n2 {
		t.Fatalf("guideline report not deterministic:\n%s\nvs\n%s", first, second)
	}
	if !strings.Contains(first, "Guidelines: 8 rules x 1 configurations") {
		t.Fatalf("report header missing:\n%s", first)
	}
	if n1 > 0 && !strings.Contains(first, "VIOLATION") {
		t.Fatalf("count %d but no VIOLATION lines:\n%s", n1, first)
	}
	if n1 == 0 && !strings.Contains(first, "self-consistent") {
		t.Fatalf("clean report missing the clean line:\n%s", first)
	}
}

// TestNewGuidelinesHoldAtBothLevels runs the rules this PR added (plus
// the reduce <= allreduce monotony rule they extend) on a 3-site layout
// at the flat and multilevel tuning levels: the new bounds must be
// self-consistent under both algorithm families. The full default set is
// deliberately not asserted clean here — -guidelines is a linter, and
// some legacy rules legitimately flag tuning headroom on grid layouts.
func TestNewGuidelinesHoldAtBothLevels(t *testing.T) {
	rules := []Guideline{
		{LHS: "alltoall", RHS: []string{"scatter"}, ScaleByP: true},
		{LHS: "allreduce", RHS: []string{"reduce", "scatter", "allgather"}},
		{LHS: "reduce", RHS: []string{"allreduce"}},
	}
	topo := Asym(Site("rennes", 3), Site("nancy", 2), Site("sophia", 2))
	suite := GuidelineSuite(
		[]string{mpiimpl.GridMPI},
		[]Tuning{{TCP: true, MPI: true}, MultilevelTuning},
		[]Topology{topo},
		rules, 64<<10, 2)
	var buf bytes.Buffer
	if n := WriteGuidelineReport(&buf, NewRunner(4).RunAll(suite), rules, DefaultGuidelineTolerance); n != 0 {
		t.Fatalf("new rules violated at flat or multilevel level:\n%s", buf.String())
	}
}

// TestBrokenGuidelineReportsNonzero: a deliberately false rule (barrier
// moves no payload, so no collective can beat it on time alone... in fact
// allreduce must lose to a lone barrier) must produce a nonzero violation
// count — the count cmd/sweep turns into a nonzero exit.
func TestBrokenGuidelineReportsNonzero(t *testing.T) {
	broken := []Guideline{{LHS: "allreduce", RHS: []string{"barrier"}}}
	suite := GuidelineSuite(
		[]string{mpiimpl.MPICH2}, []Tuning{{}}, []Topology{Grid(2)},
		broken, 256<<10, 2)
	var buf bytes.Buffer
	n := WriteGuidelineReport(&buf, NewRunner(4).RunAll(suite), broken, DefaultGuidelineTolerance)
	if n == 0 {
		t.Fatalf("deliberately broken rule produced a clean report:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "VIOLATION") {
		t.Fatalf("violation count %d but no VIOLATION line:\n%s", n, buf.String())
	}
}
