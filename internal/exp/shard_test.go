package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mpiimpl"
)

// TestShardUnionIsFullMatrix: across any shard count, the shards
// partition the sweep — disjoint, order-preserving, and their union is
// exactly the full experiment list.
func TestShardUnionIsFullMatrix(t *testing.T) {
	full := PaperMatrix(3).Experiments()
	for _, n := range []int{1, 2, 3, 7} {
		owner := make(map[string]int)
		total := 0
		for i := 1; i <= n; i++ {
			part := Shard{Index: i, Count: n}.Select(full)
			total += len(part)
			for _, e := range part {
				fp := e.Fingerprint()
				if prev, dup := owner[fp]; dup {
					t.Errorf("n=%d: %s owned by shards %d and %d", n, e.Name(), prev, i)
				}
				owner[fp] = i
			}
		}
		if total != len(full) || len(owner) != len(full) {
			t.Errorf("n=%d: shards cover %d of %d experiments", n, len(owner), len(full))
		}
	}
	// The partition is keyed by fingerprint, so it is stable across
	// expansion orders: reversing the input changes nothing but order.
	rev := make([]Experiment, len(full))
	for i, e := range full {
		rev[len(full)-1-i] = e
	}
	a := Shard{Index: 1, Count: 3}.Select(full)
	b := Shard{Index: 1, Count: 3}.Select(rev)
	if len(a) != len(b) {
		t.Fatalf("shard size depends on expansion order: %d vs %d", len(a), len(b))
	}
	seen := make(map[string]bool, len(a))
	for _, e := range a {
		seen[e.Fingerprint()] = true
	}
	for _, e := range b {
		if !seen[e.Fingerprint()] {
			t.Errorf("shard membership depends on expansion order: %s", e.Name())
		}
	}
}

func TestParseShard(t *testing.T) {
	s, err := ParseShard("2/4")
	if err != nil || s.Index != 2 || s.Count != 4 || s.IsAll() {
		t.Errorf("ParseShard(2/4) = %+v, %v", s, err)
	}
	if s, err := ParseShard("1/1"); err != nil || !s.IsAll() {
		t.Errorf("ParseShard(1/1) = %+v, %v", s, err)
	}
	for _, bad := range []string{"", "3", "0/4", "5/4", "-1/4", "a/b", "1/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestShardCacheDirsMergeByFileCopy is the cross-machine story end to
// end: two shards run against separate DiskCache directories, the
// directories merge by plain file copy, and the full matrix then replays
// entirely from the merged store with results byte-identical to a direct
// unsharded run.
func TestShardCacheDirsMergeByFileCopy(t *testing.T) {
	sweep := Sweep{
		Impls:      []string{mpiimpl.RawTCP, mpiimpl.GridMPI, mpiimpl.MPICH2},
		Tunings:    []Tuning{{}, {TCP: true}},
		Topologies: []Topology{Grid(1)},
		Workloads:  []Workload{PingPongWorkload(tinySizes, 3)},
	}
	full := sweep.Experiments()
	merged := t.TempDir()

	for i := 1; i <= 2; i++ {
		dir := t.TempDir()
		store, err := NewDiskCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		part := Shard{Index: i, Count: 2}.Select(full)
		if len(part) == 0 {
			t.Fatalf("shard %d/2 is empty for a %d-cell sweep", i, len(full))
		}
		for _, res := range NewRunnerStore(2, store).RunAll(part) {
			if res.Err != "" {
				t.Fatal(res.Err)
			}
		}
		// Merge = copy the entry files; nothing else to reconcile.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(merged, e.Name()), blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	mergedStore, err := NewDiskCache(merged)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := mergedStore.Len(); n != len(full) {
		t.Fatalf("merged store holds %d entries, want %d", n, len(full))
	}
	r := NewRunnerStore(2, mergedStore)
	mergedResults := r.RunAll(full)
	if stats := r.CacheStats(); stats.Computed != 0 || stats.Disk != int64(len(full)) {
		t.Errorf("merged replay stats = %+v, want everything from disk", stats)
	}
	direct := NewRunner(2).RunAll(full)
	if !bytes.Equal(MarshalResults(mergedResults), MarshalResults(direct)) {
		t.Error("merged-shard replay differs from a direct unsharded run")
	}
}
