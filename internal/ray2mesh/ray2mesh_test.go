package ray2mesh

import (
	"testing"

	"repro/internal/grid5000"
)

// TestTerminatesBelowOneChunkPerSlave is the regression test for the
// self-scheduler deadlock: with fewer chunks than slaves, the master's
// initial round already hands out done-markers, and counting those
// slaves as active left it waiting forever on requests that never come.
// Every ray count must terminate with exact conservation, including a
// partial final chunk and zero rays.
func TestTerminatesBelowOneChunkPerSlave(t *testing.T) {
	for _, rays := range []int{0, 1, 999, 1000, 1234, 5000, 31999} {
		cfg := Default(grid5000.Rennes)
		cfg.Rays = rays
		cfg.MergeBytes = 1 << 20 // keep the merge phase cheap
		res := Run(cfg)
		if res.TotalRays != rays {
			t.Errorf("rays=%d: computed %d, want all of them", rays, res.TotalRays)
		}
	}
}

// TestScaledHasNoFloor: Scaled used to clamp the ray count at one chunk
// per slave to dodge the deadlock; the fixed protocol needs no clamp.
func TestScaledHasNoFloor(t *testing.T) {
	cfg := Default(grid5000.Nancy).Scaled(0.0001)
	if cfg.Rays != 100 {
		t.Fatalf("Scaled(0.0001) rays = %d, want exactly 100", cfg.Rays)
	}
	res := Run(cfg)
	if res.TotalRays != cfg.Rays {
		t.Fatalf("computed %d rays, want %d", res.TotalRays, cfg.Rays)
	}
}

func TestRayConservation(t *testing.T) {
	cfg := Default(grid5000.Rennes).Scaled(0.05)
	res := Run(cfg)
	if res.TotalRays != cfg.Rays {
		t.Fatalf("rays computed = %d, want all %d", res.TotalRays, cfg.Rays)
	}
	var sum float64
	for _, v := range res.RaysPerNode {
		sum += v * 8
	}
	if int(sum+0.5) != cfg.Rays {
		t.Fatalf("per-cluster accounting sums to %.0f, want %d", sum, cfg.Rays)
	}
}

func TestSophiaComputesMostRays(t *testing.T) {
	res := Run(Default(grid5000.Rennes).Scaled(0.1))
	s := res.RaysPerNode[grid5000.Sophia]
	for _, site := range []string{grid5000.Rennes, grid5000.Nancy, grid5000.Toulouse} {
		if res.RaysPerNode[site] >= s {
			t.Errorf("%s (%.0f rays/node) ≥ Sophia (%.0f); the fastest cluster must compute most",
				site, res.RaysPerNode[site], s)
		}
	}
	// Nancy is the slowest cluster.
	if res.RaysPerNode[grid5000.Nancy] > res.RaysPerNode[grid5000.Rennes] {
		t.Errorf("Nancy (%.0f) outran Rennes (%.0f)", res.RaysPerNode[grid5000.Nancy], res.RaysPerNode[grid5000.Rennes])
	}
}

// TestMasterProximityAdvantage is Table 6's diagonal: each cluster
// computes at least as many rays when the master is local as when it is
// remote (end-game chunks go to whoever's request arrives first).
func TestMasterProximityAdvantage(t *testing.T) {
	const scale = 0.1
	results := make(map[string]Result)
	for _, m := range Sites {
		results[m] = Run(Default(m).Scaled(scale))
	}
	for _, cluster := range Sites {
		local := results[cluster].RaysPerNode[cluster]
		for _, m := range Sites {
			if m == cluster {
				continue
			}
			remote := results[m].RaysPerNode[cluster]
			// Allow one chunk of slack across the 8-node mean.
			slack := float64(Default(cluster).ChunkRays) / 8
			if local+slack < remote {
				t.Errorf("cluster %s: %.0f rays/node with local master < %.0f with master at %s",
					cluster, local, remote, m)
			}
		}
	}
}

// TestComputePhaseIndependentOfMaster is Table 7's first row: compute time
// barely depends on where the master sits.
func TestComputePhaseIndependentOfMaster(t *testing.T) {
	const scale = 0.1
	var times []float64
	for _, m := range Sites {
		times = append(times, Run(Default(m).Scaled(scale)).CompTime.Seconds())
	}
	minT, maxT := times[0], times[0]
	for _, v := range times {
		if v < minT {
			minT = v
		}
		if v > maxT {
			maxT = v
		}
	}
	if (maxT-minT)/minT > 0.05 {
		t.Errorf("compute times spread %.1f%% across master locations (%v); paper shows ≈equal",
			100*(maxT-minT)/minT, times)
	}
}

func TestPhaseTimesPositiveAndOrdered(t *testing.T) {
	res := Run(Default(grid5000.Nancy).Scaled(0.05))
	if res.CompTime <= 0 || res.MergeTime <= 0 {
		t.Fatalf("phases: comp=%v merge=%v", res.CompTime, res.MergeTime)
	}
	if res.TotalTime < res.CompTime+res.MergeTime {
		t.Fatalf("total %v < comp %v + merge %v", res.TotalTime, res.CompTime, res.MergeTime)
	}
}

// TestFullScaleMagnitudes checks the Table 7 calibration at full scale:
// compute ≈185 s, merge ≈165 s, total ≈360 s.
func TestFullScaleMagnitudes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run")
	}
	res := Run(Default(grid5000.Rennes))
	if c := res.CompTime.Seconds(); c < 165 || c > 210 {
		t.Errorf("compute phase = %.1f s, want ≈185", c)
	}
	if m := res.MergeTime.Seconds(); m < 140 || m > 190 {
		t.Errorf("merge phase = %.1f s, want ≈165", m)
	}
	if tt := res.TotalTime.Seconds(); tt < 320 || tt > 400 {
		t.Errorf("total = %.1f s, want ≈360", tt)
	}
}
