// Package ray2mesh models the paper's real application (§4.4): the
// seismic ray-tracing suite of Grunberg et al., run as one master and 32
// slaves on four Grid'5000 clusters (eight nodes each).
//
// The master hands out rays in 1000-ray chunks (69 kB messages); a slave
// computes a chunk, returns a request, and receives the next — faster
// slaves therefore compute more rays (Table 6), and the cluster hosting
// the master gets a small proximity advantage in the end-game when the
// last chunks are claimed. Once all rays are traced, every slave exchanges
// its submesh contributions with every other (~235 MB per node) and merges
// what it receives (Table 7's merge phase).
package ray2mesh

import (
	"fmt"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/mpiimpl"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// Config parameterises a run. Use Default as a starting point.
type Config struct {
	// MasterSite hosts the master process (co-located with the first
	// slave of that cluster, as 33 processes run on 32 nodes).
	MasterSite string
	// Layout optionally overrides the Figure 8 testbed with per-site
	// node counts (3-site and asymmetric scenarios). Empty means the
	// paper's four clusters with eight nodes each. MasterSite must be
	// one of the layout's sites and the layout needs at least two nodes
	// in total (the merge phase is an all-to-all between slaves).
	Layout []grid5000.SiteCount
	// Rays is the global ray count (paper: one million).
	Rays int
	// ChunkRays is the self-scheduling quantum (paper: 1000 rays, 69 kB).
	ChunkRays int
	// ChunkBytes is the wire size of one chunk message.
	ChunkBytes int
	// RayCost is the per-ray compute time on the reference CPU.
	RayCost time.Duration
	// MergeBytes is the submesh data each slave contributes (paper:
	// ~235 MB per node).
	MergeBytes int64
	// MergeRate is the per-node mesh-merging processing rate in bytes per
	// second of received data (the merge phase is CPU-bound in the paper:
	// ~165 s for ~235 MB).
	MergeRate float64
	// Impl is the MPI implementation profile to use (the paper used
	// LAM/MPI for these runs; any of the four profiles works).
	Impl string
	// TCPTuned / MPITuned select the §4.2 tuning level of the run. The
	// paper runs the application after system tuning, so Default sets
	// TCPTuned and leaves MPITuned off.
	TCPTuned bool
	MPITuned bool
}

// Default returns the paper's configuration with the master on the given
// site.
func Default(masterSite string) Config {
	return Config{
		MasterSite: masterSite,
		Rays:       1_000_000,
		ChunkRays:  1000,
		ChunkBytes: 69 << 10,
		RayCost:    6100 * time.Microsecond,
		MergeBytes: 235 << 20,
		MergeRate:  1.62e6,
		Impl:       mpiimpl.MPICH2,
		TCPTuned:   true,
	}
}

// Scaled returns the configuration shrunk by factor f (rays and merge
// volume), for fast tests. Any ray count terminates, including fewer
// rays than one chunk per slave: slaves the initial round cannot feed
// receive a done-marker immediately.
func (c Config) Scaled(f float64) Config {
	c.Rays = int(float64(c.Rays) * f)
	c.MergeBytes = int64(float64(c.MergeBytes) * f)
	return c
}

// Result of one run.
type Result struct {
	// RaysPerNode is the mean ray count per node of each cluster —
	// Table 6's cells.
	RaysPerNode map[string]float64
	// TotalRays double-checks conservation.
	TotalRays int
	// CompTime, MergeTime, TotalTime are Table 7's rows.
	CompTime  time.Duration
	MergeTime time.Duration
	TotalTime time.Duration
	// Stats is the world's communication census.
	Stats *mpi.Stats
}

const (
	tagRequest = 1
	tagChunk   = 2
	tagMerge   = 3
	reqBytes   = 64
)

// Sites lists the four clusters in the paper's Table 6 column order.
var Sites = []string{grid5000.Nancy, grid5000.Rennes, grid5000.Sophia, grid5000.Toulouse}

// NodesPerSite is the testbed's per-cluster node count (Figure 8).
const NodesPerSite = 8

// Slaves is the worker count of the application: every testbed node runs
// one slave (the master shares its first node).
var Slaves = len(Sites) * NodesPerSite

// run-local result accounting (chunk grants travel inside the messages
// themselves via SendPayload).
type state struct {
	cfg      Config
	raysDone []int
	compEnd  sim.Time
}

// Layout returns the run's effective testbed layout: the configured one,
// or the paper's four clusters of eight nodes.
func (c Config) layout() []grid5000.SiteCount {
	if len(c.Layout) > 0 {
		return c.Layout
	}
	layout := make([]grid5000.SiteCount, len(Sites))
	for i, s := range Sites {
		layout[i] = grid5000.SiteCount{Name: s, Nodes: NodesPerSite}
	}
	return layout
}

// Run executes the application on the configured testbed (the four-site
// Figure 8 layout unless Config.Layout overrides it). Any non-negative
// ray count terminates (see runMaster's initial-round accounting).
func Run(cfg Config) Result {
	if cfg.Rays < 0 {
		panic(fmt.Sprintf("ray2mesh: negative ray count %d", cfg.Rays))
	}
	layout := cfg.layout()
	total := 0
	masterInLayout := false
	for _, sc := range layout {
		total += sc.Nodes
		if sc.Name == cfg.MasterSite {
			masterInLayout = true
		}
	}
	if !masterInLayout {
		panic(fmt.Sprintf("ray2mesh: master site %q not in the layout", cfg.MasterSite))
	}
	if total < 2 {
		panic(fmt.Sprintf("ray2mesh: %d nodes in the layout, the merge phase needs at least 2", total))
	}
	prof, tcp := mpiimpl.Configure(cfg.Impl, cfg.TCPTuned, cfg.MPITuned)
	k := sim.New(1)
	defer k.Close()

	net := grid5000.BuildLayout(layout)
	var slaves []*netsim.Host
	for _, sc := range layout {
		slaves = append(slaves, net.SiteHosts(sc.Name)...)
	}
	// Rank 0 (master) shares the first node of its site with that slave.
	master := net.Host(cfg.MasterSite + "-1")
	hosts := append([]*netsim.Host{master}, slaves...)
	w := mpi.NewWorld(k, net, tcp, prof, hosts)
	nSlaves := len(slaves)

	st := &state{
		cfg:      cfg,
		raysDone: make([]int, nSlaves+1),
	}
	var mergeEnd sim.Time
	_, err := w.Run(func(r *mpi.Rank) {
		if r.Rank() == 0 {
			runMaster(r, st, nSlaves)
		} else {
			runSlaveCompute(r, st)
		}
		// All processes synchronize before the merge phase starts.
		r.Barrier()
		if r.Rank() == 0 {
			return
		}
		if t := r.Now(); t > st.compEnd {
			st.compEnd = t
		}
		runSlaveMerge(r, st)
		if t := r.Now(); t > mergeEnd {
			mergeEnd = t
		}
	})
	if err != nil {
		panic("ray2mesh: " + err.Error())
	}

	res := Result{
		RaysPerNode: make(map[string]float64),
		TotalTime:   mergeEnd,
		CompTime:    time.Duration(st.compEnd),
		MergeTime:   mergeEnd - time.Duration(st.compEnd),
		Stats:       w.Stats(),
	}
	perSite := make(map[string]int)
	for i := 1; i <= nSlaves; i++ {
		perSite[hosts[i].Site] += st.raysDone[i]
		res.TotalRays += st.raysDone[i]
	}
	for _, sc := range layout {
		res.RaysPerNode[sc.Name] = float64(perSite[sc.Name]) / float64(sc.Nodes)
	}
	return res
}

func runMaster(r *mpi.Rank, st *state, nSlaves int) {
	remaining := st.cfg.Rays
	send := func(slave int) bool {
		n := st.cfg.ChunkRays
		if n > remaining {
			n = remaining
		}
		remaining -= n
		if n > 0 {
			r.SendPayload(slave, tagChunk, st.cfg.ChunkBytes, n)
			return true
		}
		r.SendPayload(slave, tagChunk, 1, 0) // empty grant: done marker
		return false
	}
	// Initial round: one chunk per slave. A slave that the remaining
	// rays cannot feed gets its done-marker here and never enters the
	// request loop, so it must not be counted as active — ignoring
	// send's verdict in this round is what used to deadlock the master
	// whenever the ray count gave fewer chunks than slaves.
	active := 0
	for s := 1; s <= nSlaves; s++ {
		if send(s) {
			active++
		}
	}
	// Self-scheduling loop: serve requests first come, first served.
	// Exactly one request is outstanding per active slave.
	for active > 0 {
		req := r.Recv(mpi.AnySource, tagRequest)
		if !send(req.Source) {
			active--
		}
	}
}

func runSlaveCompute(r *mpi.Rank, st *state) {
	me := r.Rank()
	for {
		chunk := r.Recv(0, tagChunk)
		rays := chunk.Data.(int)
		if rays == 0 {
			return
		}
		r.Compute(time.Duration(rays) * st.cfg.RayCost)
		st.raysDone[me] += rays
		r.Send(0, tagRequest, reqBytes)
	}
}

func runSlaveMerge(r *mpi.Rank, st *state) {
	me := r.Rank()
	nSlaves := r.Size() - 1
	share := int(st.cfg.MergeBytes / int64(nSlaves-1))
	reqs := make([]*mpi.Request, 0, 2*(nSlaves-1))
	for s := 1; s <= nSlaves; s++ {
		if s != me {
			reqs = append(reqs, r.Irecv(s, tagMerge))
		}
	}
	for s := 1; s <= nSlaves; s++ {
		if s != me {
			reqs = append(reqs, r.Isend(s, tagMerge, share))
		}
	}
	r.WaitAll(reqs...)
	r.Compute(time.Duration(float64(st.cfg.MergeBytes) / st.cfg.MergeRate * float64(time.Second)))
}
