// Package perf implements the paper's measurement harnesses: the MPI
// pingpong of §3.1 (200 round trips per message size; minimum latency and
// maximum bandwidth reported) and the per-message bandwidth trace used for
// the slow-start study of §4.2.3 / Figure 9.
package perf

import (
	"time"

	"repro/internal/mpi"
	"repro/internal/sim"
)

// Point is one pingpong measurement: a message size with its best observed
// round-trip and the resulting bandwidth.
type Point struct {
	Size   int
	MinRTT time.Duration
	// Mbps is the MPI bandwidth as the paper plots it: payload bits over
	// the one-way time (half the round trip).
	Mbps float64
}

// OneWay returns half the best round trip.
func (p Point) OneWay() time.Duration { return p.MinRTT / 2 }

func bandwidth(size int, oneWay time.Duration) float64 {
	return float64(size) * 8 / oneWay.Seconds() / 1e6
}

// PingPong runs the paper's pingpong between ranks 0 and 1 of w: for each
// size, reps round trips; the minimum round trip is kept (eliminating
// "perturbations due to other users" — here, TCP ramp-up transients).
// The world must have exactly 2 ranks and must not have been run yet.
func PingPong(w *mpi.World, sizes []int, reps int) ([]Point, error) {
	points := make([]Point, 0, len(sizes))
	_, err := w.Run(func(r *mpi.Rank) {
		for _, size := range sizes {
			best := sim.Time(0)
			for rep := 0; rep < reps; rep++ {
				switch r.Rank() {
				case 0:
					t0 := r.Now()
					r.Send(1, rep, size)
					r.Recv(1, rep)
					if rtt := r.Now() - t0; best == 0 || rtt < best {
						best = rtt
					}
				case 1:
					r.Recv(0, rep)
					r.Send(0, rep, size)
				}
			}
			if r.Rank() == 0 {
				points = append(points, Point{
					Size:   size,
					MinRTT: best,
					Mbps:   bandwidth(size, best/2),
				})
			}
		}
	})
	return points, err
}

// Latency1Byte runs the Table 4 measurement: minimum one-way latency of a
// 1-byte pingpong.
func Latency1Byte(w *mpi.World, reps int) (time.Duration, error) {
	pts, err := PingPong(w, []int{1}, reps)
	if err != nil {
		return 0, err
	}
	return pts[0].OneWay(), nil
}

// TracePoint is one message of a bandwidth trace: when the round trip
// finished and the bandwidth that message achieved.
type TracePoint struct {
	T    time.Duration
	Mbps float64
}

// BandwidthTrace reproduces the Figure 9 protocol: count pingpong messages
// of the given size; for each, the time of completion and its one-way
// bandwidth, exposing the TCP slow-start/congestion-avoidance ramp.
func BandwidthTrace(w *mpi.World, size, count int) ([]TracePoint, error) {
	trace := make([]TracePoint, 0, count)
	_, err := w.Run(func(r *mpi.Rank) {
		for i := 0; i < count; i++ {
			switch r.Rank() {
			case 0:
				t0 := r.Now()
				r.Send(1, i, size)
				r.Recv(1, i)
				rtt := r.Now() - t0
				trace = append(trace, TracePoint{
					T:    r.Now(),
					Mbps: bandwidth(size, rtt/2),
				})
			case 1:
				r.Recv(0, i)
				r.Send(0, i, size)
			}
		}
	})
	return trace, err
}

// PowersOfTwoSizes returns the pingpong size grid of the paper's figures:
// 1 kB, 2 kB, ... up to max (inclusive when max is itself a power of two).
func PowersOfTwoSizes(from, max int) []int {
	var sizes []int
	for s := from; s <= max; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// TimeTo returns the first trace time at which bandwidth reached the given
// level, or -1 if it never did.
func TimeTo(trace []TracePoint, mbps float64) time.Duration {
	for _, tp := range trace {
		if tp.Mbps >= mbps {
			return tp.T
		}
	}
	return -1
}

// MaxMbps returns the best bandwidth in a trace.
func MaxMbps(trace []TracePoint) float64 {
	best := 0.0
	for _, tp := range trace {
		if tp.Mbps > best {
			best = tp.Mbps
		}
	}
	return best
}
