package perf

import (
	"testing"
	"time"

	"repro/internal/grid5000"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcpsim"
)

func world() (*sim.Kernel, *mpi.World) {
	k := sim.New(1)
	net := grid5000.RennesNancy(1)
	hosts := []*netsim.Host{net.Host("rennes-1"), net.Host("nancy-1")}
	return k, mpi.NewWorld(k, net, tcpsim.Tuned4MB(), mpi.Reference(), hosts)
}

func TestPingPongProducesAllSizes(t *testing.T) {
	k, w := world()
	defer k.Close()
	sizes := []int{1, 1024, 1 << 20}
	pts, err := PingPong(w, sizes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(sizes) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Size != sizes[i] {
			t.Errorf("point %d size = %d", i, p.Size)
		}
		if p.MinRTT <= 0 || p.Mbps <= 0 {
			t.Errorf("point %d not measured: %+v", i, p)
		}
		if p.OneWay() != p.MinRTT/2 {
			t.Errorf("OneWay inconsistent")
		}
	}
	// Bandwidth grows with size in this range.
	if pts[2].Mbps <= pts[1].Mbps || pts[1].Mbps <= pts[0].Mbps {
		t.Errorf("bandwidth not increasing: %v", pts)
	}
}

func TestBandwidthTraceMonotoneTime(t *testing.T) {
	k, w := world()
	defer k.Close()
	trace, err := BandwidthTrace(w, 1<<20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 30 {
		t.Fatalf("trace length = %d", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].T <= trace[i-1].T {
			t.Fatalf("trace times not increasing at %d", i)
		}
	}
	if MaxMbps(trace) < trace[0].Mbps {
		t.Fatal("MaxMbps below first point")
	}
}

func TestTimeTo(t *testing.T) {
	trace := []TracePoint{{T: time.Second, Mbps: 100}, {T: 2 * time.Second, Mbps: 300}}
	if got := TimeTo(trace, 200); got != 2*time.Second {
		t.Fatalf("TimeTo = %v", got)
	}
	if got := TimeTo(trace, 500); got != -1 {
		t.Fatalf("TimeTo unreachable = %v, want -1", got)
	}
}

func TestPowersOfTwoSizes(t *testing.T) {
	got := PowersOfTwoSizes(1<<10, 8<<10)
	want := []int{1 << 10, 2 << 10, 4 << 10, 8 << 10}
	if len(got) != len(want) {
		t.Fatalf("sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v", got)
		}
	}
}

func TestLatency1Byte(t *testing.T) {
	k, w := world()
	defer k.Close()
	lat, err := Latency1Byte(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lat < 5800*time.Microsecond || lat > 5830*time.Microsecond {
		t.Fatalf("1-byte one-way latency = %v", lat)
	}
}
