package repro

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp"
	"repro/internal/grid5000"
	"repro/internal/mpiimpl"
	"repro/internal/sim"
)

var updateTraceML = flag.Bool("update-trace-multilevel", false, "rewrite testdata/event_order_multilevel.golden from the current kernel")

// multilevelTraceExperiments lock the multilevel collectives' execution
// order: every staged pattern on the 3-site asymmetric layout where
// gridBcast/gridAllreduce give up and the multilevel gateways genuinely
// differ from the flat trees. Sizes straddle the eager/rendezvous and
// striping thresholds so the gateway hops exercise both protocols.
func multilevelTraceExperiments() []exp.Experiment {
	asym := exp.Asym(
		exp.Site(grid5000.Rennes, 2),
		exp.Site(grid5000.Nancy, 1),
		exp.Site(grid5000.Sophia, 1),
	)
	var exps []exp.Experiment
	for _, w := range []exp.Workload{
		exp.PatternWorkload("bcast", 2<<20, 1),
		exp.PatternWorkload("reduce", 256<<10, 2),
		exp.PatternWorkload("allreduce", 256<<10, 2),
		exp.PatternWorkload("gather", 64<<10, 2),
		exp.PatternWorkload("scatter", 64<<10, 2),
		exp.PatternWorkload("allgather", 64<<10, 2),
		exp.PatternWorkload("alltoall", 64<<10, 2),
		exp.PatternWorkload("barrier", 0, 4),
	} {
		exps = append(exps, exp.Experiment{
			Impl:     mpiimpl.GridMPI,
			Tuning:   exp.MultilevelTuning,
			Topology: asym,
			Workload: w,
		})
	}
	return exps
}

// TestMultilevelEventOrderTrace replays the committed (time, seq)
// execution stream of the multilevel collectives. Any change to gateway
// selection, phase tagging or staging order shows up here byte-exactly
// at the first diverging event. Regenerate only for a deliberate
// semantic change, with -update-trace-multilevel.
func TestMultilevelEventOrderTrace(t *testing.T) {
	var buf bytes.Buffer
	sim.NewHook = func(k *sim.Kernel) {
		k.SetTracer(func(at sim.Time, seq uint64) {
			fmt.Fprintf(&buf, "%d %d\n", int64(at), seq)
		})
	}
	defer func() { sim.NewHook = nil }()

	for _, e := range multilevelTraceExperiments() {
		fmt.Fprintf(&buf, "# %s\n", e.Name())
		res := exp.Run(e)
		if res.Err != "" {
			t.Fatalf("%s: %s", e.Name(), res.Err)
		}
		if res.DNF {
			t.Fatalf("%s: did not finish", e.Name())
		}
		fmt.Fprintf(&buf, "= elapsed %d\n", int64(res.Elapsed))
	}

	golden := filepath.Join("testdata", "event_order_multilevel.golden")
	if *updateTraceML {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %d bytes, %d lines", golden, buf.Len(), bytes.Count(buf.Bytes(), []byte("\n")))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (generate with -update-trace-multilevel): %v", err)
	}
	got := buf.Bytes()
	if bytes.Equal(got, want) {
		return
	}
	gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if !bytes.Equal(gotLines[i], wantLines[i]) {
			t.Fatalf("multilevel event order diverged at line %d:\n  got  %q\n  want %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("event stream length changed: got %d lines, want %d", len(gotLines), len(wantLines))
}
